module bioopera

go 1.23
