// Package bioopera is a from-scratch reproduction of BioOpera, the
// process-support system for virtual laboratories described in
// "Dependable Computing in Virtual Laboratories" (Alonso, Bausch,
// Pautasso, Hallett, Kahn; ETH Zürich, 2000).
//
// BioOpera runs long-lived scientific computations expressed as
// processes: annotated directed graphs whose nodes are tasks (activities,
// blocks, subprocesses) and whose arcs carry control conditions and data.
// Process definitions, execution state, and history live in a persistent
// store, so computations that run for weeks survive node crashes, server
// restarts, hardware upgrades, and manual suspension, resuming with
// minimal intervention.
//
// # Defining processes
//
// Processes are written in OCR (Opera Canonical Representation) text and
// parsed with ParseProcess, or built programmatically as *Process values:
//
//	proc, err := bioopera.ParseProcess(`
//	PROCESS Greet {
//	    INPUT who;
//	    OUTPUT greeting;
//	    ACTIVITY Hello {
//	        CALL demo.hello(name = who);
//	        OUT text;
//	        MAP text -> greeting;
//	    }
//	}`)
//
// Activities bind to external programs registered in a Library. Parallel
// tasks (BLOCK ... PARALLEL OVER list AS x) expand at runtime, one body
// instance per list element. Subprocesses late-bind templates by name.
//
// # Running processes
//
// Two runtimes drive the same engine:
//
//   - NewLocalRuntime executes activities for real on a goroutine worker
//     pool (the quickstart example);
//   - NewSimRuntime executes on a deterministic discrete-event cluster
//     simulation with failures, competing load, and virtual time — the
//     configuration all experiments use.
//
// # The paper's workloads
//
// RegisterAllVsAll and AllVsAllSource provide the all-vs-all
// sequence-comparison process of the paper's §4; RegisterTower and
// TowerSource provide the "tower of information" pipeline of Fig. 1.
// GenerateDataset produces deterministic synthetic protein datasets.
package bioopera

import (
	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/store"
	"bioopera/internal/tower"
)

// Core value and process types.
type (
	// Value is a dynamically typed whiteboard value.
	Value = ocr.Value
	// Kind is a Value's dynamic type.
	Kind = ocr.Kind
	// Expr is a parsed condition/binding expression.
	Expr = ocr.Expr
	// Process is an OCR process definition.
	Process = ocr.Process
	// Task is one node of a process graph.
	Task = ocr.Task
	// Connector is a control arc with an activation condition.
	Connector = ocr.Connector
)

// Engine and runtime types.
type (
	// Engine is the BioOpera server: navigator, dispatcher, recovery.
	Engine = core.Engine
	// Instance is one process execution.
	Instance = core.Instance
	// InstanceStatus is an instance's lifecycle state.
	InstanceStatus = core.InstanceStatus
	// Library is the external-program registry.
	Library = core.Library
	// Program is one library entry.
	Program = core.Program
	// ProgramCtx is passed to program invocations.
	ProgramCtx = core.ProgramCtx
	// StartOptions tune a new instance.
	StartOptions = core.StartOptions
	// Event is an engine event (persisted to the history journal).
	Event = core.Event
	// SimRuntime is the deterministic simulated-cluster runtime.
	SimRuntime = core.SimRuntime
	// SimConfig configures a SimRuntime.
	SimConfig = core.SimConfig
	// LocalRuntime executes activities for real on worker goroutines.
	LocalRuntime = core.LocalRuntime
	// LocalConfig configures a LocalRuntime.
	LocalConfig = core.LocalConfig
	// OutageImpact answers what-if questions about planned outages.
	OutageImpact = core.OutageImpact
	// Lineage is the provenance graph of an instance.
	Lineage = core.Lineage
)

// Cluster modelling types.
type (
	// ClusterSpec describes a cluster's hardware.
	ClusterSpec = cluster.Spec
	// NodeSpec describes one machine.
	NodeSpec = cluster.NodeSpec
)

// Store types.
type (
	// Store persists templates, instances, configuration and history.
	Store = store.Store
	// StoreOp is one mutation inside a Store.Batch.
	StoreOp = store.Op
	// StoreStats summarizes a disk store: records per space, WAL
	// segments, snapshot and commit-group counters.
	StoreStats = store.Stats
)

// Observability types (the BioOpera monitor, §3.2/§3.5, over HTTP).
type (
	// MetricsRegistry collects counters, gauges and histograms and writes
	// Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// EventRing is a bounded ring of emitted engine events for live
	// tailing; publishing never blocks.
	EventRing = obs.Ring
	// MonitorServer serves /metrics and the JSON monitor API.
	MonitorServer = obs.Server
	// MonitorConfig configures a MonitorServer.
	MonitorConfig = obs.ServerConfig
	// MonitorSource adapts an Engine to the monitor server.
	MonitorSource = core.MonitorSource
)

// NewMetricsRegistry returns an empty metrics registry; pass it through a
// runtime config's Metrics field to instrument the engine and store.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventRing returns a bounded event ring for a runtime config's
// EventRing field; size bounds how far a tailing client may lag.
func NewEventRing(size int) *EventRing { return obs.NewRing(size) }

// NewMonitorServer builds the monitor HTTP server over a source.
func NewMonitorServer(cfg MonitorConfig) *MonitorServer { return obs.NewServer(cfg) }

// NewMonitorSource adapts an engine for NewMonitorServer.
func NewMonitorSource(e *Engine) *MonitorSource { return core.NewMonitorSource(e) }

// Instance statuses.
const (
	InstanceRunning   = core.InstanceRunning
	InstanceSuspended = core.InstanceSuspended
	InstanceDone      = core.InstanceDone
	InstanceFailed    = core.InstanceFailed
)

// Value constructors.
var (
	// Null is the null value.
	Null = ocr.Null
)

// Bool returns a boolean value.
func Bool(b bool) Value { return ocr.Bool(b) }

// Num returns a numeric value.
func Num(f float64) Value { return ocr.Num(f) }

// Int returns a numeric value from an int.
func Int(i int) Value { return ocr.Int(i) }

// Str returns a string value.
func Str(s string) Value { return ocr.Str(s) }

// List returns a list value.
func List(vs ...Value) Value { return ocr.List(vs...) }

// ParseProcess parses OCR text containing exactly one process.
func ParseProcess(src string) (*Process, error) { return ocr.ParseProcess(src) }

// ParseFile parses OCR text containing one or more processes.
func ParseFile(src string) ([]*Process, error) { return ocr.ParseFile(src) }

// FormatProcess renders a process in canonical OCR text.
func FormatProcess(p *Process) string { return ocr.Format(p) }

// ParseExpr parses a condition/binding expression.
func ParseExpr(src string) (Expr, error) { return ocr.ParseExpr(src) }

// ProcessBuilder constructs processes programmatically (the library
// counterpart of the paper's graphical process-creation element).
type ProcessBuilder = ocr.Builder

// TaskOption configures a task under construction in a ProcessBuilder.
type TaskOption = ocr.TaskOption

// NewProcessBuilder starts a programmatic process definition.
func NewProcessBuilder(name string) *ProcessBuilder { return ocr.NewBuilder(name) }

// Builder task options re-exported for fluent definitions.
var (
	// Arg binds a task argument to an expression.
	Arg = ocr.Arg
	// Out declares task output fields.
	Out = ocr.Out
	// MapTo maps an output field to a whiteboard name.
	MapTo = ocr.MapTo
	// Retry sets the retry count.
	Retry = ocr.Retry
	// TaskTimeout bounds one attempt's run time in seconds.
	TaskTimeout = ocr.Timeout
	// TaskPriority sets the scheduling priority.
	TaskPriority = ocr.Priority
	// TaskCost sets the cost hint in seconds.
	TaskCost = ocr.Cost
	// OnFailureIgnore makes permanent failure non-fatal.
	OnFailureIgnore = ocr.OnFailureIgnore
	// OnFailureAlternative runs the named task on permanent failure.
	OnFailureAlternative = ocr.OnFailureAlternative
	// Undo names an activity's compensation program.
	Undo = ocr.Undo
	// Atomic marks a block as a sphere of atomicity.
	Atomic = ocr.Atomic
)

// NewLibrary returns an empty program library.
func NewLibrary() *Library { return core.NewLibrary() }

// NewSimRuntime builds the deterministic simulated runtime.
func NewSimRuntime(cfg SimConfig) (*SimRuntime, error) { return core.NewSimRuntime(cfg) }

// NewLocalRuntime builds the real-execution runtime.
func NewLocalRuntime(cfg LocalConfig) (*LocalRuntime, error) { return core.NewLocalRuntime(cfg) }

// NewMemStore returns an in-memory store.
func NewMemStore() Store { return store.NewMem() }

// OpenDiskStore opens (or creates) a crash-safe store in dir.
func OpenDiskStore(dir string) (Store, error) {
	return store.OpenDisk(dir, store.DiskOptions{})
}

// Predefined cluster specifications from the paper's §5.1.
var (
	// IkSun is the five-CPU Sun cluster of the granularity experiment.
	IkSun = cluster.IkSun
	// IkLinux is the eight-node dual-CPU cluster of the second run.
	IkLinux = cluster.IkLinux
	// Linneus is the shared 38-CPU cluster.
	Linneus = cluster.Linneus
	// SharedRunSpec is linneus plus two ik-sun nodes (40 CPUs).
	SharedRunSpec = cluster.SharedRunSpec
)

// Bioinformatics substrate (the stand-in for Swiss-Prot and Darwin).
type (
	// Dataset is a protein sequence collection.
	Dataset = darwin.Dataset
	// Sequence is one protein entry.
	Sequence = darwin.Sequence
	// GenOptions configure synthetic dataset generation.
	GenOptions = darwin.GenOptions
	// Match is one significant pair found by the all-vs-all.
	Match = darwin.Match
	// AllVsAllConfig configures the all-vs-all workload.
	AllVsAllConfig = allvsall.Config
)

// GenerateDataset produces a deterministic synthetic protein dataset.
func GenerateDataset(opts GenOptions) *Dataset { return darwin.Generate(opts) }

// AllVsAllSource is the OCR definition of the paper's Fig. 3 process.
const AllVsAllSource = allvsall.Source

// AllVsAllTemplate is the registered template name of the all-vs-all.
const AllVsAllTemplate = allvsall.TemplateName

// RegisterAllVsAll installs the avsa.* programs behind AllVsAllSource.
func RegisterAllVsAll(lib *Library, cfg *AllVsAllConfig) error {
	return allvsall.Register(lib, cfg)
}

// DecodeMatches decodes a match-list output value of the all-vs-all.
func DecodeMatches(v Value) ([]Match, error) { return allvsall.DecodeMatches(v) }

// TowerSource is the OCR definition of the tower-of-information pipeline
// (the paper's Fig. 1), one subprocess template per floor.
const TowerSource = tower.Source

// TowerTemplate is the parent template name of the tower.
const TowerTemplate = tower.TemplateName

// RegisterTower installs the tower.* programs behind TowerSource.
func RegisterTower(lib *Library) error { return tower.Register(lib) }

// TowerInputs builds the tower process inputs for a genome.
func TowerInputs(dna string, minCodons int, threshold float64) map[string]Value {
	return tower.Inputs(dna, minCodons, threshold)
}

// GenerateGenome produces a synthetic DNA sequence with planted genes,
// returning the DNA and the planted proteins (ground truth).
func GenerateGenome(genes int, seed int64) (dna string, proteins []string) {
	return tower.GenerateGenome(tower.GenomeOptions{Genes: genes, Seed: seed, Related: true})
}

// StrList decodes a list-of-strings output value.
func StrList(v Value) ([]string, error) { return tower.StrList(v) }

// GenePredictionSource is the OCR definition of the §6 gene-prediction
// process: two gene finders in parallel branches, codon-bias scoring, and
// a consensus merge.
const GenePredictionSource = tower.GenePredictionSource

// GenePredictionTemplate is the gene-prediction template name.
const GenePredictionTemplate = tower.GenePredictionTemplate

// ScoredORF is a gene candidate with its codon-bias score.
type ScoredORF = tower.ScoredORF

// RegisterGenePrediction installs the genes.* programs behind
// GenePredictionSource.
func RegisterGenePrediction(lib *Library) error { return tower.RegisterGenePrediction(lib) }

// GenePredictionInputs builds the gene-prediction process inputs.
func GenePredictionInputs(dna string, minCodons int, biasCut float64) map[string]Value {
	return tower.GenePredictionInputs(dna, minCodons, biasCut)
}

// DecodeORFs decodes a gene-prediction genes output value.
func DecodeORFs(v Value) ([]ScoredORF, error) { return tower.DecodeORFs(v) }
