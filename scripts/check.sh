#!/bin/sh
# Repo hygiene + test gate. Run from the repo root:
#
#   ./scripts/check.sh          # gofmt, vet, biooperalint, build, tests
#   ./scripts/check.sh -race    # same, plus the race-detector suite
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== biooperalint"
# The tool prints its own load/analyze split on stderr; time the whole run
# (including go run's rebuild) so regressions in the module loader show up.
lint_start=$(date +%s)
go run ./cmd/biooperalint ./...
echo "   biooperalint took $(($(date +%s) - lint_start))s"

echo "== go test"
go test ./...

if [ "${1:-}" = "-race" ]; then
    echo "== go test -race"
    go test -race ./...
fi

echo "== federation e2e smoke"
# Two servers and a gateway in one process; one server is killed mid-run
# and every instance must still complete with correct outputs.
go run ./cmd/bioopera fed -servers 2 -n 6 -kill

echo "OK"
