#!/bin/sh
# Repo hygiene + test gate. Run from the repo root:
#
#   ./scripts/check.sh          # gofmt, vet, biooperalint, build, tests
#   ./scripts/check.sh -race    # same, plus the race-detector suite
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== biooperalint"
go run ./cmd/biooperalint ./...

echo "== go test"
go test ./...

if [ "${1:-}" = "-race" ]; then
    echo "== go test -race"
    go test -race ./...
fi

echo "OK"
