package bioopera

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (scaled so a full -bench=. run finishes in minutes), plus
// micro-benchmarks of the substrates. Experiment benchmarks report their
// headline numbers as custom metrics so `go test -bench` output doubles as
// a results table.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/experiments"
	"bioopera/internal/fed"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/store"
	"bioopera/internal/wal"
)

// BenchmarkFig4GranularitySweep regenerates Fig. 4: CPU and WALL time vs.
// the number of TEUs for an all-vs-all on the 5-CPU ik-sun cluster.
func BenchmarkFig4GranularitySweep(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig4(experiments.Fig4Options{
			N: 250, MeanLen: 300,
			TEUs: []int{1, 2, 5, 10, 20, 50, 125, 250},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OptimalTEUs), "optimal-TEUs")
	b.ReportMetric(res.Points[0].WALL.Seconds(), "wall-1TEU-s")
	b.ReportMetric(res.Points[len(res.Points)-1].CPU.Seconds(), "cpu-max-TEUs-s")
}

// benchLifecycle is the scaled dataset used by the Table 1 / Fig. 5 /
// Fig. 6 benchmarks.
func benchLifecycle() experiments.LifecycleOptions {
	return experiments.LifecycleOptions{N: 16000, MeanLen: 250, TEUs: 160, SampleEvery: 2 * time.Hour}
}

// BenchmarkTable1AllVsAll regenerates Table 1: both all-vs-all runs.
func BenchmarkTable1AllVsAll(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Shared.Row.WALL.Hours()/24, "shared-wall-days")
	b.ReportMetric(res.NonShared.Row.WALL.Hours()/24, "nonshared-wall-days")
	b.ReportMetric(float64(res.Shared.Row.MaxCPUs), "shared-max-cpus")
}

// BenchmarkFig5SharedLifecycle regenerates the Fig. 5 trace.
func BenchmarkFig5SharedLifecycle(b *testing.B) {
	var res *experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SharedLifecycle(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Row.Failures), "failures-survived")
	b.ReportMetric(res.Row.WALL.Hours()/24, "wall-days")
}

// BenchmarkFig6NonSharedLifecycle regenerates the Fig. 6 trace.
func BenchmarkFig6NonSharedLifecycle(b *testing.B) {
	var res *experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.NonSharedLifecycle(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Row.MaxCPUs), "peak-cpus")
	b.ReportMetric(res.Row.WALL.Hours()/24, "wall-days")
}

// BenchmarkAdaptiveMonitoring regenerates the §3.4 claim.
func BenchmarkAdaptiveMonitoring(b *testing.B) {
	var res *experiments.MonitoringResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Monitoring(experiments.MonitoringOptions{Horizon: 3 * 24 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.OverallDiscard, "discard-%")
	b.ReportMetric(100*res.OverallErr, "err-%")
}

// BenchmarkMigrationStrategies regenerates the §5.4 migration ablation.
func BenchmarkMigrationStrategies(b *testing.B) {
	var res *experiments.MigrationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Migration(experiments.MigrationOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	sub := res.Cell("subset", "kill-and-restart").WALL
	subNone := res.Cell("subset", "leave-in-place").WALL
	b.ReportMetric(100*(float64(sub)/float64(subNone)-1), "subset-wall-delta-%")
}

// BenchmarkCheckpointGranularity regenerates the §3.3 ablation.
func BenchmarkCheckpointGranularity(b *testing.B) {
	var res *experiments.CheckpointResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Checkpoint(experiments.CheckpointOptions{
			N: 1200, MeanLen: 150, TEUs: []int{4, 32, 128},
			CrashEvery: 90 * time.Second, Repair: 2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].WastedCPU.Seconds(), "wasted-coarse-s")
	b.ReportMetric(res.Points[len(res.Points)-1].WastedCPU.Seconds(), "wasted-fine-s")
}

// --- substrate micro-benchmarks ---

// BenchmarkSmithWaterman measures the core alignment kernel.
func BenchmarkSmithWaterman(b *testing.B) {
	ds := darwin.Generate(darwin.GenOptions{N: 2, MeanLen: 360, Seed: 1})
	sm := darwin.ScoreAt(120)
	sa, sb := ds.Entries[0], ds.Entries[1]
	cells := int64(sa.Len()) * int64(sb.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		darwin.ScoreOnly(sa, sb, sm)
	}
	b.SetBytes(cells) // "bytes" = DP cells per op
}

// BenchmarkRefinePAM measures the golden-section distance search.
func BenchmarkRefinePAM(b *testing.B) {
	ds := darwin.Generate(darwin.GenOptions{N: 2, MeanLen: 200, Seed: 2, FamilyFraction: 1, FamilyPAM: 60})
	sa, sb := ds.Entries[0], ds.Entries[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		darwin.RefinePAM(sa, sb, 5, 250)
	}
}

// BenchmarkWALAppend measures the write-ahead log (no fsync, as in the
// experiments).
func BenchmarkWALAppend(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures a whole store mutation (WAL + in-memory
// image).
func BenchmarkStorePut(b *testing.B) {
	d, err := store.OpenDisk(b.TempDir(), store.DiskOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(store.Instance, "inst/p0001", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOCRParse measures parsing the all-vs-all definition.
func BenchmarkOCRParse(b *testing.B) {
	b.SetBytes(int64(len(AllVsAllSource)))
	for i := 0; i < b.N; i++ {
		if _, err := ocr.ParseProcess(AllVsAllSource); err != nil {
			b.Fatal(err)
		}
	}
}

// engineThroughput runs the 200-element parallel fan-out b.N times,
// optionally with the full observability stack (metrics registry + event
// ring) attached — the configuration `serve -monitor` runs with.
func engineThroughput(b *testing.B, observed bool) {
	const src = `
PROCESS Fan {
  INPUT xs;
  OUTPUT done;
  BLOCK F PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY A { CALL bench.id(x = x); OUT r; MAP r -> r; }
  }
}`
	var xs []ocr.Value
	for i := 0; i < 200; i++ {
		xs = append(xs, ocr.Int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib := core.NewLibrary()
		lib.RegisterFunc("bench.id", func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"r": args["x"]}, nil
		})
		cfg := core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Library: lib}
		if observed {
			cfg.Options.Metrics = NewMetricsRegistry()
			cfg.Options.EventRing = NewEventRing(1024)
		}
		rt, err := core.NewSimRuntime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Engine.RegisterTemplateSource(src); err != nil {
			b.Fatal(err)
		}
		id, err := rt.Engine.StartProcess("Fan", map[string]ocr.Value{"xs": ocr.List(xs...)}, core.StartOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rt.Run()
		in, _ := rt.Engine.Instance(id)
		if in.Status != core.InstanceDone {
			b.Fatalf("instance %s", in.Status)
		}
	}
	b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "activities/s")
}

// BenchmarkEngineThroughput measures navigated activities per second on
// the simulated cluster (a 200-element parallel fan-out).
func BenchmarkEngineThroughput(b *testing.B) {
	engineThroughput(b, false)
}

// BenchmarkEngineThroughputObserved is the same workload with metrics and
// the event ring enabled; comparing against BenchmarkEngineThroughput
// measures the instrumentation's overhead (budget: within 3%).
func BenchmarkEngineThroughputObserved(b *testing.B) {
	engineThroughput(b, true)
}

// BenchmarkWALAppendBatch contrasts one fsync per record (batch size 1)
// with group commit (N records, one fsync). Syncs are real here — this is
// the durability cost a checkpoint actually pays.
func BenchmarkWALAppendBatch(b *testing.B) {
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("records=%d", size), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := make([][]byte, size)
			for i := range batch {
				batch[i] = make([]byte, 256)
			}
			b.SetBytes(int64(256 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(l.Syncs())/float64(b.N*size), "fsyncs/record")
		})
	}
}

// BenchmarkStorePutBatch contrasts a checkpoint written as individual Puts
// with the same checkpoint written as one atomic Batch (one group-committed
// WAL append). Syncs are real.
func BenchmarkStorePutBatch(b *testing.B) {
	const ops = 8
	val := make([]byte, 512)
	b.Run("puts", func(b *testing.B) {
		d, err := store.OpenDisk(b.TempDir(), store.DiskOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < ops; j++ {
				if err := d.Put(store.Instance, fmt.Sprintf("scope/p1/s%d", j), val); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.WALSyncs())/float64(b.N*ops), "fsyncs/record")
	})
	b.Run("batch", func(b *testing.B) {
		d, err := store.OpenDisk(b.TempDir(), store.DiskOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		batch := make([]store.Op, ops)
		for j := range batch {
			batch[j] = store.Op{Space: store.Instance, Key: fmt.Sprintf("scope/p1/s%d", j), Value: val}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Batch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(d.WALSyncs())/float64(b.N*ops), "fsyncs/record")
	})
}

// countingStore wraps a Store and counts the bytes of every Instance-space
// put — the write volume a checkpoint pipeline actually pushes through the
// log, measured below the engine so the number is comparable across
// checkpoint layouts.
type countingStore struct {
	store.Store
	bytes atomic.Int64
}

func (c *countingStore) Put(space store.Space, key string, value []byte) error {
	if space == store.Instance {
		c.bytes.Add(int64(len(value)))
	}
	return c.Store.Put(space, key, value)
}

func (c *countingStore) Batch(ops []store.Op) error {
	for _, op := range ops {
		if op.Space == store.Instance && !op.Delete {
			c.bytes.Add(int64(len(op.Value)))
		}
	}
	return c.Store.Batch(ops)
}

// gateCheckpointBytes fails the benchmark when BENCH_GATE is set and the
// measured checkpoint-bytes/activity regresses more than 10% against the
// committed BENCH_5.json baseline (the CI bench-smoke gate).
func gateCheckpointBytes(b *testing.B, width int, got float64) {
	if os.Getenv("BENCH_GATE") == "" {
		return
	}
	data, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		b.Fatalf("BENCH_GATE set but baseline unreadable: %v", err)
	}
	var doc struct {
		CheckpointWidth struct {
			After map[string]float64 `json:"after_ckpt_bytes_per_activity"`
		} `json:"checkpoint_width"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		b.Fatalf("BENCH_5.json: %v", err)
	}
	base, ok := doc.CheckpointWidth.After[strconv.Itoa(width)]
	if !ok || base <= 0 {
		b.Fatalf("BENCH_5.json has no checkpoint baseline for width %d", width)
	}
	if got > base*1.10 {
		b.Fatalf("checkpoint-bytes/activity regressed >10%% at width %d: got %.1f, baseline %.1f", width, got, base)
	}
}

// BenchmarkCheckpointWidth sweeps the fan-out width of a parallel block and
// reports checkpoint bytes written per navigated activity. Under whole-scope
// checkpointing this grows linearly with width (O(n²) total serialization
// over a block's lifetime); under per-task delta records it stays flat.
func BenchmarkCheckpointWidth(b *testing.B) {
	const srcFmt = `
PROCESS Fan {
  INPUT xs;
  OUTPUT done;
  BLOCK F PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY A { CALL bench.id(x = x); OUT r; MAP r -> r; }
  }
}`
	for _, width := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			var xs []ocr.Value
			for i := 0; i < width; i++ {
				xs = append(xs, ocr.Int(i))
			}
			var ckptBytes, acts int64
			for i := 0; i < b.N; i++ {
				lib := core.NewLibrary()
				lib.RegisterFunc("bench.id", func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
					return map[string]ocr.Value{"r": args["x"]}, nil
				})
				cs := &countingStore{Store: store.NewMem()}
				rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Library: lib, Store: cs})
				if err != nil {
					b.Fatal(err)
				}
				if err := rt.Engine.RegisterTemplateSource(srcFmt); err != nil {
					b.Fatal(err)
				}
				id, err := rt.Engine.StartProcess("Fan", map[string]ocr.Value{"xs": ocr.List(xs...)}, core.StartOptions{})
				if err != nil {
					b.Fatal(err)
				}
				rt.Run()
				in, _ := rt.Engine.Instance(id)
				if in.Status != core.InstanceDone {
					b.Fatalf("instance %s", in.Status)
				}
				ckptBytes += cs.bytes.Load()
				acts += int64(in.Activities)
			}
			bpa := float64(ckptBytes) / float64(acts)
			b.ReportMetric(bpa, "ckpt-B/act")
			gateCheckpointBytes(b, width, bpa)
		})
	}
}

// benchScheduleNodes is the cluster view the scheduling benchmark decides
// against: a mid-size pool with mixed occupancy.
func benchScheduleNodes() []cluster.NodeView {
	nodes := make([]cluster.NodeView, 16)
	for i := range nodes {
		nodes[i] = cluster.NodeView{
			Name: fmt.Sprintf("n%02d", i), OS: "linux", Up: true,
			CPUs: 4, Speed: 1, Running: i % 4, ExtLoad: float64(i%3) * 0.3,
		}
	}
	return nodes
}

// scheduleNsPerDecision measures the steady-state dispatch cycle (pop the
// best placeable job, requeue a replacement) at a fixed queue depth.
func scheduleNsPerDecision(b *testing.B, depth int) float64 {
	s := sched.New(sched.Config{Quotas: map[string]float64{"t0": 3, "t1": 1, "t2": 2}})
	for i := 0; i < depth; i++ {
		s.Enqueue(sched.Job{
			ID:       fmt.Sprintf("j%06d", i),
			Tenant:   fmt.Sprintf("t%d", i%3),
			Priority: i % 4,
			Key:      fmt.Sprintf("prog%d", i%8),
			Cost:     time.Second,
		})
	}
	nodes := benchScheduleNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _, ok := s.Next(nodes, nil)
		if !ok {
			b.Fatal("nothing dispatchable")
		}
		s.Enqueue(j) // keep the depth constant
	}
	b.StopTimer()
	return float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// bench6Baseline loads the committed scheduler baseline.
func bench6Baseline(b *testing.B) map[string]float64 {
	data, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		b.Fatalf("BENCH_GATE set but baseline unreadable: %v", err)
	}
	var doc struct {
		Schedule struct {
			LatencyRatio map[string]float64 `json:"latency_ratio_vs_depth100"`
		} `json:"schedule"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		b.Fatalf("BENCH_6.json: %v", err)
	}
	return doc.Schedule.LatencyRatio
}

// BenchmarkSchedule measures scheduler decision latency against queue
// depth. The gate compares each depth's latency as a RATIO to the in-run
// depth-100 measurement — machine-independent, so CI hardware differences
// don't trip it while algorithmic blowups (a linear scan turning
// quadratic) do: the ratio may not regress more than 10% over the
// committed BENCH_6.json baseline.
func BenchmarkSchedule(b *testing.B) {
	depths := []int{100, 1000, 10000}
	ns := make(map[int]float64, len(depths))
	for _, depth := range depths {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			ns[depth] = scheduleNsPerDecision(b, depth)
			b.ReportMetric(ns[depth], "ns/decision")
		})
	}
	if os.Getenv("BENCH_GATE") == "" || ns[100] <= 0 {
		return
	}
	base := bench6Baseline(b)
	for _, depth := range depths[1:] {
		ratio := ns[depth] / ns[100]
		want, ok := base[strconv.Itoa(depth)]
		if !ok || want <= 0 {
			b.Fatalf("BENCH_6.json has no latency-ratio baseline for depth %d", depth)
		}
		if ratio > want*1.10 {
			b.Fatalf("decision latency regressed >10%% at depth %d: ratio %.1f, baseline %.1f", depth, ratio, want)
		}
	}
}

// BenchmarkAdaptiveBatching regenerates the granularity-autotuning
// comparison: the batcher's TEU choice vs. the naive one-per-CPU fixed
// batch under an idle and a volatile load profile. The simulation is
// deterministic, so the gate — adaptive must beat fixed at both profiles —
// is machine-independent.
func BenchmarkAdaptiveBatching(b *testing.B) {
	var res *experiments.AdaptiveResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.AdaptiveBatching(experiments.AdaptiveOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range []string{"idle", "volatile"} {
		ad, fx := res.Cell(p, "adaptive"), res.Cell(p, "fixed")
		delta := 100 * (float64(ad.WALL)/float64(fx.WALL) - 1)
		b.ReportMetric(delta, p+"-wall-delta-%")
		if os.Getenv("BENCH_GATE") != "" && ad.WALL >= fx.WALL {
			b.Fatalf("adaptive batching lost to fixed on the %s profile: %v vs %v", p, ad.WALL, fx.WALL)
		}
	}
}

// BenchmarkEngineThroughputConcurrent measures navigated activities per
// second on the worker-pool executor with many client goroutines starting
// instances at once, checkpointing to a real disk store (fsync on). Every
// activity pays for a dispatch checkpoint and a completion checkpoint;
// "serialized" forces every instance through a single lock (Shards: 1) —
// the pre-sharding engine, where at most one checkpoint is ever in flight
// and each therefore costs a full fsync. "sharded" is the default
// instance-sharded lock table: independent instances overlap their turns,
// so concurrent checkpoints group-commit and share fsyncs.
func BenchmarkEngineThroughputConcurrent(b *testing.B) {
	const src = `
PROCESS Chain8 {
  INPUT x;
  OUTPUT r;
  ACTIVITY S1 { CALL bench.id(x = x);  OUT r; MAP r -> w1; }
  ACTIVITY S2 { CALL bench.id(x = w1); OUT r; MAP r -> w2; }
  ACTIVITY S3 { CALL bench.id(x = w2); OUT r; MAP r -> w3; }
  ACTIVITY S4 { CALL bench.id(x = w3); OUT r; MAP r -> w4; }
  ACTIVITY S5 { CALL bench.id(x = w4); OUT r; MAP r -> w5; }
  ACTIVITY S6 { CALL bench.id(x = w5); OUT r; MAP r -> w6; }
  ACTIVITY S7 { CALL bench.id(x = w6); OUT r; MAP r -> w7; }
  ACTIVITY S8 { CALL bench.id(x = w7); OUT r; MAP r -> r; }
  S1 -> S2; S2 -> S3; S3 -> S4; S4 -> S5; S5 -> S6; S6 -> S7; S7 -> S8;
}`
	run := func(b *testing.B, shards int) {
		lib := core.NewLibrary()
		lib.RegisterFunc("bench.id", func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"r": args["x"]}, nil
		})
		st, err := store.OpenDisk(b.TempDir(), store.DiskOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rt, err := core.NewLocalRuntime(core.LocalConfig{
			Workers: 16,
			Shards:  shards,
			Store:   st,
			Library: lib,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Close()
		if err := rt.RegisterTemplateSource(src); err != nil {
			b.Fatal(err)
		}
		var activities atomic.Int64
		b.SetParallelism(8) // 8·GOMAXPROCS client goroutines
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				id, err := rt.StartProcess("Chain8", map[string]ocr.Value{"x": ocr.Num(1)}, core.StartOptions{})
				if err != nil {
					b.Fatal(err)
				}
				in, err := rt.Wait(id, time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				if in.Status != core.InstanceDone {
					b.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
				}
				activities.Add(int64(in.Activities))
			}
		})
		b.ReportMetric(float64(activities.Load())/b.Elapsed().Seconds(), "activities/s")
	}
	b.Run("serialized", func(b *testing.B) { run(b, 1) })
	b.Run("sharded", func(b *testing.B) { run(b, 0) })
}

// --- PR 7: recovery at scale ---

// recoverBenchSrc is the template cloned across the recovery stores: a
// 4-wide parallel fan, so each instance carries a root scope, a block
// scope skeleton, four task records, and one interned process text.
const recoverBenchSrc = `
PROCESS Fan {
  INPUT xs;
  OUTPUT done;
  BLOCK F PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY A { CALL bench.id(x = x); OUT r; MAP r -> r; }
  }
}`

func recoverBenchLibrary() *core.Library {
	lib := core.NewLibrary()
	if err := lib.RegisterFunc("bench.id", func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		return map[string]ocr.Value{"r": args["x"]}, nil
	}); err != nil {
		panic(err)
	}
	return lib
}

// recoverSeeds drives one suspended and one running instance through a
// real engine and captures their delta records: the clone templates the
// synthetic recovery stores below are stamped from. Synthesizing by clone
// (key/ID rewrite) rather than re-running the engine N times makes a
// 100k-instance store buildable in seconds while keeping every record
// byte-exactly the shape recovery sees in production.
type recoverSeedSet struct {
	susp, act     []store.KV
	suspID, actID string
}

func recoverSeeds(b *testing.B) recoverSeedSet {
	b.Helper()
	st := store.NewMem()
	rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Store: st, Library: recoverBenchLibrary()})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(recoverBenchSrc); err != nil {
		b.Fatal(err)
	}
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4))
	suspID, err := rt.Engine.StartProcess("Fan", map[string]ocr.Value{"xs": xs}, core.StartOptions{})
	if err != nil {
		b.Fatal(err)
	}
	actID, err := rt.Engine.StartProcess("Fan", map[string]ocr.Value{"xs": xs}, core.StartOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Engine.Suspend(suspID, false); err != nil {
		b.Fatal(err)
	}
	kvs, err := st.List(store.Instance)
	if err != nil {
		b.Fatal(err)
	}
	var set recoverSeedSet
	set.suspID, set.actID = suspID, actID
	for _, kv := range kvs {
		switch {
		case strings.Contains(kv.Key, suspID):
			set.susp = append(set.susp, kv)
		case strings.Contains(kv.Key, actID):
			set.act = append(set.act, kv)
		}
	}
	if len(set.susp) == 0 || len(set.act) == 0 {
		b.Fatalf("seed capture: %d suspended / %d active records", len(set.susp), len(set.act))
	}
	return set
}

// buildRecoveryStore stamps n instances into a fresh store, activePct of
// them running and the rest suspended — the "huge dormant population, tiny
// active set" profile a long-lived virtual laboratory accumulates. The
// clone IDs must be exactly as long as the seed IDs: binary codec records
// length-prefix their strings, so only a same-length substitution leaves
// the record framing intact (JSON records never cared).
func buildRecoveryStore(b *testing.B, dst store.Store, n int, seeds recoverSeedSet) {
	b.Helper()
	nActive := n / 100 // 1% active
	if nActive < 1 {
		nActive = 1
	}
	for i := 0; i < n; i++ {
		seed, oldID := seeds.susp, seeds.suspID
		if i < nActive {
			seed, oldID = seeds.act, seeds.actID
		}
		suffix := strconv.FormatInt(int64(i), 36)
		newID := oldID[:len(oldID)-len(suffix)] + suffix
		if len(newID) != len(oldID) {
			b.Fatalf("clone ID %q length differs from seed %q", newID, oldID)
		}
		for _, kv := range seed {
			key := strings.ReplaceAll(kv.Key, oldID, newID)
			val := bytes.ReplaceAll(kv.Value, []byte(oldID), []byte(newID))
			if err := dst.Put(store.Instance, key, val); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// recoverOnce builds a fresh engine over st and times one Recover call.
// The heap is collected first: a prior eager recovery leaves gigabytes of
// dead engine state behind, and without the collection its GC debt lands
// inside the next (possibly much shorter) timed region, skewing ratios by
// 2x or more on a small machine.
func recoverOnce(b *testing.B, st store.Store, n int, lazy bool) time.Duration {
	b.Helper()
	runtime.GC()
	rt, err := core.NewSimRuntime(core.SimConfig{
		Seed: 1, Spec: cluster.IkLinux(), Store: st,
		Library: recoverBenchLibrary(),
		Options: core.Options{LazyRecovery: lazy},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(recoverBenchSrc); err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	got, err := rt.Engine.Recover()
	elapsed := time.Since(start)
	if err != nil {
		b.Fatal(err)
	}
	if got != n {
		b.Fatalf("recovered %d of %d", got, n)
	}
	return elapsed
}

// BenchmarkRecover measures cold-start recovery (Engine.Recover) over
// synthetic stores of 1k/10k/100k instances at 1% active, eager vs lazy.
// Lazy recovery decodes only instance metadata for the dormant 99%, so its
// advantage grows with the dormant population.
func BenchmarkRecover(b *testing.B) {
	seeds := recoverSeeds(b)
	for _, n := range []int{1000, 10000, 100000} {
		var st store.Store
		for _, mode := range []string{"eager", "lazy"} {
			lazy := mode == "lazy"
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				if st == nil { // shared store, built on first use of this size
					st = store.NewMem()
					buildRecoveryStore(b, st, n, seeds)
				}
				var total time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					total += recoverOnce(b, st, n, lazy)
				}
				b.StopTimer()
				perRecover := total / time.Duration(b.N)
				b.ReportMetric(float64(n)/perRecover.Seconds(), "instances/s")
				b.ReportMetric(perRecover.Seconds()*1000, "ms/recover")
			})
		}
	}
}

// benchSevenBaseline mirrors the gated fields of BENCH_7.json.
type benchSevenBaseline struct {
	Recover struct {
		LazySpeedup100k float64 `json:"lazy_speedup_100k"`
		Gate            string  `json:"gate"`
	} `json:"recover"`
}

// BenchmarkRecoverLazySpeedup measures the headline number: the ratio of
// eager to lazy recovery time over 100k instances at 1% active. With
// BENCH_GATE set it enforces the committed BENCH_7.json baseline — the
// measured speedup must stay within 10% of baseline and above the 5×
// acceptance floor. The gate is a within-run ratio, so it is
// machine-independent; absolute times are reference only.
func BenchmarkRecoverLazySpeedup(b *testing.B) {
	const n = 100000
	seeds := recoverSeeds(b)
	st := store.NewMem()
	buildRecoveryStore(b, st, n, seeds)
	// Best-of-k per mode: interference (GC debt, a noisy co-tenant) only
	// ever adds time, so the minimum is the robust estimate of intrinsic
	// recovery cost and keeps the gated ratio from flapping on a loaded
	// box. The cheap lazy pass gets an extra sample since a fixed absolute
	// disturbance distorts it proportionally more.
	best := func(lazy bool, reps int) time.Duration {
		min := recoverOnce(b, st, n, lazy)
		for r := 1; r < reps; r++ {
			if d := recoverOnce(b, st, n, lazy); d < min {
				min = d
			}
		}
		return min
	}
	var eager, lazy time.Duration
	for i := 0; i < b.N; i++ {
		eager += best(false, 2)
		lazy += best(true, 3)
	}
	speedup := float64(eager) / float64(lazy)
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(eager.Seconds()*1000/float64(b.N), "ms/eager")
	b.ReportMetric(lazy.Seconds()*1000/float64(b.N), "ms/lazy")
	if os.Getenv("BENCH_GATE") == "" {
		return
	}
	data, err := os.ReadFile("BENCH_7.json")
	if err != nil {
		b.Fatalf("BENCH_GATE set but baseline unreadable: %v", err)
	}
	var base benchSevenBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		b.Fatalf("BENCH_7.json: %v", err)
	}
	if base.Recover.LazySpeedup100k <= 0 {
		b.Fatal("BENCH_7.json has no lazy_speedup_100k baseline")
	}
	floor := base.Recover.LazySpeedup100k / 1.10
	if floor < 5.0 {
		floor = 5.0
	}
	if speedup < floor {
		b.Fatalf("lazy recovery speedup %.1fx below gate %.1fx (baseline %.1fx, acceptance floor 5x)",
			speedup, floor, base.Recover.LazySpeedup100k)
	}
}

// BenchmarkFailover times the full promotion path: a hot standby that has
// converged with a 1000-instance primary is cut over — primary dies,
// standby promotes its store, and a fresh engine recovers every instance.
// The measured section is death → ready-to-serve.
func BenchmarkFailover(b *testing.B) {
	seeds := recoverSeeds(b)
	const n = 1000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := store.OpenDisk(b.TempDir(), store.DiskOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		buildRecoveryStore(b, p, n, seeds)
		shipper, err := p.StartShipping("127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		sb, err := store.OpenStandby(b.TempDir(), store.DiskOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		followErr := make(chan error, 1)
		go func() { followErr <- sb.Follow(shipper.Addr(), nil) }()
		want, err := p.Digest()
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			got, err := sb.Store().Digest()
			if err != nil {
				b.Fatal(err)
			}
			if got == want {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("standby never converged")
			}
			time.Sleep(2 * time.Millisecond)
		}
		b.StartTimer()
		// Primary dies; the standby takes over.
		if err := shipper.Close(); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		<-followErr
		promoted, err := sb.Promote()
		if err != nil {
			b.Fatal(err)
		}
		rt, err := core.NewSimRuntime(core.SimConfig{
			Seed: 1, Spec: cluster.IkLinux(), Store: promoted,
			Library: recoverBenchLibrary(),
			Options: core.Options{LazyRecovery: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Engine.RegisterTemplateSource(recoverBenchSrc); err != nil {
			b.Fatal(err)
		}
		got, err := rt.Engine.Recover()
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if got != n {
			b.Fatalf("recovered %d of %d", got, n)
		}
		if err := promoted.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/failover")
}

// fedBenchSrc chains three activities so federated instances exercise the
// whole dispatch/checkpoint path rather than completing in one turn.
const fedBenchSrc = `
PROCESS FedChain {
  INPUT x;
  OUTPUT r;
  ACTIVITY A { CALL fedbench.step(x = x); OUT out; MAP out -> a; }
  ACTIVITY B { CALL fedbench.step(x = a); OUT out; MAP out -> b; }
  ACTIVITY C { CALL fedbench.step(x = b); OUT out; MAP out -> r; }
  A -> B;
  B -> C;
}`

func fedBenchLibrary(stepTime time.Duration) *core.Library {
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "fedbench.step",
		Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			if stepTime > 0 {
				time.Sleep(stepTime)
			}
			return map[string]ocr.Value{"out": ocr.Num(args["x"].AsNum()*2 + 1)}, nil
		},
	})
	return lib
}

// bootFedBench boots a federation for benchmarking: n members (each over
// its own store when shared is nil — the shared-nothing deployment — or all
// over shared) plus a library-only gateway routing to them. It blocks until
// every partition has exactly one owner.
func bootFedBench(b *testing.B, n, partitions int, shared store.Store, stepTime time.Duration) ([]*fed.Member, *fed.Gateway) {
	b.Helper()
	members := make([]*fed.Member, 0, n)
	var joins []string
	for i := 0; i < n; i++ {
		st := shared
		if st == nil {
			st = store.NewMem()
			mem := st
			b.Cleanup(func() { mem.Close() })
		}
		m, err := fed.NewMember(fed.Config{
			Name:             fmt.Sprintf("bench%d", i+1),
			ListenAddr:       "127.0.0.1:0",
			Join:             append([]string(nil), joins...),
			Store:            st,
			Library:          fedBenchLibrary(stepTime),
			Workers:          4,
			Partitions:       partitions,
			HeartbeatEvery:   25 * time.Millisecond,
			HeartbeatTimeout: 100 * time.Millisecond,
			LazyRecovery:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(m.Close)
		if err := m.Runtime().RegisterTemplateSource(fedBenchSrc); err != nil {
			b.Fatal(err)
		}
		members = append(members, m)
		joins = append(joins, m.Addr())
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		owners := make(map[int]int)
		short := false
		for _, m := range members {
			owned := m.OwnedPartitions()
			if len(owned) == 0 {
				short = true
			}
			for _, p := range owned {
				owners[p]++
			}
		}
		balanced := !short && len(owners) == partitions
		for _, c := range owners {
			if c != 1 {
				balanced = false
			}
		}
		if balanced {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("federation ownership never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	g, err := fed.NewGateway(fed.GatewayConfig{
		Members:      joins,
		Retries:      60,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	return members, g
}

// BenchmarkFederatedThroughput measures end-to-end instance throughput
// through the gateway for 1/2/4 shared-nothing members: start K three-step
// chains, wait for all of them, report instances/s. Activities are pure
// compute (no sleep), so the measured cost is navigation, checkpointing,
// and the routed-RPC layer; the shared-nothing stores mean members scale
// without write contention.
func BenchmarkFederatedThroughput(b *testing.B) {
	const instances = 48
	for _, servers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			_, g := bootFedBench(b, servers, 8, nil, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, instances)
				for j := range ids {
					id, err := g.Start(fed.StartReq{
						Template: "FedChain",
						Inputs:   map[string]ocr.Value{"x": ocr.Num(float64(j))},
					})
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = id
				}
				for j, id := range ids {
					res, err := g.Wait(id, 30*time.Second)
					if err != nil {
						b.Fatal(err)
					}
					if res.Status != core.InstanceDone.String() {
						b.Fatalf("%s: %s (%s)", id, res.Status, res.Failure)
					}
					if got, want := res.Outputs["r"].AsNum(), float64(8*j+7); got != want {
						b.Fatalf("%s: r = %v, want %v", id, got, want)
					}
				}
			}
			b.StopTimer()
			perRun := b.Elapsed() / time.Duration(b.N)
			b.ReportMetric(float64(instances)/perRun.Seconds(), "instances/s")
		})
	}
}

// BenchmarkServerFailover measures whole-server failover in a shared-store
// federation: 3 members run 12 in-flight instances, one member is killed,
// and the measured section is kill → every instance (including the dead
// member's) completed through the gateway. That covers failure detection
// (100ms heartbeat timeout), lease reclamation under a new incarnation,
// partition-scoped recovery, and re-execution from the last checkpoint.
func BenchmarkServerFailover(b *testing.B) {
	const instances = 12
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := store.NewMem()
		// Registered before bootFedBench's member cleanups so the LIFO
		// cleanup order closes every member before the store they share.
		b.Cleanup(func() { st.Close() })
		members, g := bootFedBench(b, 3, 8, st, 10*time.Millisecond)
		ids := make([]string, instances)
		for j := range ids {
			id, err := g.Start(fed.StartReq{
				Template: "FedChain",
				Inputs:   map[string]ocr.Value{"x": ocr.Num(float64(j))},
			})
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = id
		}
		victim := members[0]
		if name := fed.MemberOf(ids[0]); name != "" {
			for _, m := range members {
				if m.Name() == name {
					victim = m
				}
			}
		}
		b.StartTimer()
		victim.Close()
		for j, id := range ids {
			res, err := g.Wait(id, 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.InstanceDone.String() {
				b.Fatalf("%s: %s (%s)", id, res.Status, res.Failure)
			}
			if got, want := res.Outputs["r"].AsNum(), float64(8*j+7); got != want {
				b.Fatalf("%s: r = %v, want %v", id, got, want)
			}
		}
		b.StopTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/failover-to-complete")
}
