package bioopera

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (scaled so a full -bench=. run finishes in minutes), plus
// micro-benchmarks of the substrates. Experiment benchmarks report their
// headline numbers as custom metrics so `go test -bench` output doubles as
// a results table.

import (
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/experiments"
	"bioopera/internal/ocr"
	"bioopera/internal/store"
	"bioopera/internal/wal"
)

// BenchmarkFig4GranularitySweep regenerates Fig. 4: CPU and WALL time vs.
// the number of TEUs for an all-vs-all on the 5-CPU ik-sun cluster.
func BenchmarkFig4GranularitySweep(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig4(experiments.Fig4Options{
			N: 250, MeanLen: 300,
			TEUs: []int{1, 2, 5, 10, 20, 50, 125, 250},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OptimalTEUs), "optimal-TEUs")
	b.ReportMetric(res.Points[0].WALL.Seconds(), "wall-1TEU-s")
	b.ReportMetric(res.Points[len(res.Points)-1].CPU.Seconds(), "cpu-max-TEUs-s")
}

// benchLifecycle is the scaled dataset used by the Table 1 / Fig. 5 /
// Fig. 6 benchmarks.
func benchLifecycle() experiments.LifecycleOptions {
	return experiments.LifecycleOptions{N: 16000, MeanLen: 250, TEUs: 160, SampleEvery: 2 * time.Hour}
}

// BenchmarkTable1AllVsAll regenerates Table 1: both all-vs-all runs.
func BenchmarkTable1AllVsAll(b *testing.B) {
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Shared.Row.WALL.Hours()/24, "shared-wall-days")
	b.ReportMetric(res.NonShared.Row.WALL.Hours()/24, "nonshared-wall-days")
	b.ReportMetric(float64(res.Shared.Row.MaxCPUs), "shared-max-cpus")
}

// BenchmarkFig5SharedLifecycle regenerates the Fig. 5 trace.
func BenchmarkFig5SharedLifecycle(b *testing.B) {
	var res *experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SharedLifecycle(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Row.Failures), "failures-survived")
	b.ReportMetric(res.Row.WALL.Hours()/24, "wall-days")
}

// BenchmarkFig6NonSharedLifecycle regenerates the Fig. 6 trace.
func BenchmarkFig6NonSharedLifecycle(b *testing.B) {
	var res *experiments.LifecycleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.NonSharedLifecycle(benchLifecycle())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Row.MaxCPUs), "peak-cpus")
	b.ReportMetric(res.Row.WALL.Hours()/24, "wall-days")
}

// BenchmarkAdaptiveMonitoring regenerates the §3.4 claim.
func BenchmarkAdaptiveMonitoring(b *testing.B) {
	var res *experiments.MonitoringResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Monitoring(experiments.MonitoringOptions{Horizon: 3 * 24 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.OverallDiscard, "discard-%")
	b.ReportMetric(100*res.OverallErr, "err-%")
}

// BenchmarkMigrationStrategies regenerates the §5.4 migration ablation.
func BenchmarkMigrationStrategies(b *testing.B) {
	var res *experiments.MigrationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Migration(experiments.MigrationOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	sub := res.Cell("subset", "kill-and-restart").WALL
	subNone := res.Cell("subset", "leave-in-place").WALL
	b.ReportMetric(100*(float64(sub)/float64(subNone)-1), "subset-wall-delta-%")
}

// BenchmarkCheckpointGranularity regenerates the §3.3 ablation.
func BenchmarkCheckpointGranularity(b *testing.B) {
	var res *experiments.CheckpointResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Checkpoint(experiments.CheckpointOptions{
			N: 1200, MeanLen: 150, TEUs: []int{4, 32, 128},
			CrashEvery: 90 * time.Second, Repair: 2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].WastedCPU.Seconds(), "wasted-coarse-s")
	b.ReportMetric(res.Points[len(res.Points)-1].WastedCPU.Seconds(), "wasted-fine-s")
}

// --- substrate micro-benchmarks ---

// BenchmarkSmithWaterman measures the core alignment kernel.
func BenchmarkSmithWaterman(b *testing.B) {
	ds := darwin.Generate(darwin.GenOptions{N: 2, MeanLen: 360, Seed: 1})
	sm := darwin.ScoreAt(120)
	sa, sb := ds.Entries[0], ds.Entries[1]
	cells := int64(sa.Len()) * int64(sb.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		darwin.ScoreOnly(sa, sb, sm)
	}
	b.SetBytes(cells) // "bytes" = DP cells per op
}

// BenchmarkRefinePAM measures the golden-section distance search.
func BenchmarkRefinePAM(b *testing.B) {
	ds := darwin.Generate(darwin.GenOptions{N: 2, MeanLen: 200, Seed: 2, FamilyFraction: 1, FamilyPAM: 60})
	sa, sb := ds.Entries[0], ds.Entries[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		darwin.RefinePAM(sa, sb, 5, 250)
	}
}

// BenchmarkWALAppend measures the write-ahead log (no fsync, as in the
// experiments).
func BenchmarkWALAppend(b *testing.B) {
	l, err := wal.Open(b.TempDir(), wal.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 256)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePut measures a whole store mutation (WAL + in-memory
// image).
func BenchmarkStorePut(b *testing.B) {
	d, err := store.OpenDisk(b.TempDir(), store.DiskOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Put(store.Instance, "inst/p0001", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOCRParse measures parsing the all-vs-all definition.
func BenchmarkOCRParse(b *testing.B) {
	b.SetBytes(int64(len(AllVsAllSource)))
	for i := 0; i < b.N; i++ {
		if _, err := ocr.ParseProcess(AllVsAllSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures navigated activities per second on
// the simulated cluster (a 200-element parallel fan-out).
func BenchmarkEngineThroughput(b *testing.B) {
	const src = `
PROCESS Fan {
  INPUT xs;
  OUTPUT done;
  BLOCK F PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY A { CALL bench.id(x = x); OUT r; MAP r -> r; }
  }
}`
	var xs []ocr.Value
	for i := 0; i < 200; i++ {
		xs = append(xs, ocr.Int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib := core.NewLibrary()
		lib.RegisterFunc("bench.id", func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"r": args["x"]}, nil
		})
		rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Library: lib})
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Engine.RegisterTemplateSource(src); err != nil {
			b.Fatal(err)
		}
		id, err := rt.Engine.StartProcess("Fan", map[string]ocr.Value{"xs": ocr.List(xs...)}, core.StartOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rt.Run()
		in, _ := rt.Engine.Instance(id)
		if in.Status != core.InstanceDone {
			b.Fatalf("instance %s", in.Status)
		}
	}
	b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "activities/s")
}
