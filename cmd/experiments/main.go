// Command experiments regenerates every measured artifact of the paper's
// evaluation:
//
//	experiments fig4        granularity sweep (CPU/WALL vs. # TEUs)
//	experiments fig5        shared-cluster all-vs-all lifecycle
//	experiments fig6        non-shared-cluster all-vs-all lifecycle
//	experiments table1      both runs, Table 1 layout
//	experiments monitoring  adaptive-monitoring claim of §3.4 (+ sweep)
//	experiments migration   kill-and-restart migration ablation (§5.4)
//	experiments checkpoint  checkpoint-granularity ablation (§3.3)
//	experiments all         everything above
//
// Use -quick for scaled-down datasets (seconds instead of half a minute
// per lifecycle). Results are deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bioopera/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down datasets for fast runs")
	seed := flag.Int64("seed", 0, "override the experiment seed (0 = default)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-seed N] {fig4|fig5|fig6|table1|monitoring|migration|checkpoint|all}")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	runner := &runner{quick: *quick, seed: *seed}
	var err error
	switch cmd {
	case "fig4":
		err = runner.fig4()
	case "fig5":
		err = runner.fig5()
	case "fig6":
		err = runner.fig6()
	case "table1":
		err = runner.table1()
	case "monitoring":
		err = runner.monitoring()
	case "migration":
		err = runner.migration()
	case "checkpoint":
		err = runner.checkpoint()
	case "all":
		for _, f := range []func() error{
			runner.fig4, runner.table1, runner.fig5, runner.fig6,
			runner.monitoring, runner.migration, runner.checkpoint,
		} {
			if err = f(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type runner struct {
	quick bool
	seed  int64
}

func (r *runner) lifecycleOptions() experiments.LifecycleOptions {
	opts := experiments.LifecycleOptions{Seed: r.seed}
	if r.quick {
		opts.N = 20000
		opts.MeanLen = 250
		opts.TEUs = 160
	}
	return opts
}

func timed(name string, f func() error) error {
	start := time.Now()
	if err := f(); err != nil {
		return err
	}
	fmt.Printf("[%s regenerated in %v]\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func (r *runner) fig4() error {
	return timed("fig4", func() error {
		opts := experiments.Fig4Options{Seed: r.seed}
		if r.quick {
			opts.N = 250
			opts.MeanLen = 300
			opts.TEUs = []int{1, 2, 5, 10, 20, 50, 125, 250}
		}
		res, err := experiments.Fig4(opts)
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		return nil
	})
}

func (r *runner) fig5() error {
	return timed("fig5", func() error {
		res, err := experiments.SharedLifecycle(r.lifecycleOptions())
		if err != nil {
			return err
		}
		experiments.FprintLifecycle(os.Stdout,
			"Fig. 5 — Lifecycle of the all-vs-all (first run, shared cluster):\nprocessor availability and utilization vs. WALL time", res)
		return nil
	})
}

func (r *runner) fig6() error {
	return timed("fig6", func() error {
		res, err := experiments.NonSharedLifecycle(r.lifecycleOptions())
		if err != nil {
			return err
		}
		experiments.FprintLifecycle(os.Stdout,
			"Fig. 6 — Lifecycle of the all-vs-all (second run, non-shared cluster):\nprocessor availability and utilization vs. WALL time", res)
		return nil
	})
}

func (r *runner) table1() error {
	return timed("table1", func() error {
		res, err := experiments.Table1(r.lifecycleOptions())
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		return nil
	})
}

func (r *runner) monitoring() error {
	return timed("monitoring", func() error {
		opts := experiments.MonitoringOptions{Seed: r.seed}
		if r.quick {
			opts.Horizon = 2 * 24 * time.Hour
		}
		res, err := experiments.Monitoring(opts)
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		fmt.Println()
		rows, err := experiments.MonitoringSweep(opts)
		if err != nil {
			return err
		}
		fmt.Println("sampling back-off sweep (bursty pattern): overhead vs. accuracy")
		fmt.Printf("%-14s %9s %9s %12s\n", "max interval", "samples", "reports", "mean |err|")
		for _, row := range rows {
			fmt.Printf("%-14s %9d %9d %12.4f\n", row.Pattern, row.Samples, row.Reports, row.MeanAbsErr)
		}
		return nil
	})
}

func (r *runner) migration() error {
	return timed("migration", func() error {
		res, err := experiments.Migration(experiments.MigrationOptions{Seed: r.seed})
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		return nil
	})
}

func (r *runner) checkpoint() error {
	return timed("checkpoint", func() error {
		opts := experiments.CheckpointOptions{Seed: r.seed}
		if r.quick {
			opts.N = 1500
			opts.TEUs = []int{4, 16, 64}
			opts.CrashEvery = 2 * time.Minute
			opts.Repair = 3 * time.Minute
		}
		res, err := experiments.Checkpoint(opts)
		if err != nil {
			return err
		}
		res.Fprint(os.Stdout)
		return nil
	})
}
