package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/fed"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// fedServeOpts carries the serve flags that matter in federation mode.
type fedServeOpts struct {
	name        string
	listen      string
	join        []string
	storeDir    string
	workers     int
	partitions  int
	lazy        bool
	beat        time.Duration
	beatTimeout time.Duration
	monitor     string
	verbose     bool
}

// serveFederated runs serve as one member of a partitioned federation: it
// owns a slice of the instance-ID space, executes on a local worker pool,
// and serves routed RPCs (start, status, wait, ...) for a gateway. It does
// not start instances itself — clients start work through a gateway — and
// it keeps serving until interrupted.
func serveFederated(ps []*ocr.Process, o fedServeOpts) error {
	if o.name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "member"
		}
		o.name = host
	}
	var reg *obs.Registry
	var ring *obs.Ring
	if o.monitor != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(1024)
	}
	st, err := openStoreWith(o.storeDir, reg)
	if err != nil {
		return err
	}
	defer st.Close()
	m, err := fed.NewMember(fed.Config{
		Name:             o.name,
		ListenAddr:       o.listen,
		Join:             o.join,
		Store:            st,
		Library:          stubLibrary(ps, o.verbose),
		Workers:          o.workers,
		Partitions:       o.partitions,
		HeartbeatEvery:   o.beat,
		HeartbeatTimeout: o.beatTimeout,
		LazyRecovery:     o.lazy,
		Metrics:          reg,
		EventRing:        ring,
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "bioopera: %v\n", err)
		},
	})
	if err != nil {
		return err
	}
	defer m.Close()
	var regErr error
	m.Runtime().Do(func(e *core.Engine) {
		for _, p := range ps {
			if err := e.RegisterTemplate(p); err != nil {
				regErr = err
				return
			}
		}
	})
	if regErr != nil {
		return regErr
	}
	if o.monitor != "" {
		msrv := obs.NewServer(obs.ServerConfig{
			Source:   fed.NewMonitorSource(m),
			Registry: reg,
			Events:   ring,
		})
		if err := msrv.Start(o.monitor); err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("monitor on http://%s (try /metrics, /api/cluster)\n", msrv.Addr())
	}
	fmt.Printf("federation member %s (incarnation %d) on %s; partitions settle via gossip (Ctrl-C to exit)\n",
		m.Name(), m.Incarnation(), m.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Printf("member %s: shutting down; peers adopt partitions %v\n", m.Name(), m.OwnedPartitions())
	return nil
}

// cmdGateway runs a standalone federation gateway: clients connect to it
// with the same JSON frames the members speak, and it routes each call to
// the member owning the target instance, riding through failover.
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7080", "TCP address for federation clients")
	var memberFlags repeated
	fs.Var(&memberFlags, "member", "seed member address (repeatable, at least one)")
	monitor := fs.String("monitor", "", "HTTP monitor address; serves /metrics and /api/cluster")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 || len(memberFlags) == 0 {
		return fmt.Errorf("usage: bioopera gateway -member <addr> [-member <addr> ...] [flags]")
	}
	var reg *obs.Registry
	if *monitor != "" {
		reg = obs.NewRegistry()
	}
	g, err := fed.NewGateway(fed.GatewayConfig{
		ListenAddr: *listen,
		Members:    memberFlags,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	defer g.Close()
	if *monitor != "" {
		msrv := obs.NewServer(obs.ServerConfig{
			Source:   fed.NewGatewaySource(g),
			Registry: reg,
		})
		if err := msrv.Start(*monitor); err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("monitor on http://%s (try /metrics, /api/cluster)\n", msrv.Addr())
	}
	fmt.Printf("gateway on %s routing to %s (Ctrl-C to exit)\n",
		g.Addr(), strings.Join(memberFlags, ", "))
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	return nil
}

// fedDemoTemplate chains three activities so instances stay in flight long
// enough for a mid-run -kill to land on real work.
const fedDemoTemplate = `
PROCESS Triple {
  INPUT x;
  OUTPUT r;
  ACTIVITY A { CALL demo.step(x = x); OUT out; MAP out -> a; }
  ACTIVITY B { CALL demo.step(x = a); OUT out; MAP out -> b; }
  ACTIVITY C { CALL demo.step(x = b); OUT out; MAP out -> r; }
  A -> B;
  B -> C;
}`

// demoLib computes 2x+1 per step so the demo can verify final outputs
// exactly: Triple(x) = 8x+7 regardless of which members ran the steps.
func demoLib(stepTime time.Duration, verbose bool) *core.Library {
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "demo.step",
		Run: func(ctx core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			if verbose {
				fmt.Printf("  [%s] demo.step(%s)\n", ctx.Task, fmtArgs(args))
			}
			time.Sleep(stepTime)
			return map[string]ocr.Value{"out": ocr.Num(args["x"].AsNum()*2 + 1)}, nil
		},
	})
	return lib
}

// cmdFed runs a federation in a box: it boots N in-process members over one
// shared store, routes every client call through a gateway, and (with
// -kill) closes one member mid-run to demonstrate peer failover — the CI
// smoke asserts that every instance still completes with correct outputs.
func cmdFed(args []string) error {
	fs := flag.NewFlagSet("fed", flag.ExitOnError)
	servers := fs.Int("servers", 3, "federation members to boot")
	n := fs.Int("n", 8, "instances to start through the gateway")
	kill := fs.Bool("kill", false, "close one member mid-run to exercise failover")
	killAfter := fs.Duration("kill-after", 50*time.Millisecond, "delay between the starts and the -kill")
	partitions := fs.Int("partitions", 8, "ownership partition count")
	workers := fs.Int("workers", 2, "worker pool size per member")
	stepTime := fs.Duration("step", 30*time.Millisecond, "demo activity duration (embedded workload only)")
	timeout := fs.Duration("timeout", time.Minute, "per-instance completion timeout")
	template := fs.String("template", "", "process to start (default: first in file)")
	var inputFlags repeated
	fs.Var(&inputFlags, "input", "process input as name=value (repeatable; file workload only)")
	verbose := fs.Bool("v", false, "trace activity invocations and member events")

	// The positional OCR file is optional: without one, an embedded
	// three-step arithmetic chain runs and final outputs are verified
	// exactly.
	var file string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		file = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: bioopera fed [file.ocr] [flags]")
	}
	if *servers < 1 {
		return fmt.Errorf("fed: -servers must be at least 1")
	}

	embedded := file == ""
	var ps []*ocr.Process
	var err error
	if embedded {
		ps, err = ocr.ParseFile(fedDemoTemplate)
	} else {
		ps, err = loadFile(file)
	}
	if err != nil {
		return err
	}
	if *template == "" {
		*template = ps[0].Name
	}
	fileInputs, err := parseInputs(inputFlags)
	if err != nil {
		return err
	}
	mkLib := func() *core.Library {
		if embedded {
			return demoLib(*stepTime, *verbose)
		}
		return stubLibrary(ps, *verbose)
	}

	st := store.NewMem()
	defer st.Close()
	reg := obs.NewRegistry()

	// Boot the members; each joins everyone booted before it and gossip
	// fills in the rest of the mesh.
	members := make([]*fed.Member, 0, *servers)
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	var joins []string
	for i := 0; i < *servers; i++ {
		m, err := fed.NewMember(fed.Config{
			Name:             fmt.Sprintf("s%d", i+1),
			ListenAddr:       "127.0.0.1:0",
			Join:             append([]string(nil), joins...),
			Store:            st,
			Library:          mkLib(),
			Workers:          *workers,
			Partitions:       *partitions,
			HeartbeatEvery:   50 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
			LazyRecovery:     true,
			Metrics:          reg,
			OnError: func(err error) {
				if *verbose {
					fmt.Fprintf(os.Stderr, "bioopera: %v\n", err)
				}
			},
		})
		if err != nil {
			return err
		}
		members = append(members, m)
		joins = append(joins, m.Addr())
		var regErr error
		m.Runtime().Do(func(e *core.Engine) {
			for _, p := range ps {
				if err := e.RegisterTemplate(p); err != nil {
					regErr = err
					return
				}
			}
		})
		if regErr != nil {
			return regErr
		}
	}
	if err := waitFedBalanced(members, *partitions, 10*time.Second); err != nil {
		return err
	}
	for _, m := range members {
		fmt.Printf("member %s on %s owns %v\n", m.Name(), m.Addr(), m.OwnedPartitions())
	}

	g, err := fed.NewGateway(fed.GatewayConfig{
		Members:      joins,
		Metrics:      reg,
		Retries:      60,
		RetryBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer g.Close()

	ids := make([]string, *n)
	for i := range ids {
		inputs := fileInputs
		if embedded {
			inputs = map[string]ocr.Value{"x": ocr.Num(float64(i))}
		}
		id, err := g.Start(fed.StartReq{Template: *template, Inputs: inputs})
		if err != nil {
			return fmt.Errorf("start %d: %w", i, err)
		}
		ids[i] = id
	}
	fmt.Printf("started %d instance(s) of %s through the gateway\n", *n, *template)

	if *kill {
		if len(members) < 2 {
			return fmt.Errorf("fed: -kill needs at least 2 servers")
		}
		time.Sleep(*killAfter)
		victim := members[0]
		if name := fed.MemberOf(ids[0]); name != "" {
			for _, m := range members {
				if m.Name() == name {
					victim = m
					break
				}
			}
		}
		fmt.Printf("killed member %s (owned %v); peers take over\n",
			victim.Name(), victim.OwnedPartitions())
		victim.Close()
	}

	failed := 0
	for i, id := range ids {
		res, err := g.Wait(id, *timeout)
		if err != nil {
			fmt.Printf("  %s: wait failed: %v\n", id, err)
			failed++
			continue
		}
		if res.Status != core.InstanceDone.String() {
			fmt.Printf("  %s: %s (%s)\n", id, res.Status, res.Failure)
			failed++
			continue
		}
		if embedded {
			want := float64(8*i + 7)
			if got := res.Outputs["r"].AsNum(); got != want {
				fmt.Printf("  %s: done but r = %v, want %v\n", id, got, want)
				failed++
				continue
			}
		}
		fmt.Printf("  %s: done%s\n", id, fmtOutputs(res.Outputs))
	}
	if failed > 0 {
		return fmt.Errorf("fed: %d of %d instance(s) did not complete correctly", failed, *n)
	}
	fmt.Printf("federation ok: %d/%d instance(s) completed\n", *n, *n)
	return nil
}

// fmtOutputs renders an instance's outputs as a compact suffix.
func fmtOutputs(outs map[string]ocr.Value) string {
	if len(outs) == 0 {
		return ""
	}
	return " (" + fmtArgs(outs) + ")"
}

// waitFedBalanced polls until every partition has exactly one owner and
// every member owns at least one.
func waitFedBalanced(members []*fed.Member, partitions int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		owners := make(map[int]int)
		short := false
		for _, m := range members {
			owned := m.OwnedPartitions()
			if len(owned) == 0 {
				short = true
			}
			for _, p := range owned {
				owners[p]++
			}
		}
		if !short && len(owners) == partitions {
			balanced := true
			for _, c := range owners {
				if c != 1 {
					balanced = false
				}
			}
			if balanced {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fed: ownership did not settle within %v", patience)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
