package main

import (
	"flag"
	"fmt"
	"strings"

	"bioopera/internal/core"
	"bioopera/internal/store"
)

// cmdRecords decodes and pretty-prints the persist records of a store —
// the operator's window into the binary record format. Every record family
// of both encodings renders: binary codec records, legacy JSON records,
// and raw interned process texts.
func cmdRecords(args []string) error {
	fs := flag.NewFlagSet("records", flag.ExitOnError)
	spaceName := fs.String("space", "instance", "space to dump: instance, history, or all")
	prefix := fs.String("prefix", "", "only keys with this prefix (e.g. inst/, task/p0001)")
	keysOnly := fs.Bool("keys", false, "list keys and formats only, no record bodies")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: bioopera records <store-dir> [-space instance|history|all] [-prefix p] [-keys]")
	}
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var spaces []store.Space
	switch *spaceName {
	case "instance":
		spaces = []store.Space{store.Instance}
	case "history":
		spaces = []store.Space{store.History}
	case "all":
		spaces = []store.Space{store.Instance, store.History}
	default:
		return fmt.Errorf("unknown space %q (want instance, history, or all)", *spaceName)
	}
	st, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return err
	}
	defer st.Close()
	for _, sp := range spaces {
		kvs, err := st.List(sp)
		if err != nil {
			return err
		}
		shown := 0
		for _, kv := range kvs {
			if *prefix != "" && !strings.HasPrefix(kv.Key, *prefix) {
				continue
			}
			if shown == 0 {
				fmt.Printf("space %s:\n", sp)
			}
			shown++
			format, rendered, err := core.FormatRecord(kv.Key, kv.Value)
			if err != nil {
				fmt.Printf("  %s  [%s, %d bytes]  UNDECODABLE: %v\n", kv.Key, format, len(kv.Value), err)
				continue
			}
			fmt.Printf("  %s  [%s, %d bytes]\n", kv.Key, format, len(kv.Value))
			if *keysOnly {
				continue
			}
			for _, line := range strings.Split(rendered, "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		if shown > 0 {
			fmt.Printf("  (%d records)\n", shown)
		}
	}
	return nil
}
