// Command bioopera is the BioOpera command-line interface: validate and
// format OCR process definitions, dry-run them on the local engine or the
// cluster simulator, and run the two built-in workloads (the all-vs-all of
// the paper's §4 and the tower of information of Fig. 1) for real.
//
// Usage:
//
//	bioopera validate <file.ocr>          check a process definition
//	bioopera fmt <file.ocr>               print the canonical form
//	bioopera info <file.ocr>              summarize tasks and flow
//	bioopera run <file.ocr> [flags]       dry-run with stub programs (real time)
//	bioopera simulate <file.ocr> [flags]  dry-run on the cluster simulator (virtual time)
//	bioopera allvsall [flags]             real all-vs-all on synthetic sequences
//	bioopera tower [flags]                real tower-of-information pipeline
//	bioopera serve <file.ocr> [flags]     engine server for remote worker agents
//	bioopera standby <file.ocr> [flags]   hot standby following a serve -ship primary
//	bioopera worker <file.ocr> [flags]    worker agent executing launched activities
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bioopera"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "allvsall":
		err = cmdAllVsAll(os.Args[2:])
	case "tower":
		err = cmdTower(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "standby":
		err = cmdStandby(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "fed":
		err = cmdFed(os.Args[2:])
	case "history":
		err = cmdHistory(os.Args[2:])
	case "records":
		err = cmdRecords(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "bioopera: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bioopera:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: bioopera <command> [arguments]

commands:
  validate <file.ocr>          check a process definition
  fmt <file.ocr>               print the canonical form
  info <file.ocr>              summarize tasks and control flow
  run <file.ocr> [flags]       dry-run with stub programs (local, real time)
  simulate <file.ocr> [flags]  dry-run on the cluster simulator (virtual time)
  allvsall [flags]             run a real all-vs-all on synthetic sequences
  tower [flags]                run the real tower-of-information pipeline
  serve <file.ocr> [flags]     run the engine as a server for remote workers
  standby <file.ocr> [flags]   follow a serve -ship primary; promote on failure
  worker <file.ocr> [flags]    run a worker agent against a serve instance
  gateway [flags]              route client RPCs to a federation of servers
  fed [file.ocr] [flags]       federation in a box: N servers + gateway demo
  history <store-dir> [flags]  inspect a persistent store: past runs, events
  records <store-dir> [flags]  decode and pretty-print persist records (both formats)

run and simulate accept -store <dir> to persist templates, state and
history to disk (inspect them later with the history command).
serve -fed NAME [-join ADDR]  runs serve as a federation member instead;
point a gateway at the members and start instances through it.
`)
}

func loadFile(path string) ([]*ocr.Process, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ocr.ParseFile(string(data))
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bioopera validate <file.ocr>")
	}
	ps, err := loadFile(args[0])
	if err != nil {
		return err
	}
	byName := map[string]*ocr.Process{}
	for _, p := range ps {
		byName[p.Name] = p
	}
	resolve := func(name string) (*ocr.Process, bool) {
		p, ok := byName[name]
		return p, ok
	}
	for _, p := range ps {
		if err := p.ValidateWithTemplates(resolve); err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		fmt.Printf("%s: OK (%d tasks, %d connectors)\n", p.Name, len(p.Tasks), len(p.Connectors))
	}
	return nil
}

func cmdFmt(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bioopera fmt <file.ocr>")
	}
	ps, err := loadFile(args[0])
	if err != nil {
		return err
	}
	for i, p := range ps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(ocr.Format(p))
	}
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bioopera info <file.ocr>")
	}
	ps, err := loadFile(args[0])
	if err != nil {
		return err
	}
	for _, p := range ps {
		fmt.Printf("PROCESS %s", p.Name)
		if p.Doc != "" {
			fmt.Printf(" — %s", p.Doc)
		}
		fmt.Println()
		if len(p.Inputs) > 0 {
			fmt.Printf("  inputs:  %s\n", strings.Join(p.Inputs, ", "))
		}
		if len(p.Outputs) > 0 {
			fmt.Printf("  outputs: %s\n", strings.Join(p.Outputs, ", "))
		}
		for _, t := range p.Tasks {
			switch t.Kind {
			case ocr.KindActivity:
				fmt.Printf("  ACTIVITY   %-22s calls %s\n", t.Name, t.Program)
			case ocr.KindBlock:
				mode := "block"
				if t.Parallel {
					mode = fmt.Sprintf("parallel over %s", t.Over)
				}
				fmt.Printf("  BLOCK      %-22s %s, %d inner tasks\n", t.Name, mode, len(t.Body.Tasks))
			case ocr.KindSubprocess:
				fmt.Printf("  SUBPROCESS %-22s uses %q\n", t.Name, t.Uses)
			}
		}
		for _, c := range p.Connectors {
			if c.Cond != nil {
				fmt.Printf("  %s -> %s IF %s\n", c.From, c.To, c.Cond)
			} else {
				fmt.Printf("  %s -> %s\n", c.From, c.To)
			}
		}
	}
	return nil
}

// stubLibrary registers an identity program for every CALL in the file so
// any process can be dry-run: outputs are null (or echo same-named args).
func stubLibrary(ps []*ocr.Process, verbose bool) *core.Library {
	lib := core.NewLibrary()
	var walk func(p *ocr.Process)
	walk = func(p *ocr.Process) {
		for _, t := range p.Tasks {
			if t.Kind == ocr.KindActivity && t.Program != "" {
				name := t.Program
				outs := append([]string(nil), t.Outs...)
				lib.Register(core.Program{
					Name: name,
					Run: func(ctx core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
						if verbose {
							fmt.Printf("  [%s] %s(%s)\n", ctx.Task, name, fmtArgs(args))
						}
						out := map[string]ocr.Value{}
						for _, o := range outs {
							if v, ok := args[o]; ok {
								out[o] = v // echo same-named inputs
							} else {
								out[o] = ocr.Str("stub:" + o)
							}
						}
						return out, nil
					},
				})
			}
			if t.Body != nil {
				walk(t.Body)
			}
		}
	}
	for _, p := range ps {
		walk(p)
	}
	return lib
}

func fmtArgs(args map[string]ocr.Value) string {
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + args[k].String()
	}
	return strings.Join(parts, ", ")
}

// parseInputs converts -input k=v pairs (v parsed as an OCR expression
// when possible, else taken as a string).
func parseInputs(kvs []string) (map[string]ocr.Value, error) {
	inputs := map[string]ocr.Value{}
	for _, kv := range kvs {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad -input %q, want name=value", kv)
		}
		k, raw := kv[:eq], kv[eq+1:]
		if e, err := ocr.ParseExpr(raw); err == nil {
			if v, err := e.Eval(ocr.MapEnv{}); err == nil {
				inputs[k] = v
				continue
			}
		}
		inputs[k] = ocr.Str(raw)
	}
	return inputs, nil
}

// fileThenFlags splits "FILE [flags]" argument lists so flags may follow
// the positional file argument.
func fileThenFlags(fs *flag.FlagSet, args []string, usage string) (string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", fmt.Errorf("%s", usage)
	}
	file := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return "", err
	}
	if fs.NArg() != 0 {
		return "", fmt.Errorf("%s", usage)
	}
	return file, nil
}

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	template := fs.String("template", "", "process to start (default: first in file)")
	var inputFlags repeated
	fs.Var(&inputFlags, "input", "process input as name=value (repeatable)")
	verbose := fs.Bool("v", false, "trace activity invocations")
	workers := fs.Int("workers", 4, "local worker pool size")
	nInstances := fs.Int("n", 1, "concurrent instances to start (same template and inputs)")
	timeout := fs.Duration("timeout", time.Minute, "completion timeout")
	storeDir := fs.String("store", "", "persist state and history to this directory")
	file, err := fileThenFlags(fs, args, "usage: bioopera run <file.ocr> [flags]")
	if err != nil {
		return err
	}
	ps, err := loadFile(file)
	if err != nil {
		return err
	}
	if *template == "" {
		*template = ps[0].Name
	}
	inputs, err := parseInputs(inputFlags)
	if err != nil {
		return err
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	rt, err := core.NewLocalRuntime(core.LocalConfig{
		Workers: *workers,
		Library: stubLibrary(ps, *verbose),
		Store:   st,
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "bioopera: %v\n", err)
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	var regErr error
	rt.Do(func(e *core.Engine) {
		for _, p := range ps {
			if err := e.RegisterTemplate(p); err != nil {
				regErr = err
				return
			}
		}
	})
	if regErr != nil {
		return regErr
	}
	if *nInstances <= 1 {
		id, err := rt.StartProcess(*template, inputs, core.StartOptions{})
		if err != nil {
			return err
		}
		in, err := rt.Wait(id, *timeout)
		if err != nil {
			return err
		}
		return report(in)
	}
	// -n: start every instance before waiting on any, so the engine
	// navigates them concurrently across the worker pool.
	started := time.Now()
	ids := make([]string, *nInstances)
	for i := range ids {
		if ids[i], err = rt.StartProcess(*template, inputs, core.StartOptions{}); err != nil {
			return err
		}
	}
	var firstErr error
	activities := 0
	for _, id := range ids {
		in, err := rt.Wait(id, *timeout)
		if err != nil {
			return err
		}
		activities += in.Activities
		if err := report(in); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(started)
	fmt.Printf("%d instances, %d activities in %v (%.0f activities/s)\n",
		len(ids), activities, elapsed.Round(time.Millisecond),
		float64(activities)/elapsed.Seconds())
	return firstErr
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	template := fs.String("template", "", "process to start (default: first in file)")
	var inputFlags repeated
	fs.Var(&inputFlags, "input", "process input as name=value (repeatable)")
	seed := fs.Int64("seed", 1, "simulation seed")
	clusterName := fs.String("cluster", "ik-linux", "cluster spec: ik-sun, ik-linux, linneus, shared")
	storeDir := fs.String("store", "", "persist state and history to this directory")
	file, err := fileThenFlags(fs, args, "usage: bioopera simulate <file.ocr> [flags]")
	if err != nil {
		return err
	}
	ps, err := loadFile(file)
	if err != nil {
		return err
	}
	if *template == "" {
		*template = ps[0].Name
	}
	inputs, err := parseInputs(inputFlags)
	if err != nil {
		return err
	}
	spec, err := specByName(*clusterName)
	if err != nil {
		return err
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	rt, err := core.NewSimRuntime(core.SimConfig{
		Seed:    *seed,
		Spec:    spec,
		Library: stubLibrary(ps, false),
		Store:   st,
	})
	if err != nil {
		return err
	}
	for _, p := range ps {
		if err := rt.Engine.RegisterTemplate(p); err != nil {
			return err
		}
	}
	id, err := rt.Engine.StartProcess(*template, inputs, core.StartOptions{})
	if err != nil {
		return err
	}
	end := rt.Run()
	in, _ := rt.Engine.Instance(id)
	fmt.Printf("virtual time: %v on %s (%d CPUs)\n", time.Duration(end), spec.Name, spec.TotalCPUs())
	return report(in)
}

func specByName(name string) (cluster.Spec, error) {
	switch name {
	case "ik-sun":
		return cluster.IkSun(), nil
	case "ik-linux":
		return cluster.IkLinux(), nil
	case "linneus":
		return cluster.Linneus(), nil
	case "shared":
		return cluster.SharedRunSpec(), nil
	}
	return cluster.Spec{}, fmt.Errorf("unknown cluster %q", name)
}

func report(in *core.Instance) error {
	fmt.Printf("instance %s: %s\n", in.ID, in.Status)
	fmt.Printf("  activities: %d, CPU: %v, failures: %d\n", in.Activities, in.CPU.Round(time.Millisecond), in.Failures)
	keys := make([]string, 0, len(in.Outputs))
	for k := range in.Outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := in.Outputs[k].String()
		if len(v) > 120 {
			v = v[:117] + "..."
		}
		fmt.Printf("  output %s = %s\n", k, v)
	}
	if in.Status != core.InstanceDone {
		return fmt.Errorf("process %s: %s", in.Status, in.FailureReason)
	}
	return nil
}

func cmdAllVsAll(args []string) error {
	fs := flag.NewFlagSet("allvsall", flag.ExitOnError)
	n := fs.Int("n", 40, "dataset size (synthetic sequences)")
	meanLen := fs.Int("len", 120, "mean sequence length")
	teus := fs.Int("teus", 8, "task execution units")
	seed := fs.Int64("seed", 7, "dataset seed")
	workers := fs.Int("workers", 4, "local worker pool size")
	top := fs.Int("top", 15, "matches to print")
	fs.Parse(args)

	ds := bioopera.GenerateDataset(bioopera.GenOptions{
		N: *n, MeanLen: *meanLen, Seed: *seed, FamilyFraction: 0.5,
	})
	cfg := &bioopera.AllVsAllConfig{Dataset: ds}
	lib := bioopera.NewLibrary()
	if err := bioopera.RegisterAllVsAll(lib, cfg); err != nil {
		return err
	}
	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: *workers, Library: lib})
	if err != nil {
		return err
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(bioopera.AllVsAllSource); err != nil {
		return err
	}
	fmt.Printf("all-vs-all: %d sequences (%d residues), %d TEUs, %d workers\n",
		ds.Len(), ds.TotalResidues(), *teus, *workers)
	start := time.Now()
	id, err := rt.StartProcess(bioopera.AllVsAllTemplate, cfg.Inputs(*teus), bioopera.StartOptions{})
	if err != nil {
		return err
	}
	in, err := rt.Wait(id, 10*time.Minute)
	if err != nil {
		return err
	}
	if in.Status != bioopera.InstanceDone {
		return fmt.Errorf("process %s: %s", in.Status, in.FailureReason)
	}
	ms, err := bioopera.DecodeMatches(in.Outputs["master_file"])
	if err != nil {
		return err
	}
	fmt.Printf("completed in %v: %d matches, %d activities\n\n", time.Since(start).Round(time.Millisecond), len(ms), in.Activities)
	fmt.Printf("%8s %8s %10s %8s %9s %7s\n", "entry A", "entry B", "score", "PAM", "identity", "length")
	for i, m := range ms {
		if i == *top {
			fmt.Printf("... and %d more\n", len(ms)-*top)
			break
		}
		fmt.Printf("%8d %8d %10.1f %8.0f %8.0f%% %7d\n", m.A, m.B, m.Score, m.PAM, 100*m.Identity, m.Length)
	}
	return nil
}

func cmdTower(args []string) error {
	fs := flag.NewFlagSet("tower", flag.ExitOnError)
	genes := fs.Int("genes", 5, "planted genes in the synthetic genome")
	seed := fs.Int64("seed", 11, "genome seed")
	workers := fs.Int("workers", 4, "local worker pool size")
	fs.Parse(args)

	dna, planted := bioopera.GenerateGenome(*genes, *seed)
	lib := bioopera.NewLibrary()
	if err := bioopera.RegisterTower(lib); err != nil {
		return err
	}
	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: *workers, Library: lib})
	if err != nil {
		return err
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(bioopera.TowerSource); err != nil {
		return err
	}
	fmt.Printf("tower of information: genome of %d bases, %d planted genes\n", len(dna), len(planted))
	start := time.Now()
	id, err := rt.StartProcess(bioopera.TowerTemplate, bioopera.TowerInputs(dna, 30, 60), bioopera.StartOptions{})
	if err != nil {
		return err
	}
	in, err := rt.Wait(id, 10*time.Minute)
	if err != nil {
		return err
	}
	if in.Status != bioopera.InstanceDone {
		return fmt.Errorf("process %s: %s", in.Status, in.FailureReason)
	}
	proteins, _ := bioopera.StrList(in.Outputs["proteins"])
	preds, _ := bioopera.StrList(in.Outputs["predictions"])
	fmt.Printf("completed in %v (%d activities)\n\n", time.Since(start).Round(time.Millisecond), in.Activities)
	fmt.Printf("proteins found: %d\n", len(proteins))
	for i, p := range proteins {
		show := p
		if len(show) > 60 {
			show = show[:57] + "..."
		}
		fmt.Printf("  %2d: %s (%d aa)\n", i, show, len(p))
		if i < len(preds) {
			ss := preds[i]
			if len(ss) > 60 {
				ss = ss[:57] + "..."
			}
			fmt.Printf("      %s\n", ss)
		}
	}
	fmt.Printf("\nphylogenetic tree: %s\n", in.Outputs["tree"].AsStr())
	anc := in.Outputs["ancestor"].AsStr()
	fmt.Printf("ancestral sequence (%d aa): %s\n", len(anc), trunc(anc, 70))
	return nil
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// openStore returns a disk store when dir is set, else an in-memory one.
func openStore(dir string) (store.Store, error) { return openStoreWith(dir, nil) }

// openStoreWith additionally registers the disk store's gauges and WAL
// histograms on reg when both a directory and a registry are given.
func openStoreWith(dir string, reg *obs.Registry) (store.Store, error) {
	if dir == "" {
		return store.NewMem(), nil
	}
	return store.OpenDisk(dir, store.DiskOptions{Metrics: reg})
}

// historyInstance is the subset of the engine's archived instance record
// the CLI renders.
type historyInstance struct {
	ID         string               `json:"id"`
	Template   string               `json:"template"`
	Status     core.InstanceStatus  `json:"status"`
	Started    time.Duration        `json:"started"`
	Ended      time.Duration        `json:"ended"`
	Activities int                  `json:"activities"`
	CPU        time.Duration        `json:"cpu"`
	Failures   int                  `json:"failures"`
	Outputs    map[string]ocr.Value `json:"outputs"`
	Reason     string               `json:"failureReason"`
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	events := fs.Bool("events", false, "print the event journal too")
	instance := fs.String("instance", "", "only this instance's records and events")
	last := fs.Int("last", 0, "only the last n journal events (implies -events)")
	stats := fs.Bool("stats", false, "print store statistics (records, WAL, snapshots)")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: bioopera history <store-dir> [-events] [-instance id] [-last n] [-stats]")
	}
	dir := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *last > 0 {
		*events = true
	}
	st, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		return err
	}
	defer st.Close()

	tpls, err := st.List(store.Template)
	if err != nil {
		return err
	}
	if len(tpls) > 0 {
		fmt.Printf("templates (%d):\n", len(tpls))
		for _, kv := range tpls {
			fmt.Printf("  %s\n", kv.Key)
		}
	}

	render := func(space store.Space, title string) error {
		kvs, err := st.List(space)
		if err != nil {
			return err
		}
		var insts []historyInstance
		for _, kv := range kvs {
			if !strings.HasPrefix(kv.Key, "inst/") {
				continue
			}
			// DecodeInstanceMeta reads both record formats (binary codec
			// and legacy JSON).
			m, err := core.DecodeInstanceMeta(kv.Value)
			if err != nil {
				continue
			}
			if *instance != "" && m.ID != *instance {
				continue
			}
			insts = append(insts, historyInstance{
				ID: m.ID, Template: m.Template, Status: m.Status,
				Started: time.Duration(m.Started), Ended: time.Duration(m.Ended),
				Activities: m.Activities, CPU: m.CPU, Failures: m.Failures,
				Outputs: m.Outputs, Reason: m.FailureReason,
			})
		}
		if len(insts) == 0 {
			return nil
		}
		fmt.Printf("%s (%d):\n", title, len(insts))
		for _, h := range insts {
			wall := h.Ended - h.Started
			fmt.Printf("  %s  %-10s %-9s wall %-12s cpu %-12s activities %-5d failures %d\n",
				h.ID, h.Template, h.Status, wall.Round(time.Millisecond), h.CPU.Round(time.Millisecond),
				h.Activities, h.Failures)
			if h.Reason != "" {
				fmt.Printf("      reason: %s\n", h.Reason)
			}
			keys := make([]string, 0, len(h.Outputs))
			for k := range h.Outputs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v := h.Outputs[k].String()
				if len(v) > 90 {
					v = v[:87] + "..."
				}
				fmt.Printf("      %s = %s\n", k, v)
			}
		}
		return nil
	}
	if err := render(store.Instance, "unfinished instances"); err != nil {
		return err
	}
	if err := render(store.History, "completed instances"); err != nil {
		return err
	}

	if *stats {
		ds := st.Stats()
		fmt.Println("store statistics:")
		spaces := make([]string, 0, len(ds.Records))
		for sp := range ds.Records {
			spaces = append(spaces, sp)
		}
		sort.Strings(spaces)
		for _, sp := range spaces {
			fmt.Printf("  records %-14s %d\n", sp, ds.Records[sp])
		}
		fmt.Printf("  events             %d (last seq %d)\n", ds.Events, ds.EventSeq)
		fmt.Printf("  wal segments       %d (next seq %d, %d syncs)\n", ds.WALSegments, ds.WALNextSeq, ds.WALSyncs)
		fmt.Printf("  snapshot seq       %d\n", ds.SnapshotSeq)
		fmt.Printf("  commit groups      %d (%d grouped records)\n", ds.CommitGroups, ds.GroupedRecords)
	}

	if *events {
		// Events streams from the journal one record at a time, so a long
		// history never accumulates in memory here.
		from := uint64(1)
		if *last > 0 {
			if seq := st.Stats().EventSeq; seq > uint64(*last) {
				from = seq - uint64(*last) + 1
			}
		}
		fmt.Println("event journal:")
		return st.Events(from, func(e store.Event) error {
			var ev core.Event
			if json.Unmarshal(e.Data, &ev) == nil {
				if *instance != "" && ev.Instance != *instance {
					return nil
				}
				fmt.Printf("  %6d %12s %-20s %s %s %s %s\n",
					e.Seq, time.Duration(ev.At).Round(time.Millisecond), ev.Kind,
					ev.Instance, ev.Scope, ev.Task, ev.Detail)
			}
			return nil
		})
	}
	return nil
}
