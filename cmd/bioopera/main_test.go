package main

import (
	"testing"

	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

func TestParseInputs(t *testing.T) {
	in, err := parseInputs([]string{
		"n=42",
		"name=plain-string",
		"xs=[1,2,3]",
		"flag=true",
		"expr=2*21",
		`quoted="with = sign"`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in["n"].AsNum() != 42 {
		t.Fatalf("n = %v", in["n"])
	}
	if in["name"].AsStr() != "plain-string" {
		t.Fatalf("name = %v", in["name"])
	}
	if in["xs"].Len() != 3 {
		t.Fatalf("xs = %v", in["xs"])
	}
	if !in["flag"].AsBool() {
		t.Fatalf("flag = %v", in["flag"])
	}
	if in["expr"].AsNum() != 42 {
		t.Fatalf("expr = %v", in["expr"])
	}
	if in["quoted"].AsStr() != "with = sign" {
		t.Fatalf("quoted = %v", in["quoted"])
	}
	if _, err := parseInputs([]string{"novalue"}); err == nil {
		t.Fatal("missing '=' accepted")
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"ik-sun", "ik-linux", "linneus", "shared"} {
		spec, err := specByName(name)
		if err != nil || spec.TotalCPUs() == 0 {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := specByName("beowulf"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestStubLibraryCoversNestedCalls(t *testing.T) {
	ps, err := ocr.ParseFile(`
PROCESS P {
  ACTIVITY A { CALL outer.prog(); OUT r; }
  BLOCK B PARALLEL OVER [1] AS x {
    OUTPUT o;
    ACTIVITY Inner { CALL inner.prog(v = x); OUT o; MAP o -> o; }
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	lib := stubLibrary(ps, false)
	for _, name := range []string{"outer.prog", "inner.prog"} {
		p, ok := lib.Lookup(name)
		if !ok {
			t.Fatalf("stub for %s missing", name)
		}
		out, err := p.Run(core.ProgramCtx{}, map[string]ocr.Value{"r": ocr.Str("echoed")})
		if err != nil {
			t.Fatal(err)
		}
		if name == "outer.prog" && out["r"].AsStr() != "echoed" {
			t.Fatalf("stub did not echo same-named arg: %v", out)
		}
	}
}

func TestFmtArgsDeterministic(t *testing.T) {
	args := map[string]ocr.Value{"b": ocr.Int(2), "a": ocr.Int(1)}
	if got := fmtArgs(args); got != "a=1, b=2" {
		t.Fatalf("fmtArgs = %q", got)
	}
}
