package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/remote"
	"bioopera/internal/sched"
	"bioopera/internal/store"
)

// parseQuotas turns repeated tenant=weight flags into the scheduler's
// fair-share quota map.
func parseQuotas(flags repeated) (map[string]float64, error) {
	if len(flags) == 0 {
		return nil, nil
	}
	quotas := make(map[string]float64, len(flags))
	for _, q := range flags {
		name, val, ok := strings.Cut(q, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -quota %q (want tenant=weight)", q)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -quota %q: weight must be a positive number", q)
		}
		quotas[name] = w
	}
	return quotas, nil
}

// cmdServe runs the engine as a network server: worker agents connect over
// TCP, activities dispatch to them, and heartbeat loss fails work over to
// the survivors.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "TCP address for worker agents")
	template := fs.String("template", "", "process to start (default: first in file)")
	var inputFlags repeated
	fs.Var(&inputFlags, "input", "process input as name=value (repeatable)")
	workers := fs.Int("workers", 1, "worker agents to wait for before starting")
	policy := fs.String("policy", "", "placement policy: first-fit, least-loaded, fastest or round-robin (default least-loaded)")
	var quotaFlags repeated
	fs.Var(&quotaFlags, "quota", "fair-share weight as tenant=weight (repeatable)")
	tenant := fs.String("tenant", "", "fair-share tenant to charge this run to")
	timeout := fs.Duration("timeout", 10*time.Minute, "completion timeout")
	beat := fs.Duration("heartbeat", time.Second, "worker heartbeat cadence")
	beatTimeout := fs.Duration("heartbeat-timeout", 0, "silence before a worker is declared dead (default 3× heartbeat)")
	storeDir := fs.String("store", "", "persist state and history to this directory")
	ship := fs.String("ship", "", "serve the store's WAL to hot standbys on this address (requires -store)")
	monitor := fs.String("monitor", "", "HTTP monitor address (e.g. 127.0.0.1:8080); serves /metrics and /api/*")
	fedName := fs.String("fed", "", "federate: run as a federation member with this name (default hostname with -join)")
	var joinFlags repeated
	fs.Var(&joinFlags, "join", "federate: peer member address to join (repeatable; implies -fed)")
	partitions := fs.Int("partitions", 0, "federate: ownership partition count, all members must agree (default 16)")
	lazy := fs.Bool("lazy-recovery", false, "federate: adopt failed-over instances as stubs, hydrated on first touch")
	verbose := fs.Bool("v", false, "log protocol and node events")
	file, err := fileThenFlags(fs, args, "usage: bioopera serve <file.ocr> [flags]")
	if err != nil {
		return err
	}
	ps, err := loadFile(file)
	if err != nil {
		return err
	}
	if *fedName != "" || len(joinFlags) > 0 {
		// Federation member mode: the server owns a partition of the
		// instance-ID space, executes on a local pool, and serves routed
		// RPCs for a gateway instead of running one CLI-started instance
		// over remote worker agents.
		if *ship != "" {
			return fmt.Errorf("-ship does not combine with federation mode; each member persists through its own -store")
		}
		return serveFederated(ps, fedServeOpts{
			name:        *fedName,
			listen:      *listen,
			join:        joinFlags,
			storeDir:    *storeDir,
			workers:     *workers,
			partitions:  *partitions,
			lazy:        *lazy,
			beat:        *beat,
			beatTimeout: *beatTimeout,
			monitor:     *monitor,
			verbose:     *verbose,
		})
	}
	if *template == "" {
		*template = ps[0].Name
	}
	inputs, err := parseInputs(inputFlags)
	if err != nil {
		return err
	}
	pol, err := sched.PolicyByName(*policy)
	if err != nil {
		return err
	}
	quotas, err := parseQuotas(quotaFlags)
	if err != nil {
		return err
	}
	// -monitor enables the whole observability stack: the registry feeds
	// /metrics (and the store's gauges, when persistent), the ring feeds
	// the /api/events long-poll tail.
	var reg *obs.Registry
	var ring *obs.Ring
	if *monitor != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(1024)
	}
	if *ship != "" && *storeDir == "" {
		return fmt.Errorf("-ship requires -store: only a disk store's WAL can be shipped")
	}
	st, err := openStoreWith(*storeDir, reg)
	if err != nil {
		return err
	}
	defer st.Close()
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	rt, err := remote.NewRuntime(remote.Config{
		Addr:             *listen,
		Store:            st,
		Library:          stubLibrary(ps, *verbose),
		Policy:           pol,
		Quotas:           quotas,
		ShipAddr:         *ship,
		HeartbeatEvery:   *beat,
		HeartbeatTimeout: *beatTimeout,
		Logf:             logf,
		Metrics:          reg,
		EventRing:        ring,
		OnEvent: func(ev core.Event) {
			switch ev.Kind {
			case core.EvNodeJoined, core.EvNodeDown:
				fmt.Printf("worker %s: %s (%s)\n", ev.Node, ev.Kind, ev.Detail)
			}
		},
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "bioopera: %v\n", err)
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	var regErr error
	rt.Do(func(e *core.Engine) {
		for _, p := range ps {
			if err := e.RegisterTemplate(p); err != nil {
				regErr = err
				return
			}
		}
	})
	if regErr != nil {
		return regErr
	}
	if *monitor != "" {
		msrv := obs.NewServer(obs.ServerConfig{
			Source:   core.NewMonitorSource(rt.Engine()),
			Registry: reg,
			Events:   ring,
		})
		if err := msrv.Start(*monitor); err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Printf("monitor on http://%s (try /metrics, /api/instances, /api/cluster)\n", msrv.Addr())
	}
	if rt.Shipper != nil {
		fmt.Printf("shipping WAL to standbys on %s\n", rt.Shipper.Addr())
	}
	fmt.Printf("listening on %s, waiting for %d worker(s)\n", rt.Addr(), *workers)
	deadline := time.Now().Add(*timeout)
	for {
		if n, _, _ := rt.Server.Stats(); n >= *workers {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no %d workers connected within %v", *workers, *timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
	id, err := rt.StartProcess(*template, inputs, core.StartOptions{Tenant: *tenant})
	if err != nil {
		return err
	}
	in, err := rt.Wait(id, *timeout)
	if err != nil {
		return err
	}
	live, dead, dropped := rt.Server.Stats()
	fmt.Printf("workers: %d live, %d declared dead, %d stale completions dropped\n", live, dead, dropped)
	if err := report(in); err != nil {
		return err
	}
	// With a monitor attached, stay up after the run so its final state —
	// history, lineage, metrics — remains queryable until interrupted.
	if *monitor != "" {
		fmt.Printf("run complete; monitor still on http://%s (Ctrl-C to exit)\n", *monitor)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}

// cmdStandby runs a hot standby: it follows a primary server's WAL stream
// (serve -ship) into its own store directory, and when the primary dies it
// promotes — recovering every unfinished instance from the replicated
// store and serving workers itself, so the in-flight run resumes where the
// primary's last committed batch left it.
func cmdStandby(args []string) error {
	fs := flag.NewFlagSet("standby", flag.ExitOnError)
	follow := fs.String("follow", "127.0.0.1:7071", "primary's WAL shipping address (its -ship)")
	listen := fs.String("listen", "127.0.0.1:7070", "TCP address for worker agents after promotion")
	storeDir := fs.String("store", "", "standby store directory (required; must differ from the primary's)")
	workers := fs.Int("workers", 1, "worker agents to wait for after promotion")
	timeout := fs.Duration("timeout", 10*time.Minute, "completion timeout after promotion")
	beat := fs.Duration("heartbeat", time.Second, "worker heartbeat cadence")
	beatTimeout := fs.Duration("heartbeat-timeout", 0, "silence before a worker is declared dead (default 3× heartbeat)")
	lazy := fs.Bool("lazy-recovery", false, "recover suspended instances as stubs, hydrated on first touch")
	verbose := fs.Bool("v", false, "log protocol and replication events")
	file, err := fileThenFlags(fs, args, "usage: bioopera standby <file.ocr> [flags]")
	if err != nil {
		return err
	}
	ps, err := loadFile(file)
	if err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("standby requires -store: the replica needs its own directory")
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	sb, err := store.OpenStandby(*storeDir, store.DiskOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("standby: following %s into %s\n", *follow, *storeDir)
	if err := sb.Follow(*follow, logf); err == nil {
		// Closed locally — nothing to promote.
		return sb.Close()
	} else {
		fmt.Printf("standby: primary lost (%v); promoting\n", err)
	}
	disk, err := sb.Promote()
	if err != nil {
		return err
	}
	defer disk.Close()
	rt, err := remote.NewRuntime(remote.Config{
		Addr:             *listen,
		Store:            disk,
		Library:          stubLibrary(ps, *verbose),
		LazyRecovery:     *lazy,
		HeartbeatEvery:   *beat,
		HeartbeatTimeout: *beatTimeout,
		Logf:             logf,
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "bioopera: %v\n", err)
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	var recovered int
	var recErr error
	rt.Do(func(e *core.Engine) { recovered, recErr = e.Recover() })
	if recErr != nil {
		// Partial recovery still serves what it could rebuild.
		fmt.Fprintf(os.Stderr, "standby: recovery: %v\n", recErr)
	}
	fmt.Printf("standby: promoted; %d instance(s) recovered, listening on %s, waiting for %d worker(s)\n",
		recovered, rt.Addr(), *workers)
	deadline := time.Now().Add(*timeout)
	for {
		if n, _, _ := rt.Server.Stats(); n >= *workers {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no %d workers connected within %v", *workers, *timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Drive every recovered running instance to completion.
	var ids []string
	rt.Do(func(e *core.Engine) {
		for _, in := range e.Instances() {
			ids = append(ids, in.ID)
		}
	})
	for _, id := range ids {
		st, _, err := rt.InstanceStatus(id)
		if err != nil || (st != core.InstanceRunning) {
			continue
		}
		in, err := rt.Wait(id, *timeout)
		if err != nil {
			return err
		}
		if err := report(in); err != nil {
			return err
		}
	}
	return nil
}

// cmdWorker runs a worker agent: it registers its CPUs with a server and
// executes launched activities with the same stub programs `run` uses,
// until the server connection ends.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "127.0.0.1:7070", "server address")
	name := fs.String("name", "", "worker name (default: host-pid)")
	cpus := fs.Int("cpus", 2, "CPU slots to offer")
	verbose := fs.Bool("v", false, "trace activity invocations and protocol")
	file, err := fileThenFlags(fs, args, "usage: bioopera worker <file.ocr> [flags]")
	if err != nil {
		return err
	}
	ps, err := loadFile(file)
	if err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var logf func(string, ...any)
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	a, err := remote.Dial(*connect, remote.AgentConfig{
		Name:    *name,
		CPUs:    *cpus,
		Library: stubLibrary(ps, *verbose),
		Logf:    logf,
	})
	if err != nil {
		return err
	}
	defer a.Close()
	fmt.Printf("worker %s: %d CPUs registered with %s (incarnation %d)\n",
		*name, *cpus, *connect, a.Incarnation())
	a.Wait()
	fmt.Printf("worker %s: server connection closed\n", *name)
	return nil
}
