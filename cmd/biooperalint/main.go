// Command biooperalint runs the project's invariant analyzers (see
// internal/lint) over every package in the module:
//
//	go run ./cmd/biooperalint ./...
//
// Package patterns are accepted for familiarity but the tool always
// checks the whole module — the invariants are global (the lock-order and
// goroutine-lifecycle analyzers literally need every package), and partial
// runs would let a stale //bioopera:allow in an unchecked package survive.
// Exit status is 1 if any diagnostic remains after suppression.
//
// Output formats:
//
//	(default)  file:line:col: message [analyzer]
//	-json      a JSON array of {analyzer, file, line, column, message}
//	-github    GitHub Actions workflow commands (::error file=...), which
//	           the Actions runner turns into PR-diff annotations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bioopera/internal/lint"
)

// finding is the machine-readable form of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	githubOut := flag.Bool("github", false, "emit findings as GitHub Actions annotations")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fail(err)
	}
	ld, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	t0 := time.Now()
	pkgs, err := ld.LoadModule()
	if err != nil {
		fail(err)
	}
	loaded := time.Since(t0)
	diags := lint.Run(pkgs)
	fmt.Fprintf(os.Stderr, "biooperalint: %d packages, load %s, analyze %s\n",
		len(pkgs), loaded.Round(time.Millisecond), (time.Since(t0) - loaded).Round(time.Millisecond))

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fail(err)
		}
	case *githubOut:
		for _, f := range findings {
			// %0A is the workflow-command newline escape; the message body
			// must also escape % to survive the runner's decoding.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(
				fmt.Sprintf("%s [%s]", f.Message, f.Analyzer))
			fmt.Printf("::error file=%s,line=%d,col=%d,title=biooperalint %s::%s\n",
				f.File, f.Line, f.Column, f.Analyzer, msg)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "biooperalint: %d issue(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "biooperalint:", err)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
