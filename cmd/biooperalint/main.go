// Command biooperalint runs the project's invariant analyzers (see
// internal/lint) over every package in the module:
//
//	go run ./cmd/biooperalint ./...
//
// Package patterns are accepted for familiarity but the tool always
// checks the whole module — the invariants are global, and partial runs
// would let a stale //bioopera:allow in an unchecked package survive.
// Exit status is 1 if any diagnostic remains after suppression.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"bioopera/internal/lint"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "biooperalint:", err)
		os.Exit(2)
	}
	ld, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "biooperalint:", err)
		os.Exit(2)
	}
	pkgs, err := ld.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "biooperalint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "biooperalint: %d issue(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
