package bioopera

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented public surface
// end-to-end: define a process in OCR, register a program, run it for real
// on the local runtime.
func TestPublicAPIQuickstart(t *testing.T) {
	lib := NewLibrary()
	err := lib.Register(Program{
		Name: "demo.hello",
		Run: func(_ ProgramCtx, args map[string]Value) (map[string]Value, error) {
			return map[string]Value{"text": Str("hello, " + args["name"].AsStr())}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewLocalRuntime(LocalConfig{Workers: 2, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(`
PROCESS Greet {
    INPUT who;
    OUTPUT greeting;
    ACTIVITY Hello {
        CALL demo.hello(name = who);
        OUT text;
        MAP text -> greeting;
    }
}`); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Greet", map[string]Value{"who": Str("virtual lab")}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["greeting"].AsStr() != "hello, virtual lab" {
		t.Fatalf("status %v outputs %v", in.Status, in.Outputs)
	}
}

// TestPublicAPIAllVsAllSim runs the paper's workload on the simulated
// cluster through the facade.
func TestPublicAPIAllVsAllSim(t *testing.T) {
	ds := GenerateDataset(GenOptions{N: 20, MeanLen: 50, Seed: 3, FamilyFraction: 0.5})
	cfg := &AllVsAllConfig{Dataset: ds}
	lib := NewLibrary()
	if err := RegisterAllVsAll(lib, cfg); err != nil {
		t.Fatal(err)
	}
	rt, err := NewSimRuntime(SimConfig{Seed: 1, Spec: IkSun(), Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(AllVsAllSource); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess(AllVsAllTemplate, cfg.Inputs(4), StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	ms, err := DecodeMatches(in.Outputs["master_file"])
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches from a family-rich dataset")
	}
}

// TestPublicAPITower runs the Fig. 1 pipeline through the facade.
func TestPublicAPITower(t *testing.T) {
	dna, planted := GenerateGenome(3, 7)
	lib := NewLibrary()
	if err := RegisterTower(lib); err != nil {
		t.Fatal(err)
	}
	rt, err := NewSimRuntime(SimConfig{Seed: 1, Spec: IkLinux(), Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(TowerSource); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess(TowerTemplate, TowerInputs(dna, 30, 60), StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceDone {
		t.Fatalf("tower: %s (%s)", in.Status, in.FailureReason)
	}
	proteins, err := StrList(in.Outputs["proteins"])
	if err != nil {
		t.Fatal(err)
	}
	if len(proteins) < len(planted) {
		t.Fatalf("proteins %d < planted %d", len(proteins), len(planted))
	}
}

// TestPublicAPIProcessRoundTrip checks the parse/format pair on the
// facade.
func TestPublicAPIProcessRoundTrip(t *testing.T) {
	p, err := ParseProcess(AllVsAllSource)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatProcess(p)
	p2, err := ParseProcess(text)
	if err != nil {
		t.Fatal(err)
	}
	if FormatProcess(p2) != text {
		t.Fatal("round trip unstable")
	}
	e, err := ParseExpr("defined(queue_file) && len(parts) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() == "" {
		t.Fatal("expr format empty")
	}
}

// TestPublicAPIStores checks both store constructors.
func TestPublicAPIStores(t *testing.T) {
	mem := NewMemStore()
	defer mem.Close()
	disk, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for _, s := range []Store{mem, disk} {
		if _, err := s.AppendEvent([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestValuesFacade checks the value constructors.
func TestValuesFacade(t *testing.T) {
	if !Null.IsNull() || !Bool(true).AsBool() || Num(2.5).AsNum() != 2.5 ||
		Int(3).AsInt() != 3 || Str("x").AsStr() != "x" || List(Int(1)).Len() != 1 {
		t.Fatal("value constructors broken")
	}
}

// TestPublicAPIAwaitSignal exercises the §3.1 event-handling construct
// through the facade on the local runtime.
func TestPublicAPIAwaitSignal(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "demo.id",
		Run: func(_ ProgramCtx, args map[string]Value) (map[string]Value, error) {
			return map[string]Value{"out": args["x"]}, nil
		},
	})
	rt, err := NewLocalRuntime(LocalConfig{Workers: 2, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(`
PROCESS Gated {
  INPUT x;
  OUTPUT out;
  ACTIVITY Pre { CALL demo.id(x = x); OUT out; MAP out -> v; }
  ACTIVITY Gate { AWAIT "go"; OUT bonus; MAP bonus -> bonus; }
  ACTIVITY Post { CALL demo.id(x = v + bonus); OUT out; MAP out -> out; }
  Pre -> Gate;
  Gate -> Post;
}`); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Gated", map[string]Value{"x": Num(40)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the instance is parked on the gate, then signal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var awaiting []string
		rt.Do(func(e *Engine) { awaiting = e.Awaiting(id) })
		if len(awaiting) == 1 && awaiting[0] == "go" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never started awaiting")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sigErr error
	rt.Do(func(e *Engine) {
		sigErr = e.Signal(id, "go", map[string]Value{"bonus": Num(2)})
	})
	if sigErr != nil {
		t.Fatal(sigErr)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["out"].AsNum() != 42 {
		t.Fatalf("status %v out %v", in.Status, in.Outputs["out"])
	}
}

// TestPublicAPIBuilder runs a builder-defined process end to end.
func TestPublicAPIBuilder(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "demo.inc",
		Run: func(_ ProgramCtx, args map[string]Value) (map[string]Value, error) {
			return map[string]Value{"out": Num(args["x"].AsNum() + 1)}, nil
		},
	})
	proc, err := NewProcessBuilder("Chain").
		Inputs("x").
		Outputs("y").
		Activity("A", "demo.inc", Arg("x", "x"), Out("out"), MapTo("out", "mid"), Retry(1)).
		Activity("B", "demo.inc", Arg("x", "mid"), Out("out"), MapTo("out", "y")).
		Flow("A", "B").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewLocalRuntime(LocalConfig{Workers: 2, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var regErr error
	rt.Do(func(e *Engine) { regErr = e.RegisterTemplate(proc) })
	if regErr != nil {
		t.Fatal(regErr)
	}
	id, err := rt.StartProcess("Chain", map[string]Value{"x": Num(40)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Outputs["y"].AsNum() != 42 {
		t.Fatalf("y = %v", in.Outputs["y"])
	}
}
