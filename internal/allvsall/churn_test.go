package allvsall

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// TestChurnNeverChangesResults is the repository's strongest dependability
// property test: under randomized node crashes, restores, forced and
// graceful suspensions, external load spikes and server crashes — all
// drawn from a seeded RNG — the all-vs-all must always terminate and must
// always produce exactly the serial reference results.
func TestChurnNeverChangesResults(t *testing.T) {
	ds := darwin.Generate(darwin.GenOptions{N: 14, MeanLen: 45, Seed: 33, FamilyFraction: 0.5, FamilyPAM: 35})
	baseCfg := &Config{Dataset: ds}
	want := darwin.AllVsAllSerial(ds, baseCfg.Fixed, baseCfg.Refine)
	if len(want) == 0 {
		t.Fatal("reference run found no matches; test would be vacuous")
	}

	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			chaos := rand.New(rand.NewSource(int64(1000 + trial)))
			cfg := &Config{Dataset: ds}
			rt := runtime(t, cfg, cluster.IkSun())
			id, err := rt.Engine.StartProcess(TemplateName, cfg.Inputs(2+chaos.Intn(7)), core.StartOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Random chaos schedule over the first (virtual) minute.
			names := make([]string, 0, 5)
			for _, v := range rt.Cluster.Nodes() {
				names = append(names, v.Name)
			}
			events := 3 + chaos.Intn(6)
			for i := 0; i < events; i++ {
				at := sim.Time(time.Duration(chaos.Intn(60_000)) * time.Millisecond)
				switch chaos.Intn(5) {
				case 0: // crash + later restore
					n := names[chaos.Intn(len(names))]
					down := time.Duration(1+chaos.Intn(20)) * time.Second
					rt.Sim.At(at, func(sim.Time) { rt.Cluster.CrashNode(n) })
					rt.Sim.At(at.Add(down), func(sim.Time) { rt.Cluster.RestoreNode(n) })
				case 1: // load spike
					n := names[chaos.Intn(len(names))]
					lvl := 0.5 + 0.5*chaos.Float64()
					rt.Sim.At(at, func(sim.Time) { rt.Cluster.SetExternalLoad(n, lvl) })
					rt.Sim.At(at.Add(15*time.Second), func(sim.Time) { rt.Cluster.SetExternalLoad(n, 0) })
				case 2: // graceful suspend + resume
					rt.Sim.At(at, func(sim.Time) { rt.Engine.Suspend(id, true) })
					rt.Sim.At(at.Add(5*time.Second), func(sim.Time) { rt.Engine.Resume(id) })
				case 3: // forced suspend + resume
					rt.Sim.At(at, func(sim.Time) { rt.Engine.Suspend(id, false) })
					rt.Sim.At(at.Add(3*time.Second), func(sim.Time) { rt.Engine.Resume(id) })
				case 4: // server crash + recovery
					rt.Sim.At(at, func(sim.Time) {
						rt.Engine.Crash()
						if _, err := rt.Engine.Recover(); err != nil {
							t.Errorf("recover: %v", err)
						}
					})
				}
			}

			rt.Sim.SetStepLimit(5_000_000) // runaway backstop
			rt.Run()
			var master ocr.Value
			if in, ok := rt.Engine.Instance(id); ok {
				if in.Status != core.InstanceDone {
					t.Fatalf("trial %d: instance %s (%s)", trial, in.Status, in.FailureReason)
				}
				master = in.Outputs["master_file"]
			} else {
				// A server crash after completion drops the
				// in-memory instance; the durable record lives in
				// the history space.
				master = historyOutput(t, rt.Store, id, "master_file")
			}
			got, err := DecodeMatches(master)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].A != want[i].A || got[i].B != want[i].B ||
					math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("trial %d: match %d = %+v, want %+v", trial, i, got[i], want[i])
				}
			}
		})
	}
}

// historyOutput reads one output of an archived instance from the history
// space.
func historyOutput(t *testing.T, s store.Store, id, name string) ocr.Value {
	t.Helper()
	raw, ok, err := s.Get(store.History, "inst/"+id)
	if err != nil || !ok {
		t.Fatalf("instance %s absent from history too (%v)", id, err)
	}
	rec, err := core.DecodeInstanceMeta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != core.InstanceDone {
		t.Fatalf("archived instance %s status = %v", id, rec.Status)
	}
	return rec.Outputs[name]
}
