package allvsall

import (
	"math"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

func TestProcessParsesAndValidates(t *testing.T) {
	p, err := Process()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Name != TemplateName {
		t.Fatalf("name = %q", p.Name)
	}
	al := p.Task("Alignment")
	if al == nil || !al.Parallel {
		t.Fatal("Alignment block wrong")
	}
	// Round trip through the printer (the persistence format).
	p2, err := ocr.ParseProcess(ocr.Format(p))
	if err != nil {
		t.Fatal(err)
	}
	if ocr.Format(p2) != ocr.Format(p) {
		t.Fatal("format round trip unstable")
	}
}

// runtime builds a sim runtime with the all-vs-all programs registered.
func runtime(t *testing.T, cfg *Config, spec cluster.Spec) *core.SimRuntime {
	t.Helper()
	lib := core.NewLibrary()
	if err := Register(lib, cfg); err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: spec, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(Source); err != nil {
		t.Fatal(err)
	}
	return rt
}

func run(t *testing.T, rt *core.SimRuntime, inputs map[string]ocr.Value) *core.Instance {
	t.Helper()
	id, err := rt.Engine.StartProcess(TemplateName, inputs, core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		t.Fatalf("instance %s: %s (%s)", id, in.Status, in.FailureReason)
	}
	return in
}

func TestRealModeMatchesSerial(t *testing.T) {
	// The engine-run all-vs-all must produce exactly the matches of the
	// in-process serial computation, for several granularities.
	ds := darwin.Generate(darwin.GenOptions{N: 18, MeanLen: 50, Seed: 11, FamilyFraction: 0.5, FamilyPAM: 35})
	cfg := &Config{Dataset: ds}
	want := darwin.AllVsAllSerial(ds, cfg.Fixed, cfg.Refine)

	for _, teus := range []int{1, 4, 9} {
		rt := runtime(t, cfg, cluster.IkSun())
		in := run(t, rt, cfg.Inputs(teus))
		got, err := DecodeMatches(in.Outputs["master_file"])
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("teus=%d: %d matches, want %d", teus, len(got), len(want))
		}
		for i := range got {
			if got[i].A != want[i].A || got[i].B != want[i].B ||
				math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("teus=%d: match %d = %+v, want %+v", teus, i, got[i], want[i])
			}
		}
		if in.Outputs["match_count"].AsInt() != len(want) {
			t.Fatalf("match_count = %v", in.Outputs["match_count"])
		}
		// PAM-sorted output is the same set ordered by distance.
		pam, err := DecodeMatches(in.Outputs["pam_sorted_file"])
		if err != nil {
			t.Fatal(err)
		}
		if len(pam) != len(want) {
			t.Fatalf("pam file has %d matches", len(pam))
		}
		for i := 1; i < len(pam); i++ {
			if pam[i].PAM < pam[i-1].PAM {
				t.Fatalf("pam file not sorted at %d", i)
			}
		}
	}
}

func TestQueueGenerationBranch(t *testing.T) {
	ds := darwin.Generate(darwin.GenOptions{N: 10, MeanLen: 40, Seed: 3})
	cfg := &Config{Dataset: ds}

	// Without a queue file: QueueGeneration runs (activities: UserInput
	// + QueueGeneration + Partition + 2×TEUs + 2 merges).
	rt := runtime(t, cfg, cluster.IkSun())
	in := run(t, rt, cfg.Inputs(2))
	if in.Activities != 1+1+1+4+2 {
		t.Fatalf("activities without queue = %d", in.Activities)
	}

	// With a queue file: QueueGeneration is skipped.
	rt2 := runtime(t, cfg, cluster.IkSun())
	in2 := run(t, rt2, cfg.InputsWithQueue(2, 0, 10))
	if in2.Activities != 1+1+4+2 {
		t.Fatalf("activities with queue = %d", in2.Activities)
	}
}

func TestPartialQueueReruns(t *testing.T) {
	// The paper's discard/re-run mechanism: align only entries [5, 12).
	ds := darwin.Generate(darwin.GenOptions{N: 15, MeanLen: 45, Seed: 8, FamilyFraction: 0.6, FamilyPAM: 30})
	cfg := &Config{Dataset: ds}
	rt := runtime(t, cfg, cluster.IkSun())
	in := run(t, rt, cfg.InputsWithQueue(3, 5, 7))
	got, err := DecodeMatches(in.Outputs["master_file"])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.A < 5 || m.B >= 12 {
			t.Fatalf("match %+v outside queue range [5,12)", m)
		}
	}
}

func TestSimulatedModeCosts(t *testing.T) {
	// Simulated mode on a big dataset: virtual CPU must scale with the
	// cost model, and wall time must show real parallelism.
	ds := darwin.Generate(darwin.GenOptions{N: 200, MeanLen: 120, Seed: 5})
	cfg := &Config{Dataset: ds, Simulate: true}
	rt := runtime(t, cfg, cluster.IkSun()) // 5 CPUs
	start := time.Now()
	in := run(t, rt, cfg.Inputs(20))
	elapsed := time.Since(start)

	if elapsed > 5*time.Second {
		t.Fatalf("simulated run took %v of real time", elapsed)
	}
	wall := in.WALL(rt.Sim.Now())
	if in.CPU < wall {
		t.Fatalf("cpu %v < wall %v: no parallelism achieved", in.CPU, wall)
	}
	if in.CPU > 10*wall {
		t.Fatalf("cpu %v vs wall %v: more parallelism than CPUs", in.CPU, wall)
	}
	// Expected match count flows through the merges.
	if in.Outputs["match_count"].AsInt() <= 0 {
		t.Fatal("simulated match count missing")
	}
	if in.Outputs["master_file"].AsStr() != "master" {
		t.Fatalf("master_file = %v", in.Outputs["master_file"])
	}
}

func TestSimulatedGranularityTradeoffCPU(t *testing.T) {
	// More TEUs → more Darwin init overhead → more total CPU (the rising
	// curve of Fig. 4).
	ds := darwin.Generate(darwin.GenOptions{N: 100, MeanLen: 100, Seed: 7})
	cpu := func(teus int) time.Duration {
		cfg := &Config{Dataset: ds, Simulate: true}
		rt := runtime(t, cfg, cluster.IkSun())
		in := run(t, rt, cfg.Inputs(teus))
		return in.CPU
	}
	c1, c20, c100 := cpu(1), cpu(20), cpu(100)
	if !(c1 < c20 && c20 < c100) {
		t.Fatalf("CPU not increasing with granularity: %v, %v, %v", c1, c20, c100)
	}
}

func TestRefineNodeAffinity(t *testing.T) {
	// Pin refinement to one node (the §5.4 dedicated-cluster setup) and
	// verify every refine activity ran there.
	ds := darwin.Generate(darwin.GenOptions{N: 12, MeanLen: 40, Seed: 2})
	spec := cluster.Spec{Name: "two", Nodes: []cluster.NodeSpec{
		{Name: "fast", CPUs: 2, Speed: 1, OS: "linux"},
		{Name: "refiner", CPUs: 2, Speed: 0.5, OS: "solaris"},
	}}
	cfg := &Config{Dataset: ds, RefineNodes: []string{"refiner"}}
	lib := core.NewLibrary()
	if err := Register(lib, cfg); err != nil {
		t.Fatal(err)
	}
	var misplaced []string
	rt, err := core.NewSimRuntime(core.SimConfig{
		Seed: 1, Spec: spec, Library: lib,
		Options: core.Options{OnEvent: func(ev core.Event) {
			if ev.Kind == core.EvTaskDispatched && ev.Task == "PAMRefinement" && ev.Node != "refiner" {
				misplaced = append(misplaced, ev.Node)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(Source); err != nil {
		t.Fatal(err)
	}
	run(t, rt, cfg.Inputs(4))
	if len(misplaced) > 0 {
		t.Fatalf("refinement ran on %v", misplaced)
	}
}

func TestSurvivesNodeChurn(t *testing.T) {
	// Crash-and-restore cycling through all nodes; the process must
	// finish with the right answer anyway.
	ds := darwin.Generate(darwin.GenOptions{N: 16, MeanLen: 45, Seed: 9, FamilyFraction: 0.5})
	cfg := &Config{Dataset: ds}
	want := darwin.AllVsAllSerial(ds, cfg.Fixed, cfg.Refine)

	rt := runtime(t, cfg, cluster.IkSun())
	names := make([]string, 0, 5)
	for _, v := range rt.Cluster.Nodes() {
		names = append(names, v.Name)
	}
	for i, n := range names {
		n := n
		down := sim.Time(time.Duration(i+1) * 2 * time.Second)
		rt.Sim.At(down, func(sim.Time) { rt.Cluster.CrashNode(n) })
		rt.Sim.At(down+sim.Time(3*time.Second), func(sim.Time) { rt.Cluster.RestoreNode(n) })
	}
	in := run(t, rt, cfg.Inputs(8))
	got, err := DecodeMatches(in.Outputs["master_file"])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("matches after churn = %d, want %d", len(got), len(want))
	}
	if in.Failures == 0 {
		t.Fatal("churn produced no failures — crashes did not hit running work")
	}
}

func TestBadInputsFailCleanly(t *testing.T) {
	ds := darwin.Generate(darwin.GenOptions{N: 8, MeanLen: 40, Seed: 4})
	cfg := &Config{Dataset: ds}
	rt := runtime(t, cfg, cluster.IkSun())
	id, err := rt.Engine.StartProcess(TemplateName, map[string]ocr.Value{
		"db_name":      ocr.Str("wrong-db"),
		"output_files": ocr.Str("x"),
		"n_teus":       ocr.Int(2),
	}, core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceFailed {
		t.Fatalf("status = %s", in.Status)
	}

	// Out-of-range queue.
	rt2 := runtime(t, cfg, cluster.IkSun())
	id2, _ := rt2.Engine.StartProcess(TemplateName, cfg.InputsWithQueue(2, 5, 100), core.StartOptions{})
	rt2.Run()
	in2, _ := rt2.Engine.Instance(id2)
	if in2.Status != core.InstanceFailed {
		t.Fatalf("out-of-range queue: status = %s", in2.Status)
	}
}

func TestTEUCountClamped(t *testing.T) {
	ds := darwin.Generate(darwin.GenOptions{N: 6, MeanLen: 40, Seed: 6})
	cfg := &Config{Dataset: ds}
	rt := runtime(t, cfg, cluster.IkSun())
	// 100 TEUs over 6 entries → clamped to 6.
	in := run(t, rt, cfg.Inputs(100))
	// activities = UserInput + QueueGen + Partition + 2×6 + 2 merges.
	if in.Activities != 3+12+2 {
		t.Fatalf("activities = %d", in.Activities)
	}
}
