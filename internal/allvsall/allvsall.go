// Package allvsall implements the paper's flagship workload (§4, Fig. 3):
// the self-comparison of every entry in a protein dataset, expressed as a
// BioOpera process —
//
//	UserInput → [QueueGeneration] → TaskPreprocessing →
//	    Alignment (parallel: FixedPAMAlignment → PAMRefinement per TEU) →
//	    MergeByEntry + MergeByPAMDistance
//
// The package provides the OCR process definition and the activity
// programs behind it. Programs run in one of two modes:
//
//   - real: alignments are actually computed with internal/darwin —
//     used by the integration tests and the runnable examples;
//   - simulated: programs return deterministic summaries and their Cost
//     functions charge the darwin.CostModel, so the virtual cluster pays
//     realistic CPU time without computing 3.2 billion alignments — used
//     by the Fig. 4 / Fig. 5 / Fig. 6 / Table 1 experiments.
//
// Queue files and partitions are encoded as [start, count] ranges over
// dataset positions, which keeps whiteboard values small at Swiss-Prot
// scale.
package allvsall

import (
	"fmt"
	"sync"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/ocr"
)

// TemplateName is the registered name of the process.
const TemplateName = "AllVsAll"

// Source is the OCR definition of the Fig. 3 process.
const Source = `
PROCESS AllVsAll "Self-comparison of all entries in a dataset (paper Fig. 3)" {
  INPUT db_name, queue_file, output_files, n_teus;
  OUTPUT master_file, pam_sorted_file, match_count;

  ACTIVITY UserInput {
    DOC "Request from the user the names of output files and database to use";
    CALL avsa.user_input(db = db_name, queue = queue_file, out = output_files);
    OUT db, queue, out_files;
    MAP db -> db, queue -> queue, out_files -> outf;
  }

  ACTIVITY QueueGeneration {
    DOC "If user does not provide a queue file, generate the full entry queue";
    CALL avsa.queue_gen(db = db);
    OUT queue;
    MAP queue -> queue;
  }

  ACTIVITY TaskPreprocessing {
    DOC "Create data partition P = {P1..Pn} based on given input data";
    CALL avsa.partition(queue = queue, n = n_teus);
    OUT partitions;
    MAP partitions -> partitions;
    RETRY 1;
  }

  BLOCK Alignment PARALLEL OVER partitions AS part {
    MAP results -> alignment_results;
    OUTPUT refined;
    ACTIVITY FixedPAMAlignment {
      DOC "First alignment, using a fixed PAM distance";
      CALL avsa.align_fixed(part = part, queue = queue, db = db);
      OUT matches;
      MAP matches -> q;
      RETRY 3;
    }
    ACTIVITY PAMRefinement {
      DOC "Alignment algorithm finding PAM distance maximizing similarity";
      CALL avsa.refine(matches = q, part = part, queue = queue, db = db);
      OUT refined;
      MAP refined -> refined;
      RETRY 3;
    }
    FixedPAMAlignment -> PAMRefinement;
  }

  ACTIVITY MergeByEntry {
    DOC "Merge results, sorting by entry number";
    CALL avsa.merge_entry(results = alignment_results, out = outf);
    OUT master_file, match_count;
    MAP master_file -> master_file, match_count -> match_count;
  }

  ACTIVITY MergeByPAM {
    DOC "Merge results, sorting by PAM distance of each alignment";
    CALL avsa.merge_pam(results = alignment_results, out = outf);
    OUT pam_sorted_file;
    MAP pam_sorted_file -> pam_sorted_file;
  }

  UserInput -> QueueGeneration IF !defined(queue);
  UserInput -> TaskPreprocessing IF defined(queue);
  QueueGeneration -> TaskPreprocessing;
  TaskPreprocessing -> Alignment;
  Alignment -> MergeByEntry;
  Alignment -> MergeByPAM;
}
`

// Process parses and returns the process definition.
func Process() (*ocr.Process, error) { return ocr.ParseProcess(Source) }

// Config selects the dataset, algorithm parameters and execution mode.
type Config struct {
	// Dataset is the sequence collection. In simulated mode only its
	// entry lengths are consulted.
	Dataset *darwin.Dataset
	// Fixed configures the fast first pass.
	Fixed darwin.FixedPAMOptions
	// Refine configures the PAM-distance refinement.
	Refine darwin.RefineOptions
	// Simulate switches programs to cost-model-only execution.
	Simulate bool
	// Cost is the model charged in simulated mode (zero value →
	// darwin.DefaultCostModel).
	Cost darwin.CostModel
	// RefineNodes optionally pins the refinement stage to specific
	// nodes (§5.4: "the slower ik-sun cluster was responsible for the
	// refinement stages").
	RefineNodes []string

	tableMu sync.Mutex
	tables  map[[2]int]*darwin.CostTable // (queue start, count) → table
}

// costTable returns (building and caching on demand) the closed-form cost
// table for a queue range, so TEU costs at 80k-entry scale are O(TEU)
// instead of O(pairs).
func (c *Config) costTable(qs, qn int) *darwin.CostTable {
	c.tableMu.Lock()
	defer c.tableMu.Unlock()
	if c.tables == nil {
		c.tables = make(map[[2]int]*darwin.CostTable)
	}
	key := [2]int{qs, qn}
	if t, ok := c.tables[key]; ok {
		return t
	}
	q := make(darwin.Queue, qn)
	for i := range q {
		q[i] = qs + i
	}
	t := darwin.NewCostTable(c.Cost, q, c.Dataset.Lengths())
	c.tables[key] = t
	return t
}

func (c *Config) fill() {
	if c.Cost == (darwin.CostModel{}) {
		c.Cost = darwin.DefaultCostModel()
	}
}

// Inputs builds the process inputs for a run over the whole dataset split
// into teus partitions.
func (c *Config) Inputs(teus int) map[string]ocr.Value {
	return map[string]ocr.Value{
		"db_name":      ocr.Str(c.Dataset.Name),
		"output_files": ocr.Str("allvsall-out"),
		"n_teus":       ocr.Int(teus),
	}
}

// InputsWithQueue is Inputs with an explicit queue range [start, count) —
// the paper's mechanism for re-running a subset after discarding
// ill-behaving entries.
func (c *Config) InputsWithQueue(teus, start, count int) map[string]ocr.Value {
	in := c.Inputs(teus)
	in["queue_file"] = queueValue(start, count)
	return in
}

func queueValue(start, count int) ocr.Value {
	return ocr.List(ocr.Int(start), ocr.Int(count))
}

func queueRange(v ocr.Value) (start, count int, err error) {
	if v.Kind() != ocr.KindList || v.Len() != 2 {
		return 0, 0, fmt.Errorf("allvsall: queue value %v is not a [start, count] range", v)
	}
	return v.At(0).AsInt(), v.At(1).AsInt(), nil
}

// Register installs the avsa.* programs into a library. The config is
// captured; register one config per engine.
func Register(lib *core.Library, cfg *Config) error {
	if cfg.Dataset == nil {
		return fmt.Errorf("allvsall: config needs a dataset")
	}
	cfg.fill()

	programs := []core.Program{
		{
			Name: "avsa.user_input",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				if got := args["db"].AsStr(); got != cfg.Dataset.Name {
					return nil, fmt.Errorf("unknown dataset %q (have %q)", got, cfg.Dataset.Name)
				}
				return map[string]ocr.Value{
					"db":        args["db"],
					"queue":     args["queue"],
					"out_files": args["out"],
				}, nil
			},
			Cost: constCost(500 * time.Millisecond),
		},
		{
			Name: "avsa.queue_gen",
			Run: func(_ core.ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
				return map[string]ocr.Value{"queue": queueValue(0, cfg.Dataset.Len())}, nil
			},
			Cost: constCost(time.Second),
		},
		{
			Name: "avsa.partition",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				start, count, err := queueRange(args["queue"])
				if err != nil {
					return nil, err
				}
				if start < 0 || count < 1 || start+count > cfg.Dataset.Len() {
					return nil, fmt.Errorf("queue range [%d,%d) outside dataset of %d entries", start, start+count, cfg.Dataset.Len())
				}
				n := args["n"].AsInt()
				if n < 1 {
					n = 1
				}
				if n > count {
					n = count
				}
				// Partitions are [start, count] ranges of *queue
				// positions*, so only queued entries take part in
				// the comparison.
				parts := make([]ocr.Value, 0, n)
				base, rem := count/n, count%n
				pos := 0
				for i := 0; i < n; i++ {
					size := base
					if i < rem {
						size++
					}
					parts = append(parts, ocr.List(ocr.Int(pos), ocr.Int(size)))
					pos += size
				}
				return map[string]ocr.Value{"partitions": ocr.List(parts...)}, nil
			},
			Cost: constCost(2 * time.Second),
		},
		{
			Name: "avsa.align_fixed",
			Run:  cfg.runAlignFixed,
			Cost: func(args map[string]ocr.Value) time.Duration {
				qs, qn, s, n, err := teuRangeBounds(args)
				if err != nil {
					return time.Second
				}
				return cfg.costTable(qs, qn).FixedTEUCost(s, n)
			},
		},
		{
			Name: "avsa.refine",
			Run:  cfg.runRefine,
			Cost: func(args map[string]ocr.Value) time.Duration {
				qs, qn, s, n, err := teuRangeBounds(args)
				if err != nil {
					return time.Second
				}
				return cfg.costTable(qs, qn).RefineTEUCost(s, n)
			},
			Nodes: cfg.RefineNodes,
		},
		{
			Name: "avsa.merge_entry",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				merged, count := cfg.merge(args["results"])
				darwin.SortByEntry(merged)
				return map[string]ocr.Value{
					"master_file": matchesValue(merged, cfg.Simulate, "master"),
					"match_count": ocr.Int(count),
				}, nil
			},
			Cost: cfg.mergeCost,
		},
		{
			Name: "avsa.merge_pam",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				merged, _ := cfg.merge(args["results"])
				darwin.SortByPAM(merged)
				return map[string]ocr.Value{
					"pam_sorted_file": matchesValue(merged, cfg.Simulate, "pam-sorted"),
				}, nil
			},
			Cost: cfg.mergeCost,
		},
	}
	for _, p := range programs {
		if err := lib.Register(p); err != nil {
			return err
		}
	}
	return nil
}

func constCost(d time.Duration) core.CostFunc {
	return func(map[string]ocr.Value) time.Duration { return d }
}

// teuRangeBounds extracts the queue range and owned part range from the
// activity arguments.
func teuRangeBounds(args map[string]ocr.Value) (qs, qn, start, count int, err error) {
	qs, qn, err = queueRange(args["queue"])
	if err != nil {
		return 0, 0, 0, 0, err
	}
	start, count, err = queueRange(args["part"])
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return qs, qn, start, count, nil
}

// teuRange materializes a TEU's effective queue and its owned range.
func teuRange(args map[string]ocr.Value) (q darwin.Queue, start, count int, err error) {
	qs, qn, start, count, err := teuRangeBounds(args)
	if err != nil {
		return nil, 0, 0, err
	}
	q = make(darwin.Queue, qn)
	for i := range q {
		q[i] = qs + i
	}
	return q, start, count, nil
}

// runAlignFixed is the fast-pass activity body.
func (cfg *Config) runAlignFixed(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
	q, s, n, err := teuRange(args)
	if err != nil {
		return nil, err
	}
	if cfg.Simulate {
		// Deterministic expected match count for this TEU.
		pairs := cfg.costTable(q[0], len(q)).Pairs(s, n)
		expected := int(float64(pairs) * cfg.Cost.MatchFraction)
		return map[string]ocr.Value{"matches": ocr.Int(expected)}, nil
	}
	ms := darwin.FixedPAMPass(cfg.Dataset, q, s, n, cfg.Fixed)
	return map[string]ocr.Value{"matches": encodeMatches(ms)}, nil
}

// runRefine is the refinement activity body.
func (cfg *Config) runRefine(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
	if cfg.Simulate {
		// Pass the expected count through.
		return map[string]ocr.Value{"refined": args["matches"]}, nil
	}
	ms, err := decodeMatches(args["matches"])
	if err != nil {
		return nil, err
	}
	refined := darwin.RefinePass(cfg.Dataset, ms, cfg.Refine)
	return map[string]ocr.Value{"refined": encodeMatches(refined)}, nil
}

// merge combines per-TEU results. In simulated mode results are counts;
// in real mode they are match lists.
func (cfg *Config) merge(results ocr.Value) ([]darwin.Match, int) {
	if cfg.Simulate {
		total := 0
		for i := 0; i < results.Len(); i++ {
			total += results.At(i).AsInt()
		}
		return nil, total
	}
	var sets [][]darwin.Match
	for i := 0; i < results.Len(); i++ {
		ms, err := decodeMatches(results.At(i))
		if err != nil {
			continue
		}
		sets = append(sets, ms)
	}
	merged := darwin.MergeMatches(sets...)
	return merged, len(merged)
}

func (cfg *Config) mergeCost(args map[string]ocr.Value) time.Duration {
	results := args["results"]
	var n int64
	if cfg.Simulate {
		for i := 0; i < results.Len(); i++ {
			n += int64(results.At(i).AsInt())
		}
	} else {
		for i := 0; i < results.Len(); i++ {
			n += int64(results.At(i).Len())
		}
	}
	return cfg.Cost.MergeCost(n)
}

// encodeMatches turns match records into a whiteboard value.
func encodeMatches(ms []darwin.Match) ocr.Value {
	vs := make([]ocr.Value, len(ms))
	for i, m := range ms {
		vs[i] = ocr.List(
			ocr.Int(m.A), ocr.Int(m.B),
			ocr.Num(m.Score), ocr.Num(m.PAM),
			ocr.Num(m.Identity), ocr.Int(m.Length),
		)
	}
	return ocr.List(vs...)
}

// decodeMatches reverses encodeMatches.
func decodeMatches(v ocr.Value) ([]darwin.Match, error) {
	if v.Kind() != ocr.KindList {
		return nil, fmt.Errorf("allvsall: match set is %s, want list", v.Kind())
	}
	ms := make([]darwin.Match, 0, v.Len())
	for i := 0; i < v.Len(); i++ {
		rec := v.At(i)
		if rec.Kind() != ocr.KindList || rec.Len() < 6 {
			return nil, fmt.Errorf("allvsall: bad match record %v", rec)
		}
		ms = append(ms, darwin.Match{
			A:        rec.At(0).AsInt(),
			B:        rec.At(1).AsInt(),
			Score:    rec.At(2).AsNum(),
			PAM:      rec.At(3).AsNum(),
			Identity: rec.At(4).AsNum(),
			Length:   rec.At(5).AsInt(),
		})
	}
	return ms, nil
}

// matchesValue renders the merged output: the match list in real mode, a
// file label in simulated mode.
func matchesValue(ms []darwin.Match, simulate bool, label string) ocr.Value {
	if simulate {
		return ocr.Str(label)
	}
	return encodeMatches(ms)
}

// DecodeMatches exposes match decoding for examples and tests reading
// process outputs.
func DecodeMatches(v ocr.Value) ([]darwin.Match, error) { return decodeMatches(v) }
