// Log shipping: a Shipper streams committed WAL batches over TCP to one
// or more Followers, which replay them into their own log. This is the
// wire layer of the hot-standby story — the paper leaned on a replicated
// DBMS for durable process state; we ship our own WAL instead.
//
// The protocol is newline-delimited JSON, the same framing the remote
// worker protocol uses (the wal package cannot import internal/remote —
// remote sits above the store — so the idiom is mirrored, not shared):
//
//	follower → shipper   {"type":"sync","from":N}
//	shipper  → follower  {"type":"snapshot","seq":S,"data":...}   bootstrap
//	shipper  → follower  {"type":"frames","seq":N,"records":[...]} per batch
//
// Frames are shipped post-fsync and batch-aligned: the shipper only reads
// records below the committed frontier (CommittedSeq), and each frames
// message carries exactly one atomic batch as AppendBatch wrote it, so the
// follower re-appends the primary's commit units verbatim and a crash on
// either side rolls back to the same batch boundary. A follower whose
// cursor has fallen behind the oldest retained segment is bootstrapped
// with a full snapshot; otherwise the shipper pins the retention floor
// (SetRetainFloor) at its slowest follower's cursor so snapshots on the
// primary cannot truncate records a standby still needs.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// shipWriteBuf sizes the per-session buffered writers on both sides:
// large enough that a replay round's frames coalesce into few writes.
const shipWriteBuf = 64 << 10

// shipMsg is every message of the shipping protocol; Type discriminates.
type shipMsg struct {
	Type string `json:"type"`
	// From is the first sequence the follower wants (sync).
	From uint64 `json:"from,omitempty"`
	// Seq is the first sequence of Records (frames) or the first sequence
	// NOT covered by Data (snapshot).
	Seq uint64 `json:"seq,omitempty"`
	// Records is one atomic batch, in append order (frames).
	Records [][]byte `json:"records,omitempty"`
	// Data is an opaque snapshot image (snapshot).
	Data []byte `json:"data,omitempty"`
	// Err explains a terminal refusal (error).
	Err string `json:"err,omitempty"`
}

// ShipperOptions configure a Shipper.
type ShipperOptions struct {
	// Log is the log to ship from. Required.
	Log *Log
	// Snapshot produces a bootstrap image for followers whose cursor has
	// fallen behind the oldest retained record: the opaque snapshot bytes
	// plus the first WAL sequence NOT covered by them. Nil means lagging
	// followers are refused instead of bootstrapped.
	Snapshot func() (seq uint64, data []byte, err error)
	// OnFollower, when non-nil, observes follower arrivals (up=true) and
	// departures. Called from connection goroutines.
	OnFollower func(remote string, up bool)
	// Logf receives protocol diagnostics. May be nil.
	Logf func(format string, args ...any)
}

// Shipper serves the primary side of log shipping. It is safe for
// concurrent use alongside appends and truncation on the same Log.
type Shipper struct {
	ln   net.Listener
	log  *Log
	opts ShipperOptions
	stop chan struct{}

	mu      sync.Mutex
	cursors map[net.Conn]uint64 // next sequence each follower needs
	closed  bool
	wg      sync.WaitGroup
}

// NewShipper listens on addr and serves the log to connecting followers.
func NewShipper(addr string, opts ShipperOptions) (*Shipper, error) {
	if opts.Log == nil {
		return nil, fmt.Errorf("wal: ShipperOptions needs a Log")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wal: ship listen: %w", err)
	}
	s := &Shipper{
		ln:      ln,
		log:     opts.Log,
		opts:    opts,
		stop:    make(chan struct{}),
		cursors: make(map[net.Conn]uint64),
	}
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the bound listen address (handy with ":0").
func (s *Shipper) Addr() string { return s.ln.Addr().String() }

// Followers reports how many followers are currently connected.
func (s *Shipper) Followers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cursors)
}

func (s *Shipper) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Shipper) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//bioopera:allow droppederr shutdown race: the refused connection's close error has no one to tell
			conn.Close()
			return
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

// setCursor records a follower's progress and re-pins the retention floor
// at the minimum across followers, so TruncateBefore keeps what the
// slowest standby still needs.
func (s *Shipper) setCursor(conn net.Conn, cursor uint64) {
	s.mu.Lock()
	s.cursors[conn] = cursor
	s.refloorLocked()
	s.mu.Unlock()
}

func (s *Shipper) dropCursor(conn net.Conn) {
	s.mu.Lock()
	delete(s.cursors, conn)
	s.refloorLocked()
	s.mu.Unlock()
}

func (s *Shipper) refloorLocked() {
	var floor uint64
	for _, c := range s.cursors {
		if floor == 0 || c < floor {
			floor = c
		}
	}
	s.log.SetRetainFloor(floor) // 0 with no followers: unconstrained
}

// serve streams the log to one follower until it disconnects or the
// shipper closes.
func (s *Shipper) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		//bioopera:allow droppederr the connection is being abandoned either way; its close error is diagnostic at best
		conn.Close()
		s.dropCursor(conn)
		if s.opts.OnFollower != nil {
			s.opts.OnFollower(conn.RemoteAddr().String(), false)
		}
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	// One buffered writer and one encoder for the whole session: frames of
	// a replay round coalesce into few syscalls instead of one unbuffered
	// write per message, and nothing is re-allocated per send.
	bw := bufio.NewWriterSize(conn, shipWriteBuf)
	enc := json.NewEncoder(bw)
	// send encodes one message and flushes — used for the one-off messages
	// (snapshot, error) that must reach the follower before we block or
	// return. Frames flush once per replay round instead.
	send := func(m shipMsg) error {
		if err := enc.Encode(m); err != nil {
			return err
		}
		return bw.Flush()
	}
	var hello shipMsg
	if err := dec.Decode(&hello); err != nil || hello.Type != "sync" {
		s.logf("wal: ship %s: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	cursor := hello.From
	if cursor == 0 {
		cursor = 1
	}
	// Register before the first read so the retention floor protects the
	// cursor from a concurrent truncation.
	s.setCursor(conn, cursor)
	if s.opts.OnFollower != nil {
		s.opts.OnFollower(conn.RemoteAddr().String(), true)
	}
	s.logf("wal: ship %s: follower syncing from %d", conn.RemoteAddr(), cursor)
	for {
		committed, ok := s.log.WaitCommitted(cursor-1, s.stop)
		if !ok {
			return
		}
		if oldest := s.log.OldestSeq(); cursor < oldest {
			// The records the follower needs are gone — bootstrap it.
			if s.opts.Snapshot == nil {
				_ = send(shipMsg{Type: "error", Err: fmt.Sprintf("records from %d truncated (oldest %d) and no snapshot source", cursor, oldest)})
				return
			}
			seq, data, err := s.opts.Snapshot()
			if err != nil {
				s.logf("wal: ship %s: snapshot: %v", conn.RemoteAddr(), err)
				_ = send(shipMsg{Type: "error", Err: err.Error()})
				return
			}
			if err := send(shipMsg{Type: "snapshot", Seq: seq, Data: data}); err != nil {
				return
			}
			cursor = seq
			s.setCursor(conn, cursor)
			s.logf("wal: ship %s: bootstrapped to %d (%d snapshot bytes)", conn.RemoteAddr(), seq, len(data))
			continue
		}
		if committed < cursor {
			continue // woke for a frontier we already shipped
		}
		err := s.log.ReplayBatches(cursor, func(first uint64, records [][]byte) error {
			if first+uint64(len(records)) > committed+1 {
				return io.EOF // past the frontier captured above; ship next round
			}
			if err := enc.Encode(shipMsg{Type: "frames", Seq: first, Records: records}); err != nil {
				return err
			}
			cursor = first + uint64(len(records))
			s.setCursor(conn, cursor)
			return nil
		})
		if err != nil && err != io.EOF {
			s.logf("wal: ship %s: %v", conn.RemoteAddr(), err)
			return
		}
		// Flush the round's frames before blocking on the next commit —
		// the follower must not starve behind a half-full buffer.
		if err := bw.Flush(); err != nil {
			s.logf("wal: ship %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// Close stops serving: the listener closes, follower connections drop, and
// the retention floor is released.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.cursors))
	for c := range s.cursors {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.stop)
	err := s.ln.Close()
	for _, c := range conns {
		//bioopera:allow droppederr shutdown: each follower connection is being discarded; the listener error is the one worth returning
		c.Close()
	}
	s.wg.Wait()
	s.log.SetRetainFloor(0)
	if err != nil {
		return fmt.Errorf("wal: ship close: %w", err)
	}
	return nil
}

// FollowerOptions configure a Follower.
type FollowerOptions struct {
	// From is the first sequence this follower needs (its own log's
	// NextSeq). Zero means from the beginning.
	From uint64
	// ApplyBatch ingests one shipped batch: first is the sequence of
	// records[0]. Required. An error stops Run.
	ApplyBatch func(first uint64, records [][]byte) error
	// ApplySnapshot installs a bootstrap image covering sequences < seq.
	// Required if the primary may have truncated past From.
	ApplySnapshot func(seq uint64, data []byte) error
	// Logf receives protocol diagnostics. May be nil.
	Logf func(format string, args ...any)
}

// Follower is the standby side of log shipping: it dials a Shipper and
// applies what arrives. Its write side (the sync handshake, and any future
// follower→shipper message) goes through one session-lifetime buffered
// writer and encoder instead of allocating a fresh encoder per message and
// writing to the raw connection.
type Follower struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  *json.Encoder
	opts FollowerOptions

	mu     sync.Mutex
	closed bool
}

// send encodes one message to the shipper and flushes it out.
func (f *Follower) send(m shipMsg) error {
	if err := f.enc.Encode(m); err != nil {
		return err
	}
	return f.bw.Flush()
}

// DialFollower connects to a Shipper at addr and requests the stream. Call
// Run to start applying it.
func DialFollower(addr string, opts FollowerOptions) (*Follower, error) {
	if opts.ApplyBatch == nil {
		return nil, fmt.Errorf("wal: FollowerOptions needs ApplyBatch")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wal: follow dial: %w", err)
	}
	f := &Follower{conn: conn, opts: opts}
	f.bw = bufio.NewWriterSize(conn, shipWriteBuf)
	f.enc = json.NewEncoder(f.bw)
	if err := f.send(shipMsg{Type: "sync", From: opts.From}); err != nil {
		//bioopera:allow droppederr the handshake failure is returned; closing the dead connection is best-effort
		conn.Close()
		return nil, fmt.Errorf("wal: follow sync: %w", err)
	}
	return f, nil
}

// Run applies the stream until the connection drops (nil after a local
// Close, the transport error after a primary failure — the standby's cue
// to promote) or an apply callback fails.
func (f *Follower) Run() error {
	dec := json.NewDecoder(bufio.NewReader(f.conn))
	for {
		var msg shipMsg
		if err := dec.Decode(&msg); err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return nil
			}
			if err == io.EOF {
				return fmt.Errorf("wal: follow: primary closed the stream")
			}
			return fmt.Errorf("wal: follow: %w", err)
		}
		switch msg.Type {
		case "frames":
			if err := f.opts.ApplyBatch(msg.Seq, msg.Records); err != nil {
				return fmt.Errorf("wal: follow apply %d: %w", msg.Seq, err)
			}
		case "snapshot":
			if f.opts.ApplySnapshot == nil {
				return fmt.Errorf("wal: follow: unexpected snapshot (no ApplySnapshot)")
			}
			if err := f.opts.ApplySnapshot(msg.Seq, msg.Data); err != nil {
				return fmt.Errorf("wal: follow install snapshot %d: %w", msg.Seq, err)
			}
		case "error":
			return fmt.Errorf("wal: follow: primary refused: %s", msg.Err)
		default:
			return fmt.Errorf("wal: follow: unknown message type %q", msg.Type)
		}
	}
}

// Close drops the connection; a concurrent Run returns nil.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	return f.conn.Close()
}
