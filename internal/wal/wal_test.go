package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	recs := collect(t, l, 1)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		want := fmt.Sprintf("record-%d", i)
		if string(r.Data) != want || r.Seq != uint64(i+1) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.Seq, r.Data, i+1, want)
		}
	}
}

func TestReplayFrom(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs := collect(t, l, 15)
	if len(recs) != 6 {
		t.Fatalf("replayed %d, want 6", len(recs))
	}
	if recs[0].Seq != 15 || recs[0].Data[0] != 14 {
		t.Fatalf("first = (%d, %v)", recs[0].Seq, recs[0].Data)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]byte("x"))
	}
	l.Close()

	l2 := openT(t, dir, Options{})
	if l2.NextSeq() != 6 {
		t.Fatalf("NextSeq after reopen = %d, want 6", l2.NextSeq())
	}
	seq, err := l2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("append after reopen seq = %d, want 6", seq)
	}
	if got := len(collect(t, l2, 1)); got != 6 {
		t.Fatalf("replayed %d, want 6", got)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.Segments()); n < 3 {
		t.Fatalf("expected several segments, got %d", n)
	}
	recs := collect(t, l, 1)
	if len(recs) != 30 {
		t.Fatalf("replayed %d across segments, want 30", len(recs))
	}
	for i, r := range recs {
		if r.Data[0] != byte(i) {
			t.Fatalf("record %d has wrong payload", i)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	for i := 0; i < 5; i++ {
		l.Append([]byte("good"))
	}
	l.Close()

	// Simulate a crash mid-append: append garbage (a partial frame) to
	// the tail segment.
	segs, _ := os.ReadDir(dir)
	tail := filepath.Join(dir, segs[len(segs)-1].Name())
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}) // truncated header+data
	f.Close()

	l2 := openT(t, dir, Options{})
	recs := collect(t, l2, 1)
	if len(recs) != 5 {
		t.Fatalf("after torn tail, replayed %d records, want 5", len(recs))
	}
	// And the log accepts new appends with the right sequence.
	seq, err := l2.Append([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("seq after repair = %d, want 6", seq)
	}
	recs = collect(t, l2, 1)
	if len(recs) != 6 || string(recs[5].Data) != "after-crash" {
		t.Fatalf("post-repair replay wrong: %d records", len(recs))
	}
}

func TestTornChecksumTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	l.Close()

	// Flip a bit in the *last* record's data: treated as torn, dropped.
	segs, _ := os.ReadDir(dir)
	tail := filepath.Join(dir, segs[0].Name())
	data, _ := os.ReadFile(tail)
	data[len(data)-1] ^= 0xff
	os.WriteFile(tail, data, 0o644)

	l2 := openT(t, dir, Options{})
	recs := collect(t, l2, 1)
	if len(recs) != 1 || string(recs[0].Data) != "one" {
		t.Fatalf("replayed %v, want just 'one'", recs)
	}
}

func TestInteriorCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SegmentSize: 32})
	for i := 0; i < 10; i++ {
		l.Append(bytes.Repeat([]byte{byte(i)}, 16))
	}
	l.Close()

	// Corrupt the FIRST segment (not the tail).
	segs, _ := os.ReadDir(dir)
	first := filepath.Join(dir, segs[0].Name())
	data, _ := os.ReadFile(first)
	data[len(data)-1] ^= 0xff
	os.WriteFile(first, data, 0o644)

	_, err := Open(dir, Options{SegmentSize: 32})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with interior corruption = %v, want ErrCorrupt", err)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 40})
	for i := 0; i < 20; i++ {
		l.Append(bytes.Repeat([]byte{byte(i)}, 16))
	}
	before := len(l.Segments())
	if before < 4 {
		t.Fatalf("want several segments, got %d", before)
	}
	if err := l.TruncateBefore(15); err != nil {
		t.Fatal(err)
	}
	after := len(l.Segments())
	if after >= before {
		t.Fatalf("TruncateBefore removed nothing (%d -> %d)", before, after)
	}
	// Records ≥ 15 still replayable.
	recs := collect(t, l, 15)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records from 15, want 6", len(recs))
	}
	// Appends still work after truncation.
	if _, err := l.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRecord(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l, 1)
	if len(recs) != 1 || len(recs[0].Data) != 0 {
		t.Fatalf("empty record round-trip failed: %v", recs)
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	l.Append([]byte("a"))
	sentinel := errors.New("stop")
	err := l.Replay(1, func(Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Replay error = %v, want sentinel", err)
	}
}

// Property: any sequence of payloads round-trips bit-exactly through
// append + reopen + replay, across segment rotations.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentSize: 128})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		l2, err := Open(dir, Options{SegmentSize: 128})
		if err != nil {
			return false
		}
		defer l2.Close()
		var got [][]byte
		l2.Replay(1, func(r Record) error {
			got = append(got, r.Data)
			return nil
		})
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l.AppendBatch(nil); err != nil || seq != 0 {
		t.Fatalf("empty batch = (%d, %v), want (0, nil)", seq, err)
	}
	syncsBefore := l.Syncs()
	batch := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	seq, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first batch seq = %d, want 1", seq)
	}
	if got := l.Syncs() - syncsBefore; got != 1 {
		t.Fatalf("batch of 3 took %d fsyncs, want 1", got)
	}
	// Sequence numbering continues past the whole batch.
	seq2, err := l.Append([]byte("four"))
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != 4 {
		t.Fatalf("append after batch seq = %d, want 4", seq2)
	}
	l.Close()

	// Replay sees every record, flags masked.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(1, func(r Record) error {
		got = append(got, string(r.Data))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three", "four"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}

// TestCrashMidBatchAtEveryByte is the group-commit atomicity test: a log
// holding two single records followed by a 4-record batch is truncated at
// every byte offset. Recovery must see either none of the batch or all of
// it — never a partial batch — and single records recover individually as
// before.
func TestCrashMidBatchAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	singles := [][]byte{[]byte("alpha"), []byte("beta-beta")}
	for _, rec := range singles {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	batch := [][]byte{
		[]byte("b0"),
		bytes.Repeat([]byte("b1"), 9),
		[]byte("b2-middle"),
		bytes.Repeat([]byte("b3"), 4),
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, err := os.ReadDir(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	segName := segs[0].Name()
	full, err := os.ReadFile(filepath.Join(dir, segName))
	if err != nil {
		t.Fatal(err)
	}

	// Byte offsets at which each single record commits, and the offset at
	// which the whole batch commits (its final frame's end).
	var commitPoints []int // commitPoints[i] = bytes needed for i+1 records
	off := 0
	for _, rec := range singles {
		off += headerLen + len(rec)
		commitPoints = append(commitPoints, off)
	}
	batchStart := off
	for _, rec := range batch {
		off += headerLen + len(rec)
	}
	batchEnd := off
	_ = batchStart

	want := func(cut int) int {
		n := 0
		for _, p := range commitPoints {
			if cut >= p {
				n++
			}
		}
		if cut >= batchEnd {
			n += len(batch)
		}
		return n
	}

	all := append(append([][]byte{}, singles...), batch...)
	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(cutDir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		var got [][]byte
		if err := l2.Replay(1, func(r Record) error {
			got = append(got, r.Data)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		wantN := want(cut)
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d (batch must be all-or-nothing)", cut, len(got), wantN)
		}
		for i := range got {
			if !bytes.Equal(got[i], all[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// The repaired log accepts appends with the right sequence.
		seq, err := l2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if seq != uint64(wantN+1) {
			t.Fatalf("cut %d: post-crash seq = %d, want %d", cut, seq, wantN+1)
		}
		l2.Close()
	}
}

func TestAppendAllocs(t *testing.T) {
	// The frame encode buffer is pooled: steady-state appends must not
	// allocate (NoSync isolates the encode path from fsync syscalls).
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	data := make([]byte, 256)
	batch := [][]byte{data, data, data, data}
	if _, err := l.Append(data); err != nil {
		t.Fatal(err) // warm the pool
	}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := l.Append(data); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("Append = %.1f allocs/op, want <= 1", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("AppendBatch(4) = %.1f allocs/op, want <= 1", got)
	}
}
