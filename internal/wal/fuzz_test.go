package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestCrashAtEveryByte is the torn-write exhaustion test: a log of known
// records is truncated at *every* possible byte offset of its tail segment
// (simulating a crash mid-write), and reopening must always yield an exact
// prefix of the original records, never garbage, and must accept new
// appends afterwards.
func TestCrashAtEveryByte(t *testing.T) {
	// Build a reference log with varied record sizes in one segment.
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var records [][]byte
	for i := 0; i < 12; i++ {
		rec := bytes.Repeat([]byte{byte('a' + i)}, 1+7*i)
		records = append(records, rec)
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := os.ReadDir(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
	}
	segName := segs[0].Name()
	full, err := os.ReadFile(filepath.Join(dir, segName))
	if err != nil {
		t.Fatal(err)
	}

	// Offsets at which each record becomes complete.
	var boundaries []int
	off := 0
	for _, rec := range records {
		off += headerLen + len(rec)
		boundaries = append(boundaries, off)
	}

	for cut := 0; cut <= len(full); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(cutDir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		var got [][]byte
		if err := l2.Replay(1, func(r Record) error {
			got = append(got, r.Data)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		// Expected: the records whose boundary ≤ cut.
		wantN := sort.SearchInts(boundaries, cut+1)
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		for i := range got {
			if !bytes.Equal(got[i], records[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		// The repaired log accepts appends with the right sequence.
		seq, err := l2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if seq != uint64(wantN+1) {
			t.Fatalf("cut %d: post-crash seq = %d, want %d", cut, seq, wantN+1)
		}
		l2.Close()
	}
}

// TestCrashWithBitFlipTail extends the crash test: in addition to
// truncation, the final partial bytes are corrupted — recovery must still
// yield an exact record prefix.
func TestCrashWithBitFlipTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{NoSync: true})
	var records [][]byte
	for i := 0; i < 6; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{'x'}, i*5)))
		records = append(records, rec)
		l.Append(rec)
	}
	l.Close()
	segs, _ := os.ReadDir(dir)
	full, _ := os.ReadFile(filepath.Join(dir, segs[0].Name()))

	var boundaries []int
	off := 0
	for _, rec := range records {
		off += headerLen + len(rec)
		boundaries = append(boundaries, off)
	}

	for _, cut := range []int{5, 17, 40, 63, len(full) - 3} {
		if cut > len(full) {
			continue
		}
		data := append([]byte(nil), full[:cut]...)
		if cut > 0 {
			data[cut-1] ^= 0x55 // the very last byte is garbage
		}
		cutDir := t.TempDir()
		os.WriteFile(filepath.Join(cutDir, segs[0].Name()), data, 0o644)
		l2, err := Open(cutDir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		var got int
		l2.Replay(1, func(r Record) error {
			if !bytes.Equal(r.Data, records[got]) {
				t.Fatalf("cut %d: record %d corrupted", cut, got)
			}
			got++
			return nil
		})
		// The flipped byte invalidates at most the record containing
		// it; everything before its record boundary survives.
		maxComplete := sort.SearchInts(boundaries, cut+1)
		if got < maxComplete-1 || got > maxComplete {
			t.Fatalf("cut %d: recovered %d records, want %d or %d", cut, got, maxComplete-1, maxComplete)
		}
		l2.Close()
	}
}
