// Package wal implements a segmented write-ahead log.
//
// The BioOpera store appends every state transition of every process
// instance to this log before acting on it; crash recovery replays the log
// over the latest snapshot. Records are length-prefixed and CRC-32
// checksummed so a torn write at the tail (the only corruption an
// append-only file can suffer from a crash) is detected and the log is
// truncated to the last complete record.
//
// On-disk layout of a directory managed by this package:
//
//	wal-00000000000000000001.log   records 1..n
//	wal-00000000000000000042.log   records 42..m
//
// Each segment file is a sequence of frames:
//
//	uint32 little-endian length | uint32 little-endian CRC-32 (IEEE) of data | data
//
// The high bit of the length word is the batch-continuation flag: a frame
// with the flag set belongs to an atomic batch whose remaining frames
// follow (the final frame of a batch has the flag clear, as does every
// standalone record). A batch is committed only by its final frame, so a
// crash in the middle of a group-committed batch truncates the log back to
// the batch's first frame — batches replay all-or-nothing.
//
// Sequence numbers are implicit: the first record of a segment has the
// sequence encoded in the file name, and records are dense within and
// across segments.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bioopera/internal/obs"
)

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	headerLen = 8 // length + crc

	// batchFlag marks a frame whose batch continues in the next frame.
	batchFlag    uint32 = 1 << 31
	maxRecordLen        = 1<<31 - 1
)

// DefaultSegmentSize is the byte threshold after which a new segment file
// is started. Exported so tests can exercise rotation with tiny segments.
const DefaultSegmentSize = 4 << 20

// ErrCorrupt is returned when a record in the interior of the log (not the
// tail) fails its checksum, which indicates real corruption rather than a
// torn write.
var ErrCorrupt = errors.New("wal: corrupt record")

// framePool recycles AppendBatch's frame-encoding buffer. The buffer lives
// only between frame assembly and the file write, so pooling it removes the
// per-append allocation from the engine's checkpoint hot path.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// framePoolMax is the largest buffer the pool retains: an occasional huge
// batch should not pin its buffer for the rest of the process's life.
const framePoolMax = 1 << 20

// Record is one entry read back from the log.
type Record struct {
	Seq  uint64 // 1-based, dense
	Data []byte
}

// Options configure a Log.
type Options struct {
	// SegmentSize is the rotation threshold in bytes. Zero means
	// DefaultSegmentSize.
	SegmentSize int64
	// NoSync disables fsync after each append. Experiments use it; the
	// durability tests do not.
	NoSync bool
	// AppendLatency, when non-nil, observes the wall time of each
	// AppendBatch call (seconds, fsync included).
	AppendLatency *obs.Histogram
	// SyncLatency, when non-nil, observes the fsync portion alone.
	SyncLatency *obs.Histogram
}

// Log is a segmented write-ahead log. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	file    *os.File
	size    int64  // bytes written to current segment
	nextSeq uint64 // sequence the next Append will get
	segs    []uint64
	syncs   uint64 // fsyncs issued by appends (group-commit metric)
	closed  bool

	// commitC is closed and replaced whenever a batch commits, waking
	// WaitCommitted callers (the shipping path's notification channel).
	commitC chan struct{}
	// retain is the lowest sequence TruncateBefore must keep on disk
	// (0 = unconstrained). The shipper pins it to its slowest follower's
	// cursor so snapshots cannot truncate records a standby still needs.
	retain uint64
}

// Open opens (creating if necessary) the log in dir. It scans existing
// segments, verifies the tail, and truncates any torn final record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1, commitC: make(chan struct{})}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scan discovers segments, repairs the tail segment, and positions the
// writer after the last valid record.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segs = l.segs[:0]
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, first)
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	if len(l.segs) == 0 {
		return nil
	}
	// Count records in all but the last segment; repair the last.
	for i, first := range l.segs {
		path := filepath.Join(l.dir, segName(first))
		last := i == len(l.segs)-1
		n, validBytes, err := countRecords(path, last)
		if err != nil {
			return err
		}
		if last {
			if err := os.Truncate(path, validBytes); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.file = f
			l.size = validBytes
		}
		l.nextSeq = first + uint64(n)
	}
	return nil
}

// countRecords returns the number of committed records in the segment and
// the byte offset just past the last committed record. A record is
// committed once the frame that closes its batch (continuation flag clear)
// is intact; a torn tail — including a batch whose final frame never made
// it to disk — rolls back to the previous commit point. For non-tail
// segments a bad checksum or unterminated batch is ErrCorrupt; for the
// tail it just ends the scan (torn write).
func countRecords(path string, tail bool) (n int, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerLen]byte
	var off int64 // end of the last committed record
	var cur int64 // current scan position
	seen := 0     // records scanned, including an open batch prefix
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				if seen != n {
					if tail {
						return n, off, nil
					}
					return 0, 0, fmt.Errorf("%w: unterminated batch in %s", ErrCorrupt, path)
				}
				return n, off, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				if tail {
					return n, off, nil
				}
				return 0, 0, fmt.Errorf("%w: truncated header in %s", ErrCorrupt, path)
			}
			return 0, 0, fmt.Errorf("wal: %w", err)
		}
		raw := binary.LittleEndian.Uint32(hdr[0:4])
		length := raw &^ batchFlag
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		data := make([]byte, length)
		if _, err := io.ReadFull(f, data); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				if tail {
					return n, off, nil
				}
				return 0, 0, fmt.Errorf("%w: truncated data in %s", ErrCorrupt, path)
			}
			return 0, 0, fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(data) != sum {
			if tail {
				return n, off, nil
			}
			return 0, 0, fmt.Errorf("%w: bad checksum in %s", ErrCorrupt, path)
		}
		cur += headerLen + int64(length)
		seen++
		if raw&batchFlag == 0 {
			n = seen
			off = cur
		}
	}
}

// NextSeq returns the sequence number the next Append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Append writes data as the next record and returns its sequence number.
func (l *Log) Append(data []byte) (uint64, error) {
	seq, err := l.AppendBatch([][]byte{data})
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// AppendBatch writes all records as one atomic batch with a single fsync
// (group commit) and returns the sequence number of the first record. A
// crash mid-batch replays as if the batch was never written. An empty
// batch is a no-op.
func (l *Log) AppendBatch(records [][]byte) (uint64, error) {
	if len(records) == 0 {
		return 0, nil
	}
	var start time.Time
	if l.opts.AppendLatency != nil {
		//bioopera:allow walltime latency histogram observes real I/O time; it never feeds back into replayable state
		start = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil || l.size >= l.opts.SegmentSize {
		// Rotation happens only between batches, never inside one, so
		// a batch's frames are always contiguous in one segment (an
		// oversized batch just overshoots the threshold).
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	total := 0
	for _, data := range records {
		if len(data) > maxRecordLen {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds maximum", len(data))
		}
		total += headerLen + len(data)
	}
	bufp := framePool.Get().(*[]byte)
	buf := (*bufp)[:0]
	var hdr [headerLen]byte
	for i, data := range records {
		length := uint32(len(data))
		if i < len(records)-1 {
			length |= batchFlag
		}
		binary.LittleEndian.PutUint32(hdr[0:4], length)
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(data))
		buf = append(buf, hdr[:]...)
		buf = append(buf, data...)
	}
	_, err := l.file.Write(buf)
	// Return the buffer before the error check (no defer: the closure
	// would allocate on every append) — nothing below reads it.
	*bufp = buf
	if cap(buf) <= framePoolMax {
		framePool.Put(bufp)
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if !l.opts.NoSync {
		var syncStart time.Time
		if l.opts.SyncLatency != nil {
			//bioopera:allow walltime latency histogram observes real fsync time; it never feeds back into replayable state
			syncStart = time.Now()
		}
		if err := l.file.Sync(); err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		if l.opts.SyncLatency != nil {
			//bioopera:allow walltime latency histogram observes real fsync time; it never feeds back into replayable state
			l.opts.SyncLatency.Observe(time.Since(syncStart).Seconds())
		}
		l.syncs++
	}
	l.size += int64(total)
	seq := l.nextSeq
	l.nextSeq += uint64(len(records))
	l.notifyLocked()
	if l.opts.AppendLatency != nil {
		//bioopera:allow walltime latency histogram observes real I/O time; it never feeds back into replayable state
		l.opts.AppendLatency.Observe(time.Since(start).Seconds())
	}
	return seq, nil
}

// Syncs reports how many fsyncs the log has issued since Open (appends
// only; Close's final flush is not counted). Benchmarks use it to measure
// group-commit amortization.
func (l *Log) Syncs() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// rotateLocked closes the current segment and opens a new one whose name
// carries the next sequence number.
func (l *Log) rotateLocked() error {
	if l.file != nil {
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	path := filepath.Join(l.dir, segName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.file = f
	l.size = 0
	l.segs = append(l.segs, l.nextSeq)
	return nil
}

// Replay calls fn for every record with sequence ≥ from, in order.
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	return l.replayFlagged(from, func(r Record, _ bool) error { return fn(r) })
}

// replayFlagged is Replay with the batch-continuation flag exposed: more is
// true while the record's batch continues in the next frame.
func (l *Log) replayFlagged(from uint64, fn func(r Record, more bool) error) error {
	l.mu.Lock()
	segs := append([]uint64(nil), l.segs...)
	end := l.nextSeq
	l.mu.Unlock()
	for i, first := range segs {
		// Skip whole segments that end before `from`.
		segEnd := end
		if i+1 < len(segs) {
			segEnd = segs[i+1]
		}
		if segEnd <= from {
			continue
		}
		path := filepath.Join(l.dir, segName(first))
		if err := replaySegment(path, first, from, end, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, first, from, end uint64, fn func(r Record, more bool) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerLen]byte
	seq := first
	for seq < end {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return fmt.Errorf("wal: %w", err)
		}
		raw := binary.LittleEndian.Uint32(hdr[0:4])
		length := raw &^ batchFlag
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		data := make([]byte, length)
		if _, err := io.ReadFull(f, data); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(data) != sum {
			return fmt.Errorf("%w: seq %d in %s", ErrCorrupt, seq, path)
		}
		if seq >= from {
			if err := fn(Record{Seq: seq, Data: data}, raw&batchFlag != 0); err != nil {
				return err
			}
		}
		seq++
	}
	return nil
}

// notifyLocked wakes every WaitCommitted caller. Called with l.mu held
// whenever the committed frontier moves (append, reset) or the log closes.
func (l *Log) notifyLocked() {
	close(l.commitC)
	l.commitC = make(chan struct{})
}

// CommittedSeq returns the sequence of the newest durable record (0 when
// the log is empty). Every record below it has been written and — unless
// NoSync — fsynced: AppendBatch only advances the frontier after the batch
// is on disk, so shipping from here never leaks an uncommitted frame.
func (l *Log) CommittedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// WaitCommitted blocks until the committed frontier exceeds after, the log
// closes, or stop is closed. It returns the current frontier and whether
// the caller should keep going (false on close or stop).
func (l *Log) WaitCommitted(after uint64, stop <-chan struct{}) (uint64, bool) {
	for {
		l.mu.Lock()
		committed := l.nextSeq - 1
		ch := l.commitC
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return committed, false
		}
		if committed > after {
			return committed, true
		}
		select {
		case <-ch:
		case <-stop:
			return committed, false
		}
	}
}

// OldestSeq returns the sequence of the oldest record still on disk (the
// first record of the first segment), or the next append sequence when the
// log holds no segments. A follower whose cursor is below it must be
// bootstrapped from a snapshot instead of replayed.
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.nextSeq
	}
	return l.segs[0]
}

// SetRetainFloor pins records with sequence ≥ seq on disk: TruncateBefore
// will not remove a segment containing them even after a snapshot
// supersedes them. Zero clears the pin. The shipper holds the floor at its
// slowest follower's cursor.
func (l *Log) SetRetainFloor(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retain = seq
}

// Reset discards every segment and positions the log so the next append
// receives seq. A standby installs a bootstrap snapshot covering records
// < seq and resets its log to continue from the primary's stream.
func (l *Log) Reset(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.file != nil {
		if err := l.file.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.file = nil
	}
	for _, first := range l.segs {
		if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.segs = nil
	l.size = 0
	l.nextSeq = seq
	l.notifyLocked()
	return nil
}

// ReplayBatches calls fn once per committed batch whose first record has
// sequence ≥ from, preserving the atomic-batch grouping AppendBatch wrote
// (a standalone record is a batch of one). Shipping uses it so a standby
// re-appends exactly the primary's commit units and a crash on either side
// rolls back to the same batch boundary. from must itself be a batch
// boundary — cursors only ever advance across whole batches.
func (l *Log) ReplayBatches(from uint64, fn func(first uint64, records [][]byte) error) error {
	var batch [][]byte
	var first uint64
	err := l.replayFlagged(from, func(r Record, more bool) error {
		if len(batch) == 0 {
			first = r.Seq
		}
		batch = append(batch, r.Data)
		if more {
			return nil
		}
		err := fn(first, batch)
		batch = nil
		return err
	})
	if err != nil {
		return err
	}
	if len(batch) != 0 {
		return fmt.Errorf("%w: batch starting at %d never terminated", ErrCorrupt, first)
	}
	return nil
}

// TruncateBefore removes whole segments all of whose records have sequence
// < seq. It is called after a snapshot makes old records unnecessary. The
// segment containing seq (and the active tail) are always kept, as is any
// segment holding records at or above the retain floor.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.retain != 0 && l.retain < seq {
		seq = l.retain
	}
	var kept []uint64
	for i, first := range l.segs {
		// A segment is removable if the *next* segment starts at or
		// before seq (so every record here is < seq) and it is not
		// the active tail.
		removable := i+1 < len(l.segs) && l.segs[i+1] <= seq
		if removable {
			if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		kept = append(kept, first)
	}
	l.segs = kept
	return nil
}

// Segments returns the starting sequence numbers of the live segment files.
func (l *Log) Segments() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]uint64(nil), l.segs...)
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close syncs and closes the log. The log must not be used afterwards.
// WaitCommitted callers are woken and told to stop.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		l.notifyLocked()
	}
	if l.file == nil {
		return nil
	}
	if err := l.file.Sync(); err != nil {
		//bioopera:allow droppederr the sync failure is returned; closing the doomed file is best-effort
		l.file.Close()
		return fmt.Errorf("wal: %w", err)
	}
	err := l.file.Close()
	l.file = nil
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
