package fed

import (
	"testing"
)

func TestMintIDRoundTrip(t *testing.T) {
	id := MintID(5, "alpha", 3, 42)
	if id != "f05-alpha.3-000042" {
		t.Fatalf("MintID = %q", id)
	}
	if p := PartitionOf(id, 16); p != 5 {
		t.Fatalf("PartitionOf(%q) = %d, want 5", id, p)
	}
	if m := MemberOf(id); m != "alpha" {
		t.Fatalf("MemberOf(%q) = %q, want alpha", id, m)
	}
}

func TestMintIDMemberWithDots(t *testing.T) {
	// Member names may carry dots (hostnames); the boot epoch is the part
	// after the LAST dot.
	id := MintID(7, "node.example.org", 12, 1)
	if m := MemberOf(id); m != "node.example.org" {
		t.Fatalf("MemberOf(%q) = %q", id, m)
	}
	if p := PartitionOf(id, 16); p != 7 {
		t.Fatalf("PartitionOf(%q) = %d", id, p)
	}
}

func TestPartitionOfLegacyIDs(t *testing.T) {
	// Engine-generated p-sequence IDs hash; the mapping just has to be
	// deterministic and in range.
	for _, id := range []string{"p0", "p17", "workflow-x"} {
		p := PartitionOf(id, 16)
		if p < 0 || p >= 16 {
			t.Fatalf("PartitionOf(%q) = %d out of range", id, p)
		}
		if q := PartitionOf(id, 16); q != p {
			t.Fatalf("PartitionOf(%q) unstable: %d then %d", id, p, q)
		}
	}
}

func TestSuccessorOfDeterministicAndComplete(t *testing.T) {
	live := []string{"alpha", "beta", "gamma"}
	counts := map[string]int{}
	for p := 0; p < 64; p++ {
		s := SuccessorOf(p, live)
		if s == "" {
			t.Fatalf("partition %d has no successor", p)
		}
		if s2 := SuccessorOf(p, live); s2 != s {
			t.Fatalf("partition %d successor unstable: %q then %q", p, s, s2)
		}
		counts[s]++
	}
	for _, name := range live {
		if counts[name] == 0 {
			t.Fatalf("member %q got no partitions: %v", name, counts)
		}
	}
	if s := SuccessorOf(3, nil); s != "" {
		t.Fatalf("SuccessorOf with no live members = %q, want empty", s)
	}
}

func TestSuccessorMinimalReshuffle(t *testing.T) {
	// Rendezvous hashing: removing one member must only move the removed
	// member's partitions.
	before := make(map[int]string)
	for p := 0; p < 64; p++ {
		before[p] = SuccessorOf(p, []string{"alpha", "beta", "gamma"})
	}
	for p := 0; p < 64; p++ {
		after := SuccessorOf(p, []string{"alpha", "gamma"})
		if before[p] != "beta" && after != before[p] {
			t.Fatalf("partition %d moved %q → %q though its owner stayed live",
				p, before[p], after)
		}
	}
}
