// Federation RPC runs in real time: dial and call deadlines here bound
// waits on remote servers, never the deterministic trace.
//bioopera:allow walltime file-wide: federation RPC deadlines are wall-clock by contract

package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/remote"
)

// ErrClientClosed fails calls on a closed (or failed) client connection.
var ErrClientClosed = errors.New("fed: client connection closed")

// RedirectError reports that the called member does not own the instance;
// Member names the owner it believes is current (Addr when known). The
// gateway turns it into a route refresh and retry.
type RedirectError struct {
	Member string
	Addr   string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("fed: not the owner; redirected to %q", e.Member)
}

// DefaultCallTimeout bounds a Call when the caller passes zero.
const DefaultCallTimeout = 10 * time.Second

// Client is one multiplexed federation connection — to a member or to a
// gateway (both speak the same frames). Calls are correlated by frame ID,
// so many goroutines may call concurrently over the one connection.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes
	enc *json.Encoder

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan remote.FedFrame
	err     error // set once the read loop exits
	closed  bool

	done chan struct{} // closed when the read loop exits
}

// DialClient connects to a federation endpoint.
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		pending: make(map[uint64]chan remote.FedFrame),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes responses to their waiting calls; any decode or
// connection error fails every pending and future call.
func (c *Client) readLoop() {
	dec := json.NewDecoder(c.conn)
	for {
		var f remote.FedFrame
		if err := dec.Decode(&f); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		if f.Type != remote.MsgFedResponse {
			continue
		}
		c.mu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	close(c.done)
}

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// CallRaw sends one request frame and waits for its response, leaving the
// params and result encoding to the caller — the gateway forwards frames
// it never decodes. A response with OK unset maps to *RedirectError or a
// plain error.
func (c *Client) CallRaw(method, instance string, params json.RawMessage, timeout time.Duration) (remote.FedFrame, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	ch := make(chan remote.FedFrame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return remote.FedFrame{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	f := remote.FedFrame{
		Type: remote.MsgFedRequest, ID: id,
		Method: method, Instance: instance, Params: params,
	}
	c.wmu.Lock()
	err := c.enc.Encode(f)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return remote.FedFrame{}, fmt.Errorf("%w: %v", ErrClientClosed, err)
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return remote.FedFrame{}, err
		}
		if !resp.OK {
			if resp.Redirect != "" {
				return resp, &RedirectError{Member: resp.Redirect, Addr: resp.RedirectAddr}
			}
			return resp, errors.New(resp.Error)
		}
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return remote.FedFrame{}, fmt.Errorf("fed: %s call timed out after %v", method, timeout)
	}
}

// call marshals params, runs CallRaw, and unmarshals the result into out
// (skipped when out is nil).
func (c *Client) call(method, instance string, params, out any, timeout time.Duration) error {
	var raw json.RawMessage
	if params != nil {
		data, err := json.Marshal(params)
		if err != nil {
			return err
		}
		raw = data
	}
	resp, err := c.CallRaw(method, instance, raw, timeout)
	if err != nil {
		return err
	}
	if out != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// Start instantiates a template somewhere in the federation and returns
// the minted instance ID.
func (c *Client) Start(req StartReq) (string, error) {
	var res StartRes
	if err := c.call(MethodStart, "", req, &res, 0); err != nil {
		return "", err
	}
	return res.ID, nil
}

// Status reads an instance's current state.
func (c *Client) Status(id string) (StateRes, error) {
	var res StateRes
	err := c.call(MethodStatus, id, nil, &res, 0)
	return res, err
}

// Wait blocks until the instance is terminal or the timeout elapses.
func (c *Client) Wait(id string, timeout time.Duration) (StateRes, error) {
	var res StateRes
	err := c.call(MethodWait, id, WaitReq{TimeoutMs: timeout.Milliseconds()}, &res,
		timeout+DefaultCallTimeout)
	return res, err
}

// Resume restarts a suspended instance.
func (c *Client) Resume(id string) error {
	return c.call(MethodResume, id, nil, nil, 0)
}

// Suspend stops dispatching an instance's activities.
func (c *Client) Suspend(id string, graceful bool) error {
	return c.call(MethodSuspend, id, SuspendReq{Graceful: graceful}, nil, 0)
}

// Abort fails an instance on user request.
func (c *Client) Abort(id, reason string) error {
	return c.call(MethodAbort, id, AbortReq{Reason: reason}, nil, 0)
}

// Signal delivers an external event to an instance.
func (c *Client) Signal(id, event string, payload map[string]ocr.Value) error {
	return c.call(MethodSignal, id, SignalReq{Event: event, Payload: payload}, nil, 0)
}

// SetParameter changes one whiteboard value.
func (c *Client) SetParameter(id, name string, v ocr.Value) error {
	return c.call(MethodSetParam, id, SetParamReq{Name: name, Value: v}, nil, 0)
}

// Lineage fetches an instance's provenance graph as raw JSON.
func (c *Client) Lineage(id string) (json.RawMessage, error) {
	resp, err := c.CallRaw(MethodLineage, id, nil, 0)
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Members fetches the membership and routing snapshot.
func (c *Client) Members() (MembersView, error) {
	var res MembersView
	err := c.call(MethodMembers, "", nil, &res, 0)
	return res, err
}
