// Package fed federates N engine servers into one BioOpera cluster: each
// member owns a partition of the instance-ID space, a thin gateway routes
// driver RPCs to the owning member over the JSON-over-TCP framing shared
// with the worker protocol (internal/remote), and server-level failover
// promotes the worker-lease mechanism to whole servers — when a member's
// heartbeats lapse, the designated peer claims its partitions' leases
// under a new incarnation and adopts its instances through the engine's
// partition-scoped Recover.
//
// Ownership has two layers:
//
//   - Placement is rendezvous hashing over the live membership view (a
//     cluster.Directory, one node per member): every member computes the
//     same successor for a partition from the same view, so orphaned
//     partitions converge on one claimant without coordination.
//   - Authority is a lease per partition, persisted in the store's
//     configuration space (LeaseTable). A claim is a compare-and-swap
//     against the last observed lease under a fresh incarnation from a
//     monotonic epoch counter; stale incarnations are rejected, so a
//     partitioned ex-owner cannot overwrite its successor (split-brain
//     fencing), and racing claimants resolve to exactly one winner.
//
// Ownership is sticky for busy partitions: a live owner is never
// preempted, and instances never migrate between live members. Idle
// partitions rebalance — an owner hands an empty partition back to the
// pool (lease to unclaimed, fresh incarnation) when a live peer is its
// rendezvous successor, so members joining after the first claims still
// pick up a fair share.
//
// Instance IDs mint as "f<partition>-<member>.<epoch>-<seq>": the
// partition routes without any lookup, the member names where the
// instance lives (shared-nothing deployments route to the minting member
// while it is alive), and the boot epoch keeps IDs unique across member
// restarts.
package fed

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultPartitions is the ownership partition count when a Config leaves
// it zero. All members of one federation must agree on the count.
const DefaultPartitions = 16

// fnv64 hashes a string with FNV-1a, the same family the engine's shard
// table uses.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// MintID builds a partition-encoded instance ID. seq is per (member,
// epoch); epoch is the member's boot incarnation, so a restarted member
// can never re-mint an ID already in the store.
func MintID(partition int, member string, epoch, seq uint64) string {
	return fmt.Sprintf("f%02d-%s.%d-%06d", partition, member, epoch, seq)
}

// PartitionOf maps an instance ID to its ownership partition. Minted IDs
// carry the partition explicitly; any other ID (the single-server "p0001"
// form) hashes, so a federation can adopt a store written by a
// standalone engine.
func PartitionOf(id string, partitions int) int {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	if len(id) > 1 && id[0] == 'f' {
		if dash := strings.IndexByte(id, '-'); dash > 1 {
			if p, err := strconv.Atoi(id[1:dash]); err == nil && p >= 0 {
				return p % partitions
			}
		}
	}
	return int(fnv64(id) % uint64(partitions))
}

// MemberOf extracts the minting member from a partition-encoded ID ("" for
// foreign forms). Shared-nothing gateways prefer it over the partition
// route while the member is alive, because the instance's records exist
// only in that member's store.
func MemberOf(id string) string {
	if len(id) < 2 || id[0] != 'f' {
		return ""
	}
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return ""
	}
	rest := id[dash+1:]
	dot := strings.LastIndexByte(rest, '.')
	if dot <= 0 {
		return ""
	}
	return rest[:dot]
}

// SuccessorOf picks the partition's owner among the live members by
// rendezvous (highest-random-weight) hashing: every member scoring the
// same live set picks the same winner, and a member's death moves only its
// own partitions. Ties break on the lexically smaller name so the choice
// is total. Returns "" for an empty live set.
func SuccessorOf(partition int, live []string) string {
	var (
		best      string
		bestScore uint64
	)
	for _, name := range live {
		// Partition first: FNV-1a avalanches a difference through every
		// byte that follows it, so leading with the partition spreads
		// partitions across members; trailing with it would let the name
		// bytes dominate the score.
		score := fnv64(fmt.Sprintf("%d#%s", partition, name))
		if best == "" || score > bestScore || (score == bestScore && name < best) {
			best, bestScore = name, score
		}
	}
	return best
}
