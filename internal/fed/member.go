// Federation membership runs in real time: heartbeat cadence, failure
// detection, and failover pacing are wall-clock by design — the
// deterministic trace never passes through this layer.
//bioopera:allow walltime file-wide: membership gossip and failure detection are wall-clock by design

package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/remote"
	"bioopera/internal/store"
)

// Config configures one federation member: an engine server that owns a
// slice of the instance-ID space and serves routed RPCs for it.
type Config struct {
	// Name identifies this member; it is baked into minted instance IDs
	// and lease records, so it must be unique and stable per store.
	Name string
	// ListenAddr is the federation listener (RPCs + gossip). ":0" picks
	// a free port; Addr reports the bound address.
	ListenAddr string
	// Join lists peer federation addresses to dial at boot; further
	// members are learned from gossip.
	Join []string
	// Store persists instances and the lease table. In-a-box and
	// shared-store federations pass the same store to every member,
	// which is what makes peer failover able to adopt a dead member's
	// instances; shared-nothing members pass their own.
	Store store.Store
	// Library resolves external bindings. Required.
	Library *core.Library
	// Workers sizes the member's local execution pool.
	Workers int
	// Partitions is the federation-wide ownership partition count
	// (default DefaultPartitions); all members must agree.
	Partitions int
	// HeartbeatEvery paces gossip (default 1s); HeartbeatTimeout is the
	// silence after which a peer is declared dead (default 3×Every).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// LazyRecovery adopts suspended instances as stubs on failover.
	LazyRecovery bool
	// Metrics/EventRing/OnEvent/OnError wire observability through to
	// the engine and the federation layer.
	Metrics   *obs.Registry
	EventRing *obs.Ring
	OnEvent   func(core.Event)
	OnError   func(error)
}

// peerState is everything known about one other member.
type peerState struct {
	name       string
	addr       string
	inc        uint64
	up         bool
	lastBeat   time.Time
	deadAt     time.Time // when the failure detector declared it down
	partitions []int     // last gossiped owned set
	link       *peerLink // active duplex conn, nil while disconnected
}

// peerLink is one established gossip connection (either side may have
// dialed); writes serialize on wmu.
type peerLink struct {
	conn net.Conn
	wmu  sync.Mutex
	enc  *json.Encoder
}

func (l *peerLink) send(f remote.FedFrame) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.enc.Encode(f)
}

// Member is one federated engine server.
type Member struct {
	cfg    Config
	inc    uint64 // boot incarnation (ID minting)
	rt     *core.LocalRuntime
	leases *LeaseTable
	ln     net.Listener
	dir    *cluster.Directory // membership view: one node per member
	met    *fedMetrics
	booted time.Time

	mu     sync.Mutex
	peers  map[string]*peerState
	dialme map[string]bool // candidate addresses not yet identified
	owned  map[int]bool
	route  map[int]Lease // last observed lease per partition
	seq    uint64        // instance mint sequence
	mintRR int           // round-robin cursor over owned partitions
	conns  map[net.Conn]bool
	closed bool

	stopc chan struct{}
	wg    sync.WaitGroup
}

// NewMember boots a member: it takes a fresh boot incarnation from the
// lease table, starts its engine over a local pool gated by the ownership
// partition, begins gossiping with its Join seeds, and reclaims the
// partitions its leases say it owned before a restart. It does not block
// for the mesh to form; ownership settles via the reconcile loop.
func NewMember(cfg Config) (*Member, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("fed: Config.Name is required")
	}
	if cfg.Store == nil || cfg.Library == nil {
		return nil, fmt.Errorf("fed: Config.Store and Config.Library are required")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = DefaultPartitions
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * cfg.HeartbeatEvery
	}
	m := &Member{
		cfg:    cfg,
		leases: NewLeaseTable(cfg.Store, cfg.Partitions),
		dir:    cluster.NewDirectory(),
		met:    newFedMetrics(cfg.Metrics),
		booted: time.Now(),
		peers:  make(map[string]*peerState),
		dialme: make(map[string]bool),
		owned:  make(map[int]bool),
		route:  make(map[int]Lease),
		conns:  make(map[net.Conn]bool),
		stopc:  make(chan struct{}),
	}
	inc, err := m.leases.NextIncarnation()
	if err != nil {
		return nil, err
	}
	m.inc = inc
	rt, err := core.NewLocalRuntime(core.LocalConfig{
		Workers:      cfg.Workers,
		Store:        cfg.Store,
		Library:      cfg.Library,
		Owns:         m.ownsInstance,
		LazyRecovery: cfg.LazyRecovery,
		Metrics:      cfg.Metrics,
		EventRing:    cfg.EventRing,
		OnEvent:      cfg.OnEvent,
		OnError:      cfg.OnError,
	})
	if err != nil {
		return nil, err
	}
	m.rt = rt
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		rt.Close()
		return nil, err
	}
	m.ln = ln
	m.dir.Join(cluster.NodeView{Name: cfg.Name, Up: true, CPUs: 1, Speed: 1})
	for _, addr := range cfg.Join {
		m.dialme[addr] = true
	}
	registerOwnedGauge(cfg.Metrics, cfg.Name, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.owned))
	})
	m.wg.Add(2)
	go m.acceptLoop()
	go m.membershipLoop()
	return m, nil
}

// Addr reports the bound federation listen address.
func (m *Member) Addr() string { return m.ln.Addr().String() }

// Name reports the member's identity.
func (m *Member) Name() string { return m.cfg.Name }

// Incarnation reports the member's boot incarnation.
func (m *Member) Incarnation() uint64 { return m.inc }

// Runtime exposes the member's engine runtime (monitor wiring, tests).
func (m *Member) Runtime() *core.LocalRuntime { return m.rt }

// Leases exposes the member's lease table (tests, tools).
func (m *Member) Leases() *LeaseTable { return m.leases }

// OwnedPartitions lists the partitions this member currently owns, sorted.
func (m *Member) OwnedPartitions() []int {
	m.mu.Lock()
	out := make([]int, 0, len(m.owned))
	for p := range m.owned {
		out = append(out, p)
	}
	m.mu.Unlock()
	sort.Ints(out)
	return out
}

// ownsInstance is the engine's ownership gate: true when the instance's
// partition is currently held by this member.
func (m *Member) ownsInstance(id string) bool {
	p := PartitionOf(id, m.cfg.Partitions)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[p]
}

// Close stops gossip, the listener and every connection, shuts the engine
// down, and joins the member's goroutines. Ownership is dropped first, so
// the engine's write fence (core.Options.Owns) discards any checkpoint
// still in flight: from the federation's point of view Close is a crash —
// peers adopt this member's partitions from its last committed checkpoint,
// and a worker finishing into the closed runtime can no longer write over
// (or archive away) the records its successor recovers from. The store
// stays open — the caller owns it.
func (m *Member) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.owned = make(map[int]bool)
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	var links []*peerLink
	for _, p := range m.peers {
		if p.link != nil {
			links = append(links, p.link)
			p.link = nil
		}
	}
	m.mu.Unlock()
	close(m.stopc)
	//bioopera:allow droppederr member teardown is best-effort; nothing outlives it to report to
	m.ln.Close()
	for _, c := range conns {
		//bioopera:allow droppederr hanging up tracked connections on teardown is best-effort
		c.Close()
	}
	for _, l := range links {
		//bioopera:allow droppederr hanging up gossip links on teardown is best-effort
		l.conn.Close()
	}
	m.rt.Close()
	m.wg.Wait()
}

// trackConn registers an accepted or dialed connection for Close; it
// reports false when the member is already closing.
func (m *Member) trackConn(c net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[c] = true
	return true
}

func (m *Member) untrackConn(c net.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// acceptLoop serves inbound connections: the first frame tells whether the
// peer is a member (fed-hello, duplex gossip) or a client/gateway
// (fed-request).
func (m *Member) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !m.trackConn(conn) {
			//bioopera:allow droppederr refusing the late connection during teardown is best-effort
			conn.Close()
			return
		}
		m.wg.Add(1)
		go m.handleConn(conn)
	}
}

func (m *Member) handleConn(conn net.Conn) {
	defer m.wg.Done()
	defer m.untrackConn(conn)
	defer conn.Close()
	dec := json.NewDecoder(conn)
	var first remote.FedFrame
	if err := dec.Decode(&first); err != nil {
		return
	}
	switch first.Type {
	case remote.MsgFedHello:
		link := &peerLink{conn: conn, enc: json.NewEncoder(conn)}
		// Identify ourselves back, then treat the conn as a gossip
		// channel: the dialer learns our identity from this reply.
		if err := link.send(remote.FedFrame{Type: remote.MsgFedHello, From: m.self()}); err != nil {
			return
		}
		m.notePeer(first.From, link)
		m.gossipReadLoop(dec, first.From.Name)
	case remote.MsgFedRequest:
		m.serveRPC(conn, dec, first)
	}
}

// gossipReadLoop consumes a peer's beats until the connection drops.
func (m *Member) gossipReadLoop(dec *json.Decoder, peer string) {
	for {
		var f remote.FedFrame
		if err := dec.Decode(&f); err != nil {
			m.peerLinkDown(peer)
			return
		}
		switch f.Type {
		case remote.MsgFedGossip, remote.MsgFedHello:
			m.notePeer(f.From, nil)
			m.noteMembers(f.Members)
		}
	}
}

// peerLinkDown clears a peer's link; liveness itself is decided by the
// heartbeat timeout, not the connection (a dropped conn redials).
func (m *Member) peerLinkDown(name string) {
	m.mu.Lock()
	if p := m.peers[name]; p != nil {
		p.link = nil
	}
	m.mu.Unlock()
}

// self assembles this member's gossip identity.
func (m *Member) self() remote.FedMember {
	return remote.FedMember{
		Name: m.cfg.Name, Addr: m.Addr(), Incarnation: m.inc, Up: true,
		Partitions: m.OwnedPartitions(),
	}
}

// notePeer records a directly heard member (hello or gossip sender): it
// refreshes the heartbeat clock, joins the membership directory, and
// installs the link when one was just established.
func (m *Member) notePeer(from remote.FedMember, link *peerLink) {
	if from.Name == "" || from.Name == m.cfg.Name {
		return
	}
	wasUp := true
	m.mu.Lock()
	p := m.peers[from.Name]
	if p == nil {
		p = &peerState{name: from.Name}
		m.peers[from.Name] = p
		wasUp = false
	} else {
		wasUp = p.up
	}
	if from.Addr != "" {
		p.addr = from.Addr
		delete(m.dialme, from.Addr)
	}
	p.inc = from.Incarnation
	p.lastBeat = time.Now()
	p.up = true
	p.deadAt = time.Time{}
	if from.Partitions != nil {
		p.partitions = from.Partitions
	}
	if link != nil {
		p.link = link
	}
	m.mu.Unlock()
	m.dir.Join(cluster.NodeView{Name: from.Name, Up: true, CPUs: 1, Speed: 1})
	m.dir.SetExtLoad(from.Name, from.Load)
	if !wasUp {
		m.rt.Engine().EmitInfra(core.Event{Kind: core.EvNodeJoined,
			Node: "member/" + from.Name, Detail: fmt.Sprintf("incarnation=%d", from.Incarnation)})
	}
}

// noteMembers learns dial candidates from a gossiped membership view;
// liveness is only ever granted by hearing a member directly.
func (m *Member) noteMembers(members []remote.FedMember) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, fm := range members {
		if fm.Name == "" || fm.Name == m.cfg.Name || fm.Addr == "" {
			continue
		}
		if p := m.peers[fm.Name]; p != nil {
			if p.addr == "" {
				p.addr = fm.Addr
			}
			continue
		}
		m.dialme[fm.Addr] = true
	}
}

// membershipLoop is the member's heartbeat: every HeartbeatEvery it dials
// unconnected peers, sends gossip on every link, advances the failure
// detector, and reconciles partition ownership against the lease table.
func (m *Member) membershipLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.HeartbeatEvery)
	defer t.Stop()
	m.dialPending()
	m.reconcile()
	for {
		select {
		case <-m.stopc:
			return
		case <-t.C:
			m.dialPending()
			m.gossip()
			m.detectFailures()
			m.reconcile()
		}
	}
}

// dialPending connects to every known-but-unlinked peer address.
func (m *Member) dialPending() {
	m.mu.Lock()
	var addrs []string
	for addr := range m.dialme {
		addrs = append(addrs, addr)
	}
	for _, p := range m.peers {
		if p.link == nil && p.addr != "" {
			addrs = append(addrs, p.addr)
		}
	}
	m.mu.Unlock()
	sort.Strings(addrs)
	for _, addr := range addrs {
		if addr == m.Addr() {
			m.mu.Lock()
			delete(m.dialme, addr)
			m.mu.Unlock()
			continue
		}
		m.dialPeer(addr)
	}
}

// dialPeer establishes one outbound gossip link: hello out, hello back.
func (m *Member) dialPeer(addr string) {
	conn, err := net.DialTimeout("tcp", addr, m.cfg.HeartbeatEvery)
	if err != nil {
		return
	}
	if !m.trackConn(conn) {
		//bioopera:allow droppederr dropping the just-dialed conn after losing to Close is best-effort
		conn.Close()
		return
	}
	link := &peerLink{conn: conn, enc: json.NewEncoder(conn)}
	if err := link.send(remote.FedFrame{Type: remote.MsgFedHello, From: m.self()}); err != nil {
		m.untrackConn(conn)
		//bioopera:allow droppederr the hello already failed; closing the conn is best-effort
		conn.Close()
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.untrackConn(conn)
		defer conn.Close()
		dec := json.NewDecoder(conn)
		var hello remote.FedFrame
		if err := dec.Decode(&hello); err != nil || hello.From.Name == "" {
			return
		}
		m.mu.Lock()
		delete(m.dialme, addr)
		known := m.peers[hello.From.Name]
		duplicate := known != nil && known.link != nil
		m.mu.Unlock()
		if duplicate {
			// Simultaneous dials: keep the established link, use this
			// conn read-only until it drops.
			m.notePeer(hello.From, nil)
		} else {
			m.notePeer(hello.From, link)
		}
		m.gossipReadLoop(dec, hello.From.Name)
	}()
}

// gossip sends one beat to every linked peer.
func (m *Member) gossip() {
	frame := remote.FedFrame{Type: remote.MsgFedGossip, From: m.self(), Members: m.memberViews(false)}
	m.mu.Lock()
	var links []*peerLink
	for _, p := range m.peers {
		if p.link != nil {
			links = append(links, p.link)
		}
	}
	m.mu.Unlock()
	for _, l := range links {
		_ = l.send(frame) // a broken link is re-dialed next tick
	}
}

// memberViews assembles the membership snapshot (self first, peers
// sorted); includeSelfLoad is reserved for monitor surfaces.
func (m *Member) memberViews(includeDead bool) []remote.FedMember {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []remote.FedMember{{
		Name: m.cfg.Name, Addr: m.Addr(), Incarnation: m.inc, Up: true,
		Partitions: ownedSorted(m.owned),
	}}
	names := make([]string, 0, len(m.peers))
	for name := range m.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := m.peers[name]
		if !p.up && !includeDead {
			continue
		}
		out = append(out, remote.FedMember{
			Name: p.name, Addr: p.addr, Incarnation: p.inc, Up: p.up,
			Partitions: append([]int(nil), p.partitions...),
		})
	}
	return out
}

func ownedSorted(owned map[int]bool) []int {
	out := make([]int, 0, len(owned))
	for p := range owned {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// detectFailures declares peers dead after HeartbeatTimeout of silence.
func (m *Member) detectFailures() {
	now := time.Now()
	cutoff := now.Add(-m.cfg.HeartbeatTimeout)
	m.mu.Lock()
	type beat struct {
		name string
		last time.Time
		up   bool
	}
	checks := make([]beat, 0, len(m.peers))
	for name, p := range m.peers {
		checks = append(checks, beat{name: name, last: p.lastBeat, up: p.up})
	}
	sort.Slice(checks, func(i, j int) bool { return checks[i].name < checks[j].name })
	var downed []string
	for _, c := range checks {
		if c.up && c.last.Before(cutoff) {
			p := m.peers[c.name]
			p.up = false
			p.deadAt = now
			downed = append(downed, c.name)
		}
	}
	m.mu.Unlock()
	for _, name := range downed {
		m.dir.SetUp(name, false)
		m.rt.Engine().EmitInfra(core.Event{Kind: core.EvNodeDown,
			Node: "member/" + name, Detail: "heartbeat lapsed"})
	}
}

// liveMembers lists the members the failure detector currently believes
// alive (always including self), sorted — the rendezvous candidate set.
func (m *Member) liveMembers() []string {
	live := []string{m.cfg.Name}
	for _, v := range m.dir.Nodes() {
		if v.Up && v.Name != m.cfg.Name {
			live = append(live, v.Name)
		}
	}
	sort.Strings(live)
	return live
}

// settled reports whether this member may make first claims: either it has
// no seeds, every seed resolved to a live peer, or the join grace expired.
// The grace keeps a freshly booted member from claiming partitions its
// not-yet-heard peers already own.
func (m *Member) settled() bool {
	if len(m.cfg.Join) == 0 {
		return true
	}
	if time.Since(m.booted) > 2*m.cfg.HeartbeatTimeout {
		return true
	}
	m.mu.Lock()
	pending := len(m.dialme)
	m.mu.Unlock()
	return pending == 0
}

// reconcile is the ownership engine, run every heartbeat: it reads the
// lease table, re-claims partitions this member held before a restart,
// claims unowned partitions and dead members' partitions for which it is
// the rendezvous successor, drops partitions whose lease another member
// won, and hands empty partitions whose rendezvous successor is another
// live member back to the pool so late joiners pick up a fair share.
// Claims are CAS'd; a lost race just updates the route.
func (m *Member) reconcile() {
	leases, err := m.leases.All()
	if err != nil {
		m.reportErr(fmt.Errorf("fed: %s: read leases: %w", m.cfg.Name, err))
		return
	}
	live := m.liveMembers()
	settled := m.settled()
	now := time.Now()

	type claimTask struct {
		prev      Lease
		prevOwner string
		deadAt    time.Time
	}
	var claims []claimTask
	var handoffs []Lease
	var lost []int

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	for p, l := range leases {
		m.route[p] = l
		switch {
		case l.Owner == m.cfg.Name:
			if !m.owned[p] {
				// Restart path: the store says this partition was ours;
				// re-claim under a fresh incarnation and re-adopt.
				claims = append(claims, claimTask{prev: l, prevOwner: l.Owner})
			} else if s := SuccessorOf(p, live); s != "" && s != m.cfg.Name {
				// Rebalance: a live peer is this partition's rendezvous
				// successor (it joined after we claimed). Candidate for
				// handoff once the partition carries no instances.
				handoffs = append(handoffs, l)
			}
		case m.owned[p]:
			// Fenced: someone else's claim won — stop serving it.
			delete(m.owned, p)
			lost = append(lost, p)
		case l.Owner == "":
			if settled && SuccessorOf(p, live) == m.cfg.Name {
				claims = append(claims, claimTask{prev: l})
			}
		default:
			peer := m.peers[l.Owner]
			ownerDead := peer != nil && !peer.up
			ownerUnknown := peer == nil && settled &&
				now.Sub(m.booted) > 2*m.cfg.HeartbeatTimeout
			if (ownerDead || ownerUnknown) && SuccessorOf(p, live) == m.cfg.Name {
				ct := claimTask{prev: l, prevOwner: l.Owner}
				if peer != nil {
					ct.deadAt = peer.deadAt
				}
				claims = append(claims, ct)
			}
		}
	}
	m.mu.Unlock()

	for _, p := range lost {
		m.rt.Engine().EmitInfra(core.Event{Kind: core.EvNodeDown,
			Node:   "member/" + m.cfg.Name,
			Detail: fmt.Sprintf("partition %d lease lost", p)})
	}
	m.handOff(handoffs)
	if len(claims) == 0 {
		return
	}

	claimed := make(map[int]bool)
	transfers := 0
	var failoverFrom map[string]time.Time
	for _, ct := range claims {
		inc, err := m.leases.NextIncarnation()
		if err != nil {
			m.reportErr(fmt.Errorf("fed: %s: claim epoch: %w", m.cfg.Name, err))
			return
		}
		next := Lease{Partition: ct.prev.Partition, Owner: m.cfg.Name, Incarnation: inc}
		if err := m.leases.Claim(ct.prev, next); err != nil {
			var conflict *ConflictError
			if errors.As(err, &conflict) {
				// Lost the race: remember the winner for routing.
				m.mu.Lock()
				m.route[ct.prev.Partition] = conflict.Current
				m.mu.Unlock()
				continue
			}
			m.reportErr(fmt.Errorf("fed: %s: claim partition %d: %w", m.cfg.Name, ct.prev.Partition, err))
			continue
		}
		claimed[ct.prev.Partition] = true
		m.mu.Lock()
		m.owned[ct.prev.Partition] = true
		m.route[ct.prev.Partition] = next
		m.mu.Unlock()
		if ct.prevOwner != "" && ct.prevOwner != m.cfg.Name {
			transfers++
			if !ct.deadAt.IsZero() {
				if failoverFrom == nil {
					failoverFrom = make(map[string]time.Time)
				}
				failoverFrom[ct.prevOwner] = ct.deadAt
			}
		}
	}
	if len(claimed) == 0 {
		return
	}

	// Adopt the claimed partitions' instances through the partition-scoped
	// recovery entry point; already-registered instances are skipped, so
	// re-running after a partial claim is safe.
	parts := m.cfg.Partitions
	n, err := m.rt.Engine().RecoverOwned(func(id string) bool {
		return claimed[PartitionOf(id, parts)]
	})
	if err != nil {
		m.reportErr(fmt.Errorf("fed: %s: recover claimed partitions: %w", m.cfg.Name, err))
	}
	m.met.transfers.Add(uint64(transfers))
	deadOwners := make([]string, 0, len(failoverFrom))
	for owner := range failoverFrom {
		deadOwners = append(deadOwners, owner)
	}
	sort.Strings(deadOwners)
	for _, owner := range deadOwners {
		m.met.failoverSec.Observe(time.Since(failoverFrom[owner]).Seconds())
	}
	m.rt.Engine().EmitInfra(core.Event{Kind: core.EvServerRecovered,
		Node:   "member/" + m.cfg.Name,
		Detail: fmt.Sprintf("claimed %d partitions, adopted %d instances", len(claimed), n)})
	m.rt.Bump()
}

// handOff releases empty owned partitions whose rendezvous successor is
// another live member: the lease goes back to unclaimed under a fresh
// incarnation and the successor claims it on its next reconcile pass.
// Partitions carrying instances stay put — moving live state is what
// failover is for — so rebalancing only ever transfers idle ownership.
func (m *Member) handOff(handoffs []Lease) {
	for _, l := range handoffs {
		if m.partitionBusy(l.Partition) {
			continue
		}
		inc, err := m.leases.NextIncarnation()
		if err != nil {
			m.reportErr(fmt.Errorf("fed: %s: handoff epoch: %w", m.cfg.Name, err))
			return
		}
		next := Lease{Partition: l.Partition, Incarnation: inc}
		if err := m.leases.Claim(l, next); err != nil {
			var conflict *ConflictError
			if errors.As(err, &conflict) {
				next = conflict.Current
			} else {
				m.reportErr(fmt.Errorf("fed: %s: hand off partition %d: %w", m.cfg.Name, l.Partition, err))
				continue
			}
		}
		m.mu.Lock()
		delete(m.owned, l.Partition)
		m.route[l.Partition] = next
		m.mu.Unlock()
	}
}

// partitionBusy reports whether any instance of the partition is
// registered with this member's engine. Terminal instances count too: the
// records a monitor can still query should move owners only through the
// lease protocol's recovery path, never silently.
func (m *Member) partitionBusy(p int) bool {
	for _, in := range m.rt.Engine().Instances() {
		if PartitionOf(in.ID, m.cfg.Partitions) == p {
			return true
		}
	}
	return false
}

func (m *Member) reportErr(err error) {
	if m.cfg.OnError != nil {
		m.cfg.OnError(err)
	}
}

// ownerOf resolves a partition's current owner for redirects: this member,
// the lease table's answer, or the freshest gossip.
func (m *Member) ownerOf(p int) (name, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owned[p] {
		return m.cfg.Name, m.Addr()
	}
	if l, ok := m.route[p]; ok && l.Owner != "" && l.Owner != m.cfg.Name {
		if peer := m.peers[l.Owner]; peer != nil {
			return l.Owner, peer.addr
		}
		return l.Owner, ""
	}
	names := make([]string, 0, len(m.peers))
	for name := range m.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		peer := m.peers[name]
		for _, pp := range peer.partitions {
			if pp == p {
				return peer.name, peer.addr
			}
		}
	}
	return "", ""
}

// pickPartition chooses the partition for a freshly minted instance,
// rotating over the owned set so load spreads across this member's
// partitions (keeping any single failover from moving everything).
func (m *Member) pickPartition() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.owned) == 0 {
		return 0, ErrNoPartition
	}
	parts := ownedSorted(m.owned)
	p := parts[m.mintRR%len(parts)]
	m.mintRR++
	return p, nil
}

// mintID builds the next instance ID in an owned partition.
func (m *Member) mintID() (string, error) {
	p, err := m.pickPartition()
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	return MintID(p, m.cfg.Name, m.inc, seq), nil
}
