package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"bioopera/internal/store"
)

// Lease errors.
var (
	// ErrStaleIncarnation rejects a claim whose incarnation is older than
	// the recorded one — a partitioned ex-owner writing after its
	// successor claimed.
	ErrStaleIncarnation = errors.New("fed: stale incarnation")
	// ErrNoPartition is returned by a member asked to start an instance
	// while it owns no partition yet.
	ErrNoPartition = errors.New("fed: member owns no partition")
)

// ConflictError reports a failed compare-and-swap: the stored lease moved
// since the claimant observed it. Current is the lease that won.
type ConflictError struct{ Current Lease }

func (e *ConflictError) Error() string {
	return fmt.Sprintf("fed: lease conflict: partition %d now owned by %q (incarnation %d)",
		e.Current.Partition, e.Current.Owner, e.Current.Incarnation)
}

// Lease is one partition's ownership record, persisted in the store's
// configuration space so ownership survives restarts. A zero Owner means
// unclaimed.
type Lease struct {
	Partition   int    `json:"partition"`
	Owner       string `json:"owner,omitempty"`
	Incarnation uint64 `json:"incarnation,omitempty"`
}

// LeaseTable is the persisted partition-ownership table plus the monotonic
// epoch counter incarnations come from. Claims are compare-and-swap under
// a mutex shared by every table over the same store, so concurrent
// claimants in one process — including in-a-box federations where several
// members share one store.Store — resolve to exactly one winner. Across
// processes the store itself must serialize; shared-nothing members each
// fence only their own store (a replicated or DBMS-backed store is the
// production path for cross-process claims).
type LeaseTable struct {
	mu         *sync.Mutex
	st         store.Store
	partitions int
}

// leaseLocks maps a store identity to the mutex all its lease tables
// share. Entries are never removed: one per distinct store handle in the
// process, which is bounded by the deployment's member count.
var leaseLocks sync.Map // store.Store → *sync.Mutex

func leaseLockFor(st store.Store) *sync.Mutex {
	if v, ok := leaseLocks.Load(st); ok {
		return v.(*sync.Mutex)
	}
	v, _ := leaseLocks.LoadOrStore(st, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// NewLeaseTable opens the table over a store. All members of a federation
// must agree on the partition count.
func NewLeaseTable(st store.Store, partitions int) *LeaseTable {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	return &LeaseTable{mu: leaseLockFor(st), st: st, partitions: partitions}
}

// Partitions reports the table's partition count.
func (t *LeaseTable) Partitions() int { return t.partitions }

func leaseKey(partition int) string { return fmt.Sprintf("fed/lease/%03d", partition) }

const epochKey = "fed/epoch"

// NextIncarnation atomically bumps the epoch counter and returns the new
// value. Every member boot and every lease claim takes a fresh epoch, so
// incarnations are strictly increasing across the federation's lifetime.
func (t *LeaseTable) NextIncarnation() (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	raw, ok, err := t.st.Get(store.Configuration, epochKey)
	if err != nil {
		return 0, fmt.Errorf("fed: read epoch: %w", err)
	}
	if ok {
		n, _ = strconv.ParseUint(string(raw), 10, 64)
	}
	n++
	if err := t.st.Put(store.Configuration, epochKey, []byte(strconv.FormatUint(n, 10))); err != nil {
		return 0, fmt.Errorf("fed: bump epoch: %w", err)
	}
	return n, nil
}

// getLocked reads one lease; an absent record is the unclaimed lease.
func (t *LeaseTable) getLocked(partition int) (Lease, error) {
	raw, ok, err := t.st.Get(store.Configuration, leaseKey(partition))
	if err != nil {
		return Lease{}, fmt.Errorf("fed: read lease for partition %d: %w", partition, err)
	}
	if !ok {
		return Lease{Partition: partition}, nil
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return Lease{}, fmt.Errorf("fed: corrupt lease record for partition %d: %w", partition, err)
	}
	l.Partition = partition
	return l, nil
}

// Get reads one partition's current lease.
func (t *LeaseTable) Get(partition int) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.getLocked(partition)
}

// All reads every partition's lease, indexed by partition.
func (t *LeaseTable) All() ([]Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Lease, t.partitions)
	for p := 0; p < t.partitions; p++ {
		l, err := t.getLocked(p)
		if err != nil {
			return nil, err
		}
		out[p] = l
	}
	return out, nil
}

// Claim installs next as the partition's lease if and only if the stored
// lease still equals prev (compare-and-swap) and next's incarnation is not
// older than the stored one. On a lost race it returns *ConflictError
// carrying the winning lease; a rejected stale write returns
// ErrStaleIncarnation. Claimants take prev from a prior Get/All — the
// unclaimed zero lease for a fresh partition.
func (t *LeaseTable) Claim(prev, next Lease) error {
	if prev.Partition != next.Partition {
		return fmt.Errorf("fed: claim partition mismatch: prev %d, next %d", prev.Partition, next.Partition)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, err := t.getLocked(next.Partition)
	if err != nil {
		return err
	}
	// CAS first: a racing claimant that lost should learn who won
	// (ConflictError carries the lease); the incarnation fence then
	// rejects a stale writer even when it read the current lease.
	if cur != prev {
		return &ConflictError{Current: cur}
	}
	if next.Incarnation < cur.Incarnation {
		return fmt.Errorf("%w: partition %d holds incarnation %d, claim carries %d",
			ErrStaleIncarnation, next.Partition, cur.Incarnation, next.Incarnation)
	}
	data, err := json.Marshal(next)
	if err != nil {
		return err
	}
	if err := t.st.Put(store.Configuration, leaseKey(next.Partition), data); err != nil {
		return fmt.Errorf("fed: persist lease for partition %d: %w", next.Partition, err)
	}
	return nil
}
