package fed

import (
	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/remote"
)

// MonitorSource adapts a federated member to obs.Source plus the
// obs.MemberLister extension, so the member's /api/cluster shows both its
// local engine view and the federation membership.
type MonitorSource struct {
	*core.MonitorSource
	m *Member
}

// NewMonitorSource builds the member's monitor source.
func NewMonitorSource(m *Member) *MonitorSource {
	return &MonitorSource{
		MonitorSource: core.NewMonitorSource(m.Runtime().Engine()),
		m:             m,
	}
}

// Members implements obs.MemberLister with the member's gossip view.
func (s *MonitorSource) Members() []obs.MemberView {
	return toMemberViews(s.m.memberViews(true))
}

// GatewaySource adapts a gateway to obs.Source: instance queries are empty
// (the gateway holds no instances), the cluster view carries the routed
// membership. It lets a gateway process expose /api/cluster and /metrics.
type GatewaySource struct {
	g *Gateway
}

// NewGatewaySource builds the gateway's monitor source.
func NewGatewaySource(g *Gateway) *GatewaySource { return &GatewaySource{g: g} }

// Instances reports nothing: the gateway runs no engine.
func (s *GatewaySource) Instances() []obs.InstanceSummary { return nil }

// Instance reports unknown for every ID; clients query the owner.
func (s *GatewaySource) Instance(id string) (*obs.InstanceDetail, error) {
	return nil, core.ErrUnknownInstance
}

// Cluster reports only the membership view.
func (s *GatewaySource) Cluster() obs.ClusterInfo { return obs.ClusterInfo{} }

// WhatIf reports an empty outage: the gateway schedules nothing.
func (s *GatewaySource) WhatIf(nodes []string) obs.OutageReport { return obs.OutageReport{} }

// Members implements obs.MemberLister with the gateway's routing view.
func (s *GatewaySource) Members() []obs.MemberView {
	view, err := s.g.Members()
	if err != nil {
		return nil
	}
	return toMemberViews(view.Members)
}

func toMemberViews(in []remote.FedMember) []obs.MemberView {
	out := make([]obs.MemberView, 0, len(in))
	for _, m := range in {
		out = append(out, obs.MemberView{
			Name: m.Name, Addr: m.Addr, Incarnation: m.Incarnation,
			Up: m.Up, Partitions: m.Partitions,
		})
	}
	return out
}
