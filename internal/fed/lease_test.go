package fed

import (
	"errors"
	"sync"
	"testing"

	"bioopera/internal/store"
)

func TestLeaseClaimAndReload(t *testing.T) {
	st := store.NewMem()
	tbl := NewLeaseTable(st, 8)
	inc, err := tbl.NextIncarnation()
	if err != nil {
		t.Fatal(err)
	}
	unclaimed, err := tbl.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if unclaimed.Owner != "" {
		t.Fatalf("fresh lease = %+v", unclaimed)
	}
	want := Lease{Partition: 3, Owner: "alpha", Incarnation: inc}
	if err := tbl.Claim(unclaimed, want); err != nil {
		t.Fatal(err)
	}
	// A second table over the same store — a restarted member — sees the
	// persisted lease.
	got, err := NewLeaseTable(st, 8).Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reloaded lease = %+v, want %+v", got, want)
	}
}

func TestLeaseStaleIncarnationRejected(t *testing.T) {
	st := store.NewMem()
	tbl := NewLeaseTable(st, 8)
	old, _ := tbl.NextIncarnation()
	fresh, _ := tbl.NextIncarnation()
	base, _ := tbl.Get(1)
	cur := Lease{Partition: 1, Owner: "beta", Incarnation: fresh}
	if err := tbl.Claim(base, cur); err != nil {
		t.Fatal(err)
	}
	// A partitioned ex-owner writing with an older incarnation must be
	// fenced even when it guessed the stored lease correctly.
	err := tbl.Claim(cur, Lease{Partition: 1, Owner: "alpha", Incarnation: old})
	if !errors.Is(err, ErrStaleIncarnation) {
		t.Fatalf("stale claim error = %v, want ErrStaleIncarnation", err)
	}
	got, _ := tbl.Get(1)
	if got != cur {
		t.Fatalf("lease after rejected stale claim = %+v, want %+v", got, cur)
	}
}

func TestLeaseDoubleClaimDeterministic(t *testing.T) {
	// Two members racing for the same orphaned partition: exactly one
	// claim lands, the loser's ConflictError names the winner.
	for round := 0; round < 50; round++ {
		st := store.NewMem()
		alpha := NewLeaseTable(st, 8)
		beta := NewLeaseTable(st, 8)
		base, _ := alpha.Get(4)

		incA, _ := alpha.NextIncarnation()
		incB, _ := beta.NextIncarnation()
		errs := make([]error, 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			errs[0] = alpha.Claim(base, Lease{Partition: 4, Owner: "alpha", Incarnation: incA})
		}()
		go func() {
			defer wg.Done()
			errs[1] = beta.Claim(base, Lease{Partition: 4, Owner: "beta", Incarnation: incB})
		}()
		wg.Wait()

		var winners, losers int
		final, _ := alpha.Get(4)
		for i, err := range errs {
			if err == nil {
				winners++
				continue
			}
			losers++
			var conflict *ConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("round %d: loser %d got %v, want ConflictError", round, i, err)
			}
			if conflict.Current != final {
				t.Fatalf("round %d: ConflictError names %+v, stored lease is %+v",
					round, conflict.Current, final)
			}
		}
		if winners != 1 || losers != 1 {
			t.Fatalf("round %d: %d winners, %d losers (errs=%v)", round, winners, losers, errs)
		}
		if final.Owner != "alpha" && final.Owner != "beta" {
			t.Fatalf("round %d: final lease %+v", round, final)
		}
	}
}

func TestLeasePartitionMismatchRejected(t *testing.T) {
	tbl := NewLeaseTable(store.NewMem(), 8)
	err := tbl.Claim(Lease{Partition: 1}, Lease{Partition: 2, Owner: "alpha"})
	if err == nil {
		t.Fatal("cross-partition claim accepted")
	}
}
