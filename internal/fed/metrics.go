package fed

import (
	"bioopera/internal/obs"
)

// Routed-RPC outcome labels.
const (
	outcomeOK        = "ok"
	outcomeRedirect  = "redirect"
	outcomeOwnerDown = "owner-down"
	outcomeError     = "error"
)

// fedMetrics pre-resolves the federation's instrumentation handles; every
// handle is nil-safe, so a nil registry disables the lot at zero cost.
type fedMetrics struct {
	rpcOK        *obs.Counter // routed RPCs answered by the owner
	rpcRedirect  *obs.Counter // stale routes corrected by a redirect
	rpcOwnerDown *obs.Counter // routed RPCs that hit a dead member
	rpcError     *obs.Counter // routed RPCs that failed outright
	transfers    *obs.Counter // partitions claimed from another owner
	failoverSec  *obs.Histogram
}

func newFedMetrics(r *obs.Registry) *fedMetrics {
	if r == nil {
		return &fedMetrics{}
	}
	rpc := r.CounterVec("bioopera_fed_routed_rpcs_total",
		"Federation RPCs routed by outcome.", "outcome")
	return &fedMetrics{
		rpcOK:        rpc.With(outcomeOK),
		rpcRedirect:  rpc.With(outcomeRedirect),
		rpcOwnerDown: rpc.With(outcomeOwnerDown),
		rpcError:     rpc.With(outcomeError),
		transfers: r.Counter("bioopera_fed_ownership_transfers_total",
			"Partition leases claimed from another owner (failover adoptions)."),
		failoverSec: r.Histogram("bioopera_fed_failover_seconds",
			"Wall time from declaring a member dead to its partitions being reclaimed and recovered.",
			[]float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}),
	}
}

// registerOwnedGauge exposes the member's partition count; nil registry is
// a no-op.
func registerOwnedGauge(r *obs.Registry, member string, fn func() float64) {
	if r == nil {
		return
	}
	r.GaugeFuncWith("bioopera_fed_partitions_owned",
		"Ownership partitions currently held, by member.", "member", member, fn)
}
