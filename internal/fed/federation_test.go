package fed

import (
	"encoding/json"
	"testing"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// fedTemplate chains three activities so instances stay in flight long
// enough for a mid-run server kill to land on real work.
const fedTemplate = `
PROCESS Triple {
  INPUT x;
  OUTPUT r;
  ACTIVITY A { CALL fed.step(x = x); OUT out; MAP out -> a; }
  ACTIVITY B { CALL fed.step(x = a); OUT out; MAP out -> b; }
  ACTIVITY C { CALL fed.step(x = b); OUT out; MAP out -> r; }
  A -> B;
  B -> C;
}`

func fedLib() *core.Library {
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "fed.step",
		Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			time.Sleep(30 * time.Millisecond)
			return map[string]ocr.Value{"out": ocr.Num(args["x"].AsNum()*2 + 1)}, nil
		},
	})
	return lib
}

func newTestMember(t *testing.T, name string, join []string, st store.Store, reg *obs.Registry) *Member {
	t.Helper()
	m, err := NewMember(Config{
		Name:             name,
		ListenAddr:       "127.0.0.1:0",
		Join:             join,
		Store:            st,
		Library:          fedLib(),
		Workers:          2,
		Partitions:       8,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 100 * time.Millisecond,
		LazyRecovery:     true,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Runtime().RegisterTemplateSource(fedTemplate); err != nil {
		m.Close()
		t.Fatal(err)
	}
	return m
}

// waitBalanced polls until every partition has exactly one owner among the
// members and every member owns at least one partition.
func waitBalanced(t *testing.T, members []*Member, partitions int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		owners := make(map[int]int)
		short := false
		for _, m := range members {
			owned := m.OwnedPartitions()
			if len(owned) == 0 {
				short = true
			}
			for _, p := range owned {
				owners[p]++
			}
		}
		if !short && len(owners) == partitions {
			ok := true
			for _, n := range owners {
				if n != 1 {
					ok = false
				}
			}
			if ok {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, m := range members {
		t.Logf("%s owns %v", m.Name(), m.OwnedPartitions())
	}
	t.Fatal("ownership never balanced")
}

// canonicalOutputs marshals an output map; encoding/json sorts keys, so
// equal states produce identical bytes.
func canonicalOutputs(t *testing.T, outputs map[string]ocr.Value) []byte {
	t.Helper()
	data, err := json.Marshal(outputs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFederatedFailoverE2E is the acceptance run: three members behind a
// gateway, one killed mid-run, every instance completes, and the final
// outputs are byte-identical with a single-server run of the same work.
func TestFederatedFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("federation e2e needs real heartbeats")
	}
	const n = 12
	st := store.NewMem()
	reg := obs.NewRegistry()
	a := newTestMember(t, "alpha", nil, st, reg)
	defer a.Close()
	b := newTestMember(t, "beta", []string{a.Addr()}, st, reg)
	defer b.Close()
	c := newTestMember(t, "gamma", []string{a.Addr(), b.Addr()}, st, reg)
	defer c.Close()
	members := []*Member{a, b, c}
	waitBalanced(t, members, 8)

	gw, err := NewGateway(GatewayConfig{
		Members:      []string{a.Addr(), b.Addr(), c.Addr()},
		Metrics:      reg,
		CallTimeout:  5 * time.Second,
		Retries:      60,
		RetryBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := gw.Start(StartReq{Template: "Triple",
			Inputs: map[string]ocr.Value{"x": ocr.Int(i)}})
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		ids[i] = id
	}

	// Kill the member that minted the first instance while its three-step
	// chains are still running.
	victim := MemberOf(ids[0])
	var killed *Member
	var survivors []*Member
	for _, m := range members {
		if m.Name() == victim {
			killed = m
		} else {
			survivors = append(survivors, m)
		}
	}
	if killed == nil {
		t.Fatalf("no member named %q (ids[0]=%s)", victim, ids[0])
	}
	time.Sleep(20 * time.Millisecond) // let dispatch begin
	killedPartitions := killed.OwnedPartitions()
	killedInc := killed.Incarnation()
	killed.Close()
	t.Logf("killed %s (partitions %v)", victim, killedPartitions)

	results := make([][]byte, n)
	for i, id := range ids {
		res, err := gw.Wait(id, 30*time.Second)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if res.Status != core.InstanceDone.String() {
			t.Fatalf("instance %s ended %s (%s)", id, res.Status, res.Failure)
		}
		// ((x*2+1)*2+1)*2+1 = 8x+7
		if got, want := res.Outputs["r"].AsNum(), float64(i*8+7); got != want {
			t.Fatalf("instance %s r = %v, want %v", id, got, want)
		}
		results[i] = canonicalOutputs(t, res.Outputs)
	}

	// The dead member's partitions must have been reclaimed under a newer
	// incarnation by a survivor.
	leases := survivors[0].Leases()
	for _, p := range killedPartitions {
		l, err := leases.Get(p)
		if err != nil {
			t.Fatal(err)
		}
		if l.Owner == victim || l.Owner == "" {
			t.Fatalf("partition %d still leased to %q after failover", p, l.Owner)
		}
		if l.Incarnation <= killedInc {
			t.Fatalf("partition %d reclaimed under incarnation %d, not newer than %d",
				p, l.Incarnation, killedInc)
		}
	}

	// Federation metrics observed the transfer.
	transfers := reg.Counter("bioopera_fed_ownership_transfers_total", "")
	if transfers.Value() == 0 {
		t.Fatal("ownership-transfer counter never moved")
	}
	failover := reg.Histogram("bioopera_fed_failover_seconds", "", nil)
	if failover.Count() == 0 {
		t.Fatal("failover histogram never observed")
	}

	// Byte-identical check: the same inputs through one standalone engine
	// must produce the same final output state, position by position.
	solo, err := core.NewLocalRuntime(core.LocalConfig{Workers: 4, Library: fedLib()})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if err := solo.RegisterTemplateSource(fedTemplate); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id, err := solo.StartProcess("Triple",
			map[string]ocr.Value{"x": ocr.Int(i)}, core.StartOptions{})
		if err != nil {
			t.Fatal(err)
		}
		in, err := solo.Wait(id, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if soloBytes := canonicalOutputs(t, in.Outputs); string(soloBytes) != string(results[i]) {
			t.Fatalf("instance %d diverged:\nfederated: %s\nsolo:      %s",
				i, results[i], soloBytes)
		}
	}
}

// TestGatewayRetryAfterRedirect poisons the gateway's routing table and
// checks that the member's redirect heals it within one retry.
func TestGatewayRetryAfterRedirect(t *testing.T) {
	st := store.NewMem()
	reg := obs.NewRegistry()
	a := newTestMember(t, "alpha", nil, st, reg)
	defer a.Close()
	b := newTestMember(t, "beta", []string{a.Addr()}, st, reg)
	defer b.Close()
	waitBalanced(t, []*Member{a, b}, 8)

	gw, err := NewGateway(GatewayConfig{
		Members:      []string{a.Addr(), b.Addr()},
		Metrics:      reg,
		CallTimeout:  5 * time.Second,
		Retries:      20,
		RetryBackoff: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	id, err := gw.Start(StartReq{Template: "Triple",
		Inputs: map[string]ocr.Value{"x": ocr.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Poison the route: pretend the wrong member owns the instance's
	// partition and hide the minter so the partition route is used.
	minter := MemberOf(id)
	wrong := "alpha"
	if minter == "alpha" {
		wrong = "beta"
	}
	gw.mu.Lock()
	gw.live[minter] = false
	gw.owners[PartitionOf(id, 8)] = wrong
	gw.mu.Unlock()

	redirectsBefore := reg.CounterVec("bioopera_fed_routed_rpcs_total", "", "outcome").
		With(outcomeRedirect).Value()
	res, err := gw.Status(id)
	if err != nil {
		t.Fatalf("status after poisoned route: %v", err)
	}
	if res.Status != core.InstanceDone.String() {
		t.Fatalf("status = %s", res.Status)
	}
	redirectsAfter := reg.CounterVec("bioopera_fed_routed_rpcs_total", "", "outcome").
		With(outcomeRedirect).Value()
	if redirectsAfter <= redirectsBefore {
		t.Fatal("redirect counter never moved — the stale route was not exercised")
	}

	// The healed table now routes directly: the next call answers without
	// another redirect.
	healedBefore := redirectsAfter
	if _, err := gw.Status(id); err != nil {
		t.Fatal(err)
	}
	if v := reg.CounterVec("bioopera_fed_routed_rpcs_total", "", "outcome").
		With(outcomeRedirect).Value(); v != healedBefore {
		t.Fatalf("healed route still redirected (%d → %d)", healedBefore, v)
	}
}

// TestMemberRestartReclaimsOwnLeases restarts a member against the same
// store and checks it re-claims its partitions under a fresh incarnation.
func TestMemberRestartReclaimsOwnLeases(t *testing.T) {
	st := store.NewMem()
	a := newTestMember(t, "alpha", nil, st, nil)
	waitBalanced(t, []*Member{a}, 8)
	firstInc := a.Incarnation()
	a.Close()

	a2 := newTestMember(t, "alpha", nil, st, nil)
	defer a2.Close()
	waitBalanced(t, []*Member{a2}, 8)
	if a2.Incarnation() <= firstInc {
		t.Fatalf("restart incarnation %d not newer than %d", a2.Incarnation(), firstInc)
	}
	l, err := a2.Leases().Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Owner != "alpha" {
		t.Fatalf("partition 0 owned by %q after restart", l.Owner)
	}
	if l.Incarnation <= firstInc {
		t.Fatalf("partition 0 lease incarnation %d predates the restart (boot was %d)",
			l.Incarnation, firstInc)
	}
}

// TestStartRejectedWithoutPartition checks the member-side error a gateway
// retries on.
func TestStartRejectedWithoutPartition(t *testing.T) {
	st := store.NewMem()
	// A member joined to a nonexistent seed never settles quickly and owns
	// nothing at first; starting must fail with ErrNoPartition, not hang.
	m, err := NewMember(Config{
		Name:             "late",
		ListenAddr:       "127.0.0.1:0",
		Join:             []string{"127.0.0.1:1"},
		Store:            st,
		Library:          fedLib(),
		Workers:          1,
		Partitions:       8,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.mintID(); err == nil {
		t.Fatal("mintID succeeded with no owned partitions")
	} else if got := err.Error(); got != ErrNoPartition.Error() {
		t.Fatalf("mintID error = %q", got)
	}
}
