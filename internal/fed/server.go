package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/remote"
)

// maxWait caps a remote wait so a lost client cannot pin a serving
// goroutine forever.
const maxWait = 10 * time.Minute

// serveRPC answers request frames on one client connection. Requests run
// in their own goroutines — a long wait must not block the next decode —
// and responses serialize on one write mutex.
func (m *Member) serveRPC(conn net.Conn, dec *json.Decoder, first remote.FedFrame) {
	var wmu sync.Mutex
	enc := json.NewEncoder(conn)
	respond := func(f remote.FedFrame) {
		wmu.Lock()
		_ = enc.Encode(f) // a broken conn ends the decode loop
		wmu.Unlock()
	}
	var inflight sync.WaitGroup
	req := first
	for {
		if req.Type == remote.MsgFedRequest {
			inflight.Add(1)
			go func(r remote.FedFrame) {
				defer inflight.Done()
				respond(m.answer(r))
			}(req)
		}
		req = remote.FedFrame{}
		if err := dec.Decode(&req); err != nil {
			break
		}
	}
	inflight.Wait()
}

// answer executes one routed RPC and builds its response frame. Methods
// scoped to an instance this member does not own come back as redirects
// carrying the owner's identity, so the caller can re-route.
func (m *Member) answer(req remote.FedFrame) remote.FedFrame {
	res := remote.FedFrame{Type: remote.MsgFedResponse, ID: req.ID}
	if req.Method != MethodStart && req.Method != MethodMembers {
		if !m.ownsInstance(req.Instance) {
			owner, addr := m.ownerOf(PartitionOf(req.Instance, m.cfg.Partitions))
			res.Redirect, res.RedirectAddr = owner, addr
			res.Error = fmt.Sprintf("fed: %s does not own instance %s", m.cfg.Name, req.Instance)
			return res
		}
	}
	result, err := m.dispatch(req)
	if err != nil {
		// The engine's own ownership gate can still fire when a lease is
		// lost between the check above and the call — same redirect.
		if errors.Is(err, core.ErrNotOwner) {
			owner, addr := m.ownerOf(PartitionOf(req.Instance, m.cfg.Partitions))
			res.Redirect, res.RedirectAddr = owner, addr
		}
		res.Error = err.Error()
		return res
	}
	res.OK = true
	res.Result = result
	return res
}

// dispatch maps one method to the engine.
func (m *Member) dispatch(req remote.FedFrame) (json.RawMessage, error) {
	eng := m.rt.Engine()
	switch req.Method {
	case MethodStart:
		var r StartReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		id, err := m.startInstance(r)
		if err != nil {
			return nil, err
		}
		return json.Marshal(StartRes{ID: id})
	case MethodStatus:
		return m.stateOf(req.Instance)
	case MethodWait:
		var r WaitReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		d := time.Duration(r.TimeoutMs) * time.Millisecond
		if d <= 0 || d > maxWait {
			d = maxWait
		}
		if _, err := m.rt.Wait(req.Instance, d); err != nil {
			return nil, err
		}
		return m.stateOf(req.Instance)
	case MethodResume:
		return nil, eng.Resume(req.Instance)
	case MethodSuspend:
		var r SuspendReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		return nil, eng.Suspend(req.Instance, r.Graceful)
	case MethodAbort:
		var r AbortReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		return nil, eng.Abort(req.Instance, r.Reason)
	case MethodSignal:
		var r SignalReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		return nil, eng.Signal(req.Instance, r.Event, r.Payload)
	case MethodSetParam:
		var r SetParamReq
		if err := json.Unmarshal(req.Params, &r); err != nil {
			return nil, err
		}
		return nil, eng.SetParameter(req.Instance, r.Name, r.Value)
	case MethodLineage:
		lin, err := eng.Lineage(req.Instance)
		if err != nil {
			return nil, err
		}
		return json.Marshal(lin)
	case MethodMembers:
		return json.Marshal(MembersView{
			Partitions: m.cfg.Partitions,
			Members:    m.memberViews(true),
		})
	default:
		return nil, fmt.Errorf("fed: unknown method %q", req.Method)
	}
}

// startInstance mints an ID in an owned partition and starts the process
// under it.
func (m *Member) startInstance(r StartReq) (string, error) {
	id, err := m.mintID()
	if err != nil {
		return "", err
	}
	return m.rt.Engine().StartProcess(r.Template, r.Inputs, core.StartOptions{
		Priority:   r.Priority,
		Nice:       r.Nice,
		Tenant:     r.Tenant,
		InstanceID: id,
	})
}

// stateOf snapshots one instance into the wire representation.
func (m *Member) stateOf(id string) (json.RawMessage, error) {
	eng := m.rt.Engine()
	st, out, err := eng.InstanceState(id)
	if err != nil {
		return nil, err
	}
	res := StateRes{Status: st.String(), Outputs: out}
	if st == core.InstanceFailed {
		if in, ok := eng.Instance(id); ok {
			res.Failure = in.FailureReason
		}
	}
	return json.Marshal(res)
}
