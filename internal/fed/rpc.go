package fed

import (
	"bioopera/internal/ocr"
	"bioopera/internal/remote"
)

// RPC method names carried in remote.FedFrame.Method. Instance-scoped
// methods route by the frame's Instance field; "start" goes to any live
// member (the member mints an ID in a partition it owns) and "members"
// answers from whoever is asked.
const (
	MethodStart    = "start"
	MethodStatus   = "status"
	MethodWait     = "wait"
	MethodResume   = "resume"
	MethodSuspend  = "suspend"
	MethodAbort    = "abort"
	MethodSignal   = "signal"
	MethodSetParam = "setparam"
	MethodLineage  = "lineage"
	MethodMembers  = "members"
)

// StartReq asks a member to instantiate a template.
type StartReq struct {
	Template string               `json:"template"`
	Inputs   map[string]ocr.Value `json:"inputs,omitempty"`
	Priority int                  `json:"priority,omitempty"`
	Nice     bool                 `json:"nice,omitempty"`
	Tenant   string               `json:"tenant,omitempty"`
}

// StartRes returns the minted instance ID.
type StartRes struct {
	ID string `json:"id"`
}

// StateRes is the result of status and wait: the instance's current (or
// final) state.
type StateRes struct {
	Status  string               `json:"status"`
	Outputs map[string]ocr.Value `json:"outputs,omitempty"`
	Failure string               `json:"failure,omitempty"`
}

// WaitReq bounds a wait call; the serving member also caps it.
type WaitReq struct {
	TimeoutMs int64 `json:"timeoutMs"`
}

// SuspendReq carries the graceful flag of a suspend call.
type SuspendReq struct {
	Graceful bool `json:"graceful"`
}

// AbortReq carries the user-visible abort reason.
type AbortReq struct {
	Reason string `json:"reason,omitempty"`
}

// SignalReq delivers an external event to an instance.
type SignalReq struct {
	Event   string               `json:"event"`
	Payload map[string]ocr.Value `json:"payload,omitempty"`
}

// SetParamReq changes one whiteboard value.
type SetParamReq struct {
	Name  string    `json:"name"`
	Value ocr.Value `json:"value"`
}

// MembersView is the federation's membership and routing snapshot: the
// partition count every member agreed on and each member's identity,
// liveness, and owned partitions. Gateways derive their routing table
// from it.
type MembersView struct {
	Partitions int                `json:"partitions"`
	Members    []remote.FedMember `json:"members"`
}
