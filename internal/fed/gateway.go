// The gateway runs in real time: retry backoff and route refresh pace
// against live servers, never the deterministic trace.
//bioopera:allow walltime file-wide: gateway routing, retry and backoff are wall-clock by design

package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/remote"
)

// GatewayConfig configures a federation gateway: the thin routing tier
// clients talk to instead of tracking partition ownership themselves.
type GatewayConfig struct {
	// ListenAddr accepts client connections speaking the same frames as
	// the members ("" = library-only gateway, no listener).
	ListenAddr string
	// Members seeds the routing table with member addresses; the rest of
	// the membership is learned from their gossip views.
	Members []string
	// Metrics records routed-RPC outcomes.
	Metrics *obs.Registry
	// CallTimeout bounds each routed attempt (default DefaultCallTimeout).
	CallTimeout time.Duration
	// Retries caps re-routing attempts per call (default 10); redirects
	// retry immediately, dead-owner retries back off by RetryBackoff
	// (default 250ms) so failover has time to land.
	Retries      int
	RetryBackoff time.Duration
}

// Gateway routes client RPCs to the member that owns each instance. It
// keeps a routing table (member addresses, liveness, partition owners)
// refreshed from the members themselves, follows redirects when a route
// went stale, and retries through failover when an owner dies mid-call.
type Gateway struct {
	cfg GatewayConfig
	met *fedMetrics
	ln  net.Listener // nil for a library-only gateway

	mu         sync.Mutex
	clients    map[string]*Client // member address → connection
	addrs      map[string]string  // member name → address
	live       map[string]bool    // member name → believed up
	owners     map[int]string     // partition → owning member
	partitions int
	rr         int // round-robin cursor for start placement
	conns      map[net.Conn]bool
	closed     bool

	wg sync.WaitGroup
}

// NewGateway builds a gateway over the given seed members and, when
// ListenAddr is set, starts serving client connections. The first view
// refresh is best-effort — routing self-heals via refresh-on-miss.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fed: GatewayConfig.Members is required")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 10
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	g := &Gateway{
		cfg:        cfg,
		met:        newFedMetrics(cfg.Metrics),
		clients:    make(map[string]*Client),
		addrs:      make(map[string]string),
		live:       make(map[string]bool),
		owners:     make(map[int]string),
		partitions: DefaultPartitions,
		conns:      make(map[net.Conn]bool),
	}
	g.refreshView()
	if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.ln = ln
		g.wg.Add(1)
		go g.acceptLoop()
	}
	return g, nil
}

// Addr reports the gateway's bound listen address ("" when library-only).
func (g *Gateway) Addr() string {
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Close stops the listener and drops every member connection.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	clients := make([]*Client, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	g.clients = make(map[string]*Client)
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	if g.ln != nil {
		//bioopera:allow droppederr gateway teardown is best-effort; nothing outlives it to report to
		g.ln.Close()
	}
	for _, c := range clients {
		//bioopera:allow droppederr hanging up member connections on teardown is best-effort
		c.Close()
	}
	for _, c := range conns {
		//bioopera:allow droppederr hanging up client connections on teardown is best-effort
		c.Close()
	}
	g.wg.Wait()
}

// clientFor returns (dialing if needed) the connection to one member
// address.
func (g *Gateway) clientFor(addr string) (*Client, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClientClosed
	}
	if c := g.clients[addr]; c != nil {
		g.mu.Unlock()
		return c, nil
	}
	g.mu.Unlock()
	c, err := DialClient(addr, g.cfg.CallTimeout)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		//bioopera:allow droppederr dropping the just-dialed conn after losing to Close is best-effort
		c.Close()
		return nil, ErrClientClosed
	}
	if prev := g.clients[addr]; prev != nil {
		g.mu.Unlock()
		//bioopera:allow droppederr dropping the just-dialed duplicate conn is best-effort
		c.Close()
		return prev, nil
	}
	g.clients[addr] = c
	g.mu.Unlock()
	return c, nil
}

// dropClient forgets a member connection after a transport failure.
func (g *Gateway) dropClient(addr string) {
	g.mu.Lock()
	c := g.clients[addr]
	delete(g.clients, addr)
	g.mu.Unlock()
	if c != nil {
		//bioopera:allow droppederr the connection already failed; closing it is best-effort
		c.Close()
	}
}

// refreshView pulls a membership snapshot from the first member that
// answers and rebuilds the routing table from it.
func (g *Gateway) refreshView() bool {
	for _, addr := range g.candidateAddrs() {
		c, err := g.clientFor(addr)
		if err != nil {
			continue
		}
		view, err := c.Members()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				g.dropClient(addr)
			}
			continue
		}
		g.installView(view)
		return true
	}
	return false
}

// candidateAddrs lists every address worth asking for a view: known
// members first (sorted for determinism), then the configured seeds.
func (g *Gateway) candidateAddrs() []string {
	g.mu.Lock()
	seen := make(map[string]bool, len(g.addrs)+len(g.cfg.Members))
	var out []string
	names := make([]string, 0, len(g.addrs))
	for name := range g.addrs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if addr := g.addrs[name]; addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	g.mu.Unlock()
	for _, addr := range g.cfg.Members {
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}

func (g *Gateway) installView(view MembersView) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if view.Partitions > 0 {
		g.partitions = view.Partitions
	}
	g.live = make(map[string]bool, len(view.Members))
	for _, m := range view.Members {
		if m.Addr != "" {
			g.addrs[m.Name] = m.Addr
		}
		g.live[m.Name] = m.Up
		if m.Up {
			for _, p := range m.Partitions {
				g.owners[p] = m.Name
			}
		}
	}
}

// targetFor picks the member address for one call: the instance's minting
// member while it is alive (shared-nothing safe), else the owner of its
// partition; starts round-robin over live members.
func (g *Gateway) targetFor(method, instance string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if method == MethodStart || method == MethodMembers {
		names := make([]string, 0, len(g.live))
		for name, up := range g.live {
			if up && g.addrs[name] != "" {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			return ""
		}
		sort.Strings(names)
		name := names[g.rr%len(names)]
		g.rr++
		return g.addrs[name]
	}
	if minter := MemberOf(instance); minter != "" && g.live[minter] && g.addrs[minter] != "" {
		return g.addrs[minter]
	}
	if owner := g.owners[PartitionOf(instance, g.partitions)]; owner != "" && g.live[owner] {
		return g.addrs[owner]
	}
	return ""
}

// noteRedirect folds a member's redirect into the routing table.
func (g *Gateway) noteRedirect(instance, member, addr string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if member == "" {
		return ""
	}
	if addr != "" {
		g.addrs[member] = addr
	}
	g.live[member] = true
	g.owners[PartitionOf(instance, g.partitions)] = member
	return g.addrs[member]
}

// markDown records a transport failure against whoever owns the address.
func (g *Gateway) markDown(addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for name, a := range g.addrs {
		if a == addr {
			g.live[name] = false
		}
	}
}

// CallRaw routes one request to the owning member, following redirects
// (stale route: retry immediately at the named owner) and riding through
// owner death (refresh the view after a backoff so failover can land).
// Application errors from the owner are returned without retry.
func (g *Gateway) CallRaw(method, instance string, params json.RawMessage) (remote.FedFrame, error) {
	return g.callRawTimeout(method, instance, params, g.cfg.CallTimeout)
}

func (g *Gateway) callRawTimeout(method, instance string, params json.RawMessage, timeout time.Duration) (remote.FedFrame, error) {
	var lastErr error
	target := g.targetFor(method, instance)
	for attempt := 0; attempt <= g.cfg.Retries; attempt++ {
		if target == "" {
			if attempt > 0 {
				time.Sleep(g.cfg.RetryBackoff)
			}
			g.refreshView()
			target = g.targetFor(method, instance)
			if target == "" {
				lastErr = fmt.Errorf("fed: no live member for %s %q", method, instance)
				continue
			}
		}
		c, err := g.clientFor(target)
		if err != nil {
			g.met.rpcOwnerDown.Inc()
			g.markDown(target)
			lastErr = err
			target = ""
			continue
		}
		resp, err := c.CallRaw(method, instance, params, timeout)
		if err == nil {
			g.met.rpcOK.Inc()
			return resp, nil
		}
		var rd *RedirectError
		switch {
		case errors.As(err, &rd):
			g.met.rpcRedirect.Inc()
			lastErr = err
			target = g.noteRedirect(instance, rd.Member, rd.Addr)
		case errors.Is(err, ErrClientClosed):
			g.met.rpcOwnerDown.Inc()
			g.dropClient(target)
			g.markDown(target)
			lastErr = err
			target = ""
		case instance != "" && strings.Contains(err.Error(), core.ErrUnknownInstance.Error()):
			// The owner may have just claimed the partition and not yet
			// finished adopting its instances; give recovery a beat. A
			// genuinely unknown ID surfaces once retries run out.
			g.met.rpcOwnerDown.Inc()
			lastErr = err
			time.Sleep(g.cfg.RetryBackoff)
			g.refreshView()
			target = g.targetFor(method, instance)
		case method == MethodStart && strings.Contains(err.Error(), ErrNoPartition.Error()):
			// The member has no partition yet (booting, or mid-handoff):
			// round-robin moves on, so just try the next live member.
			g.met.rpcRedirect.Inc()
			lastErr = err
			time.Sleep(g.cfg.RetryBackoff)
			target = g.targetFor(method, instance)
		default:
			g.met.rpcError.Inc()
			return resp, err
		}
	}
	return remote.FedFrame{}, fmt.Errorf("fed: gateway gave up after %d attempts: %w", g.cfg.Retries+1, lastErr)
}

// call marshals, routes, and unmarshals one typed RPC.
func (g *Gateway) call(method, instance string, params, out any, timeout time.Duration) error {
	var raw json.RawMessage
	if params != nil {
		data, err := json.Marshal(params)
		if err != nil {
			return err
		}
		raw = data
	}
	if timeout <= 0 {
		timeout = g.cfg.CallTimeout
	}
	resp, err := g.callRawTimeout(method, instance, raw, timeout)
	if err != nil {
		return err
	}
	if out != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// Start places a new instance on a live member (round-robin).
func (g *Gateway) Start(req StartReq) (string, error) {
	var res StartRes
	if err := g.call(MethodStart, "", req, &res, 0); err != nil {
		return "", err
	}
	return res.ID, nil
}

// Status reads an instance's current state from its owner.
func (g *Gateway) Status(id string) (StateRes, error) {
	var res StateRes
	err := g.call(MethodStatus, id, nil, &res, 0)
	return res, err
}

// Wait blocks until the instance is terminal or the timeout elapses. A
// wait interrupted by owner failover re-routes and resumes at the new
// owner.
func (g *Gateway) Wait(id string, timeout time.Duration) (StateRes, error) {
	var res StateRes
	err := g.call(MethodWait, id, WaitReq{TimeoutMs: timeout.Milliseconds()}, &res,
		timeout+DefaultCallTimeout)
	return res, err
}

// Resume restarts a suspended instance.
func (g *Gateway) Resume(id string) error { return g.call(MethodResume, id, nil, nil, 0) }

// Suspend stops dispatching an instance's activities.
func (g *Gateway) Suspend(id string, graceful bool) error {
	return g.call(MethodSuspend, id, SuspendReq{Graceful: graceful}, nil, 0)
}

// Abort fails an instance on user request.
func (g *Gateway) Abort(id, reason string) error {
	return g.call(MethodAbort, id, AbortReq{Reason: reason}, nil, 0)
}

// Signal delivers an external event to an instance.
func (g *Gateway) Signal(id, event string, payload map[string]ocr.Value) error {
	return g.call(MethodSignal, id, SignalReq{Event: event, Payload: payload}, nil, 0)
}

// SetParameter changes one whiteboard value.
func (g *Gateway) SetParameter(id, name string, v ocr.Value) error {
	return g.call(MethodSetParam, id, SetParamReq{Name: name, Value: v}, nil, 0)
}

// Lineage fetches an instance's provenance graph as raw JSON.
func (g *Gateway) Lineage(id string) (json.RawMessage, error) {
	resp, err := g.CallRaw(MethodLineage, id, nil)
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Members returns the gateway's freshest membership snapshot.
func (g *Gateway) Members() (MembersView, error) {
	var res MembersView
	err := g.call(MethodMembers, "", nil, &res, 0)
	return res, err
}

// acceptLoop serves client connections on the gateway's listener.
func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			//bioopera:allow droppederr refusing the late client during teardown is best-effort
			conn.Close()
			return
		}
		g.conns[conn] = true
		g.mu.Unlock()
		g.wg.Add(1)
		go g.serveConn(conn)
	}
}

// serveConn forwards one client connection's requests through the routing
// core, preserving request IDs.
func (g *Gateway) serveConn(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		//bioopera:allow droppederr hanging up on a finished client is best-effort
		conn.Close()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var wmu sync.Mutex
	var inflight sync.WaitGroup
	for {
		var req remote.FedFrame
		if err := dec.Decode(&req); err != nil {
			break
		}
		if req.Type != remote.MsgFedRequest {
			continue
		}
		inflight.Add(1)
		go func(r remote.FedFrame) {
			defer inflight.Done()
			resp, err := g.CallRaw(r.Method, r.Instance, r.Params)
			resp.Type = remote.MsgFedResponse
			resp.ID = r.ID
			if err != nil && !resp.OK {
				if resp.Error == "" {
					resp.Error = err.Error()
				}
			}
			wmu.Lock()
			_ = enc.Encode(resp)
			wmu.Unlock()
		}(req)
	}
	inflight.Wait()
}
