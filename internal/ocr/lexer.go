package ocr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds for the OCR language.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // one of the operator/punctuation spellings below
)

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string  // identifier spelling, punct spelling, or raw literal
	num  float64 // valid when kind == tokNumber
	str  string  // decoded value when kind == tokString
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return strconv.Quote(t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// puncts lists multi-character operators first so the lexer is greedy.
var puncts = []string{
	"->", "==", "!=", "<=", ">=", "&&", "||",
	"{", "}", "(", ")", "[", "]", ",", ";", ".", "=", "!", "<", ">",
	"+", "-", "*", "/", "%", ":",
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ocr: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer converts OCR source into a token stream.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

// skipSpace consumes whitespace and comments (# to end of line, and
// /* ... */ blocks).
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf("unterminated block comment")
			}
			l.advance(end + 4)
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := l.src[l.pos]

	// String literal.
	if c == '"' {
		start := l.pos
		l.advance(1)
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' {
				l.advance(1)
				if l.pos >= len(l.src) {
					return tok, l.errorf("unterminated string literal")
				}
			}
			if l.src[l.pos] == '\n' {
				return tok, l.errorf("newline in string literal")
			}
			l.advance(1)
		}
		if l.pos >= len(l.src) {
			return tok, l.errorf("unterminated string literal")
		}
		l.advance(1)
		raw := l.src[start:l.pos]
		s, err := strconv.Unquote(raw)
		if err != nil {
			return tok, &SyntaxError{Line: tok.line, Col: tok.col, Msg: fmt.Sprintf("bad string literal %s", raw)}
		}
		tok.kind = tokString
		tok.text = raw
		tok.str = s
		return tok, nil
	}

	// Number literal.
	if c >= '0' && c <= '9' {
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.advance(1)
		}
		text := l.src[start:l.pos]
		n, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return tok, &SyntaxError{Line: tok.line, Col: tok.col, Msg: fmt.Sprintf("bad number %q", text)}
		}
		tok.kind = tokNumber
		tok.text = text
		tok.num = n
		return tok, nil
	}

	// Identifier / keyword.
	if isIdentStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.advance(1)
		}
		tok.kind = tokIdent
		tok.text = l.src[start:l.pos]
		return tok, nil
	}

	// Punctuation, greedy.
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance(len(p))
			tok.kind = tokPunct
			tok.text = p
			return tok, nil
		}
	}
	return tok, l.errorf("unexpected character %q", c)
}

// lexAll tokenizes the whole input (appending EOF), for the parsers.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
