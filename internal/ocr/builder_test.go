package ocr

import (
	"strings"
	"testing"
)

func TestBuilderEquivalentToParsedSource(t *testing.T) {
	// Build the conditional-branch process programmatically and compare
	// its canonical form with the parsed OCR text.
	built, err := NewBuilder("Branch").
		Inputs("queue_file").
		Outputs("result").
		Activity("UserIn", "test.echo",
			Arg("x", "queue_file"), Out("out"), MapTo("out", "qf")).
		Activity("Generate", "test.constant",
			Out("out"), MapTo("out", "qf")).
		Activity("Use", "test.echo",
			Arg("x", "qf"), Out("out"), MapTo("out", "result")).
		FlowIf("UserIn", "Generate", "!defined(queue_file)").
		FlowIf("UserIn", "Use", "defined(queue_file)").
		Flow("Generate", "Use").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseProcess(`
PROCESS Branch {
  INPUT queue_file;
  OUTPUT result;
  ACTIVITY UserIn { CALL test.echo(x = queue_file); OUT out; MAP out -> qf; }
  ACTIVITY Generate { CALL test.constant(); OUT out; MAP out -> qf; }
  ACTIVITY Use { CALL test.echo(x = qf); OUT out; MAP out -> result; }
  UserIn -> Generate IF !defined(queue_file);
  UserIn -> Use IF defined(queue_file);
  Generate -> Use;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if Format(built) != Format(parsed) {
		t.Fatalf("builder and parser disagree:\n--- built ---\n%s\n--- parsed ---\n%s",
			Format(built), Format(parsed))
	}
}

func TestBuilderAllConstructs(t *testing.T) {
	p, err := NewBuilder("Everything").
		Doc("every construct").
		Inputs("xs").
		Outputs("result").
		Data("threshold", "80").
		Data("scratch", "").
		Activity("Prep", "lib.prep",
			TaskDoc("prepare"), Arg("v", "threshold + 1"), Out("r"),
			MapTo("r", "prepped"), Retry(2), Priority(3), Cost(12.5)).
		ParallelBlock("Fan", "xs", "x", func(body *Builder) {
			body.Outputs("y").
				Activity("W", "lib.work", Arg("x", "x"), Out("out"), MapTo("out", "y"))
		}, MapTo("results", "fanned"), Atomic(), Retry(1)).
		Block("Tail", func(body *Builder) {
			body.Outputs("t").
				Activity("T", "lib.tail", Out("t"), MapTo("t", "t"), Undo("lib.untail"))
		}, MapTo("t", "result")).
		Subprocess("Sub", "Other", Arg("a", "prepped"), Out("w"), MapTo("w", "subbed")).
		Await("Gate", "go", Out("payload"), MapTo("payload", "gated")).
		Activity("Alt", "lib.alt", Out("r")).
		Activity("Risky", "lib.risky", Out("r"), OnFailureAlternative("Alt")).
		Activity("Meh", "lib.meh", OnFailureIgnore()).
		Flow("Prep", "Fan").
		Flow("Fan", "Tail").
		Flow("Prep", "Sub").
		Flow("Prep", "Gate").
		FlowIf("Prep", "Risky", "threshold > 50").
		Flow("Risky", "Meh").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Round trip through the printer.
	text := Format(p)
	p2, err := ParseProcess(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Fatal("round trip unstable")
	}
	for _, want := range []string{"ATOMIC", "UNDO lib.untail", `AWAIT "go"`, "ALTERNATIVE Alt", "PARALLEL OVER xs AS x"} {
		if !strings.Contains(text, want) {
			t.Fatalf("canonical form missing %q:\n%s", want, text)
		}
	}
}

func TestBuilderAccumulatesErrors(t *testing.T) {
	_, err := NewBuilder("Bad").
		Data("d", "1 +").                     // bad expression
		Activity("A", "x.y", Arg("v", "][")). // bad arg expression
		FlowIf("A", "B", "&&").               // bad condition
		Build()
	if err == nil {
		t.Fatal("builder accepted bad expressions")
	}
	msg := err.Error()
	for _, frag := range []string{"DATA d", "argument v", "A -> B"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("error message missing %q: %s", frag, msg)
		}
	}
}

func TestBuilderValidationFailures(t *testing.T) {
	// Builder syntax fine, semantics wrong → Validate catches it.
	_, err := NewBuilder("Cyclic").
		Activity("A", "x.a").
		Activity("B", "x.b").
		Flow("A", "B").
		Flow("B", "A").
		Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
	// Atomic on an activity is a builder error.
	_, err = NewBuilder("BadAtomic").
		Activity("A", "x.a", Atomic()).
		Build()
	if err == nil || !strings.Contains(err.Error(), "Atomic applies to blocks") {
		t.Fatalf("err = %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder("Bad").Activity("A", "").MustBuild()
}

func TestBuilderTimeout(t *testing.T) {
	p, err := NewBuilder("P").
		Outputs("r").
		Activity("A", "x.run", Out("r"), MapTo("r", "r"), Timeout(30)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Task("A").Timeout != 30 {
		t.Fatalf("Timeout = %v, want 30", p.Task("A").Timeout)
	}
	if !strings.Contains(Format(p), "TIMEOUT 30;") {
		t.Fatalf("Format missing TIMEOUT:\n%s", Format(p))
	}
}
