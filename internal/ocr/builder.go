package ocr

import "fmt"

// Builder constructs processes programmatically — the library counterpart
// of the paper's graphical process-creation element (§3.2: "the process
// creation element will allow users to create processes by simply
// selecting activities from the library management element, combining
// them ... and specifying the flow of control and data among them"). It
// accumulates definition errors and reports them all at Build.
//
//	p, err := ocr.NewBuilder("AllVsAll").
//	    Inputs("db", "queue").
//	    Outputs("result").
//	    Activity("Align", "darwin.align",
//	        ocr.Arg("db", "db"), ocr.Out("matches"), ocr.MapTo("matches", "result"),
//	        ocr.Retry(3)).
//	    Flow("Align", "Merge").
//	    Build()
type Builder struct {
	p    *Process
	errs []error
}

// NewBuilder starts a process definition.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Process{Name: name}}
}

func (b *Builder) errorf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf("ocr: builder %s: "+format,
		append([]any{b.p.Name}, args...)...))
	return b
}

// Doc sets the process documentation string.
func (b *Builder) Doc(doc string) *Builder {
	b.p.Doc = doc
	return b
}

// Inputs declares process inputs.
func (b *Builder) Inputs(names ...string) *Builder {
	b.p.Inputs = append(b.p.Inputs, names...)
	return b
}

// Outputs declares process outputs.
func (b *Builder) Outputs(names ...string) *Builder {
	b.p.Outputs = append(b.p.Outputs, names...)
	return b
}

// Data declares a whiteboard entry; init may be an expression string or
// "" for an undefined entry.
func (b *Builder) Data(name, init string) *Builder {
	decl := DataDecl{Name: name}
	if init != "" {
		e, err := ParseExpr(init)
		if err != nil {
			return b.errorf("DATA %s: %v", name, err)
		}
		decl.Init = e
	}
	b.p.Data = append(b.p.Data, decl)
	return b
}

// TaskOption configures a task under construction.
type TaskOption func(b *Builder, t *Task)

// Arg binds an activity/subprocess argument to an expression.
func Arg(name, expr string) TaskOption {
	return func(b *Builder, t *Task) {
		e, err := ParseExpr(expr)
		if err != nil {
			b.errorf("task %s argument %s: %v", t.Name, name, err)
			return
		}
		t.Args = append(t.Args, Binding{Name: name, Expr: e})
	}
}

// Out declares output fields.
func Out(fields ...string) TaskOption {
	return func(_ *Builder, t *Task) { t.Outs = append(t.Outs, fields...) }
}

// MapTo adds a mapping-phase entry (output field → whiteboard name).
func MapTo(from, to string) TaskOption {
	return func(_ *Builder, t *Task) { t.Maps = append(t.Maps, Mapping{From: from, To: to}) }
}

// Retry sets the retry count.
func Retry(n int) TaskOption {
	return func(_ *Builder, t *Task) { t.Retries = n }
}

// Timeout bounds one attempt's wall-clock run time in seconds; on expiry
// the dispatcher kills the job and requeues the activity.
func Timeout(seconds float64) TaskOption {
	return func(_ *Builder, t *Task) { t.Timeout = seconds }
}

// Priority sets the scheduling priority.
func Priority(n int) TaskOption {
	return func(_ *Builder, t *Task) { t.Priority = n }
}

// Cost sets the scheduler cost hint in seconds.
func Cost(seconds float64) TaskOption {
	return func(_ *Builder, t *Task) { t.Cost = seconds }
}

// TaskDoc sets the task documentation string.
func TaskDoc(doc string) TaskOption {
	return func(_ *Builder, t *Task) { t.Doc = doc }
}

// OnFailureIgnore makes permanent failure non-fatal (null outputs).
func OnFailureIgnore() TaskOption {
	return func(_ *Builder, t *Task) { t.OnFail = FailIgnore }
}

// OnFailureAlternative runs alt when the task permanently fails.
func OnFailureAlternative(alt string) TaskOption {
	return func(_ *Builder, t *Task) {
		t.OnFail = FailAlternative
		t.AltTask = alt
	}
}

// Undo names the compensation program (spheres of atomicity).
func Undo(program string) TaskOption {
	return func(_ *Builder, t *Task) { t.Undo = program }
}

// Atomic marks a block as a sphere of atomicity.
func Atomic() TaskOption {
	return func(b *Builder, t *Task) {
		if t.Kind != KindBlock {
			b.errorf("task %s: Atomic applies to blocks", t.Name)
			return
		}
		t.Atomic = true
	}
}

// Activity adds an activity bound to a program.
func (b *Builder) Activity(name, program string, opts ...TaskOption) *Builder {
	t := &Task{Name: name, Kind: KindActivity, Program: program}
	for _, o := range opts {
		o(b, t)
	}
	b.p.Tasks = append(b.p.Tasks, t)
	return b
}

// Await adds an event-wait activity (§3.1 event handling).
func (b *Builder) Await(name, event string, opts ...TaskOption) *Builder {
	t := &Task{Name: name, Kind: KindActivity, Await: event}
	for _, o := range opts {
		o(b, t)
	}
	b.p.Tasks = append(b.p.Tasks, t)
	return b
}

// Block adds a plain block whose body is built by body.
func (b *Builder) Block(name string, body func(*Builder), opts ...TaskOption) *Builder {
	inner := NewBuilder(name)
	body(inner)
	b.errs = append(b.errs, inner.errs...)
	t := &Task{Name: name, Kind: KindBlock, Body: inner.p}
	for _, o := range opts {
		o(b, t)
	}
	b.p.Tasks = append(b.p.Tasks, t)
	return b
}

// ParallelBlock adds a parallel task expanding over the list expression,
// binding each element to elemVar inside the body.
func (b *Builder) ParallelBlock(name, over, elemVar string, body func(*Builder), opts ...TaskOption) *Builder {
	e, err := ParseExpr(over)
	if err != nil {
		return b.errorf("block %s OVER: %v", name, err)
	}
	inner := NewBuilder(name)
	body(inner)
	b.errs = append(b.errs, inner.errs...)
	t := &Task{Name: name, Kind: KindBlock, Parallel: true, Over: e, As: elemVar, Body: inner.p}
	for _, o := range opts {
		o(b, t)
	}
	b.p.Tasks = append(b.p.Tasks, t)
	return b
}

// Subprocess adds a late-bound subprocess reference.
func (b *Builder) Subprocess(name, uses string, opts ...TaskOption) *Builder {
	t := &Task{Name: name, Kind: KindSubprocess, Uses: uses}
	for _, o := range opts {
		o(b, t)
	}
	b.p.Tasks = append(b.p.Tasks, t)
	return b
}

// Flow adds an unconditional control connector.
func (b *Builder) Flow(from, to string) *Builder {
	b.p.Connectors = append(b.p.Connectors, Connector{From: from, To: to})
	return b
}

// FlowIf adds a conditional control connector.
func (b *Builder) FlowIf(from, to, cond string) *Builder {
	e, err := ParseExpr(cond)
	if err != nil {
		return b.errorf("connector %s -> %s: %v", from, to, err)
	}
	b.p.Connectors = append(b.p.Connectors, Connector{From: from, To: to, Cond: e})
	return b
}

// Build validates and returns the process. Definition errors accumulated
// along the way are reported together with validation errors.
func (b *Builder) Build() (*Process, error) {
	if len(b.errs) > 0 {
		return nil, joinErrors(b.errs)
	}
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustBuild is Build that panics on error, for tests and static process
// definitions.
func (b *Builder) MustBuild() *Process {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "\n" + e.Error()
	}
	return fmt.Errorf("%s", msg)
}
