package ocr

import "fmt"

// TaskKind distinguishes the three task categories of OCR (§3.1).
type TaskKind uint8

// Task kinds.
const (
	// KindActivity is a basic execution step bound to an external
	// program.
	KindActivity TaskKind = iota
	// KindBlock is a named group of tasks, possibly a parallel task
	// expanded once per element of a list at runtime.
	KindBlock
	// KindSubprocess is a late-bound reference to another process
	// template.
	KindSubprocess
)

// String returns the OCR keyword for the kind.
func (k TaskKind) String() string {
	switch k {
	case KindActivity:
		return "ACTIVITY"
	case KindBlock:
		return "BLOCK"
	case KindSubprocess:
		return "SUBPROCESS"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FailureAction says what the navigator does when a task exhausts its
// retries (§3.1: "sophisticated failure handlers as part of the process").
type FailureAction uint8

// Failure actions.
const (
	// FailAbort aborts the whole process instance (the default).
	FailAbort FailureAction = iota
	// FailIgnore marks the task ended with null outputs and continues.
	FailIgnore
	// FailAlternative runs the named alternative task instead.
	FailAlternative
)

// String returns the OCR spelling of the action.
func (a FailureAction) String() string {
	switch a {
	case FailAbort:
		return "ABORT"
	case FailIgnore:
		return "IGNORE"
	case FailAlternative:
		return "ALTERNATIVE"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Binding is a named argument: the expression is evaluated against the
// enclosing scope when the task starts, and the result is passed to the
// task's input data structure under Name.
type Binding struct {
	Name string
	Expr Expr
}

// Mapping is one entry of a task's mapping phase: after successful
// execution, output field From is copied to whiteboard entry To of the
// enclosing scope.
type Mapping struct {
	From string
	To   string
}

// DataDecl declares a whiteboard entry with an optional initializer
// evaluated (over process inputs) when the instance starts.
type DataDecl struct {
	Name string
	Init Expr // nil means start undefined (null)
}

// Task is one node of the process graph.
type Task struct {
	Name string
	Kind TaskKind
	Doc  string

	// Activity fields.
	Program string    // external binding, e.g. "darwin.align"
	Args    []Binding // input data structure
	// Undo names the compensation program run (with the activity's
	// inputs and outputs) when an enclosing sphere of atomicity aborts
	// after this activity completed (§3.1 "undo actions").
	Undo string
	// Await names an external event the activity waits for instead of
	// calling a program (§3.1 "event handling"): the task completes
	// when Engine.Signal delivers the event, with the signal's payload
	// as its outputs. An activity has either CALL or AWAIT.
	Await string

	// Block fields.
	Parallel bool     // parallel task (§3.3)
	Atomic   bool     // sphere of atomicity (§3.1): all-or-nothing with undo
	Over     Expr     // list expression producing the elements
	As       string   // element variable name inside the body scope
	Body     *Process // inline body

	// Subprocess fields.
	Uses string // template name, resolved against the template space at start (late binding)

	// Common fields.
	Outs     []string // declared output fields (activities; blocks derive theirs)
	Maps     []Mapping
	Retries  int
	OnFail   FailureAction
	AltTask  string // valid when OnFail == FailAlternative
	Priority int
	Cost     float64 // scheduler hint: expected CPU-seconds, 0 = unknown
	// Timeout bounds one attempt's wall-clock run time in seconds; when
	// exceeded the dispatcher kills the job and the activity fails over
	// like a crashed node (requeued without consuming a retry). 0 means
	// no limit.
	Timeout float64
}

// Connector is a control arc (T_S, T_T, C_Act): when the source task
// finishes, Cond is evaluated over the whiteboard; a true (or absent)
// condition satisfies the arc, a false one marks it dead, enabling
// conditional branching with dead-path elimination.
type Connector struct {
	From string
	To   string
	Cond Expr // nil means TRUE
}

// Process is an OCR process: tasks plus control connectors plus the
// whiteboard declarations through which data flows.
type Process struct {
	Name       string
	Doc        string
	Inputs     []string
	Outputs    []string
	Data       []DataDecl
	Tasks      []*Task
	Connectors []Connector
}

// Task returns the task with the given name, or nil.
func (p *Process) Task(name string) *Task {
	for _, t := range p.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Incoming returns the connectors targeting the named task.
func (p *Process) Incoming(name string) []Connector {
	var in []Connector
	for _, c := range p.Connectors {
		if c.To == name {
			in = append(in, c)
		}
	}
	return in
}

// Outgoing returns the connectors leaving the named task.
func (p *Process) Outgoing(name string) []Connector {
	var out []Connector
	for _, c := range p.Connectors {
		if c.From == name {
			out = append(out, c)
		}
	}
	return out
}

// Roots returns tasks with no incoming connectors — the tasks the
// navigator starts first.
func (p *Process) Roots() []*Task {
	hasIn := make(map[string]bool)
	for _, c := range p.Connectors {
		hasIn[c.To] = true
	}
	var roots []*Task
	for _, t := range p.Tasks {
		if !hasIn[t.Name] {
			roots = append(roots, t)
		}
	}
	return roots
}

// OutputFields returns the output field names a task exposes to bindings
// and mappings: declared Outs for activities; "results" for parallel
// blocks; the body's outputs for plain blocks; the referenced template's
// outputs are unknown statically for subprocesses, so declared Outs are
// used there too.
func (t *Task) OutputFields() []string {
	switch t.Kind {
	case KindBlock:
		if t.Parallel {
			return []string{"results"}
		}
		if t.Body != nil {
			return t.Body.Outputs
		}
	}
	return t.Outs
}

// Clone returns a deep copy of the process. Expressions are immutable and
// shared.
func (p *Process) Clone() *Process {
	if p == nil {
		return nil
	}
	cp := &Process{
		Name:       p.Name,
		Doc:        p.Doc,
		Inputs:     append([]string(nil), p.Inputs...),
		Outputs:    append([]string(nil), p.Outputs...),
		Data:       append([]DataDecl(nil), p.Data...),
		Connectors: append([]Connector(nil), p.Connectors...),
	}
	for _, t := range p.Tasks {
		tc := *t
		tc.Args = append([]Binding(nil), t.Args...)
		tc.Outs = append([]string(nil), t.Outs...)
		tc.Maps = append([]Mapping(nil), t.Maps...)
		tc.Body = t.Body.Clone()
		cp.Tasks = append(cp.Tasks, &tc)
	}
	return cp
}
