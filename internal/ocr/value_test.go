package ocr

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Bool(true), KindBool},
		{Num(3.5), KindNumber},
		{Int(7), KindNumber},
		{Str("x"), KindString},
		{List(Int(1), Int(2)), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{Bool(false), false},
		{Bool(true), true},
		{Num(0), false},
		{Num(-1), true},
		{Str(""), false},
		{Str("a"), true},
		{List(), false},
		{List(Null), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, !c.want, c.want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Int(42), "42"},
		{Num(2.5), "2.5"},
		{Str(`a"b`), `"a\"b"`},
		{List(Int(1), Str("x")), `[1, "x"]`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !List(Int(1), Str("a")).Equal(List(Int(1), Str("a"))) {
		t.Error("equal lists compare unequal")
	}
	if List(Int(1)).Equal(List(Int(2))) {
		t.Error("different lists compare equal")
	}
	if Int(1).Equal(Str("1")) {
		t.Error("cross-kind equality")
	}
	if !Null.Equal(Null) {
		t.Error("null != null")
	}
}

func TestListAccess(t *testing.T) {
	l := List(Int(10), Int(20), Int(30))
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.At(1).AsInt() != 20 {
		t.Fatalf("At(1) = %v", l.At(1))
	}
	if !l.At(-1).IsNull() || !l.At(3).IsNull() {
		t.Fatal("out-of-range At should be null")
	}
	if !Str("x").At(0).IsNull() || Str("x").Len() != 0 {
		t.Fatal("non-list access should be null/0")
	}
	// AsList copies.
	cp := l.AsList()
	cp[0] = Int(99)
	if l.At(0).AsInt() != 10 {
		t.Fatal("AsList aliased internal slice")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null,
		Bool(true),
		Num(-2.75),
		Str("héllo\nworld"),
		List(Int(1), List(Str("nested"), Bool(false)), Null),
	}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(n float64, s string, b bool, xs []float64) bool {
		var elems []Value
		for _, x := range xs {
			elems = append(elems, Num(x))
		}
		v := List(Num(n), Str(s), Bool(b), List(elems...))
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapEnv(t *testing.T) {
	env := MapEnv{"b": Int(2), "a": Int(1)}
	if v, ok := env.Lookup("a"); !ok || v.AsInt() != 1 {
		t.Fatal("Lookup failed")
	}
	if _, ok := env.Lookup("zz"); ok {
		t.Fatal("Lookup of missing name succeeded")
	}
	names := env.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}
