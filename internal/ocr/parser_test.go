package ocr

import (
	"strings"
	"testing"
)

// allVsAllSrc is the paper's Fig. 3 process in OCR text form.
const allVsAllSrc = `
PROCESS AllVsAll "Self-comparison of all entries in a dataset" {
  INPUT db_name, queue_file, output_files;
  OUTPUT master_file, pam_sorted_file;
  DATA n_partitions = 20;

  ACTIVITY UserInput {
    CALL ui.input(db = db_name);
    OUT db_name, queue_file, output_files;
    MAP db_name -> db_name, queue_file -> queue_file;
  }

  ACTIVITY QueueGeneration {
    DOC "Generate the full entry queue when the user supplied none";
    CALL darwin.queue_gen(db = db_name);
    OUT queue_file;
    MAP queue_file -> queue_file;
  }

  ACTIVITY TaskPreprocessing {
    CALL darwin.partition(db = db_name, queue = queue_file, n = n_partitions);
    OUT partitions;
    MAP partitions -> partitions;
    RETRY 2;
  }

  BLOCK Alignment PARALLEL OVER partitions AS part {
    MAP results -> alignment_results;
    OUTPUT refined;
    ACTIVITY FixedPAM {
      CALL darwin.align_fixed(part = part, db = db_name);
      OUT matches;
      MAP matches -> q;
      RETRY 3;
    }
    ACTIVITY Refinement {
      CALL darwin.refine(matches = q, db = db_name);
      OUT refined;
      MAP refined -> refined;
      RETRY 3;
    }
    FixedPAM -> Refinement;
  }

  ACTIVITY MergeByEntry {
    CALL darwin.merge_entry(results = alignment_results, out = output_files);
    OUT master_file;
    MAP master_file -> master_file;
  }

  ACTIVITY MergeByPAM {
    CALL darwin.merge_pam(results = alignment_results, out = output_files);
    OUT pam_sorted_file;
    MAP pam_sorted_file -> pam_sorted_file;
  }

  UserInput -> QueueGeneration IF !defined(queue_file);
  UserInput -> TaskPreprocessing IF defined(queue_file);
  QueueGeneration -> TaskPreprocessing;
  TaskPreprocessing -> Alignment;
  Alignment -> MergeByEntry;
  Alignment -> MergeByPAM;
}
`

func parseAllVsAll(t *testing.T) *Process {
	t.Helper()
	p, err := ParseProcess(allVsAllSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAllVsAll(t *testing.T) {
	p := parseAllVsAll(t)
	if p.Name != "AllVsAll" {
		t.Fatalf("name = %q", p.Name)
	}
	if p.Doc == "" {
		t.Fatal("doc lost")
	}
	if len(p.Inputs) != 3 || len(p.Outputs) != 2 {
		t.Fatalf("inputs/outputs = %v / %v", p.Inputs, p.Outputs)
	}
	if len(p.Tasks) != 6 {
		t.Fatalf("tasks = %d, want 6", len(p.Tasks))
	}
	if len(p.Connectors) != 6 {
		t.Fatalf("connectors = %d, want 6", len(p.Connectors))
	}

	ui := p.Task("UserInput")
	if ui == nil || ui.Kind != KindActivity || ui.Program != "ui.input" {
		t.Fatalf("UserInput = %+v", ui)
	}
	if len(ui.Args) != 1 || ui.Args[0].Name != "db" {
		t.Fatalf("UserInput args = %+v", ui.Args)
	}

	al := p.Task("Alignment")
	if al == nil || al.Kind != KindBlock || !al.Parallel {
		t.Fatalf("Alignment = %+v", al)
	}
	if al.As != "part" || al.Over == nil || al.Over.String() != "partitions" {
		t.Fatalf("Alignment expansion = %q over %v", al.As, al.Over)
	}
	if al.Body == nil || len(al.Body.Tasks) != 2 || len(al.Body.Connectors) != 1 {
		t.Fatalf("Alignment body = %+v", al.Body)
	}
	if len(al.Body.Outputs) != 1 || al.Body.Outputs[0] != "refined" {
		t.Fatalf("Alignment body outputs = %v", al.Body.Outputs)
	}
	if len(al.Maps) != 1 || al.Maps[0].To != "alignment_results" {
		t.Fatalf("Alignment maps = %v", al.Maps)
	}
	fields := al.OutputFields()
	if len(fields) != 1 || fields[0] != "results" {
		t.Fatalf("parallel block fields = %v", fields)
	}

	pre := p.Task("TaskPreprocessing")
	if pre.Retries != 2 {
		t.Fatalf("retries = %d", pre.Retries)
	}

	// Conditional branch on the optional queue file.
	var condCount int
	for _, c := range p.Connectors {
		if c.Cond != nil {
			condCount++
		}
	}
	if condCount != 2 {
		t.Fatalf("conditional connectors = %d, want 2", condCount)
	}

	roots := p.Roots()
	if len(roots) != 1 || roots[0].Name != "UserInput" {
		t.Fatalf("roots = %v", roots)
	}
	if got := len(p.Incoming("TaskPreprocessing")); got != 2 {
		t.Fatalf("incoming = %d, want 2", got)
	}
	if got := len(p.Outgoing("Alignment")); got != 2 {
		t.Fatalf("outgoing = %d, want 2", got)
	}
}

func TestValidateAllVsAll(t *testing.T) {
	p := parseAllVsAll(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1 := parseAllVsAll(t)
	text1 := Format(p1)
	p2, err := ParseProcess(text1)
	if err != nil {
		t.Fatalf("reparse formatted output: %v\n%s", err, text1)
	}
	text2 := Format(p2)
	if text1 != text2 {
		t.Fatalf("Format not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("reparsed process invalid: %v", err)
	}
}

func TestParseSubprocess(t *testing.T) {
	src := `
PROCESS Tower {
  INPUT genome;
  OUTPUT tree;
  SUBPROCESS FindGenes USES "genefind" {
    IN dna = genome;
    OUT genes;
    MAP genes -> genes;
    RETRY 1;
  }
  SUBPROCESS BuildTree USES "phylo.nj" {
    IN sequences = genes;
    OUT tree;
    MAP tree -> tree;
    ON FAILURE IGNORE;
  }
  SUBPROCESS Audit USES "audit";
  FindGenes -> BuildTree;
  FindGenes -> Audit;
}
`
	p, err := ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	fg := p.Task("FindGenes")
	if fg.Kind != KindSubprocess || fg.Uses != "genefind" || fg.Retries != 1 {
		t.Fatalf("FindGenes = %+v", fg)
	}
	bt := p.Task("BuildTree")
	if bt.OnFail != FailIgnore {
		t.Fatalf("BuildTree OnFail = %v", bt.OnFail)
	}
	if p.Task("Audit").Uses != "audit" {
		t.Fatal("bare subprocess lost USES")
	}
	// Round-trip.
	p2, err := ParseProcess(Format(p))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if Format(p2) != Format(p) {
		t.Fatal("subprocess round trip unstable")
	}
}

func TestParseFailureHandlers(t *testing.T) {
	src := `
PROCESS P {
  ACTIVITY A {
    CALL x.run();
    OUT r;
    MAP r -> r;
    ON FAILURE ALTERNATIVE B;
    RETRY 5;
    PRIORITY 3;
    COST 12.5;
  }
  ACTIVITY B { CALL x.fallback(); OUT r; MAP r -> r; }
  OUTPUT r;
}
`
	p, err := ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Task("A")
	if a.OnFail != FailAlternative || a.AltTask != "B" {
		t.Fatalf("A failure handling = %v/%q", a.OnFail, a.AltTask)
	}
	if a.Retries != 5 || a.Priority != 3 || a.Cost != 12.5 {
		t.Fatalf("A clauses = %+v", a)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProcess(Format(p))
	if err != nil || Format(p2) != Format(p) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestParseFileMultiple(t *testing.T) {
	src := `
PROCESS A { ACTIVITY T { CALL x.y(); } }
PROCESS B { ACTIVITY T { CALL x.z(); } }
`
	ps, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "A" || ps[1].Name != "B" {
		t.Fatalf("ParseFile = %v", ps)
	}
	if _, err := ParseProcess(src); err == nil {
		t.Fatal("ParseProcess accepted two processes")
	}
}

func TestParseErrorsProcess(t *testing.T) {
	bad := map[string]string{
		"no process":      `ACTIVITY A { }`,
		"bad brace":       `PROCESS P {`,
		"input in block":  `PROCESS P { BLOCK B { INPUT x; } }`,
		"retry negative":  `PROCESS P { ACTIVITY A { CALL x.y(); RETRY -1; } }`,
		"retry frac":      `PROCESS P { ACTIVITY A { CALL x.y(); RETRY 1.5; } }`,
		"no uses":         `PROCESS P { SUBPROCESS S; }`,
		"on failure junk": `PROCESS P { ACTIVITY A { CALL x.y(); ON FAILURE EXPLODE; } }`,
		"bad map":         `PROCESS P { ACTIVITY A { CALL x.y(); MAP a; } }`,
		"empty":           ``,
		"stray token":     `PROCESS P { } garbage -> `,
		"parallel no as":  `PROCESS P { BLOCK B PARALLEL OVER xs { OUTPUT o; } }`,
	}
	for name, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestValidateCatches(t *testing.T) {
	cases := map[string]string{
		"cycle": `PROCESS P {
			ACTIVITY A { CALL x.a(); }
			ACTIVITY B { CALL x.b(); }
			A -> B; B -> A;
		}`,
		"unknown connector target": `PROCESS P {
			ACTIVITY A { CALL x.a(); }
			A -> Ghost;
		}`,
		"self loop": `PROCESS P {
			ACTIVITY A { CALL x.a(); }
			A -> A;
		}`,
		"duplicate task": `PROCESS P {
			ACTIVITY A { CALL x.a(); }
			ACTIVITY A { CALL x.b(); }
		}`,
		"no call": `PROCESS P { ACTIVITY A { OUT r; } }`,
		"bad map source": `PROCESS P {
			ACTIVITY A { CALL x.a(); OUT r; MAP nonexistent -> w; }
		}`,
		"undefined ref in arg": `PROCESS P {
			ACTIVITY A { CALL x.a(arg = mystery_name); }
		}`,
		"undefined ref in cond": `PROCESS P {
			ACTIVITY A { CALL x.a(); }
			ACTIVITY B { CALL x.b(); }
			A -> B IF mystery > 1;
		}`,
		"bad alt task": `PROCESS P {
			ACTIVITY A { CALL x.a(); ON FAILURE ALTERNATIVE Ghost; }
		}`,
		"output never produced": `PROCESS P {
			OUTPUT ghost_output;
			ACTIVITY A { CALL x.a(); }
		}`,
		"reserved task name": `PROCESS P {
			ACTIVITY map { CALL x.a(); }
		}`,
		"duplicate data": `PROCESS P {
			DATA d; DATA d;
			ACTIVITY A { CALL x.a(); }
		}`,
		"parallel body no output": `PROCESS P {
			DATA xs = [1];
			BLOCK B PARALLEL OVER xs AS x {
				ACTIVITY A { CALL x.a(); }
			}
		}`,
		"bad task field ref": `PROCESS P {
			ACTIVITY A { CALL x.a(); OUT r; }
			ACTIVITY B { CALL x.b(v = A.nonfield); }
			A -> B;
		}`,
	}
	for name, src := range cases {
		p, err := ParseProcess(src)
		if err != nil {
			t.Fatalf("%s: parse error %v (test sources must parse)", name, err)
		}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
}

func TestValidateWithTemplates(t *testing.T) {
	child, err := ParseProcess(`PROCESS Child {
		INPUT a, b;
		OUTPUT r;
		ACTIVITY T { CALL x.t(a = a, b = b); OUT r; MAP r -> r; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := ParseProcess(`PROCESS Parent {
		INPUT v;
		SUBPROCESS S USES "Child" {
			IN a = v, b = v + 1;
			MAP r -> out;
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(name string) (*Process, bool) {
		if name == "Child" {
			return child, true
		}
		return nil, false
	}
	if err := parent.ValidateWithTemplates(resolve); err != nil {
		t.Fatalf("valid parent rejected: %v", err)
	}

	badTemplate, _ := ParseProcess(`PROCESS Parent {
		INPUT v;
		SUBPROCESS S USES "Missing" { IN a = v; }
	}`)
	if err := badTemplate.ValidateWithTemplates(resolve); err == nil {
		t.Fatal("unknown template accepted")
	}
	badArg, _ := ParseProcess(`PROCESS Parent {
		INPUT v;
		SUBPROCESS S USES "Child" { IN nosuch = v; }
	}`)
	if err := badArg.ValidateWithTemplates(resolve); err == nil {
		t.Fatal("unknown template input accepted")
	}
	badMap, _ := ParseProcess(`PROCESS Parent {
		INPUT v;
		SUBPROCESS S USES "Child" { IN a = v; MAP ghost -> w; }
	}`)
	if err := badMap.ValidateWithTemplates(resolve); err == nil {
		t.Fatal("unknown template output accepted")
	}
}

func TestClone(t *testing.T) {
	p := parseAllVsAll(t)
	c := p.Clone()
	if Format(p) != Format(c) {
		t.Fatal("clone formats differently")
	}
	// Mutating the clone must not affect the original.
	c.Tasks[0].Name = "Renamed"
	c.Task("Alignment")
	if p.Tasks[0].Name == "Renamed" {
		t.Fatal("clone shares task structs")
	}
	al := p.Task("Alignment")
	cal := c.Task("Alignment")
	cal.Body.Tasks[0].Name = "X"
	if al.Body.Tasks[0].Name == "X" {
		t.Fatal("clone shares block bodies")
	}
	if (*Process)(nil).Clone() != nil {
		t.Fatal("nil clone")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	src := `process P {
		input x;
		activity A { call prog.run(v = x); out r; map r -> y; }
		output y;
	}`
	p, err := ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Task("A") == nil || len(p.Inputs) != 1 {
		t.Fatal("lower-case keywords mishandled")
	}
	if !strings.Contains(Format(p), "ACTIVITY A") {
		t.Fatal("canonical form should upper-case keywords")
	}
}

func TestParseTimeout(t *testing.T) {
	src := `
PROCESS P {
  ACTIVITY A {
    CALL x.run();
    OUT r;
    MAP r -> r;
    TIMEOUT 2.5;
    RETRY 1;
  }
  OUTPUT r;
}
`
	p, err := ParseProcess(src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Task("A")
	if a.Timeout != 2.5 {
		t.Fatalf("Timeout = %v, want 2.5", a.Timeout)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := Format(p)
	if !strings.Contains(out, "TIMEOUT 2.5;") {
		t.Fatalf("Format lost TIMEOUT:\n%s", out)
	}
	p2, err := ParseProcess(out)
	if err != nil || Format(p2) != out {
		t.Fatalf("round trip: %v", err)
	}

	bad := map[string]string{
		"zero":     `PROCESS P { ACTIVITY A { CALL x.y(); TIMEOUT 0; } }`,
		"negative": `PROCESS P { ACTIVITY A { CALL x.y(); TIMEOUT -3; } }`,
		"no value": `PROCESS P { ACTIVITY A { CALL x.y(); TIMEOUT; } }`,
	}
	for name, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}

	// TIMEOUT is reserved and cannot name a task.
	res, err := ParseProcess(`PROCESS P { ACTIVITY Timeout { CALL x.y(); } }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err == nil {
		t.Fatal("Validate accepted task named Timeout")
	}

	// Negative timeouts set programmatically are caught by Validate.
	neg := &Process{Name: "P", Tasks: []*Task{{
		Name: "A", Kind: KindActivity, Program: "x.y", Timeout: -1,
	}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("Validate accepted negative timeout")
	}

	// A SUBPROCESS with only a TIMEOUT must keep its long form.
	sub := &Process{Name: "P", Tasks: []*Task{{
		Name: "S", Kind: KindSubprocess, Uses: "Other", Timeout: 5,
	}}}
	if !strings.Contains(Format(sub), "TIMEOUT 5;") {
		t.Fatalf("SUBPROCESS short form dropped TIMEOUT:\n%s", Format(sub))
	}
}
