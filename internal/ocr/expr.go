package ocr

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a parsed expression used in activation conditions and data
// bindings. Expressions are immutable and safe for concurrent evaluation.
type Expr interface {
	// Eval computes the expression's value in env.
	Eval(env Env) (Value, error)
	// String renders the expression in parseable OCR syntax.
	String() string
	// refs appends every name the expression reads to dst.
	refs(dst []string) []string
}

// EvalError reports a runtime evaluation failure.
type EvalError struct {
	Expr string
	Msg  string
}

// Error implements error.
func (e *EvalError) Error() string { return fmt.Sprintf("ocr: evaluating %s: %s", e.Expr, e.Msg) }

func evalErrf(e Expr, format string, args ...any) error {
	return &EvalError{Expr: e.String(), Msg: fmt.Sprintf(format, args...)}
}

// Refs returns the sorted, de-duplicated set of names an expression reads.
// Validation uses it to detect dangling references.
func Refs(e Expr) []string {
	names := e.refs(nil)
	seen := make(map[string]bool, len(names))
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// litExpr is a literal value.
type litExpr struct{ v Value }

// Lit returns an expression that evaluates to v.
func Lit(v Value) Expr { return litExpr{v} }

func (e litExpr) Eval(Env) (Value, error)    { return e.v, nil }
func (e litExpr) String() string             { return e.v.String() }
func (e litExpr) refs(dst []string) []string { return dst }

// refExpr reads a name (whiteboard entry or "task.field").
type refExpr struct{ name string }

// Ref returns an expression that reads name from the environment.
// Undefined names evaluate to null (so conditions like `!queue_file` work
// for optional inputs, as in the paper's all-vs-all process).
func Ref(name string) Expr { return refExpr{name} }

func (e refExpr) Eval(env Env) (Value, error) {
	v, _ := env.Lookup(e.name)
	return v, nil
}
func (e refExpr) String() string             { return e.name }
func (e refExpr) refs(dst []string) []string { return append(dst, e.name) }

// listExpr builds a list from element expressions.
type listExpr struct{ elems []Expr }

func (e listExpr) Eval(env Env) (Value, error) {
	vs := make([]Value, len(e.elems))
	for i, el := range e.elems {
		v, err := el.Eval(env)
		if err != nil {
			return Null, err
		}
		vs[i] = v
	}
	return List(vs...), nil
}
func (e listExpr) String() string {
	parts := make([]string, len(e.elems))
	for i, el := range e.elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
func (e listExpr) refs(dst []string) []string {
	for _, el := range e.elems {
		dst = el.refs(dst)
	}
	return dst
}

// unaryExpr is !x or -x.
type unaryExpr struct {
	op string
	x  Expr
}

func (e unaryExpr) Eval(env Env) (Value, error) {
	v, err := e.x.Eval(env)
	if err != nil {
		return Null, err
	}
	switch e.op {
	case "!":
		return Bool(!v.Truthy()), nil
	case "-":
		if v.Kind() != KindNumber {
			return Null, evalErrf(e, "cannot negate %s", v.Kind())
		}
		return Num(-v.AsNum()), nil
	}
	return Null, evalErrf(e, "unknown unary operator %q", e.op)
}
func (e unaryExpr) String() string             { return e.op + e.x.String() }
func (e unaryExpr) refs(dst []string) []string { return e.x.refs(dst) }

// binExpr is a binary operation.
type binExpr struct {
	op   string
	l, r Expr
}

func (e binExpr) Eval(env Env) (Value, error) {
	// Short-circuit logical operators.
	switch e.op {
	case "&&":
		lv, err := e.l.Eval(env)
		if err != nil {
			return Null, err
		}
		if !lv.Truthy() {
			return Bool(false), nil
		}
		rv, err := e.r.Eval(env)
		if err != nil {
			return Null, err
		}
		return Bool(rv.Truthy()), nil
	case "||":
		lv, err := e.l.Eval(env)
		if err != nil {
			return Null, err
		}
		if lv.Truthy() {
			return Bool(true), nil
		}
		rv, err := e.r.Eval(env)
		if err != nil {
			return Null, err
		}
		return Bool(rv.Truthy()), nil
	}

	lv, err := e.l.Eval(env)
	if err != nil {
		return Null, err
	}
	rv, err := e.r.Eval(env)
	if err != nil {
		return Null, err
	}
	switch e.op {
	case "==":
		return Bool(lv.Equal(rv)), nil
	case "!=":
		return Bool(!lv.Equal(rv)), nil
	case "<", "<=", ">", ">=":
		var cmp int
		switch {
		case lv.Kind() == KindNumber && rv.Kind() == KindNumber:
			a, b := lv.AsNum(), rv.AsNum()
			if math.IsNaN(a) || math.IsNaN(b) {
				return Bool(false), nil
			}
			cmp = compareFloat(a, b)
		case lv.Kind() == KindString && rv.Kind() == KindString:
			cmp = strings.Compare(lv.AsStr(), rv.AsStr())
		default:
			return Null, evalErrf(e, "cannot compare %s and %s", lv.Kind(), rv.Kind())
		}
		switch e.op {
		case "<":
			return Bool(cmp < 0), nil
		case "<=":
			return Bool(cmp <= 0), nil
		case ">":
			return Bool(cmp > 0), nil
		default:
			return Bool(cmp >= 0), nil
		}
	case "+":
		if lv.Kind() == KindString && rv.Kind() == KindString {
			return Str(lv.AsStr() + rv.AsStr()), nil
		}
		if lv.Kind() == KindList && rv.Kind() == KindList {
			return List(append(lv.AsList(), rv.AsList()...)...), nil
		}
		fallthrough
	case "-", "*", "/", "%":
		if lv.Kind() != KindNumber || rv.Kind() != KindNumber {
			return Null, evalErrf(e, "arithmetic on %s and %s", lv.Kind(), rv.Kind())
		}
		a, b := lv.AsNum(), rv.AsNum()
		switch e.op {
		case "+":
			return Num(a + b), nil
		case "-":
			return Num(a - b), nil
		case "*":
			return Num(a * b), nil
		case "/":
			if b == 0 {
				return Null, evalErrf(e, "division by zero")
			}
			return Num(a / b), nil
		default:
			if b == 0 {
				return Null, evalErrf(e, "modulo by zero")
			}
			return Num(math.Mod(a, b)), nil
		}
	}
	return Null, evalErrf(e, "unknown operator %q", e.op)
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (e binExpr) String() string {
	return "(" + e.l.String() + " " + e.op + " " + e.r.String() + ")"
}
func (e binExpr) refs(dst []string) []string { return e.r.refs(e.l.refs(dst)) }

// indexExpr is x[i].
type indexExpr struct {
	x, i Expr
}

func (e indexExpr) Eval(env Env) (Value, error) {
	xv, err := e.x.Eval(env)
	if err != nil {
		return Null, err
	}
	iv, err := e.i.Eval(env)
	if err != nil {
		return Null, err
	}
	if xv.Kind() != KindList {
		return Null, evalErrf(e, "indexing a %s", xv.Kind())
	}
	if iv.Kind() != KindNumber {
		return Null, evalErrf(e, "index must be a number, got %s", iv.Kind())
	}
	idx := iv.AsInt()
	if idx < 0 || idx >= xv.Len() {
		return Null, evalErrf(e, "index %d out of range (len %d)", idx, xv.Len())
	}
	return xv.At(idx), nil
}
func (e indexExpr) String() string             { return e.x.String() + "[" + e.i.String() + "]" }
func (e indexExpr) refs(dst []string) []string { return e.i.refs(e.x.refs(dst)) }

// callExpr is a builtin function call.
type callExpr struct {
	fn   string
	args []Expr
}

func (e callExpr) Eval(env Env) (Value, error) {
	// defined() inspects name presence instead of evaluating.
	if e.fn == "defined" {
		if len(e.args) != 1 {
			return Null, evalErrf(e, "defined takes 1 argument")
		}
		ref, ok := e.args[0].(refExpr)
		if !ok {
			return Null, evalErrf(e, "defined requires a name argument")
		}
		v, present := env.Lookup(ref.name)
		return Bool(present && !v.IsNull()), nil
	}
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		v, err := a.Eval(env)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	switch e.fn {
	case "len":
		if len(args) != 1 {
			return Null, evalErrf(e, "len takes 1 argument")
		}
		switch args[0].Kind() {
		case KindList:
			return Int(args[0].Len()), nil
		case KindString:
			return Int(len(args[0].AsStr())), nil
		default:
			return Null, evalErrf(e, "len of %s", args[0].Kind())
		}
	case "min", "max":
		if len(args) == 0 {
			return Null, evalErrf(e, "%s needs at least 1 argument", e.fn)
		}
		best := math.Inf(1)
		if e.fn == "max" {
			best = math.Inf(-1)
		}
		for _, a := range args {
			if a.Kind() != KindNumber {
				return Null, evalErrf(e, "%s of %s", e.fn, a.Kind())
			}
			if e.fn == "min" {
				best = math.Min(best, a.AsNum())
			} else {
				best = math.Max(best, a.AsNum())
			}
		}
		return Num(best), nil
	case "abs":
		if len(args) != 1 || args[0].Kind() != KindNumber {
			return Null, evalErrf(e, "abs takes 1 numeric argument")
		}
		return Num(math.Abs(args[0].AsNum())), nil
	case "floor":
		if len(args) != 1 || args[0].Kind() != KindNumber {
			return Null, evalErrf(e, "floor takes 1 numeric argument")
		}
		return Num(math.Floor(args[0].AsNum())), nil
	case "ceil":
		if len(args) != 1 || args[0].Kind() != KindNumber {
			return Null, evalErrf(e, "ceil takes 1 numeric argument")
		}
		return Num(math.Ceil(args[0].AsNum())), nil
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			if a.Kind() == KindString {
				sb.WriteString(a.AsStr())
			} else {
				sb.WriteString(a.String())
			}
		}
		return Str(sb.String()), nil
	case "range":
		if len(args) != 1 || args[0].Kind() != KindNumber {
			return Null, evalErrf(e, "range takes 1 numeric argument")
		}
		n := args[0].AsInt()
		if n < 0 {
			return Null, evalErrf(e, "range of negative %d", n)
		}
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Int(i)
		}
		return List(vs...), nil
	case "contains":
		if len(args) != 2 || args[0].Kind() != KindList {
			return Null, evalErrf(e, "contains takes (list, value)")
		}
		for i := 0; i < args[0].Len(); i++ {
			if args[0].At(i).Equal(args[1]) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	case "flatten":
		if len(args) != 1 || args[0].Kind() != KindList {
			return Null, evalErrf(e, "flatten takes 1 list argument")
		}
		var out []Value
		for i := 0; i < args[0].Len(); i++ {
			el := args[0].At(i)
			if el.Kind() == KindList {
				out = append(out, el.AsList()...)
			} else {
				out = append(out, el)
			}
		}
		return List(out...), nil
	}
	return Null, evalErrf(e, "unknown function %q", e.fn)
}

func (e callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return e.fn + "(" + strings.Join(parts, ", ") + ")"
}

func (e callExpr) refs(dst []string) []string {
	for _, a := range e.args {
		dst = a.refs(dst)
	}
	return dst
}

// builtins is the set of callable function names; used by the parser to
// distinguish calls from references and by validation.
var builtins = map[string]bool{
	"defined": true, "len": true, "min": true, "max": true, "abs": true,
	"floor": true, "ceil": true, "concat": true, "range": true,
	"contains": true, "flatten": true,
}

// exprParser is a recursive-descent parser over a token slice.
type exprParser struct {
	toks []token
	pos  int
}

func (p *exprParser) cur() token  { return p.toks[p.pos] }
func (p *exprParser) bump() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *exprParser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *exprParser) eatPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *exprParser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

// ParseExpr parses a standalone expression.
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error; for package-level
// constants and tests.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *exprParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *exprParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		p.bump()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binExpr{"||", l, r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		p.bump()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binExpr{"&&", l, r}
	}
	return l, nil
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		switch p.cur().text {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.bump().text
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return binExpr{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.bump().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binExpr{op, l, r}
	}
	return l, nil
}

func (p *exprParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		op := p.bump().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binExpr{op, l, r}
	}
	return l, nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.cur().kind == tokPunct && (p.cur().text == "!" || p.cur().text == "-") {
		op := p.bump().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op, x}, nil
	}
	return p.parsePostfix()
}

func (p *exprParser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "[" {
		p.bump()
		i, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		x = indexExpr{x, i}
	}
	return x, nil
}

func (p *exprParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.bump()
		return Lit(Num(t.num)), nil
	case tokString:
		p.bump()
		return Lit(Str(t.str)), nil
	case tokIdent:
		switch t.text {
		case "true":
			p.bump()
			return Lit(Bool(true)), nil
		case "false":
			p.bump()
			return Lit(Bool(false)), nil
		case "null":
			p.bump()
			return Lit(Null), nil
		}
		p.bump()
		// Function call.
		if builtins[t.text] && p.cur().kind == tokPunct && p.cur().text == "(" {
			p.bump()
			var args []Expr
			if !(p.cur().kind == tokPunct && p.cur().text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.eatPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return callExpr{t.text, args}, nil
		}
		// Qualified reference task.field.
		name := t.text
		if p.cur().kind == tokPunct && p.cur().text == "." {
			p.bump()
			f := p.cur()
			if f.kind != tokIdent {
				return nil, p.errorf("expected field name after '.', found %s", f)
			}
			p.bump()
			name = name + "." + f.text
		}
		return Ref(name), nil
	case tokPunct:
		switch t.text {
		case "(":
			p.bump()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.bump()
			var elems []Expr
			if !(p.cur().kind == tokPunct && p.cur().text == "]") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					elems = append(elems, e)
					if !p.eatPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return listExpr{elems}, nil
		}
	}
	return nil, p.errorf("unexpected %s in expression", t)
}
