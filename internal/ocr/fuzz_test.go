package ocr

import (
	"strings"
	"testing"
)

// FuzzParseExpr checks that expression parsing never panics and that any
// successfully parsed expression reprints to a stable fixpoint.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"1 + 2 * 3",
		"!defined(queue_file) && len(parts) > 0",
		`concat("p-", i)`,
		"[1, [2, 3], \"x\"][1][0]",
		"a.b + c % 2 == 1",
		"min(1,2,3) <= max(x, -y)",
		"range(10)[i]",
		"((((((1))))))",
		"\"\\\"escaped\\\"\"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		printed := e.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %q -> %q: %v", src, printed, err)
		}
		if e2.String() != printed {
			t.Fatalf("print not a fixpoint: %q -> %q -> %q", src, printed, e2.String())
		}
	})
}

// FuzzParseProcess checks that process parsing never panics and that any
// successfully parsed process round-trips through the canonical printer.
func FuzzParseProcess(f *testing.F) {
	f.Add(allVsAllSrc)
	f.Add(`PROCESS P { ACTIVITY A { CALL x.y(); } }`)
	f.Add(`PROCESS P {
  INPUT a;
  OUTPUT b;
  DATA d = [1,2];
  BLOCK B ATOMIC PARALLEL OVER d AS e {
    MAP results -> b;
    OUTPUT o;
    ACTIVITY W { CALL w.w(x = e); OUT o; MAP o -> o; UNDO w.undo; RETRY 2; }
  }
  ACTIVITY G { AWAIT "ev"; OUT p; MAP p -> c; ON FAILURE IGNORE; }
  SUBPROCESS S USES "other" { IN a = c; OUT z; MAP z -> b; }
  B -> G IF len(b) > 0;
  G -> S;
}`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep the fuzzer fast
		}
		p, err := ParseProcess(src)
		if err != nil {
			return
		}
		text := Format(p)
		p2, err := ParseProcess(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, text)
		}
		if Format(p2) != text {
			t.Fatalf("Format not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text, Format(p2))
		}
	})
}

// TestFuzzSeedsWithCorpusMutations runs a deterministic mini-fuzz over
// mutations of the seed corpus, so CI exercises the property without the
// fuzzing engine.
func TestFuzzSeedsWithCorpusMutations(t *testing.T) {
	seeds := []string{
		allVsAllSrc,
		`PROCESS P { ACTIVITY A { CALL x.y(); } }`,
		`PROCESS Q { INPUT i; OUTPUT o; ACTIVITY A { AWAIT "e"; OUT o; MAP o -> o; } }`,
	}
	mutations := []func(string) string{
		func(s string) string { return s },
		strings.ToLower,
		strings.ToUpper,
		func(s string) string { return strings.ReplaceAll(s, ";", " ;") },
		func(s string) string { return strings.ReplaceAll(s, "{", "{\n#c\n") },
		func(s string) string { return s[:len(s)/2] },
		func(s string) string { return s + "}" },
		func(s string) string { return strings.ReplaceAll(s, "->", "→") },
	}
	for _, seed := range seeds {
		for _, m := range mutations {
			src := m(seed)
			p, err := ParseProcess(src)
			if err != nil {
				continue // rejection is fine; panics are not
			}
			text := Format(p)
			p2, err := ParseProcess(text)
			if err != nil {
				t.Fatalf("canonical reparse failed: %v\n%s", err, text)
			}
			if Format(p2) != text {
				t.Fatal("format not a fixpoint under mutation")
			}
		}
	}
}
