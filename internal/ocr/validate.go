package ocr

import (
	"errors"
	"fmt"
	"strings"
)

// reservedWords are keywords that cannot name tasks or data objects
// because the parser could not re-read them.
var reservedWords = map[string]bool{}

func init() {
	for _, kw := range []string{
		kwProcess, kwInput, kwOutput, kwData, kwActivity, kwBlock,
		kwSubprocess, kwCall, kwOut, kwMap, kwRetry, kwTimeout, kwPriority,
		kwCost, kwDoc, kwOn, kwFailure, kwAbort, kwIgnore,
		kwAlternative, kwParallel, kwOver, kwAs, kwUses, kwIf, kwIn,
		kwAtomic, kwUndo, kwAwait,
		"true", "false", "null",
	} {
		reservedWords[strings.ToUpper(kw)] = true
	}
}

func isReserved(name string) bool { return reservedWords[strings.ToUpper(name)] }

// TemplateResolver looks up a process template by name; used to check
// SUBPROCESS references. May be nil, in which case references are assumed
// resolvable (they are late-bound anyway).
type TemplateResolver func(name string) (*Process, bool)

// Validate checks the static well-formedness of the process: unique
// names, resolvable connector endpoints, acyclicity, plausible bindings
// and mappings. It returns all problems found joined into one error.
func (p *Process) Validate() error { return p.ValidateWithTemplates(nil) }

// ValidateWithTemplates is Validate with subprocess-reference checking
// against the given resolver.
func (p *Process) ValidateWithTemplates(resolve TemplateResolver) error {
	v := &validator{resolve: resolve}
	v.process(p, nil, "")
	return errors.Join(v.errs...)
}

type validator struct {
	resolve TemplateResolver
	errs    []error
}

func (v *validator) errorf(format string, args ...any) {
	v.errs = append(v.errs, fmt.Errorf("ocr: "+format, args...))
}

// process validates p. parentNames is the set of whiteboard names visible
// from an enclosing scope (for block bodies); path is a prefix for error
// messages.
func (v *validator) process(p *Process, parentNames map[string]bool, path string) {
	where := p.Name
	if path != "" {
		where = path + "/" + p.Name
	}
	if p.Name == "" {
		v.errorf("%s: process has no name", where)
	}
	if isReserved(p.Name) {
		v.errorf("%s: process name %q is a reserved word", where, p.Name)
	}

	// Whiteboard names visible in this scope.
	names := make(map[string]bool)
	for k := range parentNames {
		names[k] = true
	}
	for _, in := range p.Inputs {
		if names[in] && parentNames[in] {
			// inherited shadowing is fine
		}
		if isReserved(in) {
			v.errorf("%s: input %q is a reserved word", where, in)
		}
		names[in] = true
	}
	seenData := make(map[string]bool)
	for _, d := range p.Data {
		if isReserved(d.Name) {
			v.errorf("%s: data object %q is a reserved word", where, d.Name)
		}
		if seenData[d.Name] {
			v.errorf("%s: duplicate DATA declaration %q", where, d.Name)
		}
		seenData[d.Name] = true
		names[d.Name] = true
	}

	// Task names.
	taskByName := make(map[string]*Task, len(p.Tasks))
	for _, t := range p.Tasks {
		if t.Name == "" {
			v.errorf("%s: task with empty name", where)
			continue
		}
		if isReserved(t.Name) {
			v.errorf("%s: task name %q is a reserved word", where, t.Name)
		}
		if _, dup := taskByName[t.Name]; dup {
			v.errorf("%s: duplicate task name %q", where, t.Name)
			continue
		}
		taskByName[t.Name] = t
	}

	// Everything a MAP writes becomes a whiteboard name.
	for _, t := range p.Tasks {
		for _, m := range t.Maps {
			names[m.To] = true
		}
		if t.Kind == KindBlock && t.Parallel && t.As != "" {
			// As is visible only inside the body; handled below.
			continue
		}
	}

	// Connectors.
	indegree := make(map[string]int)
	adj := make(map[string][]string)
	for _, c := range p.Connectors {
		if _, ok := taskByName[c.From]; !ok {
			v.errorf("%s: connector references unknown source task %q", where, c.From)
			continue
		}
		if _, ok := taskByName[c.To]; !ok {
			v.errorf("%s: connector references unknown target task %q", where, c.To)
			continue
		}
		if c.From == c.To {
			v.errorf("%s: connector %s -> %s is a self-loop", where, c.From, c.To)
			continue
		}
		adj[c.From] = append(adj[c.From], c.To)
		indegree[c.To]++
		if c.Cond != nil {
			v.exprRefs(c.Cond, names, taskByName, where, fmt.Sprintf("condition on %s -> %s", c.From, c.To))
		}
	}

	// Acyclicity via Kahn's algorithm.
	if len(v.errs) == 0 || true { // still meaningful with other errors
		queue := make([]string, 0, len(taskByName))
		deg := make(map[string]int, len(taskByName))
		for name := range taskByName {
			deg[name] = indegree[name]
			if deg[name] == 0 {
				queue = append(queue, name)
			}
		}
		visited := 0
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			visited++
			for _, m := range adj[n] {
				deg[m]--
				if deg[m] == 0 {
					queue = append(queue, m)
				}
			}
		}
		if visited != len(taskByName) {
			v.errorf("%s: control-flow graph contains a cycle", where)
		}
	}

	// Per-task checks.
	for _, t := range p.Tasks {
		tw := where + "." + t.Name
		switch t.Kind {
		case KindActivity:
			if t.Program == "" && t.Await == "" {
				v.errorf("%s: activity has neither CALL nor AWAIT", tw)
			}
			if t.Program != "" && t.Await != "" {
				v.errorf("%s: activity has both CALL and AWAIT", tw)
			}
			seenOut := make(map[string]bool)
			for _, o := range t.Outs {
				if seenOut[o] {
					v.errorf("%s: duplicate OUT field %q", tw, o)
				}
				seenOut[o] = true
			}
			for _, b := range t.Args {
				v.exprRefs(b.Expr, names, taskByName, where, fmt.Sprintf("argument %s of %s", b.Name, t.Name))
			}
		case KindBlock:
			if t.Parallel {
				if t.Over == nil {
					v.errorf("%s: parallel block has no OVER expression", tw)
				} else {
					v.exprRefs(t.Over, names, taskByName, where, fmt.Sprintf("OVER of %s", t.Name))
				}
				if t.As == "" {
					v.errorf("%s: parallel block has no AS variable", tw)
				}
			}
			if t.Body == nil {
				v.errorf("%s: block has no body", tw)
			} else {
				bodyNames := make(map[string]bool, len(names)+1)
				for k := range names {
					bodyNames[k] = true
				}
				if t.As != "" {
					bodyNames[t.As] = true
				}
				v.process(t.Body, bodyNames, where)
				if t.Parallel && len(t.Body.Outputs) == 0 {
					v.errorf("%s: parallel block body declares no OUTPUT", tw)
				}
			}
		case KindSubprocess:
			if t.Uses == "" {
				v.errorf("%s: subprocess has no USES reference", tw)
			} else if v.resolve != nil {
				ref, ok := v.resolve(t.Uses)
				if !ok {
					v.errorf("%s: subprocess references unknown template %q", tw, t.Uses)
				} else {
					// Arguments must match the template's inputs.
					inputs := make(map[string]bool, len(ref.Inputs))
					for _, in := range ref.Inputs {
						inputs[in] = true
					}
					for _, b := range t.Args {
						if !inputs[b.Name] {
							v.errorf("%s: template %q has no input %q", tw, t.Uses, b.Name)
						}
					}
					outputs := make(map[string]bool, len(ref.Outputs))
					for _, o := range ref.Outputs {
						outputs[o] = true
					}
					for _, m := range t.Maps {
						if !outputs[m.From] {
							v.errorf("%s: template %q has no output %q to MAP", tw, t.Uses, m.From)
						}
					}
				}
			}
			for _, b := range t.Args {
				v.exprRefs(b.Expr, names, taskByName, where, fmt.Sprintf("argument %s of %s", b.Name, t.Name))
			}
		}

		// Mapping sources must be output fields where statically known.
		fields := t.OutputFields()
		if t.Kind != KindSubprocess || len(t.Outs) > 0 {
			known := make(map[string]bool, len(fields))
			for _, f := range fields {
				known[f] = true
			}
			for _, m := range t.Maps {
				if len(known) > 0 && !known[m.From] {
					v.errorf("%s: MAP source %q is not an output field (have %s)", tw, m.From, strings.Join(fields, ", "))
				}
			}
		}

		// Failure handling.
		if t.OnFail == FailAlternative {
			if t.AltTask == "" {
				v.errorf("%s: ON FAILURE ALTERNATIVE needs a task name", tw)
			} else if t.AltTask == t.Name {
				v.errorf("%s: alternative task is the task itself", tw)
			} else if _, ok := taskByName[t.AltTask]; !ok {
				v.errorf("%s: alternative task %q does not exist", tw, t.AltTask)
			}
		} else if t.AltTask != "" {
			v.errorf("%s: ALTERNATIVE task set but ON FAILURE is %s", tw, t.OnFail)
		}
		if t.Retries < 0 {
			v.errorf("%s: negative retry count", tw)
		}
		if t.Timeout < 0 {
			v.errorf("%s: negative timeout", tw)
		}
	}

	// Process outputs must be resolvable whiteboard names.
	for _, o := range p.Outputs {
		if !names[o] {
			v.errorf("%s: OUTPUT %q is never defined (no input, DATA or MAP produces it)", where, o)
		}
	}
}

// exprRefs checks every name an expression reads: plain names must be
// whiteboard entries; qualified names must be task.outputField.
func (v *validator) exprRefs(e Expr, names map[string]bool, tasks map[string]*Task, where, ctx string) {
	for _, r := range Refs(e) {
		if dot := strings.IndexByte(r, '.'); dot >= 0 {
			taskName, field := r[:dot], r[dot+1:]
			t, ok := tasks[taskName]
			if !ok {
				v.errorf("%s: %s references unknown task %q", where, ctx, taskName)
				continue
			}
			fields := t.OutputFields()
			// Subprocess outputs may be unknown statically.
			if t.Kind == KindSubprocess && len(fields) == 0 {
				continue
			}
			found := false
			for _, f := range fields {
				if f == field {
					found = true
					break
				}
			}
			if !found {
				v.errorf("%s: %s references %s.%s but %s has outputs (%s)", where, ctx, taskName, field, taskName, strings.Join(fields, ", "))
			}
			continue
		}
		if !names[r] {
			v.errorf("%s: %s references undefined name %q", where, ctx, r)
		}
	}
}
