package ocr

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a process in canonical OCR syntax. The output reparses
// to an equivalent process (Format∘ParseProcess is the persistence format
// of the template space).
func Format(p *Process) string {
	var sb strings.Builder
	formatProcess(&sb, p, 0)
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func formatProcess(sb *strings.Builder, p *Process, depth int) {
	indent(sb, depth)
	sb.WriteString("PROCESS ")
	sb.WriteString(p.Name)
	if p.Doc != "" {
		sb.WriteString(" ")
		sb.WriteString(strconv.Quote(p.Doc))
	}
	sb.WriteString(" {\n")
	formatBody(sb, p, depth+1, false)
	indent(sb, depth)
	sb.WriteString("}\n")
}

func formatBody(sb *strings.Builder, p *Process, depth int, isBlock bool) {
	if len(p.Inputs) > 0 && !isBlock {
		indent(sb, depth)
		fmt.Fprintf(sb, "INPUT %s;\n", strings.Join(p.Inputs, ", "))
	}
	if len(p.Outputs) > 0 {
		indent(sb, depth)
		fmt.Fprintf(sb, "OUTPUT %s;\n", strings.Join(p.Outputs, ", "))
	}
	for _, d := range p.Data {
		indent(sb, depth)
		if d.Init != nil {
			fmt.Fprintf(sb, "DATA %s = %s;\n", d.Name, d.Init.String())
		} else {
			fmt.Fprintf(sb, "DATA %s;\n", d.Name)
		}
	}
	for _, t := range p.Tasks {
		formatTask(sb, t, depth)
	}
	for _, c := range p.Connectors {
		indent(sb, depth)
		if c.Cond != nil {
			fmt.Fprintf(sb, "%s -> %s IF %s;\n", c.From, c.To, c.Cond.String())
		} else {
			fmt.Fprintf(sb, "%s -> %s;\n", c.From, c.To)
		}
	}
}

func formatCommon(sb *strings.Builder, t *Task, depth int) {
	if t.Doc != "" {
		indent(sb, depth)
		fmt.Fprintf(sb, "DOC %s;\n", strconv.Quote(t.Doc))
	}
	if len(t.Maps) > 0 {
		indent(sb, depth)
		sb.WriteString("MAP ")
		for i, m := range t.Maps {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%s -> %s", m.From, m.To)
		}
		sb.WriteString(";\n")
	}
	if t.Retries != 0 {
		indent(sb, depth)
		fmt.Fprintf(sb, "RETRY %d;\n", t.Retries)
	}
	if t.Priority != 0 {
		indent(sb, depth)
		fmt.Fprintf(sb, "PRIORITY %d;\n", t.Priority)
	}
	if t.Cost != 0 {
		indent(sb, depth)
		fmt.Fprintf(sb, "COST %s;\n", Num(t.Cost).String())
	}
	if t.Timeout != 0 {
		indent(sb, depth)
		fmt.Fprintf(sb, "TIMEOUT %s;\n", Num(t.Timeout).String())
	}
	switch t.OnFail {
	case FailIgnore:
		indent(sb, depth)
		sb.WriteString("ON FAILURE IGNORE;\n")
	case FailAlternative:
		indent(sb, depth)
		fmt.Fprintf(sb, "ON FAILURE ALTERNATIVE %s;\n", t.AltTask)
	}
}

func formatTask(sb *strings.Builder, t *Task, depth int) {
	switch t.Kind {
	case KindActivity:
		indent(sb, depth)
		fmt.Fprintf(sb, "ACTIVITY %s {\n", t.Name)
		if t.Await != "" {
			indent(sb, depth+1)
			fmt.Fprintf(sb, "AWAIT %s;\n", strconv.Quote(t.Await))
		}
		if t.Program != "" {
			indent(sb, depth+1)
			fmt.Fprintf(sb, "CALL %s(", t.Program)
			for i, b := range t.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(sb, "%s = %s", b.Name, b.Expr.String())
			}
			sb.WriteString(");\n")
		}
		if len(t.Outs) > 0 {
			indent(sb, depth+1)
			fmt.Fprintf(sb, "OUT %s;\n", strings.Join(t.Outs, ", "))
		}
		if t.Undo != "" {
			indent(sb, depth+1)
			fmt.Fprintf(sb, "UNDO %s;\n", t.Undo)
		}
		formatCommon(sb, t, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case KindBlock:
		indent(sb, depth)
		fmt.Fprintf(sb, "BLOCK %s", t.Name)
		if t.Atomic {
			sb.WriteString(" ATOMIC")
		}
		if t.Parallel {
			fmt.Fprintf(sb, " PARALLEL OVER %s AS %s", t.Over.String(), t.As)
		}
		sb.WriteString(" {\n")
		formatCommon(sb, t, depth+1)
		if t.Body != nil {
			formatBody(sb, t.Body, depth+1, true)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case KindSubprocess:
		indent(sb, depth)
		fmt.Fprintf(sb, "SUBPROCESS %s USES %s", t.Name, strconv.Quote(t.Uses))
		if len(t.Args) == 0 && len(t.Outs) == 0 && len(t.Maps) == 0 &&
			t.Retries == 0 && t.Priority == 0 && t.Cost == 0 &&
			t.Timeout == 0 && t.OnFail == FailAbort && t.Doc == "" {
			sb.WriteString(";\n")
			return
		}
		sb.WriteString(" {\n")
		if len(t.Args) > 0 {
			indent(sb, depth+1)
			sb.WriteString("IN ")
			for i, b := range t.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(sb, "%s = %s", b.Name, b.Expr.String())
			}
			sb.WriteString(";\n")
		}
		if len(t.Outs) > 0 {
			indent(sb, depth+1)
			fmt.Fprintf(sb, "OUT %s;\n", strings.Join(t.Outs, ", "))
		}
		formatCommon(sb, t, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	}
}
