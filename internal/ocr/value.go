// Package ocr implements the Opera Canonical Representation (OCR), the
// process language of BioOpera (§3.1 of the paper).
//
// An OCR process is an annotated directed graph: nodes are tasks
// (activities, blocks, subprocesses) and arcs are control connectors with
// activation conditions plus data-flow bindings. Processes carry a global
// data area — the whiteboard — through which tasks exchange values.
//
// The package provides:
//
//   - the process model (Process, Task, Connector),
//   - a dynamically typed value system used on whiteboards (Value),
//   - a small expression language for activation conditions and data
//     bindings (Parse/Eval),
//   - a textual OCR syntax with parser (ParseProcess) and printer (Format),
//   - static validation (Process.Validate).
package ocr

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a whiteboard value can take.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindList
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed OCR value. The zero Value is null.
// Values are immutable by convention: List returns a copy.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string
	l    []Value
}

// Null is the null value.
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Num returns a numeric value.
func Num(n float64) Value { return Value{kind: KindNumber, n: n} }

// Int returns a numeric value from an int.
func Int(n int) Value { return Num(float64(n)) }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// List returns a list value. The slice is copied.
func List(vs ...Value) Value {
	return Value{kind: KindList, l: append([]Value(nil), vs...)}
}

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean content (false for non-bools).
func (v Value) AsBool() bool { return v.kind == KindBool && v.b }

// AsNum returns the numeric content (0 for non-numbers).
func (v Value) AsNum() float64 {
	if v.kind == KindNumber {
		return v.n
	}
	return 0
}

// AsInt returns the numeric content truncated to int.
func (v Value) AsInt() int { return int(v.AsNum()) }

// AsStr returns the string content ("" for non-strings).
func (v Value) AsStr() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// AsList returns a copy of the list content (nil for non-lists).
func (v Value) AsList() []Value {
	if v.kind != KindList {
		return nil
	}
	return append([]Value(nil), v.l...)
}

// Len returns the list length, or 0 for non-lists.
func (v Value) Len() int {
	if v.kind != KindList {
		return 0
	}
	return len(v.l)
}

// At returns element i of a list, or null when out of range or not a list.
func (v Value) At(i int) Value {
	if v.kind != KindList || i < 0 || i >= len(v.l) {
		return Null
	}
	return v.l[i]
}

// Truthy reports the value's boolean interpretation: null and false are
// falsy; numbers are truthy when non-zero; strings and lists when
// non-empty. This drives activation conditions like `IF queue_file`.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.n != 0
	case KindString:
		return v.s != ""
	case KindList:
		return len(v.l) > 0
	}
	return false
}

// Equal reports deep equality. NaN compares unequal to everything,
// matching expression-language semantics.
func (v Value) Equal(u Value) bool {
	if v.kind != u.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == u.b
	case KindNumber:
		return v.n == u.n
	case KindString:
		return v.s == u.s
	case KindList:
		if len(v.l) != len(u.l) {
			return false
		}
		for i := range v.l {
			if !v.l[i].Equal(u.l[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value in OCR literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		if v.n == math.Trunc(v.n) && math.Abs(v.n) < 1e15 {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.l {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	}
	return "?"
}

// jsonValue is the wire form used to persist values in the store.
type jsonValue struct {
	K Kind              `json:"k"`
	B bool              `json:"b,omitempty"`
	N float64           `json:"n,omitempty"`
	S string            `json:"s,omitempty"`
	L []json.RawMessage `json:"l,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{K: v.kind, B: v.b, N: v.n, S: v.s}
	for _, e := range v.l {
		raw, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		jv.L = append(jv.L, raw)
	}
	return json.Marshal(jv)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	v.kind, v.b, v.n, v.s, v.l = jv.K, jv.B, jv.N, jv.S, nil
	for _, raw := range jv.L {
		var e Value
		if err := json.Unmarshal(raw, &e); err != nil {
			return err
		}
		v.l = append(v.l, e)
	}
	return nil
}

// Env is the evaluation environment for expressions: whiteboard names plus
// qualified task outputs ("task.field").
type Env interface {
	// Lookup resolves name (possibly "task.field") to a value. The
	// second result reports whether the name is defined.
	Lookup(name string) (Value, bool)
}

// MapEnv is an Env backed by a map, handy in tests and for whiteboards.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Names returns the defined names in sorted order.
func (m MapEnv) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
