package ocr

import (
	"fmt"
	"strings"
)

// keyword spellings (matched case-insensitively).
const (
	kwProcess     = "PROCESS"
	kwInput       = "INPUT"
	kwOutput      = "OUTPUT"
	kwData        = "DATA"
	kwActivity    = "ACTIVITY"
	kwBlock       = "BLOCK"
	kwSubprocess  = "SUBPROCESS"
	kwCall        = "CALL"
	kwOut         = "OUT"
	kwMap         = "MAP"
	kwRetry       = "RETRY"
	kwTimeout     = "TIMEOUT"
	kwPriority    = "PRIORITY"
	kwCost        = "COST"
	kwDoc         = "DOC"
	kwOn          = "ON"
	kwFailure     = "FAILURE"
	kwAbort       = "ABORT"
	kwIgnore      = "IGNORE"
	kwAlternative = "ALTERNATIVE"
	kwParallel    = "PARALLEL"
	kwOver        = "OVER"
	kwAs          = "AS"
	kwUses        = "USES"
	kwIf          = "IF"
	kwIn          = "IN"
	kwAtomic      = "ATOMIC"
	kwUndo        = "UNDO"
	kwAwait       = "AWAIT"
)

// procParser parses the OCR process syntax; it embeds the expression
// parser so conditions and bindings share the token stream.
type procParser struct {
	exprParser
}

func (p *procParser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *procParser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *procParser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return p.errorf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *procParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *procParser) expectString() (string, error) {
	t := p.cur()
	if t.kind != tokString {
		return "", p.errorf("expected string literal, found %s", t)
	}
	p.pos++
	return t.str, nil
}

func (p *procParser) expectNumber() (float64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errorf("expected number, found %s", t)
	}
	p.pos++
	return t.num, nil
}

// ParseProcess parses OCR source containing exactly one process.
func ParseProcess(src string) (*Process, error) {
	ps, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(ps) != 1 {
		return nil, fmt.Errorf("ocr: expected 1 process, found %d", len(ps))
	}
	return ps[0], nil
}

// ParseFile parses OCR source containing one or more processes.
func ParseFile(src string) ([]*Process, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &procParser{exprParser{toks: toks}}
	var out []*Process
	for p.cur().kind != tokEOF {
		proc, err := p.parseProcess()
		if err != nil {
			return nil, err
		}
		out = append(out, proc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ocr: no process in input")
	}
	return out, nil
}

func (p *procParser) parseProcess() (*Process, error) {
	if err := p.expectKw(kwProcess); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	proc := &Process{Name: name}
	if p.cur().kind == tokString {
		proc.Doc = p.bump().str
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := p.parseBodyItems(proc, false); err != nil {
		return nil, err
	}
	return proc, p.expectPunct("}")
}

// parseBodyItems parses declarations, tasks and connectors until '}'.
// inBlock permits block-level clauses (MAP/RETRY/etc. belong to the block
// task, handled by caller) — here it only forbids INPUT inside blocks.
func (p *procParser) parseBodyItems(proc *Process, inBlock bool) error {
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" || t.kind == tokEOF {
			return nil
		}
		switch {
		case p.isKw(kwInput):
			if inBlock {
				return p.errorf("INPUT is not allowed inside a block (blocks inherit the parent whiteboard)")
			}
			p.pos++
			names, err := p.parseIdentList()
			if err != nil {
				return err
			}
			proc.Inputs = append(proc.Inputs, names...)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case p.isKw(kwOutput):
			p.pos++
			names, err := p.parseIdentList()
			if err != nil {
				return err
			}
			proc.Outputs = append(proc.Outputs, names...)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case p.isKw(kwData):
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			decl := DataDecl{Name: name}
			if p.eatPunct("=") {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				decl.Init = e
			}
			proc.Data = append(proc.Data, decl)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		case p.isKw(kwActivity):
			task, err := p.parseActivity()
			if err != nil {
				return err
			}
			proc.Tasks = append(proc.Tasks, task)
		case p.isKw(kwBlock):
			task, err := p.parseBlock()
			if err != nil {
				return err
			}
			proc.Tasks = append(proc.Tasks, task)
		case p.isKw(kwSubprocess):
			task, err := p.parseSubprocess()
			if err != nil {
				return err
			}
			proc.Tasks = append(proc.Tasks, task)
		default:
			// Connector: IDENT -> IDENT [IF expr] ;
			from, err := p.expectIdent()
			if err != nil {
				return p.errorf("expected declaration, task or connector, found %s", t)
			}
			if err := p.expectPunct("->"); err != nil {
				return err
			}
			to, err := p.expectIdent()
			if err != nil {
				return err
			}
			conn := Connector{From: from, To: to}
			if p.eatKw(kwIf) {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				conn.Cond = e
			}
			proc.Connectors = append(proc.Connectors, conn)
			if err := p.expectPunct(";"); err != nil {
				return err
			}
		}
	}
}

func (p *procParser) parseIdentList() ([]string, error) {
	var names []string
	for {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if !p.eatPunct(",") {
			return names, nil
		}
	}
}

// parseCommonClause handles the clauses shared by all task kinds. It
// reports whether it consumed a clause.
func (p *procParser) parseCommonClause(t *Task) (bool, error) {
	switch {
	case p.isKw(kwMap):
		p.pos++
		for {
			from, err := p.expectIdent()
			if err != nil {
				return true, err
			}
			if err := p.expectPunct("->"); err != nil {
				return true, err
			}
			to, err := p.expectIdent()
			if err != nil {
				return true, err
			}
			t.Maps = append(t.Maps, Mapping{From: from, To: to})
			if !p.eatPunct(",") {
				break
			}
		}
		return true, p.expectPunct(";")
	case p.isKw(kwRetry):
		p.pos++
		n, err := p.expectNumber()
		if err != nil {
			return true, err
		}
		if n < 0 || n != float64(int(n)) {
			return true, p.errorf("RETRY count must be a non-negative integer")
		}
		t.Retries = int(n)
		return true, p.expectPunct(";")
	case p.isKw(kwTimeout):
		p.pos++
		n, err := p.expectNumber()
		if err != nil {
			return true, err
		}
		if n <= 0 {
			return true, p.errorf("TIMEOUT must be a positive number of seconds")
		}
		t.Timeout = n
		return true, p.expectPunct(";")
	case p.isKw(kwPriority):
		p.pos++
		n, err := p.expectNumber()
		if err != nil {
			return true, err
		}
		t.Priority = int(n)
		return true, p.expectPunct(";")
	case p.isKw(kwCost):
		p.pos++
		n, err := p.expectNumber()
		if err != nil {
			return true, err
		}
		t.Cost = n
		return true, p.expectPunct(";")
	case p.isKw(kwDoc):
		p.pos++
		s, err := p.expectString()
		if err != nil {
			return true, err
		}
		t.Doc = s
		return true, p.expectPunct(";")
	case p.isKw(kwOn):
		p.pos++
		if err := p.expectKw(kwFailure); err != nil {
			return true, err
		}
		switch {
		case p.eatKw(kwAbort):
			t.OnFail = FailAbort
		case p.eatKw(kwIgnore):
			t.OnFail = FailIgnore
		case p.eatKw(kwAlternative):
			t.OnFail = FailAlternative
			alt, err := p.expectIdent()
			if err != nil {
				return true, err
			}
			t.AltTask = alt
		default:
			return true, p.errorf("expected ABORT, IGNORE or ALTERNATIVE after ON FAILURE")
		}
		return true, p.expectPunct(";")
	}
	return false, nil
}

func (p *procParser) parseBindList(t *Task) error {
	if p.cur().kind == tokPunct && p.cur().text == ")" {
		return nil
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		t.Args = append(t.Args, Binding{Name: name, Expr: e})
		if !p.eatPunct(",") {
			return nil
		}
	}
}

func (p *procParser) parseActivity() (*Task, error) {
	p.pos++ // ACTIVITY
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &Task{Name: name, Kind: KindActivity}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !(p.cur().kind == tokPunct && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unterminated ACTIVITY %s", name)
		}
		done, err := p.parseCommonClause(t)
		if err != nil {
			return nil, err
		}
		if done {
			continue
		}
		switch {
		case p.isKw(kwCall):
			p.pos++
			prog, err := p.parseDotted()
			if err != nil {
				return nil, err
			}
			t.Program = prog
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if err := p.parseBindList(t); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isKw(kwOut):
			p.pos++
			names, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			t.Outs = append(t.Outs, names...)
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isKw(kwUndo):
			p.pos++
			prog, err := p.parseDotted()
			if err != nil {
				return nil, err
			}
			t.Undo = prog
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isKw(kwAwait):
			p.pos++
			ev, err := p.expectString()
			if err != nil {
				return nil, err
			}
			t.Await = ev
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected %s in ACTIVITY %s", p.cur(), name)
		}
	}
	p.pos++ // }
	return t, nil
}

func (p *procParser) parseDotted() (string, error) {
	first, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	parts := []string{first}
	for p.eatPunct(".") {
		next, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		parts = append(parts, next)
	}
	return strings.Join(parts, "."), nil
}

func (p *procParser) parseBlock() (*Task, error) {
	p.pos++ // BLOCK
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &Task{Name: name, Kind: KindBlock, Body: &Process{Name: name}}
	if p.eatKw(kwAtomic) {
		t.Atomic = true
	}
	if p.eatKw(kwParallel) {
		t.Parallel = true
		if err := p.expectKw(kwOver); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		t.Over = e
		if err := p.expectKw(kwAs); err != nil {
			return nil, err
		}
		as, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t.As = as
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !(p.cur().kind == tokPunct && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unterminated BLOCK %s", name)
		}
		// Block-level clauses (MAP/RETRY/...) attach to the block
		// task itself; everything else belongs to the body.
		done, err := p.parseCommonClause(t)
		if err != nil {
			return nil, err
		}
		if done {
			continue
		}
		if err := p.parseBlockBodyItem(t.Body); err != nil {
			return nil, err
		}
	}
	p.pos++ // }
	return t, nil
}

// parseBlockBodyItem parses exactly one body item of a block.
func (p *procParser) parseBlockBodyItem(body *Process) error {
	// Reuse parseBodyItems for a single item by dispatching here.
	switch {
	case p.isKw(kwInput):
		return p.errorf("INPUT is not allowed inside a block")
	case p.isKw(kwOutput):
		p.pos++
		names, err := p.parseIdentList()
		if err != nil {
			return err
		}
		body.Outputs = append(body.Outputs, names...)
		return p.expectPunct(";")
	case p.isKw(kwData):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		decl := DataDecl{Name: name}
		if p.eatPunct("=") {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			decl.Init = e
		}
		body.Data = append(body.Data, decl)
		return p.expectPunct(";")
	case p.isKw(kwActivity):
		task, err := p.parseActivity()
		if err != nil {
			return err
		}
		body.Tasks = append(body.Tasks, task)
		return nil
	case p.isKw(kwBlock):
		task, err := p.parseBlock()
		if err != nil {
			return err
		}
		body.Tasks = append(body.Tasks, task)
		return nil
	case p.isKw(kwSubprocess):
		task, err := p.parseSubprocess()
		if err != nil {
			return err
		}
		body.Tasks = append(body.Tasks, task)
		return nil
	default:
		from, err := p.expectIdent()
		if err != nil {
			return p.errorf("expected task, declaration or connector in block")
		}
		if err := p.expectPunct("->"); err != nil {
			return err
		}
		to, err := p.expectIdent()
		if err != nil {
			return err
		}
		conn := Connector{From: from, To: to}
		if p.eatKw(kwIf) {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			conn.Cond = e
		}
		body.Connectors = append(body.Connectors, conn)
		return p.expectPunct(";")
	}
}

func (p *procParser) parseSubprocess() (*Task, error) {
	p.pos++ // SUBPROCESS
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &Task{Name: name, Kind: KindSubprocess}
	if err := p.expectKw(kwUses); err != nil {
		return nil, err
	}
	uses, err := p.expectString()
	if err != nil {
		return nil, err
	}
	t.Uses = uses
	if p.eatPunct(";") {
		return t, nil
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !(p.cur().kind == tokPunct && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unterminated SUBPROCESS %s", name)
		}
		done, err := p.parseCommonClause(t)
		if err != nil {
			return nil, err
		}
		if done {
			continue
		}
		switch {
		case p.isKw(kwIn):
			p.pos++
			if err := p.parseSubprocessBinds(t); err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.isKw(kwOut):
			p.pos++
			names, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			t.Outs = append(t.Outs, names...)
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected %s in SUBPROCESS %s", p.cur(), name)
		}
	}
	p.pos++ // }
	return t, nil
}

func (p *procParser) parseSubprocessBinds(t *Task) error {
	for {
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		t.Args = append(t.Args, Binding{Name: name, Expr: e})
		if !p.eatPunct(",") {
			return nil
		}
	}
}
