package ocr

import (
	"strings"
	"testing"
	"testing/quick"
)

// evalStr parses and evaluates src in env, failing the test on error.
func evalStr(t *testing.T, src string, env Env) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if env == nil {
		env = MapEnv{}
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"2 * -3", -6},
		{"min(4, 2, 9)", 2},
		{"max(4, 2, 9)", 9},
		{"abs(-7)", 7},
		{"floor(2.9)", 2},
		{"ceil(2.1)", 3},
		{"1e3 + 1", 1001},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, nil); got.AsNum() != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	env := MapEnv{"n": Int(5), "s": Str("abc"), "flag": Bool(true)}
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"n == 5", true},
		{"n != 5", false},
		{`s == "abc"`, true},
		{`s < "abd"`, true},
		{"true && false", false},
		{"true || false", true},
		{"!flag", false},
		{"n > 3 && n < 10", true},
		{"null == null", true},
		{"n == null", false},
		{"[1,2] == [1,2]", true},
		{"[1,2] == [2,1]", false},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, env); got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right side must not be reached.
	if got := evalStr(t, "false && (1/0 > 0)", nil); got.AsBool() {
		t.Fatal("short-circuit && failed")
	}
	if got := evalStr(t, "true || (1/0 > 0)", nil); !got.AsBool() {
		t.Fatal("short-circuit || failed")
	}
}

func TestStringsAndLists(t *testing.T) {
	env := MapEnv{"parts": List(Int(1), Int(2), Int(3))}
	if got := evalStr(t, `"a" + "b"`, nil); got.AsStr() != "ab" {
		t.Errorf("concat = %v", got)
	}
	if got := evalStr(t, `concat("x=", 5)`, nil); got.AsStr() != "x=5" {
		t.Errorf("concat fn = %v", got)
	}
	if got := evalStr(t, "len(parts)", env); got.AsInt() != 3 {
		t.Errorf("len = %v", got)
	}
	if got := evalStr(t, `len("abcd")`, nil); got.AsInt() != 4 {
		t.Errorf("len str = %v", got)
	}
	if got := evalStr(t, "parts[1]", env); got.AsInt() != 2 {
		t.Errorf("index = %v", got)
	}
	if got := evalStr(t, "[10,20] + [30]", nil); got.Len() != 3 || got.At(2).AsInt() != 30 {
		t.Errorf("list concat = %v", got)
	}
	if got := evalStr(t, "range(4)", nil); got.Len() != 4 || got.At(3).AsInt() != 3 {
		t.Errorf("range = %v", got)
	}
	if got := evalStr(t, "contains(parts, 2)", env); !got.AsBool() {
		t.Errorf("contains = %v", got)
	}
	if got := evalStr(t, "flatten([[1,2],[3]])", nil); got.Len() != 3 {
		t.Errorf("flatten = %v", got)
	}
}

func TestDefined(t *testing.T) {
	env := MapEnv{"present": Int(1), "nullish": Null}
	if !evalStr(t, "defined(present)", env).AsBool() {
		t.Error("defined(present) = false")
	}
	if evalStr(t, "defined(missing)", env).AsBool() {
		t.Error("defined(missing) = true")
	}
	if evalStr(t, "defined(nullish)", env).AsBool() {
		t.Error("defined(null value) = true")
	}
	// The paper's all-vs-all branch condition.
	if !evalStr(t, "!defined(queue_file)", env).AsBool() {
		t.Error("!defined(queue_file) = false")
	}
}

func TestUndefinedNameIsNull(t *testing.T) {
	if got := evalStr(t, "missing", MapEnv{}); !got.IsNull() {
		t.Fatalf("undefined name = %v, want null", got)
	}
	if got := evalStr(t, "!missing", MapEnv{}); !got.AsBool() {
		t.Fatal("!undefined should be true")
	}
}

func TestQualifiedRef(t *testing.T) {
	env := MapEnv{"Align.results": List(Int(1))}
	if got := evalStr(t, "len(Align.results)", env); got.AsInt() != 1 {
		t.Fatalf("qualified ref = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"1 / 0",
		"1 % 0",
		`"a" - "b"`,
		`1 < "x"`,
		"-true",
		`"s"[0]`,
		"[1,2][5]",
		"[1][true]",
		"len(5)",
		"abs()",
		"range(-1)",
		`defined("literal")`,
		"contains(5, 1)",
	}
	for _, src := range bad {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.Eval(MapEnv{}); err == nil {
			t.Errorf("eval %q succeeded, want error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"[1, 2",
		"a .",
		"1 2",
		`"unterminated`,
		"@",
		"a &&& b",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestExprStringReparses(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"!defined(queue_file) && len(parts) > 0",
		`concat("p-", i)`,
		"[1, [2, 3], \"x\"][1][0]",
		"a.b + c",
		"-x % 7",
		"min(1, 2) <= max(3, 4) || flag",
	}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", e1.String(), src, err)
		}
		if e1.String() != e2.String() {
			t.Errorf("print/parse not stable: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestRefs(t *testing.T) {
	e := MustParseExpr("a + b * a + t.out + len(c) + defined(d)")
	got := Refs(e)
	want := []string{"a", "b", "t.out", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Refs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Refs = %v, want %v", got, want)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr on bad input did not panic")
		}
	}()
	MustParseExpr("1 +")
}

// Property: integer arithmetic in the expression language agrees with Go.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b int16) bool {
		env := MapEnv{"a": Int(int(a)), "b": Int(int(b))}
		sum := evalStr(t, "a + b", env).AsInt()
		diff := evalStr(t, "a - b", env).AsInt()
		prod := evalStr(t, "a * b", env).AsInt()
		lt := evalStr(t, "a < b", env).AsBool()
		return sum == int(a)+int(b) && diff == int(a)-int(b) &&
			prod == int(a)*int(b) && lt == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLexerComments(t *testing.T) {
	src := `
# line comment
1 + // another
/* block
comment */ 2`
	if got := evalStr(t, src, nil); got.AsNum() != 3 {
		t.Fatalf("with comments = %v", got)
	}
	if _, err := ParseExpr("1 /* unterminated"); err == nil {
		t.Fatal("unterminated block comment accepted")
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParseExpr("1 +\n  @")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2 (%s)", se.Line, err)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error message lacks position: %s", err)
	}
}

func TestLexerEscapeAtEOF(t *testing.T) {
	// Regression: a backslash escape at end of input must be a syntax
	// error, not a panic (found by FuzzParseExpr).
	for _, src := range []string{`"\`, `"\\\`, `"abc\`} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}
