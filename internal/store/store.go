// Package store implements the BioOpera database.
//
// The paper's central dependability argument is that *everything* — process
// templates, the execution state of running instances, the cluster
// configuration, and the full history of past executions — lives in a
// persistent store, so that the engine can resume month-long computations
// after any failure. This package provides that store as four typed key →
// value "spaces" (§3.2 of the paper):
//
//	Template      processes as defined by the user
//	Instance      processes currently executing
//	Configuration hardware/software description of the cluster
//	History       records of completed processes and lineage metadata
//
// plus an append-only event journal used by monitoring and the lifecycle
// figures.
//
// Two implementations are provided: Disk (WAL + snapshots, crash safe) and
// Mem (for simulations and tests). Both satisfy Store.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bioopera/internal/codec"
	"bioopera/internal/obs"
	"bioopera/internal/wal"
)

// Space identifies one of the four BioOpera data spaces.
type Space uint8

// The four spaces of §3.2.
const (
	Template Space = iota
	Instance
	Configuration
	History
	numSpaces
)

// String returns the space name used in logs and errors.
func (s Space) String() string {
	switch s {
	case Template:
		return "template"
	case Instance:
		return "instance"
	case Configuration:
		return "configuration"
	case History:
		return "history"
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// KV is a key/value pair returned by List.
type KV struct {
	Key   string
	Value []byte
}

// Event is one entry of the append-only journal.
type Event struct {
	Seq  uint64
	Data []byte
}

// Op is one mutation inside a Batch: a put, or a delete when Delete is
// set (Value is then ignored).
type Op struct {
	Space  Space
	Key    string
	Value  []byte
	Delete bool
}

// Store is the interface both backends implement.
type Store interface {
	// Put stores value under key in the given space, replacing any
	// previous value.
	Put(space Space, key string, value []byte) error
	// Batch applies a set of puts and deletes atomically: after a crash
	// either every op is visible or none is. Ops may span spaces and are
	// applied in order (later ops win on key collisions). An empty batch
	// is a no-op.
	Batch(ops []Op) error
	// Get returns the value under key, and whether it exists.
	Get(space Space, key string) ([]byte, bool, error)
	// Delete removes key from the space. Deleting a missing key is not
	// an error.
	Delete(space Space, key string) error
	// List returns all pairs in the space, sorted by key.
	List(space Space) ([]KV, error)
	// AppendEvent adds a record to the journal and returns its sequence.
	AppendEvent(data []byte) (uint64, error)
	// Events calls fn for each journal record with sequence ≥ from.
	Events(from uint64, fn func(Event) error) error
	// Close releases resources. Disk stores flush first.
	Close() error
}

// state is the in-memory image shared by both backends.
type state struct {
	spaces   [numSpaces]map[string][]byte
	events   []Event
	eventSeq uint64
}

func newState() *state {
	var st state
	for i := range st.spaces {
		st.spaces[i] = make(map[string][]byte)
	}
	return &st
}

func (st *state) put(space Space, key string, value []byte) {
	st.spaces[space][key] = append([]byte(nil), value...)
}

func (st *state) get(space Space, key string) ([]byte, bool) {
	v, ok := st.spaces[space][key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

func (st *state) del(space Space, key string) { delete(st.spaces[space], key) }

func (st *state) list(space Space) []KV {
	m := st.spaces[space]
	kvs := make([]KV, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, KV{Key: k, Value: append([]byte(nil), v...)})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	return kvs
}

func (st *state) appendEvent(data []byte) uint64 {
	st.eventSeq++
	st.events = append(st.events, Event{Seq: st.eventSeq, Data: append([]byte(nil), data...)})
	return st.eventSeq
}

func checkSpace(space Space) error {
	if space >= numSpaces {
		return fmt.Errorf("store: invalid space %d", space)
	}
	return nil
}

// Mem is a purely in-memory Store. It is safe for concurrent use.
type Mem struct {
	mu     sync.RWMutex
	st     *state
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{st: newState()} }

// Put implements Store.
func (m *Mem) Put(space Space, key string, value []byte) error {
	if err := checkSpace(space); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.st.put(space, key, value)
	return nil
}

// Batch implements Store. Mem is never torn, so atomicity reduces to
// validating every op before applying any.
func (m *Mem) Batch(ops []Op) error {
	for _, op := range ops {
		if err := checkSpace(op.Space); err != nil {
			return err
		}
	}
	if len(ops) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, op := range ops {
		if op.Delete {
			m.st.del(op.Space, op.Key)
		} else {
			m.st.put(op.Space, op.Key, op.Value)
		}
	}
	return nil
}

// Get implements Store.
func (m *Mem) Get(space Space, key string) ([]byte, bool, error) {
	if err := checkSpace(space); err != nil {
		return nil, false, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	v, ok := m.st.get(space, key)
	return v, ok, nil
}

// Delete implements Store.
func (m *Mem) Delete(space Space, key string) error {
	if err := checkSpace(space); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.st.del(space, key)
	return nil
}

// List implements Store.
func (m *Mem) List(space Space) ([]KV, error) {
	if err := checkSpace(space); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	return m.st.list(space), nil
}

// AppendEvent implements Store.
func (m *Mem) AppendEvent(data []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	return m.st.appendEvent(data), nil
}

// Events implements Store.
func (m *Mem) Events(from uint64, fn func(Event) error) error {
	m.mu.RLock()
	evs := m.st.events
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	for _, e := range evs {
		if e.Seq < from {
			continue
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// walRecord is the frame appended to the WAL for each mutation. New
// records are written through the binary codec; the JSON tags remain so
// WALs written by earlier engine generations replay forever.
type walRecord struct {
	Op    string `json:"op"` // "put", "del", "event"
	Space Space  `json:"sp,omitempty"`
	Key   string `json:"k,omitempty"`
	Value []byte `json:"v,omitempty"`
}

// Binary WAL record kinds — a range disjoint from the core persist-record
// kinds, so a record misfiled across decode contexts fails loudly instead
// of misparsing.
const (
	walKindPut   byte = 16
	walKindDel   byte = 17
	walKindEvent byte = 18
)

// encodeWALRecord appends one record to the encoder. Binary encoding is
// total: unlike json.Marshal it cannot fail, which removes an error path
// from every mutation.
func encodeWALRecord(e *codec.Encoder, rec walRecord) {
	var kind byte
	switch rec.Op {
	case "put":
		kind = walKindPut
	case "del":
		kind = walKindDel
	default:
		kind = walKindEvent
	}
	e.Begin(kind)
	e.Uvarint(uint64(rec.Space))
	e.String(rec.Key)
	e.Bytes(rec.Value)
	e.End()
}

// decodeWALRecord reads a WAL frame of either format: binary records carry
// the codec magic, legacy JSON records start with '{'. The decoded Value
// aliases data — apply copies before retaining.
func decodeWALRecord(data []byte) (walRecord, error) {
	if !codec.Sniff(data) {
		var rec walRecord
		err := json.Unmarshal(data, &rec)
		return rec, err
	}
	d, kind, err := codec.NewDecoder(data)
	if err != nil {
		return walRecord{}, err
	}
	var rec walRecord
	switch kind {
	case walKindPut:
		rec.Op = "put"
	case walKindDel:
		rec.Op = "del"
	case walKindEvent:
		rec.Op = "event"
	default:
		return walRecord{}, fmt.Errorf("%w: kind %d is not a wal record", codec.ErrCorrupt, kind)
	}
	rec.Space = Space(d.Uvarint())
	rec.Key = d.String()
	rec.Value = d.Bytes()
	return rec, d.Finish()
}

// snapshot is the JSON image written by Disk.Snapshot.
type snapshot struct {
	WALSeq   uint64                     `json:"walSeq"` // first WAL seq NOT in the snapshot
	EventSeq uint64                     `json:"eventSeq"`
	Spaces   [][]KV                     `json:"spaces"`
	Events   []Event                    `json:"events"`
	Extra    map[string]json.RawMessage `json:"extra,omitempty"`
}

const snapSuffix = ".snap"

// snapPath names the snapshot file covering WAL sequences below seq.
func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d%s", seq, snapSuffix))
}

// writeFileAtomic writes data via tmp and renames it into place, so a
// crash leaves either the old file or the new one, never a torn mix.
func writeFileAtomic(tmp, final string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// Disk is a crash-safe Store backed by a WAL and periodic snapshots in a
// directory. It is safe for concurrent use.
//
// Mutations group-commit: while one caller's fsync is in flight, later
// callers enroll in a pending commit group whose leader flushes them all
// with a single wal.AppendBatch. Under concurrent checkpoint load the
// fsync cost is therefore shared across instances instead of paid per
// mutation — the disk half of the engine's sharded-execution story.
type Disk struct {
	mu     sync.RWMutex
	dir    string
	log    *wal.Log
	st     *state
	closed bool

	gmu     sync.Mutex // guards pending
	pending *commitGroup
	wmu     sync.Mutex // serializes group flushes (one leader at a time)

	// Group-commit accounting (written under mu in flushGroup).
	commitGroups   uint64
	groupedRecords uint64
	snapSeq        uint64 // WAL seq of the newest snapshot (0 = none)

	// extra is opaque manifest data (e.g. the engine's proc-refcount map)
	// included in every snapshot under its key. Guarded by mu.
	extra map[string][]byte

	groupSize   *obs.Histogram // records per flushed group (nil = no metrics)
	snapSeconds *obs.Histogram // Snapshot wall time (nil = no metrics)
}

// commitReq is one caller's mutation set awaiting group commit. seq, when
// non-nil, receives the journal sequence assigned to an "event" record.
type commitReq struct {
	recs    []walRecord
	encoded [][]byte
	seq     *uint64
}

// commitGroup accumulates requests that will share one WAL batch + fsync.
type commitGroup struct {
	reqs    []*commitReq
	encoded [][]byte
	done    chan struct{}
	err     error
}

// DiskOptions configure a Disk store.
type DiskOptions struct {
	// NoSync disables per-record fsync (used by experiments).
	NoSync bool
	// SegmentSize overrides the WAL segment rotation threshold.
	SegmentSize int64
	// Metrics, when non-nil, registers the store's gauges (live records
	// per space, WAL segments, snapshot seq, commit groups — the Stats
	// fields, sampled at scrape time) and the commit-group-size and WAL
	// append/fsync latency histograms.
	Metrics *obs.Registry
}

// OpenDisk opens or creates a disk store in dir, recovering state from the
// latest snapshot plus the WAL tail.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	wopts := wal.Options{
		NoSync:      opts.NoSync,
		SegmentSize: opts.SegmentSize,
	}
	if opts.Metrics != nil {
		wopts.AppendLatency = opts.Metrics.Histogram("bioopera_wal_append_seconds",
			"Latency of wal.AppendBatch, fsync included.", nil)
		wopts.SyncLatency = opts.Metrics.Histogram("bioopera_wal_fsync_seconds",
			"Latency of the fsync inside wal.AppendBatch.", nil)
	}
	l, err := wal.Open(filepath.Join(dir, "wal"), wopts)
	if err != nil {
		return nil, err
	}
	d := &Disk{dir: dir, log: l, st: newState()}
	from, err := d.loadSnapshot()
	if err != nil {
		//bioopera:allow droppederr the snapshot load error is returned; closing the half-opened log is best-effort
		l.Close()
		return nil, err
	}
	err = l.Replay(from, func(r wal.Record) error {
		rec, err := decodeWALRecord(r.Data)
		if err != nil {
			return fmt.Errorf("store: decoding wal record %d: %w", r.Seq, err)
		}
		d.apply(rec)
		return nil
	})
	if err != nil {
		//bioopera:allow droppederr the replay error is returned; closing the half-opened log is best-effort
		l.Close()
		return nil, err
	}
	if opts.Metrics != nil {
		d.groupSize = opts.Metrics.Histogram("bioopera_store_commit_group_records",
			"Records per group-committed WAL batch.", obs.SizeBuckets)
		d.snapSeconds = opts.Metrics.Histogram("bioopera_store_snapshot_seconds",
			"Wall time of Disk.Snapshot: capture, marshal, write, WAL truncation.", nil)
		d.registerGauges(opts.Metrics)
	}
	return d, nil
}

// registerGauges exposes the Stats fields as scrape-time gauges — no cost
// on the commit path beyond the counters flushGroup already keeps.
func (d *Disk) registerGauges(reg *obs.Registry) {
	for sp := Space(0); sp < numSpaces; sp++ {
		space := sp
		reg.GaugeFuncWith("bioopera_store_records",
			"Live records per store space.", "space", space.String(),
			func() float64 { return float64(d.Stats().Records[space.String()]) })
	}
	reg.GaugeFunc("bioopera_store_events",
		"Journal records held in memory.",
		func() float64 { return float64(d.Stats().Events) })
	reg.GaugeFunc("bioopera_store_wal_segments",
		"Live WAL segment files.",
		func() float64 { return float64(len(d.log.Segments())) })
	reg.GaugeFunc("bioopera_store_wal_syncs",
		"Fsyncs issued by WAL appends since open.",
		func() float64 { return float64(d.log.Syncs()) })
	reg.GaugeFunc("bioopera_store_snapshot_seq",
		"WAL sequence of the newest snapshot (0 = none).",
		func() float64 { return float64(d.Stats().SnapshotSeq) })
	reg.GaugeFunc("bioopera_store_commit_groups",
		"Commit groups flushed since open.",
		func() float64 { return float64(d.Stats().CommitGroups) })
}

// loadSnapshot restores the newest valid snapshot, returning the WAL
// sequence to resume replay from.
func (d *Disk) loadSnapshot() (uint64, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 1, fmt.Errorf("store: %w", err)
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) || !strings.HasPrefix(name, "snap-") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), snapSuffix), 10, 64)
		if err == nil {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	for _, n := range snaps {
		path := filepath.Join(d.dir, fmt.Sprintf("snap-%020d%s", n, snapSuffix))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			continue // partially written snapshot; fall back to older
		}
		for i, kvs := range snap.Spaces {
			if i >= int(numSpaces) {
				break
			}
			for _, kv := range kvs {
				d.st.spaces[i][kv.Key] = kv.Value
			}
		}
		d.st.events = snap.Events
		d.st.eventSeq = snap.EventSeq
		d.snapSeq = snap.WALSeq
		return snap.WALSeq, nil
	}
	return 1, nil
}

func (d *Disk) apply(rec walRecord) {
	switch rec.Op {
	case "put":
		if rec.Space < numSpaces {
			d.st.put(rec.Space, rec.Key, rec.Value)
		}
	case "del":
		if rec.Space < numSpaces {
			d.st.del(rec.Space, rec.Key)
		}
	case "event":
		d.st.appendEvent(rec.Value)
	}
}

// append logs one mutation through the group-commit path.
func (d *Disk) append(rec walRecord) error {
	enc := codec.Get()
	encodeWALRecord(enc, rec)
	err := d.commit(&commitReq{recs: []walRecord{rec}, encoded: [][]byte{enc.Span(0)}})
	codec.Put(enc)
	return err
}

// commit durably applies one request. The first caller to find no pending
// group opens one and becomes its leader; callers arriving while the
// previous group's fsync is still in flight enroll as followers and just
// wait. The leader closes enrollment, writes every enrolled request as one
// WAL batch (one fsync), applies them in order, and wakes the followers.
func (d *Disk) commit(req *commitReq) error {
	d.gmu.Lock()
	g := d.pending
	leader := g == nil
	if leader {
		g = &commitGroup{done: make(chan struct{})}
		d.pending = g
	}
	g.reqs = append(g.reqs, req)
	g.encoded = append(g.encoded, req.encoded...)
	d.gmu.Unlock()
	if !leader {
		//bioopera:allow blockingsend group-commit follower: the wait is bounded by one leader fsync (the leader always closes done), and the follower holds no locks here
		<-g.done
		return g.err
	}
	d.wmu.Lock() // wait out the previous group's flush; followers pile up meanwhile
	d.gmu.Lock()
	d.pending = nil // close enrollment: later arrivals form the next group
	d.gmu.Unlock()
	g.err = d.flushGroup(g)
	d.wmu.Unlock()
	close(g.done)
	return g.err
}

// flushGroup writes a closed group to the WAL and applies it to memory.
func (d *Disk) flushGroup(g *commitGroup) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, err := d.log.AppendBatch(g.encoded); err != nil {
		return err
	}
	d.commitGroups++
	d.groupedRecords += uint64(len(g.encoded))
	d.groupSize.Observe(float64(len(g.encoded)))
	for _, req := range g.reqs {
		for _, rec := range req.recs {
			d.apply(rec)
			if rec.Op == "event" && req.seq != nil {
				*req.seq = d.st.eventSeq
			}
		}
	}
	return nil
}

// Put implements Store.
func (d *Disk) Put(space Space, key string, value []byte) error {
	if err := checkSpace(space); err != nil {
		return err
	}
	return d.append(walRecord{Op: "put", Space: space, Key: key, Value: value})
}

// Batch implements Store: every op becomes one WAL record and the whole
// set is group-committed with a single fsync (wal.AppendBatch), so a crash
// mid-batch rolls back all of it on replay.
func (d *Disk) Batch(ops []Op) error {
	for _, op := range ops {
		if err := checkSpace(op.Space); err != nil {
			return err
		}
	}
	if len(ops) == 0 {
		return nil
	}
	recs := make([]walRecord, len(ops))
	encoded := make([][]byte, len(ops))
	enc := codec.Get()
	for i, op := range ops {
		rec := walRecord{Op: "put", Space: op.Space, Key: op.Key, Value: op.Value}
		if op.Delete {
			rec.Op = "del"
			rec.Value = nil
		}
		recs[i] = rec
		encodeWALRecord(enc, rec)
	}
	// Spans are taken only after every record is encoded: appending can
	// relocate the encoder's buffer.
	for i := range encoded {
		encoded[i] = enc.Span(i)
	}
	err := d.commit(&commitReq{recs: recs, encoded: encoded})
	codec.Put(enc)
	return err
}

// Get implements Store.
func (d *Disk) Get(space Space, key string) ([]byte, bool, error) {
	if err := checkSpace(space); err != nil {
		return nil, false, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	v, ok := d.st.get(space, key)
	return v, ok, nil
}

// Delete implements Store.
func (d *Disk) Delete(space Space, key string) error {
	if err := checkSpace(space); err != nil {
		return err
	}
	return d.append(walRecord{Op: "del", Space: space, Key: key})
}

// List implements Store.
func (d *Disk) List(space Space) ([]KV, error) {
	if err := checkSpace(space); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.st.list(space), nil
}

// AppendEvent implements Store.
func (d *Disk) AppendEvent(data []byte) (uint64, error) {
	rec := walRecord{Op: "event", Value: data}
	enc := codec.Get()
	encodeWALRecord(enc, rec)
	var seq uint64
	req := &commitReq{recs: []walRecord{rec}, encoded: [][]byte{enc.Span(0)}, seq: &seq}
	err := d.commit(req)
	codec.Put(enc)
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// Events implements Store. The journal is append-only and its entries are
// immutable once written, so the slice header captured under the lock can
// be iterated without copying the events — a history dump streams straight
// from the shared backing array instead of materializing a second copy.
func (d *Disk) Events(from uint64, fn func(Event) error) error {
	d.mu.RLock()
	evs := d.st.events
	closed := d.closed
	d.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	// Events are dense and sorted by Seq; skip straight to `from`.
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq >= from })
	for ; i < len(evs); i++ {
		if err := fn(evs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WALSyncs reports how many fsyncs the underlying WAL has issued for
// appends — the group-commit metric benchmarks divide by record count.
func (d *Disk) WALSyncs() uint64 { return d.log.Syncs() }

// Stats is a point-in-time summary of a Disk store's shape: the numbers
// behind `bioopera history -stats` and the store gauges.
type Stats struct {
	// Records counts live records per space, keyed by Space.String().
	Records map[string]int
	// Events is the journal length held in memory; EventSeq the newest
	// journal sequence.
	Events   int
	EventSeq uint64
	// WALSegments / WALSyncs / WALNextSeq describe the write-ahead log.
	WALSegments int
	WALSyncs    uint64
	WALNextSeq  uint64
	// SnapshotSeq is the WAL sequence of the newest snapshot (0 = none).
	SnapshotSeq uint64
	// CommitGroups counts group commits since open; GroupedRecords the
	// WAL records they carried (their ratio is the mean group size).
	CommitGroups   uint64
	GroupedRecords uint64
}

// Stats returns a consistent snapshot of the store's statistics.
func (d *Disk) Stats() Stats {
	d.mu.RLock()
	s := Stats{
		Records:        make(map[string]int, numSpaces),
		Events:         len(d.st.events),
		EventSeq:       d.st.eventSeq,
		SnapshotSeq:    d.snapSeq,
		CommitGroups:   d.commitGroups,
		GroupedRecords: d.groupedRecords,
	}
	for sp := Space(0); sp < numSpaces; sp++ {
		s.Records[sp.String()] = len(d.st.spaces[sp])
	}
	d.mu.RUnlock()
	s.WALSegments = len(d.log.Segments())
	s.WALSyncs = d.log.Syncs()
	s.WALNextSeq = d.log.NextSeq()
	return s
}

// SetSnapshotExtra attaches opaque manifest data that every subsequent
// snapshot (and shipping bootstrap image) carries under key. The engine
// records its proc-refcount manifest here so a snapshot documents which
// content-addressed process texts were live when it was cut. A nil value
// removes the key.
func (d *Disk) SetSnapshotExtra(key string, value []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if value == nil {
		delete(d.extra, key)
		return
	}
	if d.extra == nil {
		d.extra = make(map[string][]byte)
	}
	d.extra[key] = append([]byte(nil), value...)
}

// captureSnapshot copies the full state into a snapshot image under mu.
func (d *Disk) captureSnapshot() (snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return snapshot{}, ErrClosed
	}
	snap := snapshot{
		WALSeq:   d.log.NextSeq(),
		EventSeq: d.st.eventSeq,
		Spaces:   make([][]KV, numSpaces),
		Events:   append([]Event(nil), d.st.events...),
	}
	for i := Space(0); i < numSpaces; i++ {
		snap.Spaces[i] = d.st.list(i)
	}
	if len(d.extra) > 0 {
		snap.Extra = make(map[string]json.RawMessage, len(d.extra))
		keys := make([]string, 0, len(d.extra))
		for k := range d.extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			snap.Extra[k] = json.RawMessage(append([]byte(nil), d.extra[k]...))
		}
	}
	return snap, nil
}

// Snapshot writes the full state to a snapshot file and garbage-collects
// WAL segments that precede it (the retention floor pinned by an attached
// shipper is honored: segments a standby still needs survive).
func (d *Disk) Snapshot() error {
	var start time.Time
	if d.snapSeconds != nil {
		//bioopera:allow walltime latency histogram observes real snapshot I/O time; it never feeds back into replayable state
		start = time.Now()
	}
	snap, err := d.captureSnapshot()
	if err != nil {
		return err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	final := snapPath(d.dir, snap.WALSeq)
	if err := writeFileAtomic(final+".tmp", final, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := d.log.TruncateBefore(snap.WALSeq); err != nil {
		return err
	}
	d.mu.Lock()
	d.snapSeq = snap.WALSeq
	d.mu.Unlock()
	// Remove superseded snapshots.
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) || name == filepath.Base(final) {
			continue
		}
		os.Remove(filepath.Join(d.dir, name))
	}
	if d.snapSeconds != nil {
		//bioopera:allow walltime latency histogram observes real snapshot I/O time; it never feeds back into replayable state
		d.snapSeconds.Observe(time.Since(start).Seconds())
	}
	return nil
}

// Close flushes and closes the store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}
