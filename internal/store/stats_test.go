package store

import (
	"fmt"
	"strings"
	"testing"

	"bioopera/internal/obs"
)

// TestDiskStats pins the Stats snapshot: record counts per space, journal
// shape, WAL accounting, and snapshot bookkeeping — across a snapshot and
// a reopen.
func TestDiskStats(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := d.Put(Instance, fmt.Sprintf("p%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Put(Template, "tpl", []byte("def")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(Instance, "p0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.AppendEvent([]byte(`{"n":1}`)); err != nil {
			t.Fatal(err)
		}
	}

	s := d.Stats()
	if s.Records[Instance.String()] != 2 || s.Records[Template.String()] != 1 {
		t.Fatalf("records = %v", s.Records)
	}
	if s.Events != 5 || s.EventSeq != 5 {
		t.Fatalf("journal: %d events, seq %d", s.Events, s.EventSeq)
	}
	if s.WALSegments == 0 || s.WALSyncs == 0 {
		t.Fatalf("wal: segments=%d syncs=%d", s.WALSegments, s.WALSyncs)
	}
	// 10 writes so far (4 puts + 1 delete + 5 events): the next WAL record
	// must be numbered past all of them.
	if s.WALNextSeq <= 10 {
		t.Fatalf("wal next seq = %d", s.WALNextSeq)
	}
	if s.SnapshotSeq != 0 {
		t.Fatalf("snapshot seq = %d before any snapshot", s.SnapshotSeq)
	}

	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().SnapshotSeq; got == 0 {
		t.Fatalf("snapshot seq still 0 after Snapshot")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery rebuilds the same shape (WAL sync/group counters restart;
	// they describe the current process, not history).
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	r := d2.Stats()
	if r.Records[Instance.String()] != 2 || r.Records[Template.String()] != 1 {
		t.Fatalf("recovered records = %v", r.Records)
	}
	if r.Events != 5 || r.EventSeq != 5 {
		t.Fatalf("recovered journal: %d events, seq %d", r.Events, r.EventSeq)
	}
	if r.SnapshotSeq == 0 {
		t.Fatalf("recovered snapshot seq = 0")
	}
}

// TestDiskStatsGauges checks that a metrics-enabled store exports the
// Stats fields as scrape-time gauges.
func TestDiskStatsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	d, err := OpenDisk(t.TempDir(), DiskOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put(Instance, "p1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendEvent([]byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`bioopera_store_records{space="instance"} 1`,
		"bioopera_store_events 1",
		"bioopera_store_wal_segments 1",
		"bioopera_wal_append_seconds_count",
		"bioopera_wal_fsync_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
