package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAccess hammers both backends from many goroutines; run
// with -race this verifies the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			const workers = 8
			const opsPerWorker = 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < opsPerWorker; i++ {
						key := fmt.Sprintf("w%d-k%d", w, i%10)
						switch i % 5 {
						case 0, 1:
							if err := s.Put(Instance, key, []byte{byte(i)}); err != nil {
								t.Errorf("Put: %v", err)
								return
							}
						case 2:
							if _, _, err := s.Get(Instance, key); err != nil {
								t.Errorf("Get: %v", err)
								return
							}
						case 3:
							if _, err := s.AppendEvent([]byte{byte(w), byte(i)}); err != nil {
								t.Errorf("AppendEvent: %v", err)
								return
							}
						case 4:
							if _, err := s.List(Instance); err != nil {
								t.Errorf("List: %v", err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			// Every worker appended opsPerWorker/5 events.
			var n int
			s.Events(1, func(Event) error { n++; return nil })
			if n != workers*opsPerWorker/5 {
				t.Fatalf("events = %d, want %d", n, workers*opsPerWorker/5)
			}
		})
	}
}

// TestConcurrentSnapshot interleaves snapshots with writes on the disk
// backend; contents must survive a reopen.
func TestConcurrentSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{NoSync: true, SegmentSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Snapshot(); err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := d.Put(History, fmt.Sprintf("k%03d", i%50), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	d.Close()

	re, err := OpenDisk(dir, DiskOptions{NoSync: true, SegmentSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	kvs, _ := re.List(History)
	if len(kvs) != 50 {
		t.Fatalf("recovered %d keys, want 50", len(kvs))
	}
	// Each key holds the LAST written value for it.
	for _, kv := range kvs {
		var idx int
		fmt.Sscanf(kv.Key, "k%d", &idx)
		want := byte(450 + idx) // last round writing this key
		if kv.Value[0] != want {
			t.Fatalf("%s = %d, want %d", kv.Key, kv.Value[0], want)
		}
	}
}
