package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// backends returns both implementations so every behavioural test runs
// against each.
func backends(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"disk": func() Store {
			d, err := OpenDisk(t.TempDir(), DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func TestPutGetDelete(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if err := s.Put(Template, "p1", []byte("def")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get(Template, "p1")
			if err != nil || !ok || string(v) != "def" {
				t.Fatalf("Get = (%q, %v, %v)", v, ok, err)
			}
			// Other spaces are isolated.
			if _, ok, _ := s.Get(Instance, "p1"); ok {
				t.Fatal("key leaked across spaces")
			}
			if err := s.Delete(Template, "p1"); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get(Template, "p1"); ok {
				t.Fatal("key survived delete")
			}
			// Deleting a missing key is fine.
			if err := s.Delete(Template, "nope"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPutOverwrites(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			s.Put(Instance, "k", []byte("v1"))
			s.Put(Instance, "k", []byte("v2"))
			v, _, _ := s.Get(Instance, "k")
			if string(v) != "v2" {
				t.Fatalf("got %q, want v2", v)
			}
		})
	}
}

func TestListSorted(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for _, k := range []string{"zeta", "alpha", "mid"} {
				s.Put(Configuration, k, []byte(k))
			}
			kvs, err := s.List(Configuration)
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"alpha", "mid", "zeta"}
			if len(kvs) != 3 {
				t.Fatalf("List len = %d", len(kvs))
			}
			for i, kv := range kvs {
				if kv.Key != want[i] {
					t.Fatalf("List order %v", kvs)
				}
			}
		})
	}
}

func TestEvents(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for i := 0; i < 5; i++ {
				seq, err := s.AppendEvent([]byte{byte(i)})
				if err != nil {
					t.Fatal(err)
				}
				if seq != uint64(i+1) {
					t.Fatalf("event seq = %d, want %d", seq, i+1)
				}
			}
			var got []byte
			if err := s.Events(3, func(e Event) error {
				got = append(got, e.Data[0])
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte{2, 3, 4}) {
				t.Fatalf("Events(3) = %v", got)
			}
		})
	}
}

func TestInvalidSpace(t *testing.T) {
	s := NewMem()
	if err := s.Put(Space(99), "k", nil); err == nil {
		t.Fatal("Put to invalid space succeeded")
	}
	if _, _, err := s.Get(Space(99), "k"); err == nil {
		t.Fatal("Get from invalid space succeeded")
	}
}

func TestClosed(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Close()
			if err := s.Put(Template, "k", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after close = %v, want ErrClosed", err)
			}
			if _, err := s.AppendEvent(nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("AppendEvent after close = %v", err)
			}
		})
	}
}

func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(Template, "allvsall", []byte("process"))
	d.Put(Instance, "inst-1", []byte("running"))
	d.Put(Instance, "inst-2", []byte("doomed"))
	d.Delete(Instance, "inst-2")
	d.AppendEvent([]byte("started"))
	d.AppendEvent([]byte("node failed"))
	d.Close()

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	v, ok, _ := d2.Get(Template, "allvsall")
	if !ok || string(v) != "process" {
		t.Fatalf("template lost: (%q,%v)", v, ok)
	}
	if _, ok, _ := d2.Get(Instance, "inst-2"); ok {
		t.Fatal("deleted instance resurrected")
	}
	var n int
	d2.Events(1, func(e Event) error { n++; return nil })
	if n != 2 {
		t.Fatalf("recovered %d events, want 2", n)
	}
	// Event sequence continues.
	seq, _ := d2.AppendEvent([]byte("resumed"))
	if seq != 3 {
		t.Fatalf("event seq after recovery = %d, want 3", seq)
	}
}

func TestSnapshotAndRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Put(History, fmt.Sprintf("h-%02d", i), []byte(strings.Repeat("x", 20)))
	}
	d.AppendEvent([]byte("pre-snapshot"))
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations land in the WAL only.
	d.Put(History, "post", []byte("after"))
	d.Delete(History, "h-00")
	d.AppendEvent([]byte("post-snapshot"))
	d.Close()

	d2, err := OpenDisk(dir, DiskOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	kvs, _ := d2.List(History)
	if len(kvs) != 50 { // 50 - deleted h-00 + post
		t.Fatalf("recovered %d history keys, want 50", len(kvs))
	}
	if _, ok, _ := d2.Get(History, "h-00"); ok {
		t.Fatal("post-snapshot delete lost")
	}
	if v, ok, _ := d2.Get(History, "post"); !ok || string(v) != "after" {
		t.Fatal("post-snapshot put lost")
	}
	var evs []string
	d2.Events(1, func(e Event) error { evs = append(evs, string(e.Data)); return nil })
	if len(evs) != 2 || evs[0] != "pre-snapshot" || evs[1] != "post-snapshot" {
		t.Fatalf("events after snapshot recovery = %v", evs)
	}
}

func TestSnapshotGCsWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 100; i++ {
		d.Put(Instance, "k", bytes.Repeat([]byte{byte(i)}, 32))
	}
	before := countWALFiles(t, dir)
	if before < 3 {
		t.Fatalf("want several WAL segments before snapshot, got %d", before)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after := countWALFiles(t, dir)
	if after >= before {
		t.Fatalf("snapshot did not GC WAL segments: %d -> %d", before, after)
	}
}

func countWALFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, _ := OpenDisk(dir, DiskOptions{})
	d.Put(Template, "k", []byte("v"))
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Corrupt the snapshot file: recovery should still work because the
	// WAL was already truncated... so instead we verify graceful failure
	// mode: a *partially written* (invalid JSON) snapshot alongside a
	// complete WAL is skipped.
	d2dir := t.TempDir()
	d2, _ := OpenDisk(d2dir, DiskOptions{})
	d2.Put(Template, "k", []byte("v"))
	d2.Close()
	// Write garbage pretending to be a newer snapshot.
	os.WriteFile(filepath.Join(d2dir, "snap-99999999999999999999.snap"), []byte("{not json"), 0o644)
	d3, err := OpenDisk(d2dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if v, ok, _ := d3.Get(Template, "k"); !ok || string(v) != "v" {
		t.Fatal("corrupt snapshot prevented WAL recovery")
	}
}

func TestValueIsolation(t *testing.T) {
	// Mutating a slice returned by Get or passed to Put must not affect
	// the stored value.
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			buf := []byte("original")
			s.Put(Template, "k", buf)
			buf[0] = 'X'
			v, _, _ := s.Get(Template, "k")
			if string(v) != "original" {
				t.Fatal("Put aliased caller's buffer")
			}
			v[0] = 'Y'
			v2, _, _ := s.Get(Template, "k")
			if string(v2) != "original" {
				t.Fatal("Get aliased internal buffer")
			}
		})
	}
}

// Property: a random sequence of puts/deletes applied to both backends
// leaves them with identical contents, and disk contents survive reopen.
func TestBackendsEquivalentProperty(t *testing.T) {
	type op struct {
		Del   bool
		Space uint8
		Key   uint8
		Val   byte
	}
	f := func(ops []op) bool {
		dir := t.TempDir()
		mem := NewMem()
		disk, err := OpenDisk(dir, DiskOptions{SegmentSize: 256})
		if err != nil {
			return false
		}
		for _, o := range ops {
			sp := Space(o.Space % uint8(numSpaces))
			key := fmt.Sprintf("k%d", o.Key%8)
			if o.Del {
				mem.Delete(sp, key)
				disk.Delete(sp, key)
			} else {
				mem.Put(sp, key, []byte{o.Val})
				disk.Put(sp, key, []byte{o.Val})
			}
		}
		disk.Close()
		re, err := OpenDisk(dir, DiskOptions{SegmentSize: 256})
		if err != nil {
			return false
		}
		defer re.Close()
		for sp := Space(0); sp < numSpaces; sp++ {
			a, _ := mem.List(sp)
			b, _ := re.List(sp)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAtomicAcrossSpaces(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			s.Put(Instance, "gone", []byte("old"))
			ops := []Op{
				{Space: Instance, Key: "inst/p1", Value: []byte("meta")},
				{Space: Instance, Key: "scope/p1/-", Value: []byte("root")},
				{Space: History, Key: "inst/p0", Value: []byte("done")},
				{Space: Instance, Key: "gone", Delete: true},
			}
			if err := s.Batch(ops); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := s.Get(Instance, "inst/p1"); !ok || string(v) != "meta" {
				t.Fatalf("batch put missing: (%q,%v)", v, ok)
			}
			if v, ok, _ := s.Get(History, "inst/p0"); !ok || string(v) != "done" {
				t.Fatalf("cross-space batch put missing: (%q,%v)", v, ok)
			}
			if _, ok, _ := s.Get(Instance, "gone"); ok {
				t.Fatal("batch delete not applied")
			}
		})
	}
}

func TestBatchEmpty(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if err := s.Batch(nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}
			if err := s.Batch([]Op{}); err != nil {
				t.Fatalf("zero-length batch: %v", err)
			}
		})
	}
}

func TestBatchInvalidSpaceRejectsWhole(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			ops := []Op{
				{Space: Instance, Key: "good", Value: []byte("v")},
				{Space: Space(99), Key: "bad", Value: []byte("v")},
			}
			if err := s.Batch(ops); err == nil {
				t.Fatal("batch with invalid space succeeded")
			}
			if _, ok, _ := s.Get(Instance, "good"); ok {
				t.Fatal("partial batch applied despite invalid op")
			}
		})
	}
}

func TestBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(Instance, "stale", []byte("x"))
	err = d.Batch([]Op{
		{Space: Instance, Key: "a", Value: []byte("1")},
		{Space: Configuration, Key: "b", Value: []byte("2")},
		{Space: Instance, Key: "stale", Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if v, _, _ := d2.Get(Instance, "a"); string(v) != "1" {
		t.Fatalf("batch put lost across reopen: %q", v)
	}
	if v, _, _ := d2.Get(Configuration, "b"); string(v) != "2" {
		t.Fatalf("cross-space batch put lost across reopen: %q", v)
	}
	if _, ok, _ := d2.Get(Instance, "stale"); ok {
		t.Fatal("batch delete lost across reopen")
	}
}

func TestBatchGroupCommitsSyncs(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	before := d.WALSyncs()
	ops := make([]Op, 16)
	for i := range ops {
		ops[i] = Op{Space: Instance, Key: fmt.Sprintf("k%02d", i), Value: []byte("v")}
	}
	if err := d.Batch(ops); err != nil {
		t.Fatal(err)
	}
	if got := d.WALSyncs() - before; got != 1 {
		t.Fatalf("batch of 16 ops took %d fsyncs, want 1", got)
	}
}

// TestConcurrentBatchGroupCommit hammers Batch/Put/AppendEvent from many
// goroutines: every mutation must survive a reopen (each caller's ack means
// its ops are durable), journal sequences must be unique, and the commit
// groups formed under contention must cost no more fsyncs than there were
// callers.
func TestConcurrentBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := d.WALSyncs()
	const goroutines = 8
	const perG = 10
	seqs := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				err := d.Batch([]Op{
					{Space: Instance, Key: key, Value: []byte(key)},
					{Space: History, Key: key, Value: []byte(key)},
				})
				if err != nil {
					t.Errorf("Batch: %v", err)
					return
				}
				seq, err := d.AppendEvent([]byte(key))
				if err != nil {
					t.Errorf("AppendEvent: %v", err)
					return
				}
				seqs[g] = append(seqs[g], seq)
			}
		}(g)
	}
	wg.Wait()
	calls := uint64(goroutines * perG * 2) // one Batch + one AppendEvent each
	if got := d.WALSyncs() - before; got > calls {
		t.Errorf("%d fsyncs for %d mutation calls — group commit regressed", got, calls)
	}
	seen := make(map[uint64]bool)
	for _, ss := range seqs {
		for _, s := range ss {
			if seen[s] {
				t.Errorf("journal seq %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			key := fmt.Sprintf("g%d-i%d", g, i)
			for _, sp := range []Space{Instance, History} {
				v, ok, err := d2.Get(sp, key)
				if err != nil || !ok || string(v) != key {
					t.Fatalf("%s/%s lost after reopen (ok=%v err=%v)", sp, key, ok, err)
				}
			}
		}
	}
	events := 0
	if err := d2.Events(1, func(Event) error { events++; return nil }); err != nil {
		t.Fatal(err)
	}
	if events != goroutines*perG {
		t.Errorf("journal has %d events after reopen, want %d", events, goroutines*perG)
	}
}
