package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitDigest polls the store until its logical digest matches want — the
// standby applies shipped batches asynchronously, so convergence (not each
// individual batch) is the observable contract.
func waitDigest(t *testing.T, d *Disk, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		var err error
		got, err = d.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("standby never converged: digest %s, want %s", got, want)
}

// TestShippingReplicates is the log-shipping happy path: a standby follows
// the primary's WAL stream, converges to a byte-identical logical state
// (Digest), survives the primary's death, and serves writes after
// promotion.
func TestShippingReplicates(t *testing.T) {
	p, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shipper, err := p.StartShipping("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer shipper.Close()

	sdir := t.TempDir()
	sb, err := OpenStandby(sdir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	followErr := make(chan error, 1)
	go func() { followErr <- sb.Follow(shipper.Addr(), t.Logf) }()

	// A mixed workload: puts across spaces, an overwrite, deletes, an
	// atomic batch, and journal events.
	for i := 0; i < 40; i++ {
		if err := p.Put(Instance, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Put(Instance, "k00", []byte("v0-rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(Template, "tpl", []byte("def")); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(Instance, "k01"); err != nil {
		t.Fatal(err)
	}
	if err := p.Batch([]Op{
		{Space: Instance, Key: "b1", Value: []byte("x")},
		{Space: Instance, Key: "k02", Delete: true},
		{Space: Configuration, Key: "node", Value: []byte("up")},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.AppendEvent([]byte(fmt.Sprintf("ev%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	want, err := p.Digest()
	if err != nil {
		t.Fatal(err)
	}
	waitDigest(t, sb.Store(), want)
	if n := shipper.Followers(); n != 1 {
		t.Fatalf("followers = %d, want 1", n)
	}

	// Primary dies: the follower's Run must return a non-nil error (the
	// promotion cue — a nil return is reserved for a local Close).
	if err := shipper.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-followErr:
		if err == nil {
			t.Fatal("follower returned nil after primary death; want promotion cue")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not notice the primary dying")
	}

	promoted, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	got, err := promoted.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("promoted digest %s, want %s", got, want)
	}
	// The promoted store is a full read-write primary.
	if err := promoted.Put(Instance, "after-promotion", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := promoted.Get(Instance, "k00"); err != nil || !ok || string(v) != "v0-rewritten" {
		t.Fatalf("Get after promotion = (%q, %v, %v)", v, ok, err)
	}
}

// TestShippingSnapshotBootstrap covers the lagging-follower path: the
// primary snapshots and truncates its WAL before the standby ever
// connects, so the records the standby needs are gone and the shipper
// must bootstrap it with a full snapshot image. The standby must also
// recover from its own disk afterwards without re-fetching.
func TestShippingSnapshotBootstrap(t *testing.T) {
	// Tiny segments so Snapshot actually drops sealed WAL segments.
	p, err := OpenDisk(t.TempDir(), DiskOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 30; i++ {
		if err := p.Put(Instance, fmt.Sprintf("pre%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AppendEvent([]byte("early")); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if oldest := p.log.OldestSeq(); oldest <= 1 {
		t.Fatalf("OldestSeq = %d after snapshot; segments were not truncated, bootstrap path untested", oldest)
	}
	// Post-snapshot tail the standby must replay after the bootstrap.
	for i := 0; i < 10; i++ {
		if err := p.Put(Instance, fmt.Sprintf("post%02d", i), []byte("t")); err != nil {
			t.Fatal(err)
		}
	}

	shipper, err := p.StartShipping("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer shipper.Close()

	sdir := t.TempDir()
	sb, err := OpenStandby(sdir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	followErr := make(chan error, 1)
	go func() { followErr <- sb.Follow(shipper.Addr(), t.Logf) }()

	want, err := p.Digest()
	if err != nil {
		t.Fatal(err)
	}
	waitDigest(t, sb.Store(), want)
	if seq := sb.Store().Stats().SnapshotSeq; seq == 0 {
		t.Fatal("standby has no snapshot seq; it was not bootstrapped via the snapshot path")
	}

	// Standby restart: Close stops following (nil Run return) and the
	// reopened standby resumes from its own snapshot file + WAL.
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-followErr; err != nil {
		t.Fatalf("local close should return nil from Follow, got %v", err)
	}
	sb2, err := OpenStandby(sdir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sb2.Close()
	got, err := sb2.Store().Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reopened standby digest %s, want %s", got, want)
	}
}

// TestRetentionFloorPinsSegments exercises the mechanism the shipper uses
// to keep a slow follower's records on disk: a pinned retention floor
// makes Snapshot keep the WAL segments at or above it, and releasing the
// pin lets the next snapshot drop them.
func TestRetentionFloorPinsSegments(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 50; i++ {
		if err := d.Put(Instance, fmt.Sprintf("k%02d", i), []byte("vvvvvvvvvvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	if segs := d.log.Segments(); len(segs) < 3 {
		t.Fatalf("want several sealed segments, got %d", len(segs))
	}

	d.log.SetRetainFloor(2)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if oldest := d.log.OldestSeq(); oldest > 2 {
		t.Fatalf("OldestSeq = %d after pinned snapshot; the floor at 2 was not honored", oldest)
	}

	d.log.SetRetainFloor(0)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if oldest := d.log.OldestSeq(); oldest <= 2 {
		t.Fatalf("OldestSeq = %d after unpinned snapshot; stale segments survived", oldest)
	}
}

// TestReopenTornSnapshot simulates a crash mid-Snapshot: a newer snapshot
// file exists but is torn (truncated JSON) and a stray .tmp was left
// behind. Reopening must skip both, fall back to the last valid snapshot,
// and replay the WAL tail — no data loss.
func TestReopenTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.Put(Instance, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AppendEvent([]byte("ev")); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// A post-snapshot write that lives only in the WAL tail.
	if err := d.Put(Instance, "k5", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	want, err := d.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash artifacts: a torn snapshot newer than the valid one, and
	// an abandoned temp file.
	torn := filepath.Join(dir, fmt.Sprintf("snap-%020d%s", uint64(1<<40), snapSuffix))
	if err := os.WriteFile(torn, []byte(`{"walSeq":1099511627776,"spaces":[[{"k`), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, fmt.Sprintf("snap-%020d%s.tmp", uint64(1<<41), snapSuffix))
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("digest after torn-snapshot reopen = %s, want %s", got, want)
	}
	if v, ok, _ := re.Get(Instance, "k5"); !ok || string(v) != "tail" {
		t.Fatalf("WAL-tail record lost: (%q, %v)", v, ok)
	}
}
