// Replication: the Disk store's side of WAL log shipping. A primary
// serves its log through StartShipping; a Standby opens its own Disk in
// another directory, follows the primary's stream, and replays every
// shipped batch through its own WAL before applying it — so the standby
// is itself crash-safe at every point, and a promotion is nothing more
// than "stop following and hand the Disk to Engine.Recover".
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bioopera/internal/wal"
)

// marshalSnapshot captures and encodes the current state for a shipping
// bootstrap: the image plus the first WAL sequence not covered by it.
func (d *Disk) marshalSnapshot() (uint64, []byte, error) {
	snap, err := d.captureSnapshot()
	if err != nil {
		return 0, nil, err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return 0, nil, fmt.Errorf("store: %w", err)
	}
	return snap.WALSeq, data, nil
}

// StartShipping serves this store's WAL to followers on addr (":0" picks a
// free port). Followers that lag behind the oldest retained segment are
// bootstrapped with a full snapshot; connected followers pin the WAL
// retention floor so Snapshot cannot truncate records they still need.
func (d *Disk) StartShipping(addr string, logf func(string, ...any)) (*wal.Shipper, error) {
	return wal.NewShipper(addr, wal.ShipperOptions{
		Log:      d.log,
		Snapshot: d.marshalSnapshot,
		Logf:     logf,
	})
}

// applyShipped ingests one batch-aligned group of records from the
// primary: append to our own WAL first (one fsync, same commit unit), then
// apply to memory — the exact discipline flushGroup uses for local writes.
func (d *Disk) applyShipped(first uint64, records [][]byte) error {
	recs := make([]walRecord, len(records))
	for i, data := range records {
		rec, err := decodeWALRecord(data)
		if err != nil {
			return fmt.Errorf("store: decoding shipped record %d: %w", first+uint64(i), err)
		}
		recs[i] = rec
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if next := d.log.NextSeq(); first != next {
		return fmt.Errorf("store: shipped batch starts at %d, want %d", first, next)
	}
	if _, err := d.log.AppendBatch(records); err != nil {
		return err
	}
	for _, rec := range recs {
		d.apply(rec)
	}
	return nil
}

// installSnapshot replaces the in-memory state with a bootstrap image and
// resets the WAL so the next shipped batch (sequence seq) appends cleanly.
// The image is also written as a snapshot file: a standby that crashes
// right after bootstrap recovers without re-fetching it.
func (d *Disk) installSnapshot(seq uint64, data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: decoding shipped snapshot: %w", err)
	}
	if snap.WALSeq != seq {
		return fmt.Errorf("store: shipped snapshot covers to %d, header says %d", snap.WALSeq, seq)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	st := newState()
	for i, kvs := range snap.Spaces {
		if i >= int(numSpaces) {
			break
		}
		for _, kv := range kvs {
			st.spaces[i][kv.Key] = kv.Value
		}
	}
	st.events = snap.Events
	st.eventSeq = snap.EventSeq
	if err := d.writeSnapFileLocked(seq, data); err != nil {
		return err
	}
	if err := d.log.Reset(seq); err != nil {
		return err
	}
	d.st = st
	d.snapSeq = seq
	return nil
}

// writeSnapFileLocked durably writes a snapshot image under its sequence
// name (tmp + rename, the same torn-write discipline Snapshot uses).
func (d *Disk) writeSnapFileLocked(seq uint64, data []byte) error {
	final := snapPath(d.dir, seq)
	tmp := final + ".tmp"
	if err := writeFileAtomic(tmp, final, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Digest hashes the logical store contents — every space's sorted records,
// the event journal, and the journal sequence. Two stores that executed
// the same history digest identically even if their physical WAL segment
// boundaries differ, which is exactly the check a freshly promoted standby
// must pass against its failed primary.
func (d *Disk) Digest() (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return "", ErrClosed
	}
	h := sha256.New()
	var lenBuf [8]byte
	writeChunk := func(b []byte) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	for sp := Space(0); sp < numSpaces; sp++ {
		for _, kv := range d.st.list(sp) {
			writeChunk([]byte(kv.Key))
			writeChunk(kv.Value)
		}
	}
	for _, e := range d.st.events {
		binary.LittleEndian.PutUint64(lenBuf[:], e.Seq)
		h.Write(lenBuf[:])
		writeChunk(e.Data)
	}
	binary.LittleEndian.PutUint64(lenBuf[:], d.st.eventSeq)
	h.Write(lenBuf[:])
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Standby is a Disk store kept hot by following a primary's WAL stream.
// It is read-consistent at batch boundaries: Get/List on the embedded
// store observe exactly the prefixes of the primary's history.
type Standby struct {
	d *Disk
	f *wal.Follower
}

// OpenStandby opens (or re-opens — a standby resumes from its own WAL
// after a restart) the standby store in dir.
func OpenStandby(dir string, opts DiskOptions) (*Standby, error) {
	d, err := OpenDisk(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Standby{d: d}, nil
}

// Store returns the embedded Disk. While following, treat it as read-only:
// local writes would diverge from the primary's stream.
func (s *Standby) Store() *Disk { return s.d }

// Follow connects to the primary's shipper at addr and replays its stream,
// blocking until the connection drops. A nil return means Close was
// called; any other return — typically the primary dying — is the
// caller's cue to promote.
func (s *Standby) Follow(addr string, logf func(string, ...any)) error {
	f, err := wal.DialFollower(addr, wal.FollowerOptions{
		From:          s.d.log.NextSeq(),
		ApplyBatch:    s.d.applyShipped,
		ApplySnapshot: s.d.installSnapshot,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	s.f = f
	return f.Run()
}

// Promote detaches from the primary and returns the store, ready for
// Engine.Recover. The Standby must not be used afterwards.
func (s *Standby) Promote() (*Disk, error) {
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return nil, err
		}
		s.f = nil
	}
	return s.d, nil
}

// Close stops following and closes the store.
func (s *Standby) Close() error {
	if s.f != nil {
		//bioopera:allow droppederr teardown: the store close below is the error that matters; the follower socket is being discarded
		s.f.Close()
		s.f = nil
	}
	return s.d.Close()
}
