package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. bioopera/internal/core
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the module rooted at ModRoot
// without go/packages: imports inside the module resolve to their source
// directories and are checked recursively; everything else (the standard
// library — the module has no other dependencies) goes through the
// compiler's source importer. Loaded packages are memoized, so a whole-
// module load checks each package once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader builds a loader for the module rooted at modRoot, reading the
// module path from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", modRoot)
	}
	return &Loader{
		Fset:     token.NewFileSet(),
		ModRoot:  modRoot,
		ModPath:  modPath,
		std:      sharedStdImporter(),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}, nil
}

// The standard library is type-checked once per process, not once per
// Loader: the source importer re-checks every stdlib package it is asked
// for from scratch, which dominated whole-module runs when tests build
// several Loaders. The shared importer memoizes internally; the returned
// packages are immutable after checking, so reusing them across checker
// universes is safe. Their positions refer to the shared importer's own
// FileSet — fine, because diagnostics only ever print module positions.
var (
	stdImporterOnce sync.Once
	stdImporterInst types.Importer
)

// lockedImporter serializes Import calls: the source importer is not
// documented as concurrency-safe, and Loaders on different goroutines
// (parallel tests) may share this one.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

func sharedStdImporter() types.Importer {
	stdImporterOnce.Do(func() {
		stdImporterInst = &lockedImporter{
			imp: importer.ForCompiler(token.NewFileSet(), "source", nil),
		}
	})
	return stdImporterInst
}

// Import implements types.Importer for the type-checker's benefit: module
// packages load recursively, anything else defers to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(path string) string {
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
}

// LoadDir loads the package in one directory, deriving its import path
// from the directory's location under the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// LoadModule loads every package under the module root, skipping testdata
// and hidden directories. Directories without non-test Go files are
// skipped silently.
func (l *Loader) LoadModule() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		pkg, err := l.LoadDir(p)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package at dir under the given import
// path, memoized. Test files are excluded: the invariants guard production
// code, and tests legitimately use wall clocks and best-effort cleanup.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
