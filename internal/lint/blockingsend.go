package lint

import (
	"go/token"
	"strings"
)

// blockingsend generalizes locksafe interprocedurally: while any tracked
// lock is held, nothing reachable through the resolved call graph may
// block indefinitely — an unbuffered/blocking channel operation, a select
// without default, a WaitGroup wait, or a network write (the JSON codecs
// the remote protocol and WAL shipping run over TCP). locksafe catches the
// syntactic cases inside internal/core; this pass catches the same hazard
// arriving through a call chain, e.g. the dispatcher holding a shard
// across Executor.Launch into a remote send.
//
// A deliberate bounded wait is annotated at the blocking operation itself
// (//bioopera:allow blockingsend <reason>): the fact layer clears the
// witness at its source, so one annotation covers every caller.

func blockingsendPkg(path string) bool {
	return lockTrackedPkgs[path] || strings.Contains(path, "lint/testdata/blockingsend")
}

func runBlockingSend(mp *ModulePass) {
	p := mp.Prog
	for _, n := range p.nodes {
		if !blockingsendPkg(n.pkg.Path) {
			continue
		}
		node := n
		scanHeld(p, node, &scanHooks{
			blocking: func(held []*holder, what string, pos token.Pos) {
				live := liveHolders(held)
				if len(live) == 0 {
					return
				}
				mp.Reportf(pos, "%s while holding %s can block the lock indefinitely", what, holderList(live))
			},
			call: func(held []*holder, rc *resolvedCall, pos token.Pos) {
				live := liveHolders(held)
				if len(live) == 0 {
					return
				}
				for _, c := range rc.callees {
					if c.mayBlock == nil {
						continue
					}
					mp.Reportf(pos, "call to %s while holding %s may block indefinitely: %s", c.name, holderList(live), c.mayBlock.describe(p.Fset))
					return
				}
			},
		})
	}
}

func holderList(live []*holder) string {
	parts := make([]string, len(live))
	for i, h := range live {
		parts[i] = h.describe()
	}
	return strings.Join(parts, ", ")
}
