package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//bioopera:allow <analyzer> <reason...>
//
// A directive suppresses diagnostics of the named analyzer on its own line
// and on the line immediately below it — trailing comments cover their
// statement, standalone comments cover the next one. A directive placed
// above the package clause covers the whole file (used for files that are
// wall-clock by design, like the real-time local executor).
//
// Directives are themselves checked: the analyzer must exist, the reason
// must be non-empty, and the directive must actually suppress something —
// a stale suppression is a diagnostic, so annotations cannot outlive the
// code they excused.
const directivePrefix = "//bioopera:allow"

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	fileWide bool
	valid    bool // well-formed: known analyzer and non-empty reason
	used     bool
}

// collectDirectives scans a package's comments for //bioopera:allow
// directives, returning them plus malformed-directive diagnostics.
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]*directive, []Diagnostic) {
	known := make(map[string]bool)
	for _, n := range KnownAnalyzerNames() {
		known[n] = true
	}
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				d := &directive{pos: pos, fileWide: pos.Line <= pkgLine}
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				switch {
				case d.analyzer == "" || d.reason == "":
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveName,
						Pos:      pos,
						Message:  "bioopera:allow needs an analyzer name and a reason: //bioopera:allow <analyzer> <why>",
					})
				case !known[d.analyzer]:
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveName,
						Pos:      pos,
						Message:  "bioopera:allow names unknown analyzer " + strconvQuote(d.analyzer) + " (known: " + strings.Join(KnownAnalyzerNames(), ", ") + ")",
					})
				default:
					d.valid = true
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// applyDirectives filters diagnostics through the suppressions and reports
// valid directives that suppressed nothing as stale.
func applyDirectives(diags []Diagnostic, dirs []*directive) (kept, stale []Diagnostic) {
	for _, d := range diags {
		suppressed := false
		// Directive diagnostics are never suppressible: a suppression
		// that silences the suppression checker defeats the audit trail.
		if d.Analyzer != DirectiveName {
			for _, dir := range dirs {
				if dir.valid && dir.analyzer == d.Analyzer && dir.pos.Filename == d.Pos.Filename &&
					(dir.fileWide || d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1) {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if dir.valid && !dir.used {
			stale = append(stale, Diagnostic{
				Analyzer: DirectiveName,
				Pos:      dir.pos,
				Message:  "stale suppression: no " + dir.analyzer + " diagnostic here — remove the //bioopera:allow",
			})
		}
	}
	return kept, stale
}

func strconvQuote(s string) string { return `"` + s + `"` }
