package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The held-lock scanner shared by lockorder and blockingsend: a linear,
// branch-copying walk of one function body (modeled on locksafe's, but
// class-aware and callback-driven) that maintains the set of locks held at
// every statement. Hooks fire on acquisitions, on potentially blocking
// operations, and on call sites — the analyzers combine them with the
// program's transitive facts.

// holder is one acquired lock being tracked through the walk.
type holder struct {
	class    string // lock class, "" when unresolvable
	expr     string // rendered receiver, for release matching and messages
	rlock    bool
	pos      token.Pos
	released bool
}

func (h *holder) describe() string {
	if h.class != "" {
		return h.class
	}
	return h.expr
}

// scanHooks are the scanner's callbacks. held always includes released
// entries; liveHolders filters them.
type scanHooks struct {
	// acquire fires after h is pushed; held excludes h.
	acquire func(held []*holder, h *holder)
	// blocking fires on an operation that can block indefinitely: channel
	// send/receive, select without default, range over a channel, and
	// blocking external calls (Accept/Dial/network encode/WaitGroup.Wait).
	blocking func(held []*holder, what string, pos token.Pos)
	// call fires on every resolved or unresolved non-blocking call, after
	// lock-handoff arguments released their holders.
	call func(held []*holder, rc *resolvedCall, pos token.Pos)
}

func liveHolders(held []*holder) []*holder {
	var live []*holder
	for _, h := range held {
		if !h.released {
			live = append(live, h)
		}
	}
	return live
}

// scanHeld walks n's body with the hooks.
func scanHeld(p *Program, n *funcNode, hooks *scanHooks) {
	s := &heldScan{p: p, n: n, hooks: hooks}
	s.stmts(n.body.List, nil)
}

type heldScan struct {
	p     *Program
	n     *funcNode
	hooks *scanHooks
}

func (s *heldScan) stmts(list []ast.Stmt, held []*holder) []*holder {
	for _, st := range list {
		held = s.stmt(st, held)
	}
	return held
}

func (s *heldScan) stmt(st ast.Stmt, held []*holder) []*holder {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if expr, name, ok := s.lockCall(call); ok {
				switch name {
				case "Lock", "RLock":
					h := &holder{
						class: s.p.classOf(s.n, lockRecv(call)),
						expr:  expr, rlock: name == "RLock", pos: call.Pos(),
					}
					if s.hooks.acquire != nil {
						s.hooks.acquire(held, h)
					}
					return append(held, h)
				case "Unlock", "RUnlock":
					releaseHolder(held, expr, name == "RUnlock")
					return held
				}
			}
		}
		s.expr(x.X, held)
	case *ast.DeferStmt:
		// Deferred calls run at function exit, outside the sequential
		// critical section; they are not scanned. (Deferred Unlocks do
		// not release mid-body either — the lock stays held below.)
	case *ast.GoStmt:
		// The goroutine body is its own funcNode; only the call's
		// arguments evaluate here.
		for _, a := range x.Call.Args {
			s.expr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.blocking(held, "channel send", x.Pos())
		s.expr(x.Value, held)
	case *ast.IncDecStmt:
		s.expr(x.X, held)
	case *ast.IfStmt:
		if x.Init != nil {
			held = s.stmt(x.Init, held)
		}
		s.expr(x.Cond, held)
		s.stmts(x.Body.List, copyHolders(held))
		if x.Else != nil {
			s.stmt(x.Else, copyHolders(held))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			held = s.stmt(x.Init, held)
		}
		if x.Cond != nil {
			s.expr(x.Cond, held)
		}
		s.stmts(x.Body.List, copyHolders(held))
	case *ast.RangeStmt:
		if t := s.n.pkg.Info.TypeOf(x.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				s.blocking(held, "range over channel", x.Pos())
			}
		}
		s.expr(x.X, held)
		s.stmts(x.Body.List, copyHolders(held))
	case *ast.SwitchStmt:
		if x.Init != nil {
			held = s.stmt(x.Init, held)
		}
		if x.Tag != nil {
			s.expr(x.Tag, held)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHolders(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHolders(held))
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks; without one it
		// parks until a case is ready.
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.blocking(held, "select", x.Pos())
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmts(cc.Body, copyHolders(held))
			}
		}
	case *ast.BlockStmt:
		held = s.stmts(x.List, held)
	case *ast.LabeledStmt:
		held = s.stmt(x.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.expr(e, held)
		}
	}
	return held
}

// expr inspects one expression for receives and calls. Function literals
// are skipped — they do not execute here.
func (s *heldScan) expr(e ast.Expr, held []*holder) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(an ast.Node) bool {
		switch x := an.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.blocking(held, "channel receive", x.Pos())
			}
		case *ast.CallExpr:
			s.call(x, held)
		}
		return true
	})
}

func (s *heldScan) call(call *ast.CallExpr, held []*holder) {
	// Lock/Unlock as sub-expressions are rare and intentionally ignored
	// here; the statement walk handles the canonical forms.
	if _, name, ok := s.lockCall(call); ok && (name == "Lock" || name == "RLock" || name == "Unlock" || name == "RUnlock") {
		return
	}
	if what, blocking := s.externalBlocking(call); blocking {
		s.blocking(held, what, call.Pos())
		return
	}
	// A held lock passed as an argument hands release responsibility to
	// the callee (the dispatcher's endTurn pattern): the callee's
	// acquisitions are no longer nested under it.
	for _, arg := range call.Args {
		rendered := types.ExprString(arg)
		for _, h := range held {
			if !h.released && (rendered == h.expr || rendered == "&"+h.expr) {
				h.released = true
			}
		}
	}
	if s.hooks.call != nil {
		if rc, ok := s.n.callByAST[call]; ok {
			s.hooks.call(held, rc, call.Pos())
		}
	}
}

// externalBlocking recognizes calls outside the module that can block
// indefinitely: connection establishment and accept loops, WaitGroup
// waits, wall-clock sleeps, and the JSON codecs — which this codebase uses
// exclusively on network connections (remote protocol, WAL shipping, the
// monitor's responses), so an Encode is a network write.
func (s *heldScan) externalBlocking(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	info := s.n.pkg.Info
	name := sel.Sel.Name
	if sl, found := info.Selections[sel]; found {
		if fn, isFn := sl.Obj().(*types.Func); isFn && fn.Pkg() != nil {
			recv := types.TypeString(sl.Recv(), nil)
			switch fn.Pkg().Path() {
			case "sync":
				if name == "Wait" && strings.Contains(recv, "sync.WaitGroup") {
					return "sync.WaitGroup.Wait", true
				}
				return "", false
			case "encoding/json":
				if name == "Encode" || name == "Decode" {
					return "network " + strings.ToLower(name), true
				}
				return "", false
			}
			if strings.Contains(recv, "net.Conn") && (name == "Read" || name == "Write") {
				return "net.Conn." + name, true
			}
		}
	}
	// Name-based fallback for interface and external calls the type
	// layer cannot pin down (net.Listener.Accept, net.Dial, Serve).
	if callees := s.n.callByAST[call]; callees != nil && len(callees.callees) > 0 {
		return "", false // resolved module call: facts decide
	}
	switch name {
	case "Accept", "Dial", "DialTimeout", "Listen", "Serve", "ListenAndServe":
		if s.isCondOrModule(sel) {
			return "", false
		}
		return "call to " + types.ExprString(sel), true
	case "Sleep":
		if s.pkgFunc(sel, "time") {
			return "time.Sleep", true
		}
	}
	return "", false
}

// isCondOrModule filters the name fallback: module-defined targets are
// handled through facts, and sync.Cond.Wait never applies here.
func (s *heldScan) isCondOrModule(sel *ast.SelectorExpr) bool {
	if obj := s.n.pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
		return strings.HasPrefix(obj.Pkg().Path(), "bioopera/")
	}
	if sl, found := s.n.pkg.Info.Selections[sel]; found {
		if fn, ok := sl.Obj().(*types.Func); ok && fn.Pkg() != nil {
			return strings.HasPrefix(fn.Pkg().Path(), "bioopera/")
		}
	}
	return false
}

func (s *heldScan) pkgFunc(sel *ast.SelectorExpr, pkg string) bool {
	obj := s.n.pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

func (s *heldScan) blocking(held []*holder, what string, pos token.Pos) {
	if s.hooks.blocking != nil {
		s.hooks.blocking(held, what, pos)
	}
}

// lockCall recognizes x.Lock/RLock/Unlock/RUnlock on sync mutexes,
// returning the rendered receiver and the method name. sync.Cond's
// locker methods do not reach here (Cond has no Lock method itself).
func (s *heldScan) lockCall(call *ast.CallExpr) (expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sl, found := s.n.pkg.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	obj := sl.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// lockRecv returns the receiver expression of a lock method call.
func lockRecv(call *ast.CallExpr) ast.Expr {
	return ast.Unparen(call.Fun).(*ast.SelectorExpr).X
}

func releaseHolder(held []*holder, expr string, runlock bool) {
	for i := len(held) - 1; i >= 0; i-- {
		h := held[i]
		if !h.released && h.expr == expr && h.rlock == runlock {
			h.released = true
			return
		}
	}
}

func copyHolders(held []*holder) []*holder {
	out := make([]*holder, len(held))
	for i, h := range held {
		c := *h
		out[i] = &c
	}
	return out
}
