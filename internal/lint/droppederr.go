package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrNames are method/function names whose error results guard
// durability: dropping one silently turns a persistence failure into
// corruption discovered at recovery time. The name set catches the
// stdlib's file/connection teardown (Close, Sync); the package rule below
// catches everything the store and WAL export.
var droppedErrNames = map[string]bool{
	"Close":    true,
	"Sync":     true,
	"Flush":    true,
	"Snapshot": true,
	"Compact":  true,
}

// runDroppedErr flags error results from persistence-critical calls that
// are discarded — either a bare expression statement or assignment to the
// blank identifier. `defer f.Close()` stays legal: a deferred teardown has
// no caller left to inform, and flagging it would bury the real signal.
// Non-test code that genuinely cannot act on the error (double-close on a
// failure path, best-effort teardown of a dying connection) says so with a
// //bioopera:allow droppederr directive.
func runDroppedErr(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if ok && p.monitoredErrCall(call) {
					p.Reportf(call.Pos(), "%s discards its error: return it or route it to OnError/EvPersistError", callName(call))
				}
			case *ast.AssignStmt:
				p.checkBlankAssign(st)
			}
			return true
		})
	}
}

// checkBlankAssign flags `_ = call()` and `v, _ := call()` where the
// blanked position is a monitored call's error result.
func (p *Pass) checkBlankAssign(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || !p.monitoredErrCall(call) {
		return
	}
	sig := p.callSignature(call)
	if sig == nil {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= sig.Results().Len() {
			continue
		}
		if isErrorType(sig.Results().At(i).Type()) {
			p.Reportf(st.Pos(), "%s assigns its error to _: return it or route it to OnError/EvPersistError", callName(call))
			return
		}
	}
}

// monitoredErrCall reports whether the call returns an error and belongs
// to the persistence-critical set: named teardown/flush methods, anything
// exported by the store or WAL packages, or persist-named helpers.
func (p *Pass) monitoredErrCall(call *ast.CallExpr) bool {
	obj := p.calleeObject(call)
	if obj == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !hasErrorResult(sig) {
		return false
	}
	if droppedErrNames[fn.Name()] || strings.Contains(strings.ToLower(fn.Name()), "persist") {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		if strings.HasSuffix(path, "internal/store") || strings.HasSuffix(path, "internal/wal") ||
			strings.Contains(path, "lint/testdata/droppederr") {
			return true
		}
	}
	return false
}

// calleeObject resolves the function or method a call invokes, or nil for
// builtins, conversions and indirect calls through function values.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[fun.Sel]
	case *ast.Ident:
		return p.Info.Uses[fun]
	}
	return nil
}

func (p *Pass) callSignature(call *ast.CallExpr) *types.Signature {
	obj := p.calleeObject(call)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

func hasErrorResult(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// callName renders a call's callee for diagnostics (x.Close, persistMeta).
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
