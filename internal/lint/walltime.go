package lint

import (
	"go/ast"
	"go/types"
)

// walltimeBanned is every package-level identifier of the time package
// that reads or schedules against the wall clock. Pure-duration helpers
// (time.Duration, time.Second, Duration.Round, ...) stay legal: the
// invariant bans clocks, not units. §5's experiments replay bit-identically
// only because the sim's virtual clock is the single time source.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// runWalltime flags wall-clock use in deterministic packages. The one
// structural exception is annotated in source: real-time adapters living
// inside internal/core (the local pool, the runtime Wait timeout) carry
// //bioopera:allow walltime directives explaining why the wall clock is
// the point.
func runWalltime(p *Pass) {
	if !deterministicPkg(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" || !walltimeBanned[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s: use the sim virtual clock", sel.Sel.Name, p.Pkg.Path())
			return true
		})
	}
}
