package lint

import (
	"go/ast"
	"go/types"
)

// walltimeBanned is every package-level identifier of the time package
// that reads or schedules against the wall clock. Pure-duration helpers
// (time.Duration, time.Second, Duration.Round, ...) stay legal: the
// invariant bans clocks, not units. §5's experiments replay bit-identically
// only because the sim's virtual clock is the single time source.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// runWalltime flags wall-clock use in deterministic packages. Two
// exceptions exist. The annotated one: real-time adapters living inside
// internal/core (the local pool, the runtime Wait timeout) carry
// //bioopera:allow walltime directives explaining why the wall clock is
// the point. The structural one: a function taking a sim.Clock parameter
// is a clock adapter by signature — it reads virtual time when given a
// clock and may legitimately fall back to the wall clock when handed nil
// (obs.NowFunc), so its whole body is exempt without a directive.
func runWalltime(p *Pass) {
	if !deterministicPkg(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && takesSimClock(p, fd) {
				return false // clock adapter: nested closures included
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" || !walltimeBanned[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %s: use the sim virtual clock", sel.Sel.Name, p.Pkg.Path())
			return true
		})
	}
}

// takesSimClock reports whether the function declares a parameter of the
// virtual-clock interface type sim.Clock.
func takesSimClock(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		named, ok := p.TypeOf(field.Type).(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Clock" && obj.Pkg() != nil && obj.Pkg().Path() == "bioopera/internal/sim" {
			return true
		}
	}
	return false
}
