package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runLockSafe guards the engine's critical sections (PR 1's sharded lock
// table): between a mu.Lock() and its Unlock there must be no operation
// that can block indefinitely — a channel send/receive/select, a Wait, an
// Executor.Launch or network call — because a blocked holder stalls every
// instance hashed to that shard, and a lock the function can exit without
// releasing deadlocks the next caller. The analysis is function-local and
// syntactic over matched Lock/Unlock pairs on the same expression; a lock
// handed to another function (the endTurn pattern) transfers release
// responsibility to the callee and tracking stops.
//
// sync.Cond.Wait is exempt: releasing the mutex while asleep is the
// condition-variable contract, not a blocked critical section.
func runLockSafe(p *Pass) {
	if p.Pkg.Path() != "bioopera/internal/core" && !strings.Contains(p.Pkg.Path(), "lint/testdata/locksafe") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			held := p.scanStmts(body.List, nil)
			for _, h := range held {
				if !h.released && !h.deferred {
					p.Reportf(h.pos, "%s.%s() has no matching %s on every path", h.expr, h.lockName, h.unlockName())
				}
			}
			return true
		})
	}
}

// heldLock tracks one acquired lock through the statement walk.
type heldLock struct {
	expr     string // rendered receiver, e.g. "e.dmu" or "mu"
	lockName string // Lock or RLock
	pos      token.Pos
	released bool
	deferred bool // a defer x.Unlock() covers every path
}

func (h *heldLock) unlockName() string {
	if h.lockName == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// scanStmts walks a statement list in order, maintaining the set of held
// locks. Branch bodies are walked with copies so a branch that unlocks and
// returns does not release the fall-through path.
func (p *Pass) scanStmts(stmts []ast.Stmt, held []*heldLock) []*heldLock {
	for _, st := range stmts {
		held = p.scanStmt(st, held)
	}
	return held
}

func (p *Pass) scanStmt(st ast.Stmt, held []*heldLock) []*heldLock {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if expr, name, ok := p.syncLockCall(call); ok {
				switch name {
				case "Lock", "RLock":
					return append(held, &heldLock{expr: expr, lockName: name, pos: call.Pos()})
				case "Unlock", "RUnlock":
					releaseMatching(held, expr, name)
					return held
				}
			}
		}
		p.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if expr, name, ok := p.syncLockCall(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			for _, h := range held {
				if !h.released && h.expr == expr && h.unlockName() == name {
					h.deferred = true
				}
			}
		}
		// The deferred call itself runs at function exit, outside the
		// sequential critical section — not scanned.
	case *ast.GoStmt:
		// The goroutine body runs elsewhere; its own FuncLit is scanned
		// independently by runLockSafe.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			p.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						p.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		p.blockingIfHeld(s.Pos(), "channel send", held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = p.scanStmt(s.Init, held)
		}
		p.checkExpr(s.Cond, held)
		p.scanStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			p.scanStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = p.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			p.checkExpr(s.Cond, held)
		}
		p.scanStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if t := p.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				p.blockingIfHeld(s.Pos(), "range over channel", held)
			}
		}
		p.checkExpr(s.X, held)
		p.scanStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = p.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			p.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				p.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		p.blockingIfHeld(s.Pos(), "select", held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				p.scanStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		held = p.scanStmts(s.List, held)
	case *ast.LabeledStmt:
		held = p.scanStmt(s.Stmt, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			p.checkExpr(e, held)
		}
		for _, h := range held {
			if !h.released && !h.deferred {
				p.Reportf(s.Pos(), "returns while %s is still %sed: release it on this path", h.expr, strings.ToLower(h.lockName))
				h.released = true // one report per leak
			}
		}
	}
	return held
}

// checkExpr inspects one expression for blocking operations and lock
// transfers while locks are held. Function literals are skipped — they do
// not execute here.
func (p *Pass) checkExpr(e ast.Expr, held []*heldLock) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.blockingIfHeld(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			p.checkCall(x, held)
		}
		return true
	})
}

// blockingCallNames are callee names treated as potentially blocking:
// executor launches, waits, and network establishment.
var blockingCallNames = map[string]bool{
	"Launch": true, "Wait": true, "Accept": true,
	"Dial": true, "DialTimeout": true, "Listen": true,
}

func (p *Pass) checkCall(call *ast.CallExpr, held []*heldLock) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if blockingCallNames[sel.Sel.Name] && !p.isCondWait(sel) {
			p.blockingIfHeld(call.Pos(), "call to "+types.ExprString(sel), held)
		}
	}
	// A held lock passed as an argument transfers release responsibility
	// to the callee (the dispatcher's endTurn pattern); stop tracking it.
	for _, arg := range call.Args {
		s := types.ExprString(arg)
		for _, h := range held {
			if !h.released && (s == h.expr || s == "&"+h.expr) {
				h.released = true
			}
		}
	}
}

// isCondWait reports whether sel is sync.Cond's Wait (legal under the
// lock), as opposed to sync.WaitGroup's (a deadlock in waiting).
func (p *Pass) isCondWait(sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	return strings.Contains(types.TypeString(s.Recv(), nil), "sync.Cond")
}

func (p *Pass) blockingIfHeld(pos token.Pos, what string, held []*heldLock) {
	for _, h := range held {
		if !h.released {
			p.Reportf(pos, "%s while holding %s: blocking operations must not run inside the critical section", what, h.expr)
			return
		}
	}
}

// syncLockCall recognizes x.Lock/RLock/Unlock/RUnlock calls on sync
// package mutexes (including promoted embedded ones), returning the
// rendered receiver and method name.
func (p *Pass) syncLockCall(call *ast.CallExpr) (expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	s, found := p.Info.Selections[sel]
	if !found {
		return "", "", false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func releaseMatching(held []*heldLock, expr, unlockName string) {
	// Release the most recent matching acquisition (locks nest LIFO).
	for i := len(held) - 1; i >= 0; i-- {
		h := held[i]
		if !h.released && h.expr == expr && h.unlockName() == unlockName {
			h.released = true
			return
		}
	}
}

func copyHeld(held []*heldLock) []*heldLock {
	out := make([]*heldLock, len(held))
	for i, h := range held {
		c := *h
		out[i] = &c
	}
	return out
}
