package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each directory under testdata is one fixture
// package. Expected diagnostics are written in the fixture source as
//
//	code // want `regex` `regex...`
//
// matching diagnostics reported on that line, or
//
//	// wantbelow `regex`
//
// matching diagnostics reported on the next line — needed for directive
// diagnostics, which land on the //bioopera:allow comment itself, where
// no second comment can sit. Every diagnostic must be expected and every
// expectation must fire.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantQuoted = regexp.MustCompile("`([^`]+)`")

func TestGolden(t *testing.T) {
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run([]*Package{pkg})
			wants := collectWants(t, pkg.Dir)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// collectWants scans the fixture sources for want / wantbelow comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			marker, offset := "", 0
			switch {
			case strings.Contains(line, "// wantbelow "):
				marker, offset = "// wantbelow ", 1
			case strings.Contains(line, "// want "):
				marker, offset = "// want ", 0
			default:
				continue
			}
			rest := line[strings.Index(line, marker)+len(marker):]
			groups := wantQuoted.FindAllStringSubmatch(rest, -1)
			if len(groups) == 0 {
				t.Fatalf("%s:%d: want comment without a `regex`", name, i+1)
			}
			for _, g := range groups {
				re, err := regexp.Compile(g[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", name, i+1, g[1], err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1 + offset, re: re})
			}
		}
	}
	return wants
}
