package lint

import (
	"go/token"
	"sort"
	"strings"
)

// lockorder constructs the global lock-acquisition graph — who takes which
// lock class while already holding another, directly or through any
// resolved call chain — and enforces two things. First, the graph must be
// acyclic: a cycle is a potential deadlock the moment two goroutines enter
// it from different ends. Second, every edge must appear in the sanctioned
// partial order below: the nesting discipline the engine's documentation
// promises, pinned in a table so a new edge is a reviewed decision, not an
// accident. The table itself is asserted against the discovered graph by
// TestSanctionedLockOrder — a sanctioned edge no code exercises is as much
// an error as an unsanctioned one in code.

// sanctionedLockOrder is the sanctioned partial order over lock classes:
// from → the classes it may be held across. A class listing itself
// declares index-ordered self-acquisition (Crash takes every shard in
// ascending index order; no other path holds two shards).
var sanctionedLockOrder = map[string][]string{
	// The instance shard is the engine's outermost lock: a navigation
	// turn emits events (store append + ring publish), touches the
	// dispatcher maps, registers instances (emu), and — in Crash, which
	// holds every shard — drains the per-instance commit gates.
	"core.Engine.shards": {
		"core.Engine.shards", // Crash acquires all shards in ascending index order
		"core.Engine.emu",
		"core.Engine.dmu",
		"core.Instance.gateMu",
		"store.Mem.mu",
		"store.Disk.wmu",
		"store.Disk.gmu",
		"store.Disk.mu",
		"wal.Log.mu",
		"obs.Ring.mu",
		"core.localExec.mu",
		"remote.Server.mu",
		"cluster.Directory.mu",
	},
	// Crash wipes the registry and the dispatcher maps under emu → dmu.
	"core.Engine.emu": {"core.Engine.dmu"},
	// The dispatcher queries executor capacity while holding its queue.
	"core.Engine.dmu": {"cluster.Directory.mu"},
	// A checkpoint flush commits its store batch under the instance's
	// in-order gate.
	"core.Instance.gateMu": {
		"store.Mem.mu", "store.Disk.wmu", "store.Disk.gmu", "store.Disk.mu", "wal.Log.mu",
	},
	// Disk group commit: the leader serializes flushes under wmu, briefly
	// claims the group under gmu, and appends to the WAL under mu.
	"store.Disk.wmu": {"store.Disk.gmu", "store.Disk.mu", "wal.Log.mu"},
	"store.Disk.mu":  {"wal.Log.mu"},
	// Executors reserve directory slots under their own bookkeeping lock.
	"remote.Server.mu":  {"cluster.Directory.mu"},
	"core.localExec.mu": {"cluster.Directory.mu"},
	// Shipper cursor changes re-pin the WAL retention floor.
	"wal.Shipper.mu": {"wal.Log.mu"},
	// The snapshot cadence reads the engine handle under its own lock.
	"core.RuntimeBase.snapMu": {"core.RuntimeBase.waitMu"},
}

// SanctionedLockOrder returns a copy of the sanctioned partial order, for
// the table-exactness test.
func SanctionedLockOrder() map[string][]string {
	out := make(map[string][]string, len(sanctionedLockOrder))
	for k, v := range sanctionedLockOrder {
		out[k] = append([]string(nil), v...)
	}
	return out
}

func sanctionedEdge(from, to string) bool {
	for _, t := range sanctionedLockOrder[from] {
		if t == to {
			return true
		}
	}
	return false
}

// lockEdge is one observed nesting: To acquired while From is held.
type lockEdge struct{ From, To string }

type lockEdgeInfo struct {
	pos token.Pos
	via string // callee the acquisition arrives through, "" when direct
	pkg string // package path of the observing function
}

// discoverLockEdges scans every function with the held-lock scanner and
// records class-level nesting edges, both direct acquisitions and those a
// call's transitive may-acquire set implies. The first witness per edge
// wins; node order is deterministic, so messages are too.
func discoverLockEdges(prog *Program) map[lockEdge]lockEdgeInfo {
	edges := make(map[lockEdge]lockEdgeInfo)
	record := func(e lockEdge, info lockEdgeInfo) {
		if _, ok := edges[e]; !ok {
			edges[e] = info
		}
	}
	for _, n := range prog.nodes {
		node := n
		scanHeld(prog, node, &scanHooks{
			acquire: func(held []*holder, h *holder) {
				if h.class == "" {
					return
				}
				for _, hh := range liveHolders(held) {
					if hh.class == "" {
						continue
					}
					record(lockEdge{hh.class, h.class}, lockEdgeInfo{pos: h.pos, pkg: node.pkg.Path})
				}
			},
			call: func(held []*holder, rc *resolvedCall, pos token.Pos) {
				live := liveHolders(held)
				if len(live) == 0 {
					return
				}
				for _, c := range rc.callees {
					classes := make([]string, 0, len(c.acqAll))
					for cls := range c.acqAll {
						classes = append(classes, cls)
					}
					sort.Strings(classes)
					for _, cls := range classes {
						for _, hh := range live {
							if hh.class == "" {
								continue
							}
							record(lockEdge{hh.class, cls}, lockEdgeInfo{pos: pos, via: c.name, pkg: node.pkg.Path})
						}
					}
				}
			},
		})
	}
	return edges
}

func runLockOrder(mp *ModulePass) {
	all := discoverLockEdges(mp.Prog)

	// Fixture packages check cycles among their own classes; the
	// sanctioned table governs only the real tree.
	real := make(map[lockEdge]lockEdgeInfo)
	fixture := make(map[lockEdge]lockEdgeInfo)
	for e, info := range all {
		if testdataPkg(mp.Prog.classPkg[e.From]) || testdataPkg(mp.Prog.classPkg[e.To]) {
			if strings.Contains(info.pkg, "lint/testdata/lockorder") {
				fixture[e] = info
			}
			continue
		}
		real[e] = info
	}

	inCycle := cyclicEdges(real, true)
	reportCycleEdges(mp, real, inCycle)
	var rest []lockEdge
	for e := range real {
		if !inCycle[e] && !sanctionedEdge(e.From, e.To) {
			rest = append(rest, e)
		}
	}
	sortEdges(rest)
	for _, e := range rest {
		info := real[e]
		via := ""
		if info.via != "" {
			via = " (via call to " + info.via + ")"
		}
		mp.Reportf(info.pos, "lock-order edge %s → %s%s is not in the sanctioned table: add it to sanctionedLockOrder with a justification, or fix the nesting", e.From, e.To, via)
	}

	fixtureCycle := cyclicEdges(fixture, false)
	reportCycleEdges(mp, fixture, fixtureCycle)
}

// cyclicEdges returns the edges on some cycle. Self-edges explicitly
// declared in the sanctioned table (index-ordered acquisition) are skipped
// when honorSanctions is set.
func cyclicEdges(edges map[lockEdge]lockEdgeInfo, honorSanctions bool) map[lockEdge]bool {
	adj := make(map[string][]string)
	skip := func(e lockEdge) bool {
		return honorSanctions && e.From == e.To && sanctionedEdge(e.From, e.To)
	}
	for e := range edges {
		if skip(e) {
			continue
		}
		adj[e.From] = append(adj[e.From], e.To)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	in := make(map[lockEdge]bool)
	for e := range edges {
		if skip(e) {
			continue
		}
		if e.From == e.To || reaches(e.To, e.From) {
			in[e] = true
		}
	}
	return in
}

func reportCycleEdges(mp *ModulePass, edges map[lockEdge]lockEdgeInfo, inCycle map[lockEdge]bool) {
	var list []lockEdge
	for e := range inCycle {
		list = append(list, e)
	}
	sortEdges(list)
	for _, e := range list {
		info := edges[e]
		via := ""
		if info.via != "" {
			via = " (via call to " + info.via + ")"
		}
		mp.Reportf(info.pos, "lock-order cycle: acquiring %s while holding %s%s closes a cycle — a consistent global order is required to prevent deadlock", e.To, e.From, via)
	}
}

func sortEdges(list []lockEdge) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].From != list[j].From {
			return list[i].From < list[j].From
		}
		return list[i].To < list[j].To
	})
}
