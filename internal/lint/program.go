package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The whole-program layer. A Program indexes every function body across
// the loaded packages, resolves a static call-graph approximation (direct
// calls plus class-hierarchy expansion of module-defined interfaces), and
// computes cross-package facts keyed by types.Object: which lock classes a
// function may acquire, whether it may block indefinitely, which
// WaitGroups and channels tie a goroutine to a Close. Because every
// package is type-checked in one Loader universe, a field object like
// Engine.dmu is the *same* types.Object no matter which package the
// reference appears in — that identity is what lets facts flow across
// package boundaries. The module-scope analyzers (lockorder, goroleak,
// blockingsend) run over this instead of one package at a time.
//
// The call graph is an approximation, deliberately: calls through func
// values (callbacks, stored thunks like Launch.Run) are unresolved, and
// interface calls expand only to module-defined implementations. Both
// under-approximate reachability; the invariants these analyzers guard are
// enforced on everything the graph can see, and the graph sees every
// direct call and every Executor/Store/Snapshotter-style dispatch in the
// tree.

// Program is the whole-module view the module-scope analyzers run over.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	// impls maps a module-defined interface method to the module types
	// that implement it (class-hierarchy analysis).
	impls map[*types.Func][]*funcNode

	// classPkg maps a lock class ("core.Engine.dmu") to the import path
	// of the package declaring the field.
	classPkg map[string]string

	// chanAlias unions channel-typed objects connected by assignment, per
	// package: `stop := make(chan struct{}); rb.snapStop = stop` makes the
	// local and the field one channel for goroleak's shutdown proofs.
	chanAlias map[string]*unionFind
}

// funcNode is one function body: a declaration or a function literal.
type funcNode struct {
	pkg  *Package
	name string // display name, e.g. core.(*Engine).dispatch or core.StartSnapshots$1
	body *ast.BlockStmt
	obj  *types.Func  // nil for literals
	lit  *ast.FuncLit // nil for declarations

	// returnsLock is the lock class this function hands out a pointer to
	// (the shardFor pattern), or "".
	returnsLock string
	// varClass maps local variables to the lock class they point at
	// (assigned from a field or a returns-lock call).
	varClass map[types.Object]string

	calls     []*resolvedCall
	callByAST map[*ast.CallExpr]*resolvedCall

	// Direct facts, then their transitive closures over the call graph.
	acqDirect   map[string]token.Pos
	blockDirect *blockFact
	acqAll      map[string]string // lock class → via-callee ("" = acquired here)
	mayBlock    *blockFact

	wgAdd, wgDone, wgWait map[types.Object]bool
	chRecv, chClose       map[types.Object]bool
	goStmts               []*ast.GoStmt
}

// resolvedCall is one call expression with its statically resolved
// callees. An interface call lists every module implementation; an empty
// list means the target is outside the module or a func value.
type resolvedCall struct {
	call    *ast.CallExpr
	label   string // rendered callee for messages
	callees []*funcNode
}

// blockFact is a may-block witness: the primitive operation and the call
// chain that reaches it.
type blockFact struct {
	what  string
	pos   token.Pos
	chain []string
}

func (b *blockFact) describe(fset *token.FileSet) string {
	p := fset.Position(b.pos)
	loc := fmt.Sprintf("%s:%d", shortPath(p.Filename), p.Line)
	if len(b.chain) == 0 {
		return fmt.Sprintf("%s at %s", b.what, loc)
	}
	return fmt.Sprintf("%s at %s via %s", b.what, loc, strings.Join(b.chain, " → "))
}

// shortPath trims a position's filename to its last two path elements.
func shortPath(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lockTrackedPkgs are the packages whose mutex fields become lock classes:
// the concurrent heart of the system. Compute-cache mutexes elsewhere
// (allvsall, darwin) are leaves by construction and stay out of the graph.
var lockTrackedPkgs = map[string]bool{
	"bioopera/internal/core":    true,
	"bioopera/internal/remote":  true,
	"bioopera/internal/obs":     true,
	"bioopera/internal/wal":     true,
	"bioopera/internal/store":   true,
	"bioopera/internal/sched":   true,
	"bioopera/internal/cluster": true,
}

func lockTrackedPkg(path string) bool {
	return lockTrackedPkgs[path] || testdataPkg(path)
}

// buildProgram indexes functions, resolves the call graph, and computes
// facts. Valid blockingsend directives on a blocking operation clear that
// operation as a fact *source* — the suppression then covers every caller
// reached through the call graph, instead of needing one annotation per
// call site — and are marked used so they are not reported stale.
func buildProgram(pkgs []*Package, dirs []*directive) *Program {
	p := &Program{
		Pkgs:      pkgs,
		byObj:     make(map[*types.Func]*funcNode),
		byLit:     make(map[*ast.FuncLit]*funcNode),
		impls:     make(map[*types.Func][]*funcNode),
		classPkg:  make(map[string]string),
		chanAlias: make(map[string]*unionFind),
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.indexFuncs()
	p.buildCHA()
	for _, n := range p.nodes {
		n.returnsLock = p.returnsLockClass(n)
	}
	for _, n := range p.nodes {
		p.collectFacts(n, dirs)
	}
	p.computeMayBlock()
	p.computeAcqAll()
	return p
}

// indexFuncs enumerates every function declaration and literal, in file
// and position order, so all downstream iteration is deterministic.
func (p *Program) indexFuncs() {
	for _, pkg := range p.Pkgs {
		p.chanAlias[pkg.Path] = newUnionFind()
		for _, f := range pkg.Files {
			var stack []string
			litSeq := make(map[string]int)
			ast.Inspect(f, func(an ast.Node) bool {
				switch fn := an.(type) {
				case *ast.FuncDecl:
					if fn.Body == nil {
						return false
					}
					obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
					name := shortPkg(pkg.Path) + "." + fn.Name.Name
					if fn.Recv != nil && len(fn.Recv.List) > 0 {
						name = shortPkg(pkg.Path) + ".(" + types.ExprString(fn.Recv.List[0].Type) + ")." + fn.Name.Name
					}
					n := &funcNode{pkg: pkg, name: name, body: fn.Body, obj: obj}
					p.nodes = append(p.nodes, n)
					if obj != nil {
						p.byObj[obj] = n
					}
					stack = append(stack, name)
					return true
				case *ast.FuncLit:
					parent := shortPkg(pkg.Path)
					if len(stack) > 0 {
						parent = stack[len(stack)-1]
					}
					litSeq[parent]++
					name := fmt.Sprintf("%s$%d", parent, litSeq[parent])
					n := &funcNode{pkg: pkg, name: name, body: fn.Body, lit: fn}
					p.nodes = append(p.nodes, n)
					p.byLit[fn] = n
					stack = append(stack, name)
					return true
				}
				return true
			})
		}
	}
}

// buildCHA maps every module-defined interface method to the module types
// implementing it, so Executor.Launch-style dispatch resolves to the sim,
// local, and remote executors at once.
func (p *Program) buildCHA() {
	var ifaces []*types.Interface
	var ifaceObjs []map[string]*types.Func // method name → interface method object
	var concrete []types.Type
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() == 0 {
					continue
				}
				methods := make(map[string]*types.Func, iface.NumMethods())
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					methods[m.Name()] = m
				}
				ifaces = append(ifaces, iface)
				ifaceObjs = append(ifaceObjs, methods)
				continue
			}
			concrete = append(concrete, named)
		}
	}
	for _, ct := range concrete {
		pt := types.NewPointer(ct)
		for i, iface := range ifaces {
			var recv types.Type
			switch {
			case types.Implements(ct, iface):
				recv = ct
			case types.Implements(pt, iface):
				recv = pt
			default:
				continue
			}
			for name, im := range ifaceObjs[i] {
				obj, _, _ := types.LookupFieldOrMethod(recv, true, im.Pkg(), name)
				fn, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				node, ok := p.byObj[fn]
				if !ok {
					continue
				}
				dup := false
				for _, have := range p.impls[im] {
					if have == node {
						dup = true
					}
				}
				if !dup {
					p.impls[im] = append(p.impls[im], node)
				}
			}
		}
	}
}

// returnsLockClass recognizes the shardFor pattern: a function whose every
// return hands out a pointer into one mutex field, so `mu :=
// e.shardFor(id); mu.Lock()` acquires the class of Engine.shards.
func (p *Program) returnsLockClass(n *funcNode) string {
	if n.obj == nil {
		return ""
	}
	sig, ok := n.obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return ""
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok || !mutexType(ptr.Elem()) {
		return ""
	}
	class := ""
	ok = true
	ast.Inspect(n.body, func(an ast.Node) bool {
		ret, isRet := an.(*ast.ReturnStmt)
		if !isRet || len(ret.Results) != 1 {
			return true
		}
		c := p.fieldClass(n.pkg, ret.Results[0])
		if c == "" || (class != "" && class != c) {
			ok = false
			return false
		}
		class = c
		return true
	})
	if !ok {
		return ""
	}
	return class
}

// mutexType reports whether t is (or contains, for slices and arrays) a
// sync.Mutex or sync.RWMutex.
func mutexType(t types.Type) bool {
	s := types.TypeString(t, nil)
	return strings.Contains(s, "sync.Mutex") || strings.Contains(s, "sync.RWMutex")
}

// fieldClass resolves an expression to a lock class when it denotes a
// mutex-typed field of a named type in a lock-tracked package:
// `&e.shards[i]` → "core.Engine.shards".
func (p *Program) fieldClass(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		default:
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return ""
			}
			obj := resolveObj(pkg.Info, sel)
			field, ok := obj.(*types.Var)
			if !ok || !field.IsField() || !mutexType(field.Type()) {
				return ""
			}
			if field.Pkg() == nil || !lockTrackedPkg(field.Pkg().Path()) {
				return ""
			}
			t := pkg.Info.TypeOf(sel.X)
			for {
				if ptr, isPtr := t.(*types.Pointer); isPtr {
					t = ptr.Elem()
					continue
				}
				break
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			class := shortPkg(field.Pkg().Path()) + "." + named.Obj().Name() + "." + field.Name()
			p.classPkg[class] = field.Pkg().Path()
			return class
		}
	}
}

// classOf resolves the receiver of a Lock/Unlock call to its lock class:
// a field chain directly, or a local variable traced to a field or a
// returns-lock call via the node's varClass map.
func (p *Program) classOf(n *funcNode, e ast.Expr) string {
	if c := p.fieldClass(n.pkg, e); c != "" {
		return c
	}
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := resolveObj(n.pkg.Info, id); obj != nil {
			return n.varClass[obj]
		}
	}
	return ""
}

// resolveObj resolves an expression to the object it denotes: a variable,
// a field, or nil.
func resolveObj(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return resolveObj(info, x.X)
		}
	case *ast.StarExpr:
		return resolveObj(info, x.X)
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return obj
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// collectFacts walks one function body (not descending into nested
// literals — those are their own nodes) gathering call sites, lock
// acquisitions, blocking operations, and the WaitGroup/channel facts
// goroleak needs.
func (p *Program) collectFacts(n *funcNode, dirs []*directive) {
	info := n.pkg.Info
	n.varClass = make(map[types.Object]string)
	n.callByAST = make(map[*ast.CallExpr]*resolvedCall)
	n.acqDirect = make(map[string]token.Pos)
	n.wgAdd = make(map[types.Object]bool)
	n.wgDone = make(map[types.Object]bool)
	n.wgWait = make(map[types.Object]bool)
	n.chRecv = make(map[types.Object]bool)
	n.chClose = make(map[types.Object]bool)
	alias := p.chanAlias[n.pkg.Path]

	// Calls launched with `go` run on another goroutine, not here: they
	// must not contribute to this function's synchronous may-block or
	// may-acquire facts (goroleak judges them separately).
	goCalls := make(map[*ast.CallExpr]bool)
	walkOwn(n.body, func(an ast.Node) {
		if g, ok := an.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
	})

	walkOwn(n.body, func(an ast.Node) {
		switch x := an.(type) {
		case *ast.AssignStmt:
			p.recordAssigns(n, alias, x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, id := range x.Names {
				lhs = append(lhs, id)
			}
			p.recordAssigns(n, alias, lhs, x.Values)
		case *ast.GoStmt:
			n.goStmts = append(n.goStmts, x)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.recordChan(n, n.chRecv, alias, x.X)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					p.recordChan(n, n.chRecv, alias, x.X)
				}
			}
		case *ast.CallExpr:
			p.recordCall(n, alias, x, goCalls[x])
		}
	})

	// Blocking ops and direct acquisitions come from the held-lock
	// scanner, which knows that a select with a default never blocks.
	scanHeld(p, n, &scanHooks{
		acquire: func(_ []*holder, h *holder) {
			if h.class != "" {
				if _, ok := n.acqDirect[h.class]; !ok {
					n.acqDirect[h.class] = h.pos
				}
			}
		},
		blocking: func(_ []*holder, what string, pos token.Pos) {
			if n.blockDirect != nil {
				return
			}
			if clearBlockFact(p.Fset, pos, n, dirs) {
				return
			}
			n.blockDirect = &blockFact{what: what, pos: pos}
		},
	})
}

// clearBlockFact checks for a //bioopera:allow blockingsend directive on
// the blocking operation itself: that clears the fact at its source, so
// the one annotation covers every caller the fact would have propagated
// to. The directive counts as used.
func clearBlockFact(fset *token.FileSet, pos token.Pos, n *funcNode, dirs []*directive) bool {
	if fset == nil {
		return false
	}
	position := fset.Position(pos)
	cleared := false
	for _, d := range dirs {
		if !d.valid || d.analyzer != "blockingsend" || d.pos.Filename != position.Filename {
			continue
		}
		if d.fileWide || d.pos.Line == position.Line || d.pos.Line == position.Line-1 {
			d.used = true
			cleared = true
		}
	}
	return cleared
}

// recordAssigns unions channel aliases and traces lock-pointer locals.
func (p *Program) recordAssigns(n *funcNode, alias *unionFind, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return // multi-value call: nothing to trace
	}
	info := n.pkg.Info
	for i, l := range lhs {
		r := rhs[i]
		lobj := resolveObj(info, l)
		if lobj == nil {
			continue
		}
		if t := info.TypeOf(l); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if robj := resolveObj(info, r); robj != nil {
					alias.union(lobj, robj)
				}
			}
		}
		if cls := p.rhsLockClass(n, r); cls != "" {
			n.varClass[lobj] = cls
		}
	}
}

// rhsLockClass resolves an assignment RHS to a lock class: a field chain,
// an already-traced local, or a call to a returns-lock function.
func (p *Program) rhsLockClass(n *funcNode, r ast.Expr) string {
	if cls := p.classOf(n, r); cls != "" {
		return cls
	}
	call, ok := ast.Unparen(r).(*ast.CallExpr)
	if !ok {
		return ""
	}
	for _, callee := range p.calleesOf(n.pkg, call) {
		if callee.returnsLock != "" {
			return callee.returnsLock
		}
	}
	return ""
}

// recordChan notes a receive or close on a channel object.
func (p *Program) recordChan(n *funcNode, set map[types.Object]bool, alias *unionFind, e ast.Expr) {
	if obj := resolveObj(n.pkg.Info, e); obj != nil {
		alias.add(obj)
		set[obj] = true
	}
}

// recordCall resolves one call's callees and the WaitGroup/close facts it
// carries. goCall marks a `go` statement's call: its facts (Done pairing,
// closes) still register, but it is not a synchronous call edge.
func (p *Program) recordCall(n *funcNode, alias *unionFind, call *ast.CallExpr, goCall bool) {
	info := n.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && info.Uses[id] != nil && info.Uses[id].Pkg() == nil {
		if len(call.Args) == 1 {
			p.recordChan(n, n.chClose, alias, call.Args[0])
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, found := info.Selections[sel]; found {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				recv := types.TypeString(s.Recv(), nil)
				if strings.Contains(recv, "sync.WaitGroup") {
					if obj := resolveObj(info, sel.X); obj != nil {
						switch sel.Sel.Name {
						case "Add":
							n.wgAdd[obj] = true
						case "Done":
							n.wgDone[obj] = true
						case "Wait":
							n.wgWait[obj] = true
						}
					}
				}
			}
		}
	}
	if goCall {
		return
	}
	rc := &resolvedCall{call: call, label: types.ExprString(call.Fun), callees: p.calleesOf(n.pkg, call)}
	n.calls = append(n.calls, rc)
	n.callByAST[call] = rc
}

// calleesOf statically resolves a call: direct function or method calls
// map to their body; interface method calls expand to every module
// implementation; everything else (func values, external code) resolves to
// nothing.
func (p *Program) calleesOf(pkg *Package, call *ast.CallExpr) []*funcNode {
	info := pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return p.staticCallee(fn)
		}
	case *ast.FuncLit:
		if n, ok := p.byLit[fun]; ok {
			return []*funcNode{n}
		}
	case *ast.SelectorExpr:
		if s, found := info.Selections[fun]; found {
			if fn, ok := s.Obj().(*types.Func); ok {
				if isInterfaceMethod(fn) {
					return p.impls[fn]
				}
				return p.staticCallee(fn)
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return p.staticCallee(fn)
		}
	}
	return nil
}

func (p *Program) staticCallee(fn *types.Func) []*funcNode {
	if n, ok := p.byObj[fn]; ok {
		return []*funcNode{n}
	}
	return nil
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// computeMayBlock propagates blocking witnesses up the call graph to a
// fixed point: a function may block if it blocks directly or calls (along
// any resolved edge) a function that may.
func (p *Program) computeMayBlock() {
	for _, n := range p.nodes {
		n.mayBlock = n.blockDirect
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			if n.mayBlock != nil {
				continue
			}
		calls:
			for _, rc := range n.calls {
				for _, c := range rc.callees {
					if c.mayBlock == nil {
						continue
					}
					chain := append([]string{c.name}, c.mayBlock.chain...)
					if len(chain) > 4 {
						chain = chain[:4]
					}
					n.mayBlock = &blockFact{what: c.mayBlock.what, pos: c.mayBlock.pos, chain: chain}
					changed = true
					break calls
				}
			}
		}
	}
}

// computeAcqAll closes the may-acquire lock-class sets over the call
// graph, recording the first callee each class arrives through.
func (p *Program) computeAcqAll() {
	for _, n := range p.nodes {
		n.acqAll = make(map[string]string, len(n.acqDirect))
		for cls := range n.acqDirect {
			n.acqAll[cls] = ""
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			for _, rc := range n.calls {
				for _, c := range rc.callees {
					for cls := range c.acqAll {
						if _, ok := n.acqAll[cls]; !ok {
							n.acqAll[cls] = c.name
							changed = true
						}
					}
				}
			}
		}
	}
}

// unionFind is a tiny disjoint-set over types.Object, for channel
// aliasing.
type unionFind struct {
	parent map[types.Object]types.Object
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[types.Object]types.Object)} }

func (u *unionFind) add(o types.Object) {
	if _, ok := u.parent[o]; !ok {
		u.parent[o] = o
	}
}

func (u *unionFind) find(o types.Object) types.Object {
	u.add(o)
	for u.parent[o] != o {
		u.parent[o] = u.parent[u.parent[o]]
		o = u.parent[o]
	}
	return o
}

func (u *unionFind) union(a, b types.Object) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// walkOwn visits every node in a body except nested function literals,
// which are separate funcNodes with their own walks.
func walkOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(an ast.Node) bool {
		if _, isLit := an.(*ast.FuncLit); isLit {
			return false
		}
		if an != nil {
			visit(an)
		}
		return true
	})
}
