package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runMapRange guards trace determinism in the deterministic packages: map
// iteration order varies run to run, so a range over a map whose body does
// anything order-sensitive — calls out (events, emits, recursion), sends,
// returns — would make replayed traces diverge. The repo-wide idiom is to
// collect keys, sort, then iterate the slice; loop bodies that only
// accumulate (append, map/field assignment, delete, counting) are order-
// independent and stay legal, which is exactly what the collect step of
// that idiom does.
func runMapRange(p *Pass) {
	if !deterministicPkg(p.Pkg.Path()) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if bad, what := p.orderSensitive(rs.Body); bad {
				p.Reportf(rs.For, "range over map %s has an order-sensitive body (%s): iterate sorted keys to keep traces bit-identical", types.ExprString(rs.X), what)
			}
			return true
		})
	}
}

// orderSensitive reports whether a loop body observes iteration order:
// any call (other than builtins and conversions — calls may transitively
// emit events), channel operation, return, or goroutine/defer launch makes
// the per-iteration effect ordering observable.
func (p *Pass) orderSensitive(body *ast.BlockStmt) (bad bool, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if bad {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if p.isPureBuiltinOrConversion(x) {
				return true
			}
			bad, what = true, "calls "+callName(x)
			return false
		case *ast.SendStmt:
			bad, what = true, "channel send"
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				bad, what = true, "channel receive"
				return false
			}
		case *ast.SelectStmt:
			bad, what = true, "select"
			return false
		case *ast.ReturnStmt:
			bad, what = true, "returns mid-iteration"
			return false
		case *ast.GoStmt:
			bad, what = true, "spawns a goroutine"
			return false
		case *ast.DeferStmt:
			bad, what = true, "defers"
			return false
		case *ast.FuncLit:
			// A literal merely defined (not called) in the body does not
			// run per-iteration in loop order; calls to it are caught as
			// calls.
			return false
		}
		return true
	})
	return bad, what
}

// isPureBuiltinOrConversion accepts append/len/cap/delete/copy/make/min/max
// and type conversions: they neither emit nor observe ordering.
func (p *Pass) isPureBuiltinOrConversion(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return true // conversion
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := p.Info.Uses[id].(*types.Builtin); ok {
		return true
	}
	return false
}
