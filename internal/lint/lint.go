// Package lint is biooperalint: a stdlib-only static-analysis framework
// enforcing the project's dependability invariants — the rules the Go
// compiler cannot see but the paper's guarantees rest on. Traces must be
// bit-identical across replays, so deterministic packages may not read the
// wall clock (walltime) or iterate maps in observable order (maprange);
// recoverability means persistence errors may never be silently dropped
// (droppederr); and the sharded engine must not block or leak while
// holding its locks (locksafe). Violations are either fixed or suppressed
// in place with a //bioopera:allow directive, which must name a real
// analyzer and carry a reason (directive).
//
// The framework is deliberately small: an Analyzer is a function over a
// type-checked package, diagnostics are positions plus messages, and the
// suppression directive is resolved after all analyzers ran so stale
// directives are themselves diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and //bioopera:allow
	// directives.
	Name string
	// Doc is the one-line invariant the analyzer guards.
	Doc string
	// Run reports violations found in the pass's package.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// DirectiveName is the analyzer name under which directive-misuse
// diagnostics (unknown analyzer, missing reason, stale suppression) are
// reported. It is a valid target of //bioopera:allow in name checks but
// its own diagnostics cannot be suppressed.
const DirectiveName = "directive"

// Analyzers returns the per-package analyzer suite, in running order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "walltime", Doc: "deterministic packages must use the sim virtual clock, never the wall clock", Run: runWalltime},
		{Name: "droppederr", Doc: "store/WAL/persist/Close errors must flow somewhere, never be dropped", Run: runDroppedErr},
		{Name: "locksafe", Doc: "no blocking operations or leaked locks inside internal/core critical sections", Run: runLockSafe},
		{Name: "maprange", Doc: "trace-order-sensitive code must not iterate maps unsorted", Run: runMapRange},
		{Name: "hotjson", Doc: "persist/WAL hot-path functions must use the binary codec, never encoding/json", Run: runHotJSON},
	}
}

// ModuleAnalyzer is one invariant check over the whole loaded program: it
// sees the cross-package fact layer and call graph instead of one package
// at a time.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass carries the program through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Prog     *Program

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModuleAnalyzers returns the whole-program analyzer suite, in running
// order.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		{Name: "lockorder", Doc: "the global lock-acquisition graph must stay acyclic and within the sanctioned partial order", Run: runLockOrder},
		{Name: "goroleak", Doc: "every goroutine in a long-lived package needs a provable shutdown path tied to a Close", Run: runGoroLeak},
		{Name: "blockingsend", Doc: "no blocking channel operation or network write may be reachable while a lock is held", Run: runBlockingSend},
	}
}

// KnownAnalyzerNames lists every name a //bioopera:allow directive may
// reference.
func KnownAnalyzerNames() []string {
	names := []string{DirectiveName}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	for _, a := range ModuleAnalyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Run executes the full analyzer suite — per-package passes plus the
// whole-program passes over the cross-package fact layer — resolves
// //bioopera:allow directives, and returns the surviving diagnostics plus
// any directive-misuse diagnostics, sorted by position.
func Run(pkgs []*Package) []Diagnostic {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   collect,
			}
			a.Run(pass)
		}
	}

	// Directives are collected before the program builds: a blockingsend
	// directive on a blocking operation clears the fact at its source
	// (and is marked used there), so one annotation covers every caller.
	var dirs []*directive
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, misuse := collectDirectives(pkg.Fset, pkg.Files)
		dirs = append(dirs, ds...)
		diags = append(diags, misuse...)
	}
	prog := buildProgram(pkgs, dirs)
	for _, a := range ModuleAnalyzers() {
		a.Run(&ModulePass{Analyzer: a, Prog: prog, report: collect})
	}

	kept, stale := applyDirectives(raw, dirs)
	diags = append(diags, kept...)
	diags = append(diags, stale...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// deterministicPkg reports whether a package must stay replay-identical:
// the simulation kernel, the scheduler, the engine, the persistence layer
// (WAL and store — their contents are replayed on recovery and shipped to
// standbys, so wall-clock leakage would diverge replicas), and the
// all-vs-all workload. Lint testdata fixtures are always in scope so
// golden tests exercise every analyzer.
func deterministicPkg(path string) bool {
	switch path {
	case "bioopera/internal/sim",
		"bioopera/internal/sched",
		"bioopera/internal/core",
		"bioopera/internal/obs",
		"bioopera/internal/wal",
		"bioopera/internal/store",
		"bioopera/internal/codec",
		"bioopera/internal/fed",
		"bioopera/internal/allvsall":
		return true
	}
	return testdataPkg(path)
}

// testdataPkg reports whether path is a lint golden-test fixture.
func testdataPkg(path string) bool {
	return strings.Contains(path, "lint/testdata/")
}
