// Package goroleak is a biooperalint golden fixture: goroutines in
// long-lived packages need a provable shutdown path.
package goroleak

import "sync"

type S struct {
	wg   sync.WaitGroup
	stop chan struct{}
	done chan struct{}
	fn   func()
}

// No WaitGroup, no channel: nothing ties this goroutine to a shutdown.
func (s *S) leak() {
	go func() { // want `goroutine launched here has no provable shutdown path`
		for {
			run()
		}
	}()
}

// A func-value target cannot be analyzed at all.
func (s *S) dynamic() {
	go s.fn() // want `goroutine target cannot be resolved statically`
}

// Proof 1: WaitGroup pairing — Add at the launch, Done in the body, Wait
// in Close.
func (s *S) wgPaired() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		run()
	}()
}

// Proof 2: quit channel — the body parks on a channel Close closes.
func (s *S) quitChannel() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			default:
				run()
			}
		}
	}()
}

// Proof 3: completion channel — the body closes a channel Close receives,
// resolved through the named-method target.
func (s *S) completion() {
	go s.serve()
}

func (s *S) serve() {
	run()
	close(s.done)
}

func (s *S) Close() {
	close(s.stop)
	<-s.done
	s.wg.Wait()
}

// A deliberate fire-and-forget goroutine carries a reasoned suppression.
func (s *S) oneShot(out chan int) {
	//bioopera:allow goroleak fixture: one-shot delivery with nothing to park on; the send target is drained by construction
	go func() {
		out <- 1
	}()
}

func run() {}
