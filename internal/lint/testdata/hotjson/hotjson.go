// Package hotjson is a biooperalint golden fixture: encoding/json use
// inside persist hot-path functions. The fixture package stands in for
// internal/core, so the hot-function names below match the real engine's
// checkpoint flusher.
package hotjson

import (
	"bytes"
	"encoding/json"
	enc "encoding/json"
)

type record struct {
	ID string `json:"id"`
}

// flushCkpt is a hot-path name: reflection-based marshaling is banned.
func flushCkpt(r record) ([]byte, error) {
	return json.Marshal(r) // want `json\.Marshal in persist hot-path function flushCkpt`
}

// encodeCkpt catches aliased imports too.
func encodeCkpt(r record) ([]byte, error) {
	return enc.Marshal(r) // want `json\.Marshal in persist hot-path function encodeCkpt`
}

// persist catches streaming encoders as well as one-shot marshals.
func persist(r record) error {
	var buf bytes.Buffer
	return json.NewEncoder(&buf).Encode(r) // want `json\.NewEncoder in persist hot-path function persist`
}

// decodeRecord is not a hot-path name: recovery's dual-format JSON
// fallback is legal — the invariant bans json on the write path, not the
// read-old-stores path.
func decodeRecord(data []byte) (record, error) {
	var r record
	err := json.Unmarshal(data, &r)
	return r, err
}

// archive documents a sanctioned exception; the directive silences it.
func archive(r record) ([]byte, error) {
	//bioopera:allow hotjson fixture: exercising the suppression path
	return json.Marshal(r)
}
