// Package locksafe is a biooperalint golden fixture: blocking operations
// and leaked locks inside critical sections.
package locksafe

import "sync"

type guarded struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	ch  chan int
	n   int
}

// blockingSend sends on a channel inside the critical section.
func (g *guarded) blockingSend() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

// leak never releases the lock.
func (g *guarded) leak() {
	g.mu.Lock() // want `g\.mu\.Lock\(\) has no matching Unlock on every path`
	g.n++
}

// earlyReturn releases on the fall-through path only.
func (g *guarded) earlyReturn(b bool) {
	g.mu.Lock()
	if b {
		return // want `returns while g\.mu is still locked`
	}
	g.mu.Unlock()
}

// good pairs the lock with a deferred unlock.
func (g *guarded) good() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}

// reads pairs a read lock with its deferred read unlock.
func (g *guarded) reads() int {
	g.rmu.RLock()
	defer g.rmu.RUnlock()
	return g.n
}

// waits uses sync.Cond: releasing the mutex while asleep is the
// condition-variable contract, not a blocked critical section.
func (g *guarded) waits(c *sync.Cond) {
	c.L.Lock()
	for g.n == 0 {
		c.Wait()
	}
	c.L.Unlock()
}

// allowed documents a send that cannot block by construction.
func (g *guarded) allowed() {
	g.mu.Lock()
	//bioopera:allow locksafe fixture: the channel is buffered and drained by construction
	g.ch <- 1
	g.mu.Unlock()
}
