// Package blockingsend is a biooperalint golden fixture: no blocking
// operation may be reachable — directly or through a call chain — while a
// lock is held.
package blockingsend

import "sync"

type T struct {
	mu sync.Mutex
	c  chan int
}

// A blocking send directly inside the critical section.
func (t *T) direct() {
	t.mu.Lock()
	t.c <- 1 // want `channel send while holding blockingsend\.T\.mu`
	t.mu.Unlock()
}

// The same hazard one call away: helper blocks, and the fact propagates to
// this locked call site.
func (t *T) indirect() {
	t.mu.Lock()
	t.helper() // want `call to blockingsend\.\(\*T\)\.helper while holding blockingsend\.T\.mu may block indefinitely`
	t.mu.Unlock()
}

func (t *T) helper() {
	<-t.c
}

// Negative: the send happens after the lock is released.
func (t *T) after() {
	t.mu.Lock()
	t.mu.Unlock()
	t.c <- 2
}

// Negative: a select with a default clause never blocks.
func (t *T) try() {
	t.mu.Lock()
	select {
	case t.c <- 3:
	default:
	}
	t.mu.Unlock()
}

// Suppressed at the fact source: the one annotation on the blocking
// operation clears the witness for every caller, locked or not.
func (t *T) cleared() {
	t.mu.Lock()
	t.bounded()
	t.mu.Unlock()
}

func (t *T) bounded() {
	//bioopera:allow blockingsend fixture: the wait is bounded by construction — the peer always closes the channel
	<-t.c
}
