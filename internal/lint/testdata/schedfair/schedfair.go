// Package schedfair is a biooperalint golden fixture: the determinism
// invariants the scheduler subsystem must keep now that internal/sched
// is in the deterministic set. A scheduler that reads the wall clock or
// iterates tenant maps in hash order would break replay-identical
// dispatch traces.
package schedfair

import (
	"sort"
	"time"
)

type job struct {
	tenant   string
	enqueued time.Time
}

func dispatch(job) {}

// badStamp stamps arrival from the wall clock; enqueue times must come
// from the injected simulation clock or dispatch order drifts on replay.
func badStamp(j *job) {
	j.enqueued = time.Now() // want `time\.Now reads the wall clock`
}

// badSweep paces preemption sweeps against the wall clock.
func badSweep() {
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
}

// badFairShare dispatches straight out of a tenant-map range: hash order
// decides who runs first, so two identical runs diverge.
func badFairShare(queues map[string][]job) {
	for _, q := range queues { // want `range over map queues has an order-sensitive body`
		if len(q) > 0 {
			dispatch(q[0])
		}
	}
}

// goodFairShare is the repo idiom: collect tenants, sort, then walk the
// slice — merged order depends only on data, never on the hash seed.
func goodFairShare(queues map[string][]job) {
	tenants := make([]string, 0, len(queues))
	for t := range queues {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		if q := queues[t]; len(q) > 0 {
			dispatch(q[0])
		}
	}
}

// depth only accumulates; order-independent bodies stay legal.
func depth(queues map[string][]job) int {
	var n int
	for _, q := range queues {
		n += len(q)
	}
	return n
}

// allowedClock documents a sanctioned read for operator-facing logs that
// never feed back into scheduling decisions.
func allowedClock() time.Time {
	//bioopera:allow walltime fixture: log timestamp, never reaches a dispatch decision
	return time.Now()
}
