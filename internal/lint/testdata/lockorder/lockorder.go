// Package lockorder is a biooperalint golden fixture: inconsistent lock
// nesting across functions must be reported as a potential-deadlock cycle.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab and ba together close a cycle: A.mu → B.mu here, B.mu → A.mu below.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: acquiring lockorder\.B\.mu while holding lockorder\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle: acquiring lockorder\.A\.mu while holding lockorder\.B\.mu`
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// Consistent nesting: every path takes C.mu before D.mu — no cycle, no
// report, including the edge arriving through a call.
func cd(c *C, d *D) {
	c.mu.Lock()
	lockD(d)
	d.mu.Unlock()
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// A known, reviewed cycle can be suppressed edge by edge.
func ef(e *E, f *F) {
	e.mu.Lock()
	//bioopera:allow lockorder fixture: both orders are protected by an outer gate in the imagined caller
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func fe(e *E, f *F) {
	f.mu.Lock()
	//bioopera:allow lockorder fixture: both orders are protected by an outer gate in the imagined caller
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}
