// Package maprange is a biooperalint golden fixture: order-sensitive map
// iteration in a deterministic package.
package maprange

import "sort"

func emit(string) {}

// bad calls out of the loop body, making iteration order observable.
func bad(m map[string]int) {
	for k := range m { // want `range over map m has an order-sensitive body`
		emit(k)
	}
}

// good is the repo idiom: collect keys, sort, then iterate the slice.
func good(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k)
	}
}

// counting only accumulates; order-independent bodies stay legal.
func counting(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// allowed documents an emission that provably never reaches the trace.
func allowed(m map[string]int) {
	//bioopera:allow maprange fixture: emission order does not reach the trace
	for k := range m {
		emit(k)
	}
}
