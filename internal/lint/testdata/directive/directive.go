// Package directive is a biooperalint golden fixture: misuse of the
// //bioopera:allow suppression directive. Directive diagnostics land on
// the directive's own line, so these cases use the harness's
// `// wantbelow` form on the line above.
package directive

import "time"

// sanctioned carries a valid, used suppression: nothing is reported.
func sanctioned() time.Time {
	//bioopera:allow walltime fixture: this wall-clock read is the point
	return time.Now()
}

// reasonless omits the reason, so the directive is rejected and the
// violation it meant to excuse survives.
func reasonless() {
	// wantbelow `bioopera:allow needs an analyzer name and a reason`
	//bioopera:allow walltime
	time.Sleep(0) // want `time\.Sleep reads the wall clock`
}

// misnamed names an analyzer that does not exist.
func misnamed() {
	// wantbelow `bioopera:allow names unknown analyzer "wallclock"`
	//bioopera:allow wallclock the analyzer is called walltime
	time.Sleep(0) // want `time\.Sleep reads the wall clock`
}

// stale holds a directive that suppresses nothing: it is itself
// reported, so annotations cannot outlive the code they excused.
func stale() {
	// wantbelow `stale suppression: no droppederr diagnostic here`
	//bioopera:allow droppederr nothing below drops an error
}
