// Package droppederr is a biooperalint golden fixture: discarded
// persistence errors. Everything this package exports is monitored (its
// import path matches the analyzer's store/WAL rule), as are Close/Sync
// by name.
package droppederr

type file struct{}

func (file) Close() error { return nil }

func (file) Sync() error { return nil }

func persistMeta() error { return nil }

// bare drops a teardown error on the floor.
func bare() {
	var f file
	f.Close() // want `f\.Close discards its error`
}

// blank hides the error behind the blank identifier.
func blank() {
	_ = persistMeta() // want `persistMeta assigns its error to _`
}

// deferred teardown is legal: there is no caller left to inform.
func deferred() error {
	var f file
	defer f.Close()
	return f.Sync()
}

// handled routes the error to the caller.
func handled() error {
	var f file
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// allowed is a documented best-effort teardown.
func allowed() {
	var f file
	//bioopera:allow droppederr fixture: double-close on a failure path is best-effort
	f.Close()
}
