// The clock-adapter exception: a function declaring a sim.Clock parameter
// is exempt from the walltime rule for its whole body, nested closures
// included — it reads virtual time when given a clock and may fall back to
// the wall clock only when handed nil (the shape of obs.NowFunc).
// Functions without such a parameter stay flagged.

package walltime

import (
	"time"

	"bioopera/internal/sim"
)

// nowFunc mirrors obs.NowFunc: no directive needed.
func nowFunc(c sim.Clock) func() sim.Time {
	if c != nil {
		return c.Now
	}
	start := time.Now()
	return func() sim.Time { return sim.Time(time.Since(start)) }
}

// notAClock takes only a duration; the exception does not apply.
func notAClock(d time.Duration) time.Time {
	_ = d
	return time.Now() // want `time\.Now reads the wall clock`
}

// simTimeParam proves a sim.Time parameter is not a sim.Clock.
func simTimeParam(t sim.Time) time.Time {
	_ = t
	return time.Now() // want `time\.Now reads the wall clock`
}
