// Package walltime is a biooperalint golden fixture: wall-clock reads in
// a deterministic package. The `// want` comments are matched by the
// golden test harness in internal/lint.
package walltime

import "time"

// bad reads the wall clock directly.
func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// sleeps blocks on the wall clock.
func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// tickers schedule against the wall clock.
func tickers() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// good uses durations only: the invariant bans clocks, not units.
func good() time.Duration {
	d := 2 * time.Second
	return d.Round(time.Millisecond)
}

// allowed documents a sanctioned read; the directive silences it.
func allowed() time.Time {
	//bioopera:allow walltime fixture: this wall-clock read is the point
	return time.Now()
}
