package lint

import (
	"path/filepath"
	"testing"
)

// declaredOnlyEdges are sanctioned edges the linear scanner cannot witness
// because the acquisition is loop-carried: Crash takes every shard in
// ascending index order inside one loop (with deferred unlocks), then
// drains each instance's commit gate while still holding them all. Neither
// nesting appears as two statements the branch-copying walk sees together,
// so both are declared here and exempt from the "every sanctioned edge is
// exercised" direction below.
var declaredOnlyEdges = map[lockEdge]bool{
	{From: "core.Engine.shards", To: "core.Engine.shards"}:   true,
	{From: "core.Engine.shards", To: "core.Instance.gateMu"}: true,
}

// TestSanctionedLockOrder asserts the sanctioned table is exactly the
// discovered lock-acquisition graph — an unsanctioned edge in code fails
// the lint run, and a sanctioned edge no code exercises fails here, so the
// table can neither rot nor sprawl — and that the table itself is acyclic.
func TestSanctionedLockOrder(t *testing.T) {
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	prog := buildProgram(pkgs, nil)
	discovered := discoverLockEdges(prog)

	sanctioned := make(map[lockEdge]bool)
	for from, tos := range sanctionedLockOrder {
		for _, to := range tos {
			sanctioned[lockEdge{From: from, To: to}] = true
		}
	}

	for e, info := range discovered {
		if !sanctioned[e] {
			t.Errorf("discovered lock-order edge %s → %s (at %s) is not in sanctionedLockOrder", e.From, e.To, prog.Fset.Position(info.pos))
		}
	}
	for e := range sanctioned {
		if _, found := discovered[e]; !found && !declaredOnlyEdges[e] {
			t.Errorf("sanctioned lock-order edge %s → %s is not exercised by any code path: remove it from the table", e.From, e.To)
		}
	}

	// The partial order must be acyclic (self-edges declared in
	// declaredOnlyEdges stand for index-ordered acquisition, not nesting).
	adj := make(map[string][]string)
	for from, tos := range sanctionedLockOrder {
		for _, to := range tos {
			if from == to && declaredOnlyEdges[lockEdge{From: from, To: to}] {
				continue
			}
			adj[from] = append(adj[from], to)
		}
	}
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(string) bool
	visit = func(n string) bool {
		if state[n] == 1 {
			return false
		}
		if state[n] == 2 {
			return true
		}
		state[n] = 1
		for _, m := range adj[n] {
			if !visit(m) {
				return false
			}
		}
		state[n] = 2
		return true
	}
	for from := range adj {
		if !visit(from) {
			t.Errorf("sanctionedLockOrder contains a cycle through %s", from)
			break
		}
	}
}
