package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotJSONFuncs names the persist/WAL hot-path functions per package:
// the code that runs on every activity completion (checkpoint encode and
// commit) or every replicated frame. PR 10 moved these paths onto the
// binary codec — reflection-based encoding/json marshaling must never
// creep back in, or the 0-allocs/record budget and the ≥2× marshal
// speedup silently rot. Cold paths (recovery's dual-format fallback,
// snapshot files, the ship protocol envelope, CLI rendering) may use
// encoding/json freely: the format boundary, not the import, is the
// invariant.
var hotJSONFuncs = map[string]map[string]bool{
	"bioopera/internal/core": {
		"persist":       true, // per-activity checkpoint assembly
		"archive":       true, // terminal-instance snapshot + history move
		"snapshotScope": true, // dirty-scope DTO capture
		"encodeCkpt":    true, // record encode (the codec call site)
		"flushCkpt":     true, // batch assembly + store commit
		"remarkCkpt":    true, // failed-batch re-marking
	},
	"bioopera/internal/store": {
		"encodeWALRecord": true, // WAL frame encode
		"append":          true, // per-op WAL append
		"commit":          true, // group-commit enqueue
		"flushGroup":      true, // group-commit leader flush
		"Put":             true,
		"Batch":           true,
		"AppendEvent":     true,
		"applyShipped":    true, // standby replay of shipped frames
	},
	"bioopera/internal/wal": {
		"Append":      true,
		"AppendBatch": true,
	},
}

// hotFuncsFor resolves the banned-function set for a package. Golden
// fixtures stand in for internal/core so the harness can exercise the
// analyzer without linting the real engine.
func hotFuncsFor(path string) map[string]bool {
	if testdataPkg(path) {
		if strings.Contains(path, "lint/testdata/hotjson") {
			return hotJSONFuncs["bioopera/internal/core"]
		}
		return nil
	}
	return hotJSONFuncs[path]
}

// runHotJSON flags encoding/json use inside persist/WAL hot-path
// functions. The check is syntactic per function body: any selector
// resolving to the encoding/json package (json.Marshal, json.NewEncoder,
// an aliased import, ...) is a violation. Deliberate exceptions — none
// exist today; recovery's JSON fallback lives in functions outside these
// sets — carry //bioopera:allow hotjson with a reason.
func runHotJSON(p *Pass) {
	funcs := hotFuncsFor(p.Pkg.Path())
	if len(funcs) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "encoding/json" {
					return true
				}
				p.Reportf(sel.Pos(), "json.%s in persist hot-path function %s: hot-path records use the binary codec (internal/codec), not encoding/json", sel.Sel.Name, fd.Name.Name)
				return true
			})
		}
	}
}
