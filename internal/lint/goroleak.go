package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroleak: every goroutine launched in a long-lived package must have a
// provable shutdown path, so a promoted standby or a killed worker never
// strands one. Three proofs are accepted, all resolved through the
// cross-package fact layer:
//
//  1. WaitGroup pairing — the goroutine body calls Done on a WaitGroup
//     object some function Adds to and some function Waits on (the object
//     identity crosses package boundaries: remote.Server.wg is one
//     types.Object everywhere).
//  2. Quit channel — the body receives from (or selects/ranges on) a
//     channel that a *different* function closes; assignment aliasing
//     (`stop := make(...); rb.snapStop = stop`) is resolved per package.
//  3. Completion channel — the body closes a channel that a different
//     function (a Close, typically) receives from, joining the exit.
//
// Channel and Done facts are collected transitively over the body's
// resolved calls, so `go s.serve(conn)` is judged by serve's facts, not
// just the literal body. A goroutine none of the proofs cover is reported
// at the `go` statement; a deliberate exception carries
// //bioopera:allow goroleak with the reason shutdown is unnecessary.

// goroleakPkgs are the long-lived packages whose goroutines must be
// reaped. The workload packages (allvsall, darwin) run to completion under
// the engine's own lifecycle and stay out of scope.
var goroleakPkgs = map[string]bool{
	"bioopera/internal/core":   true,
	"bioopera/internal/remote": true,
	"bioopera/internal/obs":    true,
	"bioopera/internal/wal":    true,
	"bioopera/internal/store":  true,
	"bioopera/internal/sched":  true,
}

func goroleakPkg(path string) bool {
	return goroleakPkgs[path] || strings.Contains(path, "lint/testdata/goroleak")
}

// chanKey identifies a channel alias class within one package.
type chanKey struct {
	pkg  string
	root types.Object
}

// chanUsers indexes, per alias class, the functions that close or receive
// from it — the lookup side of the quit- and completion-channel proofs.
type chanUsers struct {
	closers map[chanKey][]*funcNode
	recvers map[chanKey][]*funcNode
}

func indexChanUsers(p *Program) *chanUsers {
	u := &chanUsers{
		closers: make(map[chanKey][]*funcNode),
		recvers: make(map[chanKey][]*funcNode),
	}
	for _, n := range p.nodes {
		uf := p.chanAlias[n.pkg.Path]
		for obj := range n.chClose {
			k := chanKey{n.pkg.Path, uf.find(obj)}
			u.closers[k] = append(u.closers[k], n)
		}
		for obj := range n.chRecv {
			k := chanKey{n.pkg.Path, uf.find(obj)}
			u.recvers[k] = append(u.recvers[k], n)
		}
	}
	return u
}

// outside reports whether any function in list is not part of the
// goroutine's own reached set — the closer/receiver must be someone else.
func outside(list []*funcNode, reached map[*funcNode]bool) bool {
	for _, n := range list {
		if !reached[n] {
			return true
		}
	}
	return false
}

func runGoroLeak(mp *ModulePass) {
	p := mp.Prog
	users := indexChanUsers(p)
	for _, n := range p.nodes {
		if !goroleakPkg(n.pkg.Path) {
			continue
		}
		for _, g := range n.goStmts {
			targets := p.goTargets(n, g)
			if len(targets) == 0 {
				mp.Reportf(g.Pos(), "goroutine target cannot be resolved statically, so no shutdown path can be proven: launch a named function or literal, or annotate with //bioopera:allow goroleak <reason>")
				continue
			}
			if p.provenShutdown(targets, users) {
				continue
			}
			mp.Reportf(g.Pos(), "goroutine launched here has no provable shutdown path: pair it with a WaitGroup Done/Wait, select on a quit channel a Close closes, or close a completion channel a Close receives")
		}
	}
}

// goTargets resolves the function bodies a go statement runs.
func (p *Program) goTargets(n *funcNode, g *ast.GoStmt) []*funcNode {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if t, found := p.byLit[lit]; found {
			return []*funcNode{t}
		}
		return nil
	}
	return p.calleesOf(n.pkg, g.Call)
}

// provenShutdown reports whether any resolved target satisfies any of the
// three shutdown proofs, judging each target by the facts of everything it
// reaches through resolved calls.
func (p *Program) provenShutdown(targets []*funcNode, users *chanUsers) bool {
	for _, t := range targets {
		reached := reachable(t)
		uf := p.chanAlias[t.pkg.Path]
		for rn := range reached {
			// Proof 1: WaitGroup pairing, module-wide by object identity.
			for o := range rn.wgDone {
				var added, waited bool
				for _, m := range p.nodes {
					added = added || m.wgAdd[o]
					waited = waited || m.wgWait[o]
				}
				if added && waited {
					return true
				}
			}
			// Proof 2: the body receives a channel someone else closes.
			for o := range rn.chRecv {
				k := chanKey{t.pkg.Path, uf.find(o)}
				if outside(users.closers[k], reached) {
					return true
				}
			}
			// Proof 3: the body closes a channel someone else receives.
			for o := range rn.chClose {
				k := chanKey{t.pkg.Path, uf.find(o)}
				if outside(users.recvers[k], reached) {
					return true
				}
			}
		}
	}
	return false
}

// reachable collects the nodes a body can reach through resolved calls,
// bounded to keep pathological graphs cheap.
func reachable(start *funcNode) map[*funcNode]bool {
	seen := map[*funcNode]bool{start: true}
	queue := []*funcNode{start}
	for len(queue) > 0 && len(seen) < 64 {
		n := queue[0]
		queue = queue[1:]
		for _, rc := range n.calls {
			for _, c := range rc.callees {
				if !seen[c] {
					seen[c] = true
					queue = append(queue, c)
				}
			}
		}
	}
	return seen
}
