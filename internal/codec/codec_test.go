package codec

import (
	"math"
	"testing"

	"bioopera/internal/ocr"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	e := Get()
	defer Put(e)
	e.Begin(7)
	e.Uvarint(0)
	e.Uvarint(300)
	e.Int(-1)
	e.Int(1 << 40)
	e.Int(math.MinInt64)
	e.Bool(true)
	e.Bool(false)
	e.Float(3.25)
	e.Float(math.Inf(-1))
	e.String("hello")
	e.String("hello") // back-reference
	e.String("")
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	e.End()

	d, kind, err := NewDecoder(e.Span(0))
	if err != nil {
		t.Fatal(err)
	}
	if kind != 7 {
		t.Fatalf("kind = %d", kind)
	}
	if got := d.Uvarint(); got != 0 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := d.Uvarint(); got != 300 {
		t.Fatalf("uvarint = %d", got)
	}
	if got := d.Int(); got != -1 {
		t.Fatalf("int = %d", got)
	}
	if got := d.Int(); got != 1<<40 {
		t.Fatalf("int = %d", got)
	}
	if got := d.Int(); got != math.MinInt64 {
		t.Fatalf("int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools")
	}
	if got := d.Float(); got != 3.25 {
		t.Fatalf("float = %v", got)
	}
	if got := d.Float(); !math.IsInf(got, -1) {
		t.Fatalf("float = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("interned string = %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string = %q", got)
	}
	if got := d.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("bytes = %v", got)
	}
	if got := d.Bytes(); got != nil {
		t.Fatalf("nil bytes = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestInterningShrinksRepeats(t *testing.T) {
	long := "a-reasonably-long-scope-name[17]"
	one := Get()
	one.Begin(1)
	one.String(long)
	one.End()
	repeated := Get()
	repeated.Begin(1)
	for i := 0; i < 10; i++ {
		repeated.String(long)
	}
	repeated.End()
	oneLen, repLen := len(one.Span(0)), len(repeated.Span(0))
	Put(one)
	Put(repeated)
	// 9 repeats should cost one byte each (back-reference to slot 0).
	if want := oneLen + 9; repLen != want {
		t.Fatalf("10x interned string = %d bytes, want %d", repLen, want)
	}
}

func TestValuesRoundTrip(t *testing.T) {
	vals := []ocr.Value{
		ocr.Null,
		ocr.Bool(true),
		ocr.Bool(false),
		ocr.Num(0),
		ocr.Num(-12.5),
		ocr.Num(math.NaN()), // JSON cannot persist this; the codec can
		ocr.Str(""),
		ocr.Str("x"),
		ocr.List(),
		ocr.List(ocr.Num(1), ocr.Str("two"), ocr.List(ocr.Bool(true))),
	}
	m := map[string]ocr.Value{"b": ocr.Num(2), "a": ocr.Str("one"), "c": ocr.List(ocr.Null)}
	e := Get()
	defer Put(e)
	e.Begin(1)
	for _, v := range vals {
		e.Value(v)
	}
	e.ValueMap(m)
	e.ValueMap(nil)
	e.ValueSlice(vals[:3])
	e.ValueSlice(nil)
	e.StringSlice([]string{"x", "y", "x"})
	e.StringSlice(nil)
	e.End()

	d, _, err := NewDecoder(e.Span(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		got := d.Value()
		if i == 5 { // NaN compares unequal to itself
			if !math.IsNaN(got.AsNum()) {
				t.Fatalf("value %d = %v, want NaN", i, got)
			}
			continue
		}
		if got.String() != want.String() || got.Kind() != want.Kind() {
			t.Fatalf("value %d = %v (%v), want %v (%v)", i, got, got.Kind(), want, want.Kind())
		}
	}
	gm := d.ValueMap()
	if len(gm) != len(m) {
		t.Fatalf("map = %v", gm)
	}
	for k, want := range m {
		if gm[k].String() != want.String() {
			t.Fatalf("map[%q] = %v, want %v", k, gm[k], want)
		}
	}
	if d.ValueMap() != nil {
		t.Fatal("empty map should decode nil")
	}
	if got := d.ValueSlice(); len(got) != 3 {
		t.Fatalf("value slice = %v", got)
	}
	if d.ValueSlice() != nil {
		t.Fatal("empty value slice should decode nil")
	}
	if got := d.StringSlice(); len(got) != 3 || got[2] != "x" {
		t.Fatalf("string slice = %v", got)
	}
	if d.StringSlice() != nil {
		t.Fatal("empty string slice should decode nil")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestValueMapDeterministic(t *testing.T) {
	m := map[string]ocr.Value{}
	for _, k := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		m[k] = ocr.Str(k)
	}
	enc := func() []byte {
		e := Get()
		defer Put(e)
		e.Begin(1)
		e.ValueMap(m)
		e.End()
		return append([]byte(nil), e.Span(0)...)
	}
	first := enc()
	for i := 0; i < 20; i++ {
		if string(enc()) != string(first) {
			t.Fatal("map encoding depends on iteration order")
		}
	}
}

func TestSpansAcrossRecords(t *testing.T) {
	e := Get()
	defer Put(e)
	for i := 0; i < 5; i++ {
		e.Begin(byte(i))
		e.Uvarint(uint64(i) * 1000)
		e.End()
	}
	if e.Records() != 5 {
		t.Fatalf("records = %d", e.Records())
	}
	for i := 0; i < 5; i++ {
		d, kind, err := NewDecoder(e.Span(i))
		if err != nil {
			t.Fatal(err)
		}
		if kind != byte(i) {
			t.Fatalf("record %d kind = %d", i, kind)
		}
		if got := d.Uvarint(); got != uint64(i)*1000 {
			t.Fatalf("record %d payload = %d", i, got)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEncodeAllocFree(t *testing.T) {
	m := map[string]ocr.Value{"alpha": ocr.Num(1), "beta": ocr.Str("two"), "gamma": ocr.List(ocr.Num(3))}
	e := Get()
	defer Put(e)
	run := func() {
		e.Reset()
		e.Begin(1)
		e.String("scope-name")
		e.String("scope-name")
		e.Int(-42)
		e.Float(1.5)
		e.ValueMap(m)
		e.StringSlice([]string{"a", "b"})
		e.End()
	}
	run() // warm the scratch slices and intern table
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Errorf("steady-state encode = %v allocs/record, want 0", allocs)
	}
}

func TestCorruptInputsNeverPanic(t *testing.T) {
	// Hand-crafted near-records: truncations, bad back-references,
	// oversized counts. Every one must error (or decode), never panic.
	cases := [][]byte{
		nil,
		{},
		{Magic},
		{Magic, Version},
		{Magic, 99, 1},                 // unknown version
		{0x7B, Version, 1},             // not magic
		{Magic, Version, 1, 0xFF},      // torn uvarint
		{Magic, Version, 1, 0x04, 'a'}, // string length 2, one byte left
		{Magic, Version, 1, 0x03},      // back-reference into empty table
		{Magic, Version, 1, 0xFF, 0xFF, 0xFF, 0x7F},     // huge count
		{Magic, Version, 1, byte(ocr.KindList), 0x20},   // list of 16, no elements
		{Magic, Version, 1, byte(ocr.KindNumber), 1, 2}, // truncated float
		{Magic, Version, 1, 200},                        // unknown value kind
	}
	for i, data := range cases {
		d, _, err := NewDecoder(data)
		if err != nil {
			continue // header rejected: fine
		}
		d.Uvarint()
		_ = d.String()
		d.Value()
		d.ValueMap()
		d.ValueSlice()
		d.StringSlice()
		d.Bytes()
		d.Bool()
		d.Float()
		if err := d.Finish(); err == nil && len(data) > 3 {
			t.Errorf("case %d: corrupt record decoded cleanly", i)
		}
	}
}

func TestSniff(t *testing.T) {
	if Sniff(nil) || Sniff([]byte(`{"id":"x"}`)) || Sniff([]byte("PROCESS P {}")) {
		t.Fatal("sniffed non-binary data as binary")
	}
	e := Get()
	e.Begin(1)
	e.End()
	if !Sniff(e.Span(0)) {
		t.Fatal("binary record not sniffed")
	}
	Put(e)
}
