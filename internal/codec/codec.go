// Package codec is the compact binary wire format for the engine's durable
// hot path: checkpoint delta records, WAL frames, and log-shipping payloads.
//
// Every persisted record used to be encoding/json-marshaled; profiling the
// checkpoint flusher showed reflection and string escaping dominating the
// marshal cost once PR 5 had flattened record *size*. This package replaces
// that with a hand-rolled, versioned, length-prefixed binary layout:
//
//	magic(0xBF) version(1) kind(1) fields...
//
// Field primitives are uvarint (lengths, counts, enums), zigzag varint
// (signed ints, timestamps, durations), 8-byte little-endian IEEE-754
// (numbers), and length-prefixed byte strings. Strings are interned per
// record: the first occurrence is written literally and enters the string
// table, repeats are written as a 1-2 byte back-reference — repeated scope
// and task names cost almost nothing. Each record carries its own table, so
// every record decodes standalone.
//
// Encoders are pooled and append into one reusable buffer with explicit
// record marks, so steady-state encoding of a whole checkpoint batch is
// allocation-free. Decoders never panic on corrupt input: every read is
// bounds-checked and errors are sticky.
//
// The magic byte doubles as the format discriminator against the legacy
// JSON records (which always start with '{'): readers Sniff the first byte
// and fall back to encoding/json, so old stores stay readable forever.
// Version is bumped on any layout change; decoders reject versions they do
// not know rather than misparse them.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"bioopera/internal/ocr"
)

const (
	// Magic is the first byte of every binary record. Legacy JSON records
	// begin with '{' (0x7B) and interned process texts are printable
	// program text, so one byte distinguishes the formats.
	Magic byte = 0xBF
	// Version is the current layout version, the second byte of every
	// record.
	Version byte = 1
	// headerLen is Magic + Version + kind.
	headerLen = 3
)

// Sniff reports whether data looks like a binary codec record (as opposed
// to a legacy JSON record or raw text).
func Sniff(data []byte) bool { return len(data) > 0 && data[0] == Magic }

// ErrCorrupt is wrapped by every decode error.
var ErrCorrupt = errors.New("codec: corrupt record")

// Encoder appends binary records to one reusable buffer. Begin/End bracket
// each record; Span returns the bytes of a finished record. The zero value
// is ready to use; Get/Put recycle encoders (buffer, mark slice, and
// intern table included) so steady-state encoding allocates nothing.
type Encoder struct {
	// Buf holds every record encoded since the last Reset, back to back.
	// Appending may relocate the backing array, so take Span slices only
	// after all records of a batch are encoded.
	Buf   []byte
	marks []int
	strs  map[string]uint64 // per-record intern table: string -> slot
	keys  []string          // scratch for sorted map iteration
}

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// Get returns a pooled Encoder, reset and ready for Begin.
func Get() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// Put recycles an Encoder. The caller must be done with every Span slice:
// they alias the encoder's buffer.
func Put(e *Encoder) { encPool.Put(e) }

// Reset drops all encoded records but keeps the allocated capacity.
func (e *Encoder) Reset() {
	e.Buf = e.Buf[:0]
	e.marks = e.marks[:0]
}

// Begin starts a new record of the given kind: it writes the header and
// clears the intern table (records decode standalone).
func (e *Encoder) Begin(kind byte) {
	if e.strs == nil {
		e.strs = make(map[string]uint64, 16)
	} else {
		clear(e.strs)
	}
	e.Buf = append(e.Buf, Magic, Version, kind)
}

// End finishes the current record and returns its index for Span.
func (e *Encoder) End() int {
	e.marks = append(e.marks, len(e.Buf))
	return len(e.marks) - 1
}

// Records reports how many records have been finished since Reset.
func (e *Encoder) Records() int { return len(e.marks) }

// Span returns the encoded bytes of record i. The slice aliases the
// encoder's buffer: it is valid until the next Reset/Put, and must only be
// taken once the batch's records are all encoded (End moves the marks, and
// appending can relocate the buffer).
func (e *Encoder) Span(i int) []byte {
	start := 0
	if i > 0 {
		start = e.marks[i-1]
	}
	return e.Buf[start:e.marks[i]:e.marks[i]]
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(u uint64) {
	e.Buf = binary.AppendUvarint(e.Buf, u)
}

// Int appends a signed int as a zigzag varint.
func (e *Encoder) Int(v int64) {
	e.Buf = binary.AppendUvarint(e.Buf, uint64(v<<1)^uint64(v>>63))
}

// Bool appends one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Buf = append(e.Buf, 1)
	} else {
		e.Buf = append(e.Buf, 0)
	}
}

// Float appends an IEEE-754 double, little-endian.
func (e *Encoder) Float(f float64) {
	e.Buf = binary.LittleEndian.AppendUint64(e.Buf, math.Float64bits(f))
}

// String appends an interned string. The head uvarint's low bit
// discriminates: even = literal of length head>>1 follows (and the string
// joins the record's table), odd = back-reference to table slot head>>1.
func (e *Encoder) String(s string) {
	if slot, ok := e.strs[s]; ok {
		e.Uvarint(slot<<1 | 1)
		return
	}
	e.strs[s] = uint64(len(e.strs))
	e.Uvarint(uint64(len(s)) << 1)
	e.Buf = append(e.Buf, s...)
}

// Bytes appends a length-prefixed byte string (not interned).
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.Buf = append(e.Buf, b...)
}

// Value appends one dynamically typed whiteboard value. Strings go through
// the record's intern table, so an output echoing an input costs two bytes.
func (e *Encoder) Value(v ocr.Value) {
	k := v.Kind()
	e.Buf = append(e.Buf, byte(k))
	switch k {
	case ocr.KindBool:
		e.Bool(v.AsBool())
	case ocr.KindNumber:
		e.Float(v.AsNum())
	case ocr.KindString:
		e.String(v.AsStr())
	case ocr.KindList:
		n := v.Len()
		e.Uvarint(uint64(n))
		for i := 0; i < n; i++ {
			e.Value(v.At(i))
		}
	}
}

// ValueSlice appends a counted list of values. nil and empty both encode
// as count 0 and decode as nil, matching the JSON omitempty round-trip.
func (e *Encoder) ValueSlice(vs []ocr.Value) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Value(v)
	}
}

// StringSlice appends a counted list of interned strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// ValueMap appends a counted map in sorted key order, so identical maps
// encode to identical bytes regardless of Go's map iteration order.
func (e *Encoder) ValueMap(m map[string]ocr.Value) {
	e.Uvarint(uint64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := e.keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.String(k)
		e.Value(m[k])
	}
	e.keys = keys[:0]
}

// Decoder reads one binary record. Errors are sticky: after the first
// malformed read every later read returns a zero value, and Err reports the
// failure — callers check once at the end. A Decoder never panics on
// corrupt input; every read is bounds-checked.
type Decoder struct {
	buf  []byte
	off  int
	strs []string // intern table, filled by literal strings in order
	err  error
}

// NewDecoder validates the record header and returns a decoder positioned
// at the first field, plus the record kind.
func NewDecoder(data []byte) (*Decoder, byte, error) {
	if len(data) < headerLen || data[0] != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[1] != Version {
		return nil, 0, fmt.Errorf("%w: unknown version %d", ErrCorrupt, data[1])
	}
	return &Decoder{buf: data, off: headerLen}, data[2], nil
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish returns the sticky error, or an error if the record has trailing
// garbage — a full record must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return u
}

// Int reads a zigzag varint.
func (d *Decoder) Int() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// Float reads an IEEE-754 double.
func (d *Decoder) Float() float64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("float")
		return 0
	}
	u := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(u)
}

// String reads an interned string (literal or back-reference).
func (d *Decoder) String() string {
	head := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if head&1 == 1 { // back-reference
		slot := head >> 1
		if slot >= uint64(len(d.strs)) {
			d.fail("string backref")
			return ""
		}
		return d.strs[slot]
	}
	n := int(head >> 1)
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	d.strs = append(d.strs, s)
	return s
}

// Bytes reads a length-prefixed byte string. The returned slice aliases
// the record buffer (no copy); a zero length decodes as nil.
func (d *Decoder) Bytes() []byte {
	n := int(d.Uvarint())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// Value reads one dynamically typed value.
func (d *Decoder) Value() ocr.Value {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("value kind")
		return ocr.Null
	}
	k := ocr.Kind(d.buf[d.off])
	d.off++
	switch k {
	case ocr.KindNull:
		return ocr.Null
	case ocr.KindBool:
		return ocr.Bool(d.Bool())
	case ocr.KindNumber:
		return ocr.Num(d.Float())
	case ocr.KindString:
		return ocr.Str(d.String())
	case ocr.KindList:
		n := int(d.Uvarint())
		if d.err != nil || n < 0 || n > len(d.buf)-d.off {
			d.fail("value list")
			return ocr.Null
		}
		vs := make([]ocr.Value, 0, n)
		for i := 0; i < n; i++ {
			vs = append(vs, d.Value())
			if d.err != nil {
				return ocr.Null
			}
		}
		return ocr.List(vs...)
	}
	d.fail("value kind")
	return ocr.Null
}

// ValueSlice reads a counted list of values; count 0 decodes as nil.
func (d *Decoder) ValueSlice() []ocr.Value {
	n := int(d.Uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	// Every element needs at least one byte; a count beyond that is a
	// corrupt length, not a huge allocation.
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("value slice")
		return nil
	}
	vs := make([]ocr.Value, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return vs
}

// StringSlice reads a counted list of interned strings; count 0 decodes as
// nil.
func (d *Decoder) StringSlice() []string {
	n := int(d.Uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("string slice")
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ss = append(ss, d.String())
		if d.err != nil {
			return nil
		}
	}
	return ss
}

// ValueMap reads a counted map; count 0 decodes as nil.
func (d *Decoder) ValueMap() map[string]ocr.Value {
	n := int(d.Uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("value map")
		return nil
	}
	m := make(map[string]ocr.Value, n)
	for i := 0; i < n; i++ {
		k := d.String()
		v := d.Value()
		if d.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}
