// Package remote takes the engine over the wire: a server-side Executor
// dispatches activities to worker agents on other machines, mirroring the
// paper's split between the BioOpera server and the program execution
// clients (PECs) running on cluster nodes (§3.2, §3.4).
//
// The protocol is newline-delimited JSON over TCP, one Message per line:
//
//	worker → server   hello       worker name + offered node slots
//	server → worker   welcome     incarnation tag + heartbeat cadence
//	server → worker   launch      job + lease + program + inputs
//	worker → server   heartbeat   liveness (any message also counts)
//	worker → server   completion  outputs or program error, lease-tagged
//	server → worker   kill        stop caring about a job's outcome
//
// Failure model: the server declares a worker dead when its heartbeats go
// silent past the configured timeout (or its connection drops), marks the
// worker's nodes down, and fails the worker's running jobs with
// cluster.ErrNodeFailed — driving the engine's ordinary failover/requeue
// path. Every launch carries a fresh lease and the worker's incarnation;
// a completion whose lease or incarnation does not match the server's
// current record (a worker declared dead that was merely partitioned, or
// a pre-crash incarnation delivering late) is dropped, exactly like the
// engine's own stale-completion checks.
package remote

import (
	"bioopera/internal/ocr"
)

// Message types.
const (
	MsgHello      = "hello"
	MsgWelcome    = "welcome"
	MsgLaunch     = "launch"
	MsgKill       = "kill"
	MsgHeartbeat  = "heartbeat"
	MsgCompletion = "completion"
)

// NodeInfo is one CPU slot a worker offers. The server namespaces node
// names with the worker name ("w1/cpu0"), so workers may pick any local
// names without colliding.
type NodeInfo struct {
	Name  string  `json:"name"`
	OS    string  `json:"os"`
	CPUs  int     `json:"cpus"`
	Speed float64 `json:"speed"`
}

// Message is the single wire frame; Type says which fields are meaningful.
type Message struct {
	Type string `json:"type"`

	// hello
	Worker string     `json:"worker,omitempty"`
	Nodes  []NodeInfo `json:"nodes,omitempty"`

	// welcome; completion echoes Incarnation back
	Incarnation uint64 `json:"incarnation,omitempty"`
	HeartbeatMs int64  `json:"heartbeatMs,omitempty"`

	// launch / kill / completion
	Job   string `json:"job,omitempty"`
	Node  string `json:"node,omitempty"`
	Lease uint64 `json:"lease,omitempty"`

	// launch: the resolved external binding plus scheduling hints
	Program   string               `json:"program,omitempty"`
	Inputs    map[string]ocr.Value `json:"inputs,omitempty"`
	Instance  string               `json:"instance,omitempty"`
	Task      string               `json:"task,omitempty"`
	Attempt   int                  `json:"attempt,omitempty"`
	Nice      bool                 `json:"nice,omitempty"`
	CostMs    int64                `json:"costMs,omitempty"`
	TimeoutMs int64                `json:"timeoutMs,omitempty"`

	// heartbeat: observed external (non-BioOpera) load on the worker's
	// machine, 0..1; feeds the scheduler's granularity autotuning
	Load float64 `json:"load,omitempty"`

	// completion
	Outputs  map[string]ocr.Value `json:"outputs,omitempty"`
	Error    string               `json:"error,omitempty"`
	CPUNanos int64                `json:"cpuNanos,omitempty"`
}
