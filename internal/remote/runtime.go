package remote

import (
	"fmt"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
	"bioopera/internal/wal"
)

// Config configures a remote Runtime.
type Config struct {
	// Addr is the TCP listen address for worker agents (e.g. ":7070";
	// "127.0.0.1:0" picks a free port).
	Addr string
	// Store defaults to an in-memory store.
	Store store.Store
	// Library is required on the server too: recovery and completion-time
	// evaluation still resolve program names locally.
	Library *core.Library
	// Policy defaults to LeastLoaded.
	Policy sched.Policy
	// Quotas assigns per-tenant fair-share weights (see core.Options.Quotas).
	Quotas map[string]float64
	// Shards sets the engine's instance-lock shard count.
	Shards int
	// OnEvent observes engine events plus the runtime's node-joined /
	// node-down events from the failure detector.
	OnEvent func(core.Event)
	// OnError observes persistence failures.
	OnError func(error)
	// SnapshotEvery periodically compacts the store (0 disables).
	SnapshotEvery time.Duration
	// ShipAddr, when non-empty and Store is a disk store, serves the
	// store's WAL to hot standbys on this address (":0" picks a free
	// port) — see store.StartShipping. Connected standbys replay every
	// committed batch and can be promoted with Engine.Recover when this
	// server dies.
	ShipAddr string
	// RecoverWorkers / LazyRecovery pass through to the engine (see
	// core.Options); they shape Engine.Recover on this runtime's engine,
	// including a promoted standby's recovery.
	RecoverWorkers int
	LazyRecovery   bool
	// HeartbeatEvery / HeartbeatTimeout tune the failure detector and
	// HandshakeTimeout bounds the hello/welcome exchange; see ServerConfig.
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	HandshakeTimeout time.Duration
	// Logf receives protocol diagnostics. May be nil.
	Logf func(format string, args ...any)
	// Metrics enables engine instrumentation plus the server's
	// failure-detector counters and worker gauges (see core.Options.Metrics
	// and ServerConfig.Metrics).
	Metrics *obs.Registry
	// EventRing receives emitted events for live tailing (see
	// core.Options.EventRing).
	EventRing *obs.Ring
}

// Runtime drives the engine against remote workers: the BioOpera server
// process. It is the fourth Executor-backed runtime — same engine, same
// recovery, with activities running on machines that register over TCP.
type Runtime struct {
	core.RuntimeBase

	Store   store.Store
	Server  *Server
	Shipper *wal.Shipper // nil unless Config.ShipAddr was set

	start time.Time
}

// NewRuntime listens for workers and builds the engine on top of the
// server's Executor. Workers may connect before or after; the dispatcher
// queues activities until capacity registers.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("remote: Config needs a Library")
	}
	rt := &Runtime{Store: cfg.Store, start: time.Now()}
	now := func() sim.Time { return sim.Time(time.Since(rt.start)) }
	srv, err := Listen(cfg.Addr, ServerConfig{
		HeartbeatEvery:   cfg.HeartbeatEvery,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		HandshakeTimeout: cfg.HandshakeTimeout,
		Logf:             cfg.Logf,
		Metrics:          cfg.Metrics,
		OnNodeEvent: func(worker string, up bool, detail string) {
			// The configuration space (§3.2) tracks the worker fleet.
			kind := core.EvNodeJoined
			if !up {
				kind = core.EvNodeDown
			}
			rec := []byte(fmt.Sprintf("worker %s up=%v %s", worker, up, detail))
			if err := cfg.Store.Put(store.Configuration, "worker/"+worker, rec); err != nil && cfg.OnError != nil {
				cfg.OnError(fmt.Errorf("remote: record worker %s: %w", worker, err))
			}
			// Route through the engine's event path (journal, ring,
			// metrics, OnEvent) once it is bound; before that — a worker
			// racing the handshake — fall back to the bare callback.
			if eng := rt.Engine(); eng != nil {
				eng.EmitInfra(core.Event{Kind: kind, Node: worker, Detail: detail})
			} else if cfg.OnEvent != nil {
				cfg.OnEvent(core.Event{At: now(), Kind: kind, Node: worker, Detail: detail})
			}
		},
	})
	if err != nil {
		return nil, err
	}
	rt.Server = srv
	eng, err := core.New(core.Options{
		Store:          cfg.Store,
		Library:        cfg.Library,
		Executor:       srv,
		Clock:          core.ClockFunc(now),
		Policy:         cfg.Policy,
		Quotas:         cfg.Quotas,
		Shards:         cfg.Shards,
		RecoverWorkers: cfg.RecoverWorkers,
		LazyRecovery:   cfg.LazyRecovery,
		OnEvent:        cfg.OnEvent,
		OnError:        cfg.OnError,
		Metrics:        cfg.Metrics,
		EventRing:      cfg.EventRing,
		OnInstanceDone: func(*core.Instance) {
			rt.Bump()
		},
	})
	if err != nil {
		//bioopera:allow droppederr the engine construction error is returned; closing the fresh listener is best-effort
		srv.Close()
		return nil, err
	}
	rt.Bind(eng)
	srv.SetHandlers(
		func(c cluster.Completion) {
			eng.HandleCompletion(c)
			rt.Bump()
		},
		func() {
			eng.Pump()
			rt.Bump()
		},
	)
	if cfg.ShipAddr != "" {
		disk, ok := cfg.Store.(*store.Disk)
		if !ok {
			//bioopera:allow droppederr the config error is returned; closing the fresh listener is best-effort
			srv.Close()
			return nil, fmt.Errorf("remote: ShipAddr requires a disk store")
		}
		shipper, err := disk.StartShipping(cfg.ShipAddr, cfg.Logf)
		if err != nil {
			//bioopera:allow droppederr the shipping error is returned; closing the fresh listener is best-effort
			srv.Close()
			return nil, fmt.Errorf("remote: start shipping: %w", err)
		}
		rt.Shipper = shipper
	}
	rt.StartSnapshots(cfg.Store, cfg.SnapshotEvery)
	return rt, nil
}

// Addr returns the bound listen address (handy with ":0").
func (rt *Runtime) Addr() string { return rt.Server.Addr() }

// Close halts the snapshot loop, tears down the server and every worker
// connection, and waits for in-flight checkpoint flushes to commit (so
// the caller may close the store), returning the listener's close error.
func (rt *Runtime) Close() error {
	rt.StopSnapshots()
	if rt.Shipper != nil {
		//bioopera:allow droppederr shipper teardown is best-effort; the listener close error below is the one reported
		rt.Shipper.Close()
	}
	err := rt.Server.Close()
	rt.Engine().QuiesceCheckpoints()
	return err
}
