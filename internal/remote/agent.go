package remote

import (
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"bioopera/internal/core"
)

// AgentConfig configures a worker agent.
type AgentConfig struct {
	// Name identifies the worker to the server; node names are namespaced
	// under it. Required.
	Name string
	// CPUs is the number of single-slot nodes offered (default 1).
	CPUs int
	// OS defaults to runtime.GOOS.
	OS string
	// Speed is the relative node speed reported to the scheduler
	// (default 1).
	Speed float64
	// HandshakeTimeout bounds how long Dial waits for the server's
	// welcome after sending hello (default DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// Library resolves program names from launch messages. Required.
	Library *core.Library
	// Load, when set, samples the machine's external (non-BioOpera) load
	// (0..1) before each heartbeat; the server feeds it to the scheduler's
	// granularity autotuning. May be nil (no load reported).
	Load func() float64
	// Logf receives diagnostics. May be nil.
	Logf func(format string, args ...any)
}

// Agent is the worker side of the remote protocol: the program execution
// client that registers its CPUs with the server, runs launched activities
// against its local program library, and streams heartbeats.
type Agent struct {
	cfg  AgentConfig
	conn net.Conn
	inc  uint64
	wg   sync.WaitGroup

	wmu sync.Mutex
	enc *json.Encoder

	mu     sync.Mutex
	closed bool
	paused bool            // heartbeats suppressed (test hook)
	killed map[string]bool // job+"#"+lease → discard the result

	done chan struct{}
}

// Dial connects to a server, performs the hello/welcome handshake, and
// starts the heartbeat and message loops.
func Dial(addr string, cfg AgentConfig) (*Agent, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("remote: AgentConfig needs a Name")
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("remote: AgentConfig needs a Library")
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.OS == "" {
		cfg.OS = runtime.GOOS
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	a := &Agent{
		cfg:    cfg,
		conn:   conn,
		enc:    json.NewEncoder(conn),
		killed: make(map[string]bool),
		done:   make(chan struct{}),
	}
	nodes := make([]NodeInfo, cfg.CPUs)
	for i := range nodes {
		nodes[i] = NodeInfo{Name: fmt.Sprintf("cpu%d", i), OS: cfg.OS, CPUs: 1, Speed: cfg.Speed}
	}
	if err := a.send(Message{Type: MsgHello, Worker: cfg.Name, Nodes: nodes}); err != nil {
		//bioopera:allow droppederr the hello failure is returned; closing the dead dial is best-effort
		conn.Close()
		return nil, fmt.Errorf("remote: hello: %w", err)
	}
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(cfg.HandshakeTimeout))
	var welcome Message
	if err := dec.Decode(&welcome); err != nil || welcome.Type != MsgWelcome {
		//bioopera:allow droppederr the handshake failure is returned; closing the dead dial is best-effort
		conn.Close()
		return nil, fmt.Errorf("remote: handshake failed: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	a.inc = welcome.Incarnation
	every := time.Duration(welcome.HeartbeatMs) * time.Millisecond
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	a.wg.Add(2)
	go a.heartbeatLoop(every)
	go a.readLoop(dec)
	a.logf("remote: %s connected (incarnation %d, %d cpus)", cfg.Name, a.inc, cfg.CPUs)
	return a, nil
}

// Incarnation returns the tag the server assigned to this connection.
func (a *Agent) Incarnation() uint64 { return a.inc }

// PauseHeartbeats stops the heartbeat stream without closing the
// connection — a frozen or partitioned worker, from the server's point of
// view. Launched jobs keep running and their completions still send, which
// is exactly the stale-completion case the lease check exists for.
func (a *Agent) PauseHeartbeats() {
	a.mu.Lock()
	a.paused = true
	a.mu.Unlock()
}

// ResumeHeartbeats undoes PauseHeartbeats.
func (a *Agent) ResumeHeartbeats() {
	a.mu.Lock()
	a.paused = false
	a.mu.Unlock()
}

// Wait blocks until the connection to the server is gone.
func (a *Agent) Wait() { <-a.done }

// Close tears the connection down, returning the close error after the
// loops have drained.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.conn.Close()
	a.wg.Wait()
	return err
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Agent) send(m Message) error {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	//bioopera:allow blockingsend wmu is a leaf lock that exists only to serialize writes on this connection; nothing is ever acquired under it, and Close unblocks a stuck write by closing the conn
	return a.enc.Encode(m)
}

func (a *Agent) heartbeatLoop(every time.Duration) {
	defer a.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-t.C:
			a.mu.Lock()
			paused := a.paused
			a.mu.Unlock()
			if paused {
				continue
			}
			hb := Message{Type: MsgHeartbeat}
			if a.cfg.Load != nil {
				hb.Load = a.cfg.Load()
			}
			if err := a.send(hb); err != nil {
				return
			}
		}
	}
}

func (a *Agent) readLoop(dec *json.Decoder) {
	defer a.wg.Done()
	defer close(a.done)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			a.logf("remote: %s disconnected: %v", a.cfg.Name, err)
			return
		}
		switch m.Type {
		case MsgLaunch:
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				a.runJob(m)
			}()
		case MsgKill:
			// Keyed by job AND lease: the same job ID relaunches under a
			// fresh lease after a timeout kill, and that run must survive.
			a.mu.Lock()
			a.killed[m.Job+"#"+fmt.Sprint(m.Lease)] = true
			a.mu.Unlock()
		default:
			a.logf("remote: %s got unexpected %q", a.cfg.Name, m.Type)
		}
	}
}

// runJob executes one launched activity against the local library and
// reports the lease-tagged result.
func (a *Agent) runJob(m Message) {
	reply := Message{
		Type:        MsgCompletion,
		Job:         m.Job,
		Node:        m.Node,
		Lease:       m.Lease,
		Incarnation: a.inc,
	}
	prog, ok := a.cfg.Library.Lookup(m.Program)
	if !ok {
		reply.Error = fmt.Sprintf("worker %s: unknown program %q", a.cfg.Name, m.Program)
		a.send(reply)
		return
	}
	t0 := time.Now()
	outputs, err := prog.Run(core.ProgramCtx{
		Instance: m.Instance,
		Task:     m.Task,
		Attempt:  m.Attempt,
		Node:     m.Node,
	}, m.Inputs)
	reply.CPUNanos = int64(time.Since(t0))

	a.mu.Lock()
	discard := a.killed[m.Job+"#"+fmt.Sprint(m.Lease)]
	delete(a.killed, m.Job+"#"+fmt.Sprint(m.Lease))
	a.mu.Unlock()
	if discard {
		return
	}
	if err != nil {
		reply.Error = err.Error()
	} else {
		reply.Outputs = outputs
	}
	a.send(reply)
}
