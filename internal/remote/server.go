package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// Defaults for the failure detector and connection establishment.
const (
	DefaultHeartbeatEvery   = time.Second
	DefaultHeartbeatTimeout = 3 * time.Second
	// DefaultHandshakeTimeout bounds the hello/welcome exchange on both
	// sides of a new connection.
	DefaultHandshakeTimeout = 10 * time.Second
)

// ServerConfig tunes the worker server.
type ServerConfig struct {
	// HeartbeatEvery is the cadence advertised to workers (default 1s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is how long a worker may stay silent before it is
	// declared dead (default 3 × HeartbeatEvery).
	HeartbeatTimeout time.Duration
	// HandshakeTimeout is how long a fresh connection may take to send
	// its hello before the server hangs up (default
	// DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// OnNodeEvent observes workers joining and being declared dead, for
	// the awareness journal. May be nil.
	OnNodeEvent func(worker string, up bool, detail string)
	// Logf receives protocol-level diagnostics. May be nil.
	Logf func(format string, args ...any)
	// Metrics registers the failure-detector counters and worker gauges
	// (heartbeats, lease drops, declared-dead). May be nil.
	Metrics *obs.Registry
}

// lease records one launched job: who runs it and under which lease and
// worker incarnation. A completion must match all of it to count.
type lease struct {
	id      uint64
	job     string
	node    string
	worker  string
	inc     uint64
	started time.Duration // since server start, for the completion record
}

// sendQueueDepth bounds each worker's outbound queue. The traffic is one
// launch or kill per leased job, so the bound is hit only when a worker's
// TCP stream has stalled for hundreds of messages — at which point failing
// the launch (and letting the engine reschedule) beats queueing more.
const sendQueueDepth = 256

// workerConn is one connected worker agent.
type workerConn struct {
	name  string
	inc   uint64
	conn  net.Conn
	nodes []string // server-side node names owned by this worker

	// Outbound messages are queued here and written by the connection's
	// writeLoop, the only goroutine touching enc: callers — including the
	// dispatcher holding an engine shard lock across Executor.Launch —
	// never block on the network.
	out      chan Message
	gone     chan struct{} // closed when the worker is declared dead
	goneOnce sync.Once
	enc      *json.Encoder

	// Guarded by Server.mu.
	lastBeat time.Time
	dead     bool
}

// queue hands m to the worker's writer goroutine without ever blocking:
// a dead worker or a stalled stream fails fast instead.
func (w *workerConn) queue(m Message) error {
	select {
	case <-w.gone:
		return fmt.Errorf("remote: worker %s is gone", w.name)
	default:
	}
	select {
	case w.out <- m:
		return nil
	case <-w.gone:
		return fmt.Errorf("remote: worker %s is gone", w.name)
	default:
		return fmt.Errorf("remote: worker %s send queue full", w.name)
	}
}

// markGone closes the gone channel exactly once, unblocking queue callers
// and the writeLoop.
func (w *workerConn) markGone() {
	w.goneOnce.Do(func() { close(w.gone) })
}

// Server accepts worker agents and implements core.Executor over them: the
// dispatcher's launches travel to whichever worker owns the chosen node,
// and worker completions flow back into the engine. It is the remote
// counterpart of the local goroutine pool.
type Server struct {
	cfg   ServerConfig
	ln    net.Listener
	dir   *cluster.Directory
	start time.Time
	wg    sync.WaitGroup
	stopc chan struct{} // closed by Close; wakes the reaper immediately

	mu           sync.Mutex
	closed       bool
	onCompletion func(cluster.Completion)
	onChange     func()
	workers      map[string]*workerConn
	nodeOwner    map[string]string // server-side node name → worker name
	running      map[string]*lease // job ID → current lease
	nextLease    uint64
	nextInc      uint64
	declaredDead int
	droppedStale int

	// Failure-detector metrics: pre-resolved, nil-safe handles (see
	// internal/obs), so instrumentation costs one atomic when enabled and
	// one nil check when not.
	mHeartbeats  *obs.Counter
	mStaleDrops  *obs.Counter
	mWorkersDead *obs.Counter
	mJoins       *obs.Counter
}

// Listen starts a server on addr (e.g. ":7070", or "127.0.0.1:0" to pick a
// free port). Call SetHandlers before workers are expected to do work.
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * cfg.HeartbeatEvery
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		start:     time.Now(),
		stopc:     make(chan struct{}),
		dir:       cluster.NewDirectory(),
		workers:   make(map[string]*workerConn),
		nodeOwner: make(map[string]string),
		running:   make(map[string]*lease),
	}
	if reg := cfg.Metrics; reg != nil {
		s.mHeartbeats = reg.Counter("bioopera_remote_heartbeats_total",
			"Heartbeat messages received from worker agents.")
		s.mStaleDrops = reg.Counter("bioopera_remote_stale_completions_total",
			"Worker completions dropped by the lease check.")
		s.mWorkersDead = reg.Counter("bioopera_remote_workers_dead_total",
			"Workers declared dead by the failure detector.")
		s.mJoins = reg.Counter("bioopera_remote_worker_joins_total",
			"Worker agents that completed the hello/welcome handshake.")
		reg.GaugeFunc("bioopera_remote_workers",
			"Connected worker agents currently considered alive.",
			func() float64 { w, _, _ := s.Stats(); return float64(w) })
		reg.GaugeFunc("bioopera_remote_jobs_leased",
			"Jobs currently leased to workers.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.running))
			})
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reaper()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetHandlers wires the completion and capacity-change callbacks (the
// engine's HandleCompletion and Pump). Must be called before work runs.
func (s *Server) SetHandlers(onCompletion func(cluster.Completion), onChange func()) {
	s.mu.Lock()
	s.onCompletion = onCompletion
	s.onChange = onChange
	s.mu.Unlock()
}

// Stats reports failure-detector counters: live workers, workers declared
// dead so far, and stale completions dropped by the lease check.
func (s *Server) Stats() (workers, declaredDead, droppedStale int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		if !w.dead {
			workers++
		}
	}
	return workers, s.declaredDead, s.droppedStale
}

// Close stops accepting workers and tears down every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	workers := make([]*workerConn, 0, len(s.workers))
	for _, w := range s.workers {
		workers = append(workers, w)
	}
	s.mu.Unlock()
	close(s.stopc)
	err := s.ln.Close()
	for _, w := range workers {
		w.markGone() // unblocks the writeLoop and any queued sender
		//bioopera:allow droppederr worker teardown is best-effort; Close reports the listener's error
		w.conn.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Nodes implements core.Executor.
func (s *Server) Nodes() []cluster.NodeView { return s.dir.Nodes() }

// Launch implements core.Executor: the job is leased to the worker owning
// the chosen node and shipped over the wire with its resolved binding.
func (s *Server) Launch(l core.Launch) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("remote: server closed")
	}
	w := s.workers[s.nodeOwner[l.Node]]
	if w == nil || w.dead {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", cluster.ErrNodeDown, l.Node)
	}
	if err := s.dir.Reserve(l.Node); err != nil {
		s.mu.Unlock()
		return err
	}
	s.nextLease++
	lz := &lease{
		id: s.nextLease, job: string(l.Job), node: l.Node,
		worker: w.name, inc: w.inc, started: time.Since(s.start),
	}
	// Record the lease before sending: the completion can race back
	// before send even returns.
	s.running[lz.job] = lz
	s.mu.Unlock()

	err := w.queue(Message{
		Type:        MsgLaunch,
		Job:         lz.job,
		Node:        l.Node,
		Lease:       lz.id,
		Incarnation: lz.inc,
		Program:     l.Program,
		Inputs:      l.Inputs,
		Instance:    l.Ctx.Instance,
		Task:        l.Ctx.Task,
		Attempt:     l.Ctx.Attempt,
		Nice:        l.Nice,
		CostMs:      l.Cost.Milliseconds(),
		TimeoutMs:   l.Timeout.Milliseconds(),
	})
	if err != nil {
		// Undo; the reader loop will notice the broken connection and
		// declare the worker dead.
		s.mu.Lock()
		if s.running[lz.job] == lz {
			delete(s.running, lz.job)
			s.dir.Release(lz.node)
		}
		s.mu.Unlock()
		return fmt.Errorf("remote: launch on %s: %w", l.Node, err)
	}
	return nil
}

// Kill implements core.Executor. Like the local pool, the server drops the
// lease and reports the job killed immediately; the worker gets a
// best-effort kill message so it discards the eventual result.
func (s *Server) Kill(id cluster.JobID, node string) error {
	s.mu.Lock()
	lz := s.running[string(id)]
	if lz == nil {
		s.mu.Unlock()
		return fmt.Errorf("remote: job %s not running", id)
	}
	delete(s.running, lz.job)
	s.dir.Release(lz.node)
	w := s.workers[lz.worker]
	deliver := s.onCompletion
	// The Add must happen before mu is released and only while the server
	// is open: a Kill racing Close must not Add after Close's Wait started.
	async := !s.closed
	if async {
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if w != nil {
		// Best-effort: a worker that misses the kill reports a completion
		// the lease check then drops.
		w.queue(Message{Type: MsgKill, Job: lz.job, Lease: lz.id})
	}
	if !async {
		if deliver != nil {
			deliver(cluster.Completion{Job: id, Node: lz.node, Err: cluster.ErrJobKilled})
		}
		return nil
	}
	go func() {
		defer s.wg.Done()
		if deliver != nil {
			deliver(cluster.Completion{Job: id, Node: lz.node, Err: cluster.ErrJobKilled})
		}
	}()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// reaper declares workers dead when their heartbeats go silent past the
// timeout.
func (s *Server) reaper() {
	defer s.wg.Done()
	period := s.cfg.HeartbeatTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return // Close must not wait out a reaper period
		case <-t.C:
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		var gone []*workerConn
		now := time.Now()
		for _, w := range s.workers {
			if !w.dead && now.Sub(w.lastBeat) > s.cfg.HeartbeatTimeout {
				gone = append(gone, w)
			}
		}
		s.mu.Unlock()
		for _, w := range gone {
			s.declareDead(w, "heartbeat timeout")
		}
	}
}

// handleConn runs one worker connection: hello/welcome handshake, then the
// inbound message loop.
func (s *Server) handleConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	var hello Message
	if err := dec.Decode(&hello); err != nil || hello.Type != MsgHello ||
		hello.Worker == "" || len(hello.Nodes) == 0 {
		s.logf("remote: bad handshake from %s", conn.RemoteAddr())
		//bioopera:allow droppederr hanging up on a bad handshake is best-effort; the event is already logged
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	w := &workerConn{
		name:     hello.Worker,
		conn:     conn,
		out:      make(chan Message, sendQueueDepth),
		gone:     make(chan struct{}),
		enc:      json.NewEncoder(conn),
		lastBeat: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		//bioopera:allow droppederr the server is closing; refusing the late joiner is best-effort
		conn.Close()
		return
	}
	if old := s.workers[w.name]; old != nil && !old.dead {
		// The name rejoined while its previous connection still looked
		// alive: the new connection wins, the old incarnation is dead.
		s.mu.Unlock()
		s.declareDead(old, "replaced by new connection")
		s.mu.Lock()
	}
	s.nextInc++
	w.inc = s.nextInc
	// Nodes previously owned by this worker but absent from the new offer
	// are forgotten (a rejoin may offer fewer CPUs).
	offered := make(map[string]bool, len(hello.Nodes))
	for _, n := range hello.Nodes {
		offered[w.name+"/"+n.Name] = true
	}
	if old := s.workers[w.name]; old != nil {
		for _, n := range old.nodes {
			if !offered[n] {
				s.dir.Leave(n)
				delete(s.nodeOwner, n)
			}
		}
	}
	for _, n := range hello.Nodes {
		full := w.name + "/" + n.Name
		cpus := n.CPUs
		if cpus <= 0 {
			cpus = 1
		}
		speed := n.Speed
		if speed <= 0 {
			speed = 1
		}
		s.dir.Join(cluster.NodeView{Name: full, OS: n.OS, Up: true, CPUs: cpus, Speed: speed})
		s.nodeOwner[full] = w.name
		w.nodes = append(w.nodes, full)
	}
	s.workers[w.name] = w
	// The welcome is queued before the registration lock is released, so it
	// is first on the wire even if a dispatcher Launch targets this worker
	// the instant mu unlocks. The fresh queue cannot be full.
	welcomeErr := w.queue(Message{
		Type:        MsgWelcome,
		Incarnation: w.inc,
		HeartbeatMs: s.cfg.HeartbeatEvery.Milliseconds(),
	})
	// Counted under the same critical section that checked closed: a
	// racing Close has not started its Wait yet.
	s.wg.Add(1)
	onChange := s.onChange
	s.mu.Unlock()
	go s.writeLoop(w)
	if welcomeErr != nil {
		s.declareDead(w, "welcome enqueue failed")
		return
	}
	s.mJoins.Inc()
	s.logf("remote: worker %s joined (incarnation %d, %d nodes)", w.name, w.inc, len(w.nodes))
	if s.cfg.OnNodeEvent != nil {
		s.cfg.OnNodeEvent(w.name, true, fmt.Sprintf("incarnation %d", w.inc))
	}
	if onChange != nil {
		onChange() // new capacity: let the dispatcher drain
	}

	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			break
		}
		s.mu.Lock()
		current := s.workers[w.name] == w && !w.dead
		if current {
			w.lastBeat = time.Now()
		}
		s.mu.Unlock()
		switch m.Type {
		case MsgHeartbeat:
			// lastBeat already refreshed above.
			s.mHeartbeats.Inc()
			// Propagate the worker's reported external load to every node it
			// owns — the feedback the scheduler's batcher autotunes on.
			if m.Load > 0 {
				s.mu.Lock()
				nodes := append([]string(nil), w.nodes...)
				s.mu.Unlock()
				for _, n := range nodes {
					s.dir.SetExtLoad(n, m.Load)
				}
			}
		case MsgCompletion:
			s.handleCompletion(w, m)
		default:
			s.logf("remote: worker %s sent unexpected %q", w.name, m.Type)
		}
	}
	// Connection gone. If this worker was still considered alive, its
	// death is now certain — no need to wait out the heartbeat timeout.
	s.declareDead(w, "connection lost")
}

// writeLoop is the single writer for one worker's connection: it drains
// the outbound queue onto the encoder so no caller ever blocks on the
// network. A failed write means the connection is dead.
func (s *Server) writeLoop(w *workerConn) {
	defer s.wg.Done()
	for {
		select {
		case m := <-w.out:
			if err := w.enc.Encode(m); err != nil {
				s.declareDead(w, "write failed")
				return
			}
		case <-w.gone:
			return
		}
	}
}

// declareDead marks a worker dead, takes its nodes down, and fails its
// running jobs with ErrNodeFailed so the engine requeues them elsewhere —
// the paper's node-failure handling (§3.3), at worker granularity. The
// connection is left open on purpose: a worker that was only partitioned
// may still deliver completions, which the lease check then drops.
func (s *Server) declareDead(w *workerConn, reason string) {
	s.mu.Lock()
	if w.dead || s.workers[w.name] != w {
		s.mu.Unlock()
		return
	}
	w.dead = true
	w.markGone() // stop the writeLoop and fail later queue calls fast
	s.declaredDead++
	for _, n := range w.nodes {
		s.dir.SetUp(n, false)
	}
	var lost []*lease
	for job, lz := range s.running {
		if lz.worker == w.name && lz.inc == w.inc {
			lost = append(lost, lz)
			delete(s.running, job)
		}
	}
	deliver := s.onCompletion
	onChange := s.onChange
	s.mu.Unlock()
	s.mWorkersDead.Inc()

	s.logf("remote: worker %s declared dead (%s), %d jobs requeued", w.name, reason, len(lost))
	if s.cfg.OnNodeEvent != nil {
		s.cfg.OnNodeEvent(w.name, false, reason)
	}
	for _, lz := range lost {
		if deliver != nil {
			deliver(cluster.Completion{
				Job:  cluster.JobID(lz.job),
				Node: lz.node,
				Err:  fmt.Errorf("%w: worker %s %s", cluster.ErrNodeFailed, w.name, reason),
			})
		}
	}
	if onChange != nil {
		onChange()
	}
}

// handleCompletion validates a worker's result against the current lease
// and delivers it to the engine. Anything stale — unknown job, reused job
// ID under a newer lease, dead worker, pre-crash incarnation — is dropped.
func (s *Server) handleCompletion(w *workerConn, m Message) {
	s.mu.Lock()
	lz := s.running[m.Job]
	valid := lz != nil && lz.id == m.Lease && lz.worker == w.name &&
		lz.inc == m.Incarnation && lz.inc == w.inc &&
		!w.dead && s.workers[w.name] == w
	if !valid {
		s.droppedStale++
		s.mu.Unlock()
		s.mStaleDrops.Inc()
		s.logf("remote: dropped stale completion for job %s from %s (lease %d)", m.Job, w.name, m.Lease)
		return
	}
	delete(s.running, m.Job)
	s.dir.Release(lz.node)
	deliver := s.onCompletion
	s.mu.Unlock()

	c := cluster.Completion{
		Job:     cluster.JobID(m.Job),
		Node:    lz.node,
		Start:   sim.Time(lz.started),
		End:     sim.Time(time.Since(s.start)),
		CPUTime: time.Duration(m.CPUNanos),
		Outputs: m.Outputs,
	}
	if m.Error != "" {
		c.ProgramErr = errors.New(m.Error)
		c.Outputs = nil
	}
	if c.Outputs == nil && c.ProgramErr == nil {
		// The worker ran the program; an empty (non-nil) output map keeps
		// the engine from running it again at completion time.
		c.Outputs = map[string]ocr.Value{}
	}
	if deliver != nil {
		deliver(c)
	}
}
