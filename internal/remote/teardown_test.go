package remote

import (
	"errors"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

// TestServerCloseFast pins the reaper's stop channel: even with an
// hour-long heartbeat timeout (reaper tick every 15 minutes), Close must
// return promptly instead of waiting out the next tick.
func TestServerCloseFast(t *testing.T) {
	s, err := Listen("127.0.0.1:0", ServerConfig{
		HeartbeatEvery:   time.Second,
		HeartbeatTimeout: time.Hour,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v; it must not wait for a reaper tick", d)
	}
}

// TestKillAfterClose pins the Close/Kill race fix: a Kill arriving after
// Close has started (the server's WaitGroup is mid-Wait) must not Add to
// the group, must not panic, and must still deliver the job-killed
// completion.
func TestKillAfterClose(t *testing.T) {
	s, err := Listen("127.0.0.1:0", ServerConfig{
		HeartbeatEvery:   beatEvery,
		HeartbeatTimeout: beatTimeout,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	completions := make(chan cluster.Completion, 4)
	s.SetHandlers(func(c cluster.Completion) { completions <- c }, func() {})

	release := make(chan struct{})
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "test.blockForever",
		Run: func(core.ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			<-release
			return nil, nil
		},
	})
	a, err := Dial(s.Addr(), AgentConfig{Name: "w1", CPUs: 1, Library: lib, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer close(release) // let the stuck program finish so a.Close can join it

	deadline := time.Now().Add(5 * time.Second)
	for len(s.Nodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := s.Launch(core.Launch{
		Job: "j1", Node: "w1/cpu0", Program: "test.blockForever",
	}); err != nil {
		t.Fatal(err)
	}

	// Simulate a Close in progress: closed is set, the WaitGroup may be
	// mid-Wait. A Kill here used to Add to the group after Wait started; it
	// must instead deliver the killed completion inline.
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if err := s.Kill("j1", "w1/cpu0"); err != nil {
		t.Fatalf("Kill during Close: %v", err)
	}
	select {
	case c := <-completions:
		if !errors.Is(c.Err, cluster.ErrJobKilled) {
			t.Fatalf("completion error = %v, want ErrJobKilled", c.Err)
		}
	default:
		t.Fatal("kill completion was not delivered synchronously during close")
	}

	s.mu.Lock()
	s.closed = false
	s.mu.Unlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
