package remote

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

// Tight-but-safe failure-detector timings for tests (also under -race).
const (
	beatEvery   = 25 * time.Millisecond
	beatTimeout = 150 * time.Millisecond
)

func addLibrary(t *testing.T) *core.Library {
	t.Helper()
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "test.add",
		Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"sum": ocr.Num(args["a"].AsNum() + args["b"].AsNum())}, nil
		},
	})
	return lib
}

func newRemote(t *testing.T, lib *core.Library) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{
		Addr:             "127.0.0.1:0",
		Library:          lib,
		HeartbeatEvery:   beatEvery,
		HeartbeatTimeout: beatTimeout,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

const fanSrc = `
PROCESS Fan {
  INPUT xs;
  OUTPUT done;
  BLOCK F PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY A { CALL test.add(a = x, b = x); OUT sum; MAP sum -> r; }
  }
}`

// TestRemoteRunTwoWorkers is the plain distributed path: a parallel fan
// spread over two worker agents on loopback TCP, results in order.
func TestRemoteRunTwoWorkers(t *testing.T) {
	rt := newRemote(t, addLibrary(t))
	for _, name := range []string{"w1", "w2"} {
		a, err := Dial(rt.Addr(), AgentConfig{Name: name, CPUs: 2, Library: addLibrary(t), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
	}
	if err := rt.RegisterTemplateSource(fanSrc); err != nil {
		t.Fatal(err)
	}
	var xs []ocr.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id, err := rt.StartProcess("Fan", map[string]ocr.Value{"xs": ocr.List(xs...)}, core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != core.InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	if in.Outputs["done"].Len() != 8 {
		t.Fatalf("results = %v", in.Outputs["done"])
	}
	for i := 0; i < 8; i++ {
		if in.Outputs["done"].At(i).AsNum() != float64(2*i) {
			t.Fatalf("result order broken: %v", in.Outputs["done"])
		}
	}
	workers, dead, dropped := rt.Server.Stats()
	if workers != 2 || dead != 0 || dropped != 0 {
		t.Fatalf("Stats = %d workers, %d dead, %d dropped", workers, dead, dropped)
	}
}

// TestRemoteHeartbeatFailover is the acceptance scenario: two workers, one
// freezes mid-activity (heartbeats stop, the job hangs). The heartbeat
// timeout declares it dead, its nodes go down, its running job fails over
// through the engine's requeue path onto the survivor, and the process
// still completes correctly.
func TestRemoteHeartbeatFailover(t *testing.T) {
	rt := newRemote(t, addLibrary(t))

	var (
		amu sync.Mutex
		a1  *Agent
	)
	block := make(chan struct{})
	frozen := core.NewLibrary()
	frozen.Register(core.Program{
		Name: "test.add",
		Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			// Freeze the whole worker: stop heartbeating and hang.
			for {
				amu.Lock()
				a := a1
				amu.Unlock()
				if a != nil {
					a.PauseHeartbeats()
					break
				}
				time.Sleep(time.Millisecond)
			}
			<-block
			return map[string]ocr.Value{"sum": ocr.Num(-1)}, nil
		},
	})

	a, err := Dial(rt.Addr(), AgentConfig{Name: "w1", CPUs: 1, Library: frozen, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	amu.Lock()
	a1 = a
	amu.Unlock()
	a2, err := Dial(rt.Addr(), AgentConfig{Name: "w2", CPUs: 1, Library: addLibrary(t), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// LIFO: release the hung program before the agents' Close waits on it.
	t.Cleanup(func() { a.Close() })
	t.Cleanup(func() { a2.Close() })
	t.Cleanup(func() { close(block) })

	if err := rt.RegisterTemplateSource(fanSrc); err != nil {
		t.Fatal(err)
	}
	var xs []ocr.Value
	for i := 0; i < 4; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id, err := rt.StartProcess("Fan", map[string]ocr.Value{"xs": ocr.List(xs...)}, core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != core.InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	for i := 0; i < 4; i++ {
		if in.Outputs["done"].At(i).AsNum() != float64(2*i) {
			t.Fatalf("wrong results after failover: %v", in.Outputs["done"])
		}
	}
	if in.Retries == 0 {
		t.Fatal("failover did not requeue through the infra path")
	}
	_, dead, _ := rt.Server.Stats()
	if dead != 1 {
		t.Fatalf("declaredDead = %d, want 1", dead)
	}
}

// TestRemoteWorkerRejoin: a worker goes silent, is declared dead, then a
// new agent with the same name rejoins under a fresh incarnation and picks
// the queued work up.
func TestRemoteWorkerRejoin(t *testing.T) {
	rt := newRemote(t, addLibrary(t))
	a1, err := Dial(rt.Addr(), AgentConfig{Name: "w1", CPUs: 1, Library: addLibrary(t), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a1.Close() })
	if err := rt.RegisterTemplateSource(fanSrc); err != nil {
		t.Fatal(err)
	}
	run := func() {
		t.Helper()
		id, err := rt.StartProcess("Fan",
			map[string]ocr.Value{"xs": ocr.List(ocr.Num(1), ocr.Num(2))}, core.StartOptions{})
		if err != nil {
			t.Fatal(err)
		}
		in, err := rt.Wait(id, 15*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if in.Status != core.InstanceDone {
			t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
		}
	}
	run() // first batch on incarnation 1

	a1.PauseHeartbeats()
	waitFor(t, "worker declared dead", func() bool {
		_, dead, _ := rt.Server.Stats()
		return dead == 1
	})

	a2, err := Dial(rt.Addr(), AgentConfig{Name: "w1", CPUs: 1, Library: addLibrary(t), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	if a2.Incarnation() <= a1.Incarnation() {
		t.Fatalf("rejoin incarnation %d not newer than %d", a2.Incarnation(), a1.Incarnation())
	}
	run() // second batch on the rejoined incarnation
	workers, dead, _ := rt.Server.Stats()
	if workers != 1 || dead != 1 {
		t.Fatalf("Stats after rejoin = %d workers, %d dead", workers, dead)
	}
}

// TestRemoteLateCompletionDropped: a frozen worker's job fails over and
// finishes elsewhere; when the original worker thaws and delivers its
// result under the old lease, the server drops it instead of double-
// delivering into the engine.
func TestRemoteLateCompletionDropped(t *testing.T) {
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	w1lib := core.NewLibrary()
	w1lib.Register(core.Program{
		Name: "test.who",
		Run: func(core.ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			started <- struct{}{}
			<-block
			return map[string]ocr.Value{"out": ocr.Str("from-w1")}, nil
		},
	})
	w2lib := core.NewLibrary()
	w2lib.Register(core.Program{
		Name: "test.who",
		Run: func(core.ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"out": ocr.Str("from-w2")}, nil
		},
	})
	srvLib := core.NewLibrary()
	srvLib.Register(core.Program{
		Name: "test.who",
		Run: func(core.ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			return nil, fmt.Errorf("must not run on the server")
		},
	})

	rt2 := newRemote(t, srvLib)
	a1, err := Dial(rt2.Addr(), AgentConfig{Name: "w1", CPUs: 1, Library: w1lib, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a1.Close() })
	var blockOnce sync.Once
	unblock := func() { blockOnce.Do(func() { close(block) }) }
	t.Cleanup(unblock) // LIFO: thaw the hung program before a1.Close waits on it

	if err := rt2.RegisterTemplateSource(`
PROCESS Who {
  OUTPUT r;
  ACTIVITY W { CALL test.who(); OUT out; MAP out -> r; }
}`); err != nil {
		t.Fatal(err)
	}
	id, err := rt2.StartProcess("Who", nil, core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is running (and stuck) on w1

	// Bring the understudy up, then freeze w1.
	a2, err := Dial(rt2.Addr(), AgentConfig{Name: "w2", CPUs: 1, Library: w2lib, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	a1.PauseHeartbeats()

	in, err := rt2.Wait(id, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != core.InstanceDone || in.Outputs["r"].AsStr() != "from-w2" {
		t.Fatalf("instance %s outputs %v, want from-w2", in.Status, in.Outputs)
	}

	// Thaw w1: its completion travels the still-open connection under the
	// pre-failover lease and must be dropped.
	unblock()
	waitFor(t, "stale completion dropped", func() bool {
		_, _, dropped := rt2.Server.Stats()
		return dropped == 1
	})
	// The engine's answer is unchanged.
	status, outputs, err := rt2.InstanceStatus(id)
	if err != nil || status != core.InstanceDone || outputs["r"].AsStr() != "from-w2" {
		t.Fatalf("after stale completion: %v %v %v", status, outputs, err)
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
