package remote

import (
	"encoding/json"
)

// Federation frames ride the same newline-delimited JSON-over-TCP framing
// as the worker protocol, on the federation listener of each engine server
// (internal/fed). Two conversations share the frame type:
//
//	member ↔ member   fed-hello    sender identity on dial
//	member ↔ member   fed-gossip   heartbeat + piggybacked membership view
//	client  → member  fed-request  routed engine RPC (start/resume/abort/
//	                               signal/setparam/status/wait/lineage/
//	                               members/route)
//	member  → client  fed-response result, error, or a redirect naming the
//	                               owning member when the route was stale
//
// The gateway speaks both sides: it answers fed-requests from drivers and
// forwards them as fed-requests to the owning member, refreshing its
// routing table and retrying when a response carries Redirect.
const (
	MsgFedHello    = "fed-hello"
	MsgFedGossip   = "fed-gossip"
	MsgFedRequest  = "fed-request"
	MsgFedResponse = "fed-response"
)

// FedMember is one engine server in the federation's membership view, as
// gossiped between members and served to gateways and monitors.
type FedMember struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Incarnation is the member's boot epoch from the lease table; lease
	// claims under an older incarnation than the recorded one are stale
	// and rejected (split-brain fencing).
	Incarnation uint64 `json:"incarnation"`
	// Up reflects the sender's failure detector, not ground truth.
	Up bool `json:"up"`
	// Partitions this member owned when the view was assembled.
	Partitions []int `json:"partitions,omitempty"`
	// Load mirrors the heartbeat load field: observed external load on
	// the member's machine, 0..1.
	Load float64 `json:"load,omitempty"`
}

// FedFrame is the single federation wire frame; Type says which fields are
// meaningful. Params and Result stay raw so the frame layer needs no
// knowledge of individual RPC payloads.
type FedFrame struct {
	Type string `json:"type"`

	// fed-hello / fed-gossip: the sender and (gossip) its current view.
	From    FedMember   `json:"from,omitempty"`
	Members []FedMember `json:"members,omitempty"`

	// fed-request / fed-response: ID correlates a response to its
	// request on a multiplexed connection.
	ID       uint64          `json:"id,omitempty"`
	Method   string          `json:"method,omitempty"`
	Instance string          `json:"instance,omitempty"`
	Params   json.RawMessage `json:"params,omitempty"`

	// fed-response.
	OK     bool            `json:"ok,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Redirect names the member the sender believes owns the instance;
	// the caller refreshes its route for the instance's partition and
	// retries there.
	Redirect string `json:"redirect,omitempty"`
	// RedirectAddr is the dial address for Redirect, when the sender
	// knows it, saving the caller a membership round-trip.
	RedirectAddr string `json:"redirectAddr,omitempty"`
}
