package sched

import (
	"fmt"
	"testing"
	"testing/quick"

	"bioopera/internal/cluster"
)

func views() []cluster.NodeView {
	return []cluster.NodeView{
		{Name: "a", OS: "linux", Up: true, CPUs: 2, Speed: 1.0, Running: 2, ExtLoad: 0},   // full
		{Name: "b", OS: "linux", Up: true, CPUs: 2, Speed: 1.0, Running: 1, ExtLoad: 0.5}, // 1 free, loaded
		{Name: "c", OS: "solaris", Up: true, CPUs: 4, Speed: 0.5, Running: 1, ExtLoad: 0}, // 3 free, slow
		{Name: "d", OS: "linux", Up: false, CPUs: 8, Speed: 2.0, Running: 0, ExtLoad: 0},  // down
	}
}

func TestFirstFit(t *testing.T) {
	node, ok := FirstFit{}.Pick(Job{ID: "j"}, views())
	if !ok || node != "b" {
		t.Fatalf("FirstFit = %q,%v (a is full, so b)", node, ok)
	}
}

func TestLeastLoaded(t *testing.T) {
	node, ok := LeastLoaded{}.Pick(Job{ID: "j"}, views())
	if !ok || node != "c" {
		t.Fatalf("LeastLoaded = %q,%v want c (3 free slots)", node, ok)
	}
}

func TestFastest(t *testing.T) {
	// b effective = 1.0×0.5 = 0.5; c = 0.5×1 = 0.5 → tie broken by name → b.
	node, ok := Fastest{}.Pick(Job{ID: "j"}, views())
	if !ok || node != "b" {
		t.Fatalf("Fastest = %q,%v want b", node, ok)
	}
}

func TestOSAffinity(t *testing.T) {
	node, ok := LeastLoaded{}.Pick(Job{ID: "j", OS: "solaris"}, views())
	if !ok || node != "c" {
		t.Fatalf("solaris job = %q,%v", node, ok)
	}
	_, ok = LeastLoaded{}.Pick(Job{ID: "j", OS: "irix"}, views())
	if ok {
		t.Fatal("job for missing OS placed")
	}
}

func TestNodeAffinity(t *testing.T) {
	node, ok := LeastLoaded{}.Pick(Job{ID: "j", Nodes: []string{"b"}}, views())
	if !ok || node != "b" {
		t.Fatalf("pinned job = %q,%v", node, ok)
	}
	_, ok = LeastLoaded{}.Pick(Job{ID: "j", Nodes: []string{"a", "d"}}, views())
	if ok {
		t.Fatal("job placed on full/down nodes")
	}
}

func TestDownNodesNeverPicked(t *testing.T) {
	policies := []Policy{FirstFit{}, LeastLoaded{}, Fastest{}, &RoundRobin{}}
	only := []cluster.NodeView{{Name: "d", Up: false, CPUs: 8, Speed: 2}}
	for _, p := range policies {
		if _, ok := p.Pick(Job{ID: "j"}, only); ok {
			t.Errorf("%s picked a down node", p.Name())
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	vs := []cluster.NodeView{
		{Name: "a", Up: true, CPUs: 2, Speed: 1},
		{Name: "b", Up: true, CPUs: 2, Speed: 1},
		{Name: "c", Up: true, CPUs: 2, Speed: 1},
	}
	rr := &RoundRobin{}
	var picked []string
	for i := 0; i < 6; i++ {
		n, ok := rr.Pick(Job{}, vs)
		if !ok {
			t.Fatal("pick failed")
		}
		picked = append(picked, n)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if picked[i] != want[i] {
			t.Fatalf("round robin = %v", picked)
		}
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(Job{ID: "low1", Priority: 0})
	q.Push(Job{ID: "hi", Priority: 5})
	q.Push(Job{ID: "low2", Priority: 0})
	q.Push(Job{ID: "mid", Priority: 2})
	var order []string
	for {
		j, ok := q.Pop()
		if !ok {
			break
		}
		order = append(order, j.ID)
	}
	want := []string{"hi", "mid", "low1", "low2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("queue order = %v, want %v", order, want)
		}
	}
}

func TestQueuePeekRemove(t *testing.T) {
	var q Queue
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty")
	}
	q.Push(Job{ID: "x"})
	q.Push(Job{ID: "y"})
	if j, ok := q.Peek(); !ok || j.ID != "x" {
		t.Fatalf("peek = %+v", j)
	}
	if !q.Remove("x") {
		t.Fatal("remove x failed")
	}
	if q.Remove("x") {
		t.Fatal("double remove succeeded")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	jobs := q.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "y" {
		t.Fatalf("jobs = %v", jobs)
	}
}

func TestQueuePopWhere(t *testing.T) {
	var q Queue
	q.Push(Job{ID: "solaris-only", OS: "solaris"})
	q.Push(Job{ID: "any"})
	// Only linux capacity: the solaris job must be skipped, not block
	// the queue (head-of-line blocking avoidance).
	vs := []cluster.NodeView{{Name: "n", OS: "linux", Up: true, CPUs: 1, Speed: 1}}
	j, node, ok := q.PopWhere(func(j Job) (string, bool) {
		return LeastLoaded{}.Pick(j, vs)
	})
	if !ok || j.ID != "any" || node != "n" {
		t.Fatalf("PopWhere = %+v %q %v", j, node, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d", q.Len())
	}
	// Nothing placeable now.
	if _, _, ok := q.PopWhere(func(j Job) (string, bool) {
		return LeastLoaded{}.Pick(j, vs)
	}); ok {
		t.Fatal("placed unplaceable job")
	}
}

func TestQueueFIFOWithinPriorityProperty(t *testing.T) {
	f := func(prios []uint8) bool {
		var q Queue
		for i, p := range prios {
			q.Push(Job{ID: fmt.Sprint(i), Priority: int(p % 4)})
		}
		lastSeq := map[int]int{}
		prevPrio := 1 << 30
		for {
			j, ok := q.Pop()
			if !ok {
				break
			}
			if j.Priority > prevPrio {
				return false // priority must be non-increasing
			}
			prevPrio = j.Priority
			var idx int
			fmt.Sscan(j.ID, &idx)
			if last, seen := lastSeq[j.Priority]; seen && idx < last {
				return false // FIFO within a priority
			}
			lastSeq[j.Priority] = idx
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationPolicy(t *testing.T) {
	p := DefaultMigrationPolicy()
	nodes := []cluster.NodeView{
		{Name: "hot", Up: true, CPUs: 2, Speed: 1, Running: 2, ExtLoad: 0.9},
		{Name: "cool", Up: true, CPUs: 2, Speed: 1, Running: 0, ExtLoad: 0},
	}
	running := []Candidate{{Job: "j1", Node: "hot"}, {Job: "j2", Node: "hot"}}
	kills := p.Decide(running, nodes)
	if len(kills) != 2 {
		t.Fatalf("kills = %v, want both hot jobs", kills)
	}

	// No destination capacity → no migration (the "fill all machines"
	// pattern of §5.4).
	allHot := []cluster.NodeView{
		{Name: "hot", Up: true, CPUs: 2, Speed: 1, Running: 2, ExtLoad: 0.9},
		{Name: "hot2", Up: true, CPUs: 2, Speed: 1, Running: 0, ExtLoad: 0.9},
	}
	if kills := p.Decide(running, allHot); kills != nil {
		t.Fatalf("migrated with no good destination: %v", kills)
	}

	// Kills bounded by destination slots.
	oneSlot := []cluster.NodeView{
		{Name: "hot", Up: true, CPUs: 2, Speed: 1, Running: 2, ExtLoad: 0.9},
		{Name: "cool", Up: true, CPUs: 2, Speed: 1, Running: 1, ExtLoad: 0},
	}
	if kills := p.Decide(running, oneSlot); len(kills) != 1 {
		t.Fatalf("kills = %v, want exactly 1", kills)
	}

	// Cool nodes' jobs stay put.
	calm := []Candidate{{Job: "j3", Node: "cool"}}
	if kills := p.Decide(calm, nodes); len(kills) != 0 {
		t.Fatalf("migrated from a cool node: %v", kills)
	}
}
