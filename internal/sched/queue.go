package sched

import "sort"

// Queue is the activity queue: pending jobs ordered by priority (higher
// first), by tenant fair share among equal priorities, and FIFO within a
// (priority, tenant) pair.
//
// Fair share follows the classic weighted scheme: each tenant accumulates
// usage (charged by the Scheduler as work dispatches), and among heads of
// equal priority the tenant with the smallest usage/quota ratio goes
// first. With a single tenant — or before any usage is charged — the order
// reduces exactly to the legacy queue's (priority desc, arrival FIFO), so
// deterministic simulation traces are unchanged by the tenancy machinery.
//
// The zero value is an empty queue with no quotas (every tenant weight 1).
// Queue is not safe for concurrent use; the engine serializes access
// under its dispatch lock.
type Queue struct {
	tenants map[string]*tenantQueue
	names   []string // tenant first-seen order, for deterministic scans
	quotas  map[string]float64
	usage   map[string]float64
	n       int // global arrival counter (FIFO tie-break)
	size    int
}

// tenantQueue holds one tenant's jobs in (priority desc, arrival asc)
// order.
type tenantQueue struct {
	items []Job
	seq   []int
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int { return q.size }

// SetQuota assigns a tenant's fair-share weight (default 1; larger means
// a larger share). Non-positive weights are ignored.
func (q *Queue) SetQuota(tenant string, weight float64) {
	if weight <= 0 {
		return
	}
	if q.quotas == nil {
		q.quotas = make(map[string]float64)
	}
	q.quotas[tenant] = weight
}

// Charge accrues usage against a tenant; the Scheduler calls it with each
// dispatched job's estimated cost.
func (q *Queue) Charge(tenant string, amount float64) {
	if amount <= 0 {
		return
	}
	if q.usage == nil {
		q.usage = make(map[string]float64)
	}
	q.usage[tenant] += amount
}

// Usage returns a tenant's accumulated charge.
func (q *Queue) Usage(tenant string) float64 { return q.usage[tenant] }

func (q *Queue) weight(tenant string) float64 {
	if w, ok := q.quotas[tenant]; ok {
		return w
	}
	return 1
}

// Push enqueues a job.
func (q *Queue) Push(j Job) {
	if q.tenants == nil {
		q.tenants = make(map[string]*tenantQueue)
	}
	tq, ok := q.tenants[j.Tenant]
	if !ok {
		tq = &tenantQueue{}
		q.tenants[j.Tenant] = tq
		q.names = append(q.names, j.Tenant)
	}
	q.n++
	// Insert keeping (priority desc, seq asc) order within the tenant.
	// The slice is priority-sorted, so the position is found by binary
	// search: first slot with strictly lower priority. Equal-priority jobs
	// (the common case — and all of a recovery's requeued backlog) land at
	// the tail, keeping the push O(log n) instead of a linear scan that
	// copies every Job struct it walks past.
	pos := sort.Search(len(tq.items), func(i int) bool {
		return j.Priority > tq.items[i].Priority
	})
	tq.items = append(tq.items, Job{})
	tq.seq = append(tq.seq, 0)
	copy(tq.items[pos+1:], tq.items[pos:])
	copy(tq.seq[pos+1:], tq.seq[pos:])
	tq.items[pos] = j
	tq.seq[pos] = q.n
	q.size++
}

// headLess reports whether tenant a's job at index ia dispatches before
// tenant b's job at index ib: higher priority first, then smaller weighted
// usage, then arrival order.
func (q *Queue) headLess(a string, ia int, b string, ib int) bool {
	ja, jb := q.tenants[a].items[ia], q.tenants[b].items[ib]
	if ja.Priority != jb.Priority {
		return ja.Priority > jb.Priority
	}
	if a != b {
		ua := q.usage[a] / q.weight(a)
		ub := q.usage[b] / q.weight(b)
		if ua != ub {
			return ua < ub
		}
	}
	return q.tenants[a].seq[ia] < q.tenants[b].seq[ib]
}

// scan visits queued jobs in dispatch order until visit returns true.
// visit receives the owning tenant and the job's index in that tenant's
// sublist, valid until the next mutation.
func (q *Queue) scan(visit func(tenant string, idx int) bool) {
	cursors := make([]int, len(q.names))
	for {
		best := -1
		for ni, name := range q.names {
			if cursors[ni] >= len(q.tenants[name].items) {
				continue
			}
			if best < 0 || q.headLess(name, cursors[ni], q.names[best], cursors[best]) {
				best = ni
			}
		}
		if best < 0 {
			return
		}
		if visit(q.names[best], cursors[best]) {
			return
		}
		cursors[best]++
	}
}

// removeAt deletes one job from a tenant's sublist.
func (q *Queue) removeAt(tenant string, i int) Job {
	tq := q.tenants[tenant]
	j := tq.items[i]
	tq.items = append(tq.items[:i], tq.items[i+1:]...)
	tq.seq = append(tq.seq[:i], tq.seq[i+1:]...)
	q.size--
	return j
}

// Peek returns the head job without removing it.
func (q *Queue) Peek() (Job, bool) {
	var out Job
	found := false
	q.scan(func(tenant string, i int) bool {
		out = q.tenants[tenant].items[i]
		found = true
		return true
	})
	return out, found
}

// Pop removes and returns the head job.
func (q *Queue) Pop() (Job, bool) {
	var tname string
	idx := -1
	q.scan(func(tenant string, i int) bool {
		tname, idx = tenant, i
		return true
	})
	if idx < 0 {
		return Job{}, false
	}
	return q.removeAt(tname, idx), true
}

// PopWhere removes and returns the first job (in dispatch order) for
// which a placement exists, trying pick on each. It returns the job, the
// chosen node, and ok.
func (q *Queue) PopWhere(pick func(Job) (string, bool)) (Job, string, bool) {
	var tname, node string
	idx := -1
	q.scan(func(tenant string, i int) bool {
		if n, ok := pick(q.tenants[tenant].items[i]); ok {
			tname, node, idx = tenant, n, i
			return true
		}
		return false
	})
	if idx < 0 {
		return Job{}, "", false
	}
	return q.removeAt(tname, idx), node, true
}

// Remove deletes a queued job by ID, reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	for _, name := range q.names {
		tq := q.tenants[name]
		for i, j := range tq.items {
			if j.ID == id {
				q.removeAt(name, i)
				return true
			}
		}
	}
	return false
}

// Jobs returns the queued jobs in dispatch order (copy).
func (q *Queue) Jobs() []Job {
	out := make([]Job, 0, q.size)
	q.scan(func(tenant string, i int) bool {
		out = append(out, q.tenants[tenant].items[i])
		return false
	})
	return out
}

// DepthByTenant returns the number of queued jobs per tenant (tenants with
// no queued jobs are omitted).
func (q *Queue) DepthByTenant() map[string]int {
	out := make(map[string]int)
	for _, name := range q.names {
		if n := len(q.tenants[name].items); n > 0 {
			out[name] = n
		}
	}
	return out
}

// DepthByPriority returns the number of queued jobs per priority level.
func (q *Queue) DepthByPriority() map[int]int {
	out := make(map[int]int)
	for _, name := range q.names {
		for _, j := range q.tenants[name].items {
			out[j.Priority]++
		}
	}
	return out
}

// Tenants returns the tenants that have ever queued a job, sorted.
func (q *Queue) Tenants() []string {
	out := append([]string(nil), q.names...)
	sort.Strings(out)
	return out
}
