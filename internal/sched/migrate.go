package sched

import "bioopera/internal/cluster"

// MigrationPolicy decides whether a running job should be killed and
// rescheduled elsewhere — the strategy discussed (and deferred) in §5.4:
// "One strategy to solve this problem would be to have BioOpera abort the
// affected TEU and re-schedule it elsewhere... If the non-BioOpera user
// tends to fill all machines, such a strategy will perform worse than if
// BioOpera had simply left the TEU where it was. If however the user tends
// to use only a subset of the processors, the kill and restart strategy
// may help."
type MigrationPolicy struct {
	// LoadThreshold is the external load above which a node's jobs are
	// migration candidates.
	LoadThreshold float64
	// TargetMaxLoad is the maximum external load of an acceptable
	// destination.
	TargetMaxLoad float64
}

// DefaultMigrationPolicy returns the thresholds used by the experiments.
func DefaultMigrationPolicy() MigrationPolicy {
	return MigrationPolicy{LoadThreshold: 0.6, TargetMaxLoad: 0.2}
}

// Candidate is a running job considered for migration or preemption.
type Candidate struct {
	Job  string
	Node string
}

// Decide returns the jobs to kill: one per free slot on a lightly loaded
// destination, taken from the most heavily loaded source nodes first.
func (p MigrationPolicy) Decide(running []Candidate, nodes []cluster.NodeView) []Candidate {
	byName := make(map[string]cluster.NodeView, len(nodes))
	freeGood := 0
	for _, v := range nodes {
		byName[v.Name] = v
		if v.Up && v.ExtLoad <= p.TargetMaxLoad {
			freeGood += v.FreeSlots()
		}
	}
	if freeGood == 0 {
		return nil
	}
	var out []Candidate
	for _, c := range running {
		v, ok := byName[c.Node]
		if !ok || !v.Up {
			continue
		}
		if v.ExtLoad >= p.LoadThreshold {
			out = append(out, c)
			if len(out) == freeGood {
				break
			}
		}
	}
	return out
}
