package sched

import (
	"sort"
	"time"
)

// DefaultEWMAAlpha is the smoothing factor for the predictor's running
// calibration when the caller does not choose one.
const DefaultEWMAAlpha = 0.3

// Predictor refines per-program cost estimates from execution history,
// the BioWorkbench approach: the static model (darwin's CostModel, or a
// task's declared cost) predicts the shape of an activity's runtime, and
// an EWMA over the observed actual/estimated ratio calibrates it to the
// cluster actually running the work. Completed-activity durations flow in
// through Observe; Estimate scales a fresh model estimate by the learned
// ratio.
//
// The predictor is deterministic (no clock reads; observations arrive in
// engine order) and not safe for concurrent use — the engine serializes
// access under its dispatch lock.
type Predictor struct {
	alpha float64
	ratio map[string]float64
}

// NewPredictor returns a predictor with the given EWMA smoothing factor
// in (0, 1]; out-of-range values fall back to DefaultEWMAAlpha.
func NewPredictor(alpha float64) *Predictor {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &Predictor{alpha: alpha, ratio: make(map[string]float64)}
}

// Observe feeds one completed activity: the estimate it was scheduled
// with and the CPU time it actually consumed. Observations without a key
// or with non-positive durations are ignored.
func (p *Predictor) Observe(key string, estimated, actual time.Duration) {
	if key == "" || estimated <= 0 || actual <= 0 {
		return
	}
	r := float64(actual) / float64(estimated)
	if old, ok := p.ratio[key]; ok {
		p.ratio[key] = old + p.alpha*(r-old)
	} else {
		p.ratio[key] = r
	}
}

// Estimate scales a model estimate by the key's learned calibration
// ratio; with no history (or no model estimate) it returns the model
// estimate unchanged.
func (p *Predictor) Estimate(key string, model time.Duration) time.Duration {
	if r, ok := p.ratio[key]; ok && model > 0 {
		return time.Duration(float64(model) * r)
	}
	return model
}

// Ratio returns the learned actual/estimated ratio for a key.
func (p *Predictor) Ratio(key string) (float64, bool) {
	r, ok := p.ratio[key]
	return r, ok
}

// Keys returns the program keys with history, sorted.
func (p *Predictor) Keys() []string {
	out := make([]string, 0, len(p.ratio))
	for k := range p.ratio {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
