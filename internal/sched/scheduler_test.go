package sched

import (
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
)

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "least-loaded",
		"least-loaded": "least-loaded",
		"first-fit":    "first-fit",
		"fastest":      "fastest",
		"round-robin":  "round-robin",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFairShareInterleaving(t *testing.T) {
	// Tenant a has 3× tenant b's quota. With equal unit charges, the merged
	// dispatch order should give a roughly three jobs for each of b's, and
	// b must never starve outright.
	var q Queue
	q.SetQuota("a", 3)
	q.SetQuota("b", 1)
	for i := 0; i < 12; i++ {
		q.Push(Job{ID: "a" + string(rune('0'+i)), Tenant: "a"})
		q.Push(Job{ID: "b" + string(rune('0'+i)), Tenant: "b"})
	}
	counts := map[string]int{}
	var firstB int = -1
	for i := 0; i < 8; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		counts[j.Tenant]++
		if j.Tenant == "b" && firstB < 0 {
			firstB = i
		}
		// Unit charge per dispatch: usage/weight drives the interleave.
		q.Charge(j.Tenant, 1)
	}
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Fatalf("dispatches in 8 pops: a=%d b=%d, want 3:1", counts["a"], counts["b"])
	}
	if firstB < 0 || firstB > 4 {
		t.Fatalf("tenant b starved: first dispatch at pop %d", firstB)
	}
}

func TestFairShareReducesToFIFOWithoutCharges(t *testing.T) {
	// Without usage charges (or with a single tenant) the fair-share queue
	// must reproduce the legacy (priority desc, FIFO) order exactly — the
	// property that keeps pre-tenancy simulation traces bit-identical.
	var q Queue
	q.SetQuota("a", 3)
	q.Push(Job{ID: "1", Tenant: "a"})
	q.Push(Job{ID: "2", Tenant: "b"})
	q.Push(Job{ID: "3", Tenant: "a"})
	q.Push(Job{ID: "4", Priority: 1, Tenant: "b"})
	want := []string{"4", "1", "2", "3"}
	for _, w := range want {
		j, ok := q.Pop()
		if !ok || j.ID != w {
			t.Fatalf("got %q, want %q", j.ID, w)
		}
	}
}

func TestSchedulerChargesEstimatedCost(t *testing.T) {
	s := New(Config{Quotas: map[string]float64{"a": 1}})
	nodes := []cluster.NodeView{{Name: "n", Up: true, CPUs: 1, Speed: 1}}
	s.Enqueue(Job{ID: "j1", Tenant: "a", Key: "align", Cost: 10 * time.Second})
	if _, _, ok := s.Next(nodes, nil); !ok {
		t.Fatal("dispatch failed")
	}
	if got := s.Usage("a"); got != 10 {
		t.Fatalf("usage = %v, want 10 (model seconds)", got)
	}
	// After observing that the model underestimates 2×, the charge doubles.
	s.Observe("align", 10*time.Second, 20*time.Second)
	s.Enqueue(Job{ID: "j2", Tenant: "a", Key: "align", Cost: 10 * time.Second})
	if _, _, ok := s.Next(nodes, nil); !ok {
		t.Fatal("dispatch failed")
	}
	if got := s.Usage("a"); got <= 15 {
		t.Fatalf("usage = %v, want calibrated charge > 15", got)
	}
}

func TestPredictorCalibration(t *testing.T) {
	p := NewPredictor(0.5)
	if got := p.Estimate("k", 10*time.Second); got != 10*time.Second {
		t.Fatalf("unseen key estimate = %v, want the model", got)
	}
	// Actuals run 2× the model; the EWMA ratio converges toward 2.
	for i := 0; i < 10; i++ {
		p.Observe("k", 10*time.Second, 20*time.Second)
	}
	got := p.Estimate("k", 10*time.Second)
	if got < 19*time.Second || got > 21*time.Second {
		t.Fatalf("calibrated estimate = %v, want ≈ 20s", got)
	}
	// Ignores nonsense observations.
	p.Observe("", 10*time.Second, 20*time.Second)
	p.Observe("k2", 0, 20*time.Second)
	p.Observe("k3", 10*time.Second, 0)
	if keys := p.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestBatcherAutotuning(t *testing.T) {
	idle := []cluster.NodeView{
		{Name: "a", Up: true, CPUs: 2, Speed: 1},
		{Name: "b", Up: true, CPUs: 3, Speed: 1},
	}
	b := NewBatcher(BatchConfig{})
	b.ObserveLoad(idle)
	b.ObserveLoad(idle)
	if got := b.TEUs(idle); got != 20 {
		t.Fatalf("idle TEUs = %d, want FactorIdle×CPUs = 20", got)
	}
	// A load square wave raises stress; the recommendation grows toward
	// FactorLoaded×CPUs (smaller batches under volatility).
	loaded := []cluster.NodeView{
		{Name: "a", Up: true, CPUs: 2, Speed: 1, ExtLoad: 0.8},
		{Name: "b", Up: true, CPUs: 3, Speed: 1, ExtLoad: 0.8},
	}
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			b.ObserveLoad(loaded)
		} else {
			b.ObserveLoad(idle)
		}
	}
	if got := b.TEUs(idle); got <= 20 {
		t.Fatalf("volatile TEUs = %d, want > idle's 20", got)
	}
	if s := b.Stress(); s <= 0 || s > 1 {
		t.Fatalf("stress = %v", s)
	}
	// Down nodes contribute neither load nor CPUs.
	down := []cluster.NodeView{{Name: "a", Up: false, CPUs: 2}}
	fresh := NewBatcher(BatchConfig{Max: 7})
	fresh.ObserveLoad(down) // no up nodes: ignored
	if got := fresh.TEUs(down); got != 4 {
		t.Fatalf("TEUs with no up nodes = %d, want FactorIdle×1 = 4", got)
	}
	if got := fresh.TEUs(idle); got != 7 {
		t.Fatalf("TEUs = %d, want clamped to Max 7", got)
	}
}

func TestUnplaceable(t *testing.T) {
	nodes := []cluster.NodeView{
		{Name: "up", OS: "linux", Up: true, CPUs: 1, Speed: 1},
		{Name: "down", OS: "linux", Up: false, CPUs: 1, Speed: 1},
		{Name: "full", OS: "linux", Up: true, CPUs: 1, Speed: 1, Running: 1},
	}
	cases := []struct {
		name string
		job  Job
		want bool
	}{
		{"no affinity", Job{ID: "j"}, false},
		{"pinned to down node", Job{ID: "j", Nodes: []string{"down"}}, true},
		{"pinned to unknown node", Job{ID: "j", Nodes: []string{"ghost"}}, true},
		{"pinned to down and unknown", Job{ID: "j", Nodes: []string{"down", "ghost"}}, true},
		{"one pinned node up", Job{ID: "j", Nodes: []string{"down", "up"}}, false},
		// A full-but-up node frees slots eventually: keep waiting.
		{"pinned to full node", Job{ID: "j", Nodes: []string{"full"}}, false},
		// OS mismatch is not node death: the job waits for matching capacity.
		{"os mismatch only", Job{ID: "j", OS: "solaris"}, false},
	}
	for _, c := range cases {
		if got := c.job.Unplaceable(nodes); got != c.want {
			t.Errorf("%s: Unplaceable = %v, want %v", c.name, got, c.want)
		}
	}

	s := New(Config{})
	s.Enqueue(Job{ID: "dead", Nodes: []string{"ghost"}})
	s.Enqueue(Job{ID: "ok"})
	dead := s.TakeUnplaceable(nodes)
	if len(dead) != 1 || dead[0].ID != "dead" {
		t.Fatalf("TakeUnplaceable = %v", dead)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d after reap", s.Len())
	}
}

func TestPreemptorDecide(t *testing.T) {
	p := Preemptor{StarvationWait: time.Minute, PriorityGap: 1}
	nodes := []cluster.NodeView{
		{Name: "n1", OS: "linux", Up: true, CPUs: 1, Speed: 1, Running: 1},
		{Name: "n2", OS: "linux", Up: true, CPUs: 1, Speed: 1, Running: 1},
	}
	running := []Running{
		{Job: "lowB", Node: "n2", Priority: 1},
		{Job: "lowA", Node: "n1", Priority: 0},
	}
	now := sim.Time(2 * time.Minute)

	// A starving high-priority job claims the lowest-priority victim.
	kills := p.Decide(now, []Job{{ID: "hi", Priority: 5, Enqueued: 0}}, running, nodes)
	if len(kills) != 1 || kills[0].Job != "lowA" {
		t.Fatalf("kills = %v, want lowA (lowest priority)", kills)
	}

	// Not yet starving → no kill.
	fresh := []Job{{ID: "hi", Priority: 5, Enqueued: now - sim.Time(time.Second)}}
	if kills := p.Decide(now, fresh, running, nodes); kills != nil {
		t.Fatalf("preempted for a fresh job: %v", kills)
	}

	// Equal priority is protected by the gap.
	peer := []Job{{ID: "peer", Priority: 1, Enqueued: 0}}
	if kills := p.Decide(now, peer, running, nodes); len(kills) != 1 || kills[0].Job != "lowA" {
		t.Fatalf("kills = %v, want only the strictly lower lowA", kills)
	}

	// A free slot means dispatch can proceed: no preemption.
	free := append([]cluster.NodeView(nil), nodes...)
	free[0].Running = 0
	if kills := p.Decide(now, []Job{{ID: "hi", Priority: 5, Enqueued: 0}}, running, free); kills != nil {
		t.Fatalf("preempted with a free slot: %v", kills)
	}

	// A job pinned to dead nodes gains nothing from killing.
	pinned := []Job{{ID: "hi", Priority: 5, Enqueued: 0, Nodes: []string{"ghost"}}}
	if kills := p.Decide(now, pinned, running, nodes); kills != nil {
		t.Fatalf("preempted for an unplaceable job: %v", kills)
	}

	// Two starving jobs claim distinct victims; MaxKills bounds the sweep.
	two := []Job{
		{ID: "hi1", Priority: 5, Enqueued: 0},
		{ID: "hi2", Priority: 5, Enqueued: 0},
	}
	if kills := p.Decide(now, two, running, nodes); len(kills) != 2 {
		t.Fatalf("kills = %v, want two distinct victims", kills)
	}
	capped := Preemptor{StarvationWait: time.Minute, PriorityGap: 1, MaxKills: 1}
	if kills := capped.Decide(now, two, running, nodes); len(kills) != 1 {
		t.Fatalf("kills = %v, want MaxKills = 1", kills)
	}
}

func TestSchedulerReset(t *testing.T) {
	s := New(Config{Quotas: map[string]float64{"a": 2}})
	nodes := []cluster.NodeView{{Name: "n", Up: true, CPUs: 4, Speed: 1}}
	s.Enqueue(Job{ID: "a1", Tenant: "a", Key: "k", Cost: time.Second})
	s.Observe("k", time.Second, 2*time.Second)
	if _, _, ok := s.Next(nodes, nil); !ok {
		t.Fatal("dispatch failed")
	}
	s.Enqueue(Job{ID: "a2", Tenant: "a"})
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len = %d after reset", s.Len())
	}
	if s.Usage("a") != 0 {
		t.Fatalf("usage = %v after reset, want 0", s.Usage("a"))
	}
	// Quotas and learned calibration survive the reset.
	if r, ok := s.Predictor().Ratio("k"); !ok || r != 2 {
		t.Fatalf("ratio = %v,%v after reset, want 2", r, ok)
	}
	s.Enqueue(Job{ID: "b1", Tenant: "b"})
	s.Enqueue(Job{ID: "a3", Tenant: "a"})
	s.Charge("a", 1)
	s.Charge("b", 1)
	// With quota a=2 vs b=1 and equal usage, a dispatches first.
	j, _, ok := s.Next(nodes, nil)
	if !ok || j.ID != "a3" {
		t.Fatalf("post-reset dispatch = %+v, want a3 (quota survived)", j)
	}
}
