package sched

import (
	"fmt"

	"bioopera/internal/cluster"
)

// Policy picks a node for a job. Pick returns ok=false when no eligible
// node has capacity (the job stays queued).
type Policy interface {
	Name() string
	Pick(job Job, nodes []cluster.NodeView) (node string, ok bool)
}

// PolicyByName resolves a policy from its flag spelling ("" picks the
// default, least-loaded).
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded{}, nil
	case "first-fit":
		return FirstFit{}, nil
	case "fastest":
		return Fastest{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want first-fit, least-loaded, fastest or round-robin)", name)
}

// FirstFit places each job on the first eligible node in configuration
// order. Simple, deterministic, and prone to hot-spotting — the baseline.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Policy.
func (FirstFit) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	for _, v := range nodes {
		if job.eligible(v) {
			return v.Name, true
		}
	}
	return "", false
}

// LeastLoaded places each job on the eligible node with the most free
// slots, breaking ties by effective speed then name. This is BioOpera's
// default.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	best := -1
	for i, v := range nodes {
		if !job.eligible(v) {
			continue
		}
		if best < 0 || better(v, nodes[best]) {
			best = i
		}
	}
	if best < 0 {
		return "", false
	}
	return nodes[best].Name, true
}

func better(a, b cluster.NodeView) bool {
	if a.FreeSlots() != b.FreeSlots() {
		return a.FreeSlots() > b.FreeSlots()
	}
	if a.EffectiveSpeed() != b.EffectiveSpeed() {
		return a.EffectiveSpeed() > b.EffectiveSpeed()
	}
	return a.Name < b.Name
}

// Fastest places each job on the eligible node with the highest effective
// speed (speed × available share) — best when activity costs vary widely
// and the cluster is heterogeneous.
type Fastest struct{}

// Name implements Policy.
func (Fastest) Name() string { return "fastest" }

// Pick implements Policy.
func (Fastest) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	best := -1
	for i, v := range nodes {
		if !job.eligible(v) {
			continue
		}
		if best < 0 ||
			v.EffectiveSpeed() > nodes[best].EffectiveSpeed() ||
			(v.EffectiveSpeed() == nodes[best].EffectiveSpeed() && v.Name < nodes[best].Name) {
			best = i
		}
	}
	if best < 0 {
		return "", false
	}
	return nodes[best].Name, true
}

// RoundRobin cycles through nodes, skipping ineligible ones. Stateful.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	n := len(nodes)
	if n == 0 {
		return "", false
	}
	for i := 0; i < n; i++ {
		v := nodes[(r.next+i)%n]
		if job.eligible(v) {
			r.next = (r.next + i + 1) % n
			return v.Name, true
		}
	}
	return "", false
}
