package sched

import (
	"sort"
	"time"

	"bioopera/internal/cluster"
)

// Config configures a Scheduler.
type Config struct {
	// Policy places jobs on nodes; defaults to LeastLoaded.
	Policy Policy
	// Quotas assigns per-tenant fair-share weights (unlisted tenants
	// weigh 1).
	Quotas map[string]float64
	// Alpha is the Predictor's EWMA smoothing factor (default
	// DefaultEWMAAlpha).
	Alpha float64
}

// Scheduler composes the queue, the placement policy and the cost
// predictor behind the facade the core dispatcher drives. It is not
// internally synchronized: the engine serializes every call under its
// dispatch lock, exactly as it did for the bare Queue.
type Scheduler struct {
	queue  Queue
	policy Policy
	pred   *Predictor
	quotas map[string]float64 // retained to survive Reset
}

// New builds a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Policy == nil {
		cfg.Policy = LeastLoaded{}
	}
	s := &Scheduler{policy: cfg.Policy, pred: NewPredictor(cfg.Alpha), quotas: cfg.Quotas}
	s.applyQuotas()
	return s
}

func (s *Scheduler) applyQuotas() {
	names := make([]string, 0, len(s.quotas))
	for t := range s.quotas {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		s.queue.SetQuota(t, s.quotas[t])
	}
}

// PolicyName names the active placement policy.
func (s *Scheduler) PolicyName() string { return s.policy.Name() }

// Enqueue adds a job to the queue.
func (s *Scheduler) Enqueue(j Job) { s.queue.Push(j) }

// Next pops the first job in dispatch order that passes admit (nil admits
// everything) and that the policy can place, returning the job and its
// node. The dispatching tenant is charged the job's calibrated cost
// estimate, advancing the fair-share order.
func (s *Scheduler) Next(nodes []cluster.NodeView, admit func(Job) bool) (Job, string, bool) {
	j, node, ok := s.queue.PopWhere(func(j Job) (string, bool) {
		if admit != nil && !admit(j) {
			return "", false
		}
		return s.policy.Pick(j, nodes)
	})
	if ok {
		s.queue.Charge(j.Tenant, s.Estimate(j.Key, j.Cost).Seconds())
	}
	return j, node, ok
}

// TakeUnplaceable removes and returns (in dispatch order) every queued
// job that can never be placed on the given cluster view — its Nodes list
// names only down or unknown nodes. The engine surfaces each as a task
// failure instead of leaving it queued forever.
func (s *Scheduler) TakeUnplaceable(nodes []cluster.NodeView) []Job {
	var dead []Job
	for _, j := range s.queue.Jobs() {
		if j.Unplaceable(nodes) {
			dead = append(dead, j)
		}
	}
	for _, j := range dead {
		s.queue.Remove(j.ID)
	}
	return dead
}

// Remove deletes a queued job by ID.
func (s *Scheduler) Remove(id string) bool { return s.queue.Remove(id) }

// Len reports the queue depth.
func (s *Scheduler) Len() int { return s.queue.Len() }

// Jobs returns the queued jobs in dispatch order.
func (s *Scheduler) Jobs() []Job { return s.queue.Jobs() }

// DepthByTenant reports queue depth per tenant.
func (s *Scheduler) DepthByTenant() map[string]int { return s.queue.DepthByTenant() }

// DepthByPriority reports queue depth per priority level.
func (s *Scheduler) DepthByPriority() map[int]int { return s.queue.DepthByPriority() }

// Usage reports a tenant's accumulated fair-share charge.
func (s *Scheduler) Usage(tenant string) float64 { return s.queue.Usage(tenant) }

// Charge accrues extra usage against a tenant — for work accounted outside
// the ordinary dispatch path (Next charges automatically).
func (s *Scheduler) Charge(tenant string, amount float64) { s.queue.Charge(tenant, amount) }

// Observe feeds one completed activity into the predictor.
func (s *Scheduler) Observe(key string, estimated, actual time.Duration) {
	s.pred.Observe(key, estimated, actual)
}

// Estimate returns the calibrated cost estimate for a program key.
func (s *Scheduler) Estimate(key string, model time.Duration) time.Duration {
	return s.pred.Estimate(key, model)
}

// Predictor exposes the cost predictor (for inspection and reports).
func (s *Scheduler) Predictor() *Predictor { return s.pred }

// Reset wipes the queue and fair-share usage — the engine's crash
// semantics: volatile scheduling state vanishes, configuration (quotas,
// policy) and learned calibration survive with the process.
func (s *Scheduler) Reset() {
	s.queue = Queue{}
	s.applyQuotas()
}
