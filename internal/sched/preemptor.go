package sched

import (
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
)

// Preemptor reclaims nodes from low-priority work when high-priority jobs
// starve in the queue. It only decides; the engine executes the decisions
// through Executor.Kill, whose ErrJobKilled completions ride the ordinary
// checkpoint/requeue machinery — the victim loses at most one activity's
// work (§3.3) and goes back through the queue without consuming a retry.
type Preemptor struct {
	// StarvationWait is how long a queued job must wait before it is
	// considered starving (0 = immediately).
	StarvationWait time.Duration
	// PriorityGap is the minimum priority advantage a starving job must
	// hold over a victim (default semantics: victims strictly lower).
	PriorityGap int
	// MaxKills bounds the victims per sweep (0 = unbounded).
	MaxKills int
}

// DefaultPreemptor returns the tuning used by the experiments: reclaim
// after a minute of starvation, from strictly lower-priority work only.
func DefaultPreemptor() Preemptor {
	return Preemptor{StarvationWait: time.Minute, PriorityGap: 1}
}

// Running is the preemptor's view of one executing job.
type Running struct {
	Job      string
	Node     string
	Priority int
	Tenant   string
}

// Decide returns the running jobs to kill so that starving queued jobs
// can take their slots. queued must be in dispatch order (the Scheduler's
// Jobs). For each starving job that has no free eligible slot — and could
// ever have one — it picks the lowest-priority victim at least
// PriorityGap below it on a node the job can use, breaking ties by job ID
// for determinism. One victim frees one slot, so each is claimed once.
func (p Preemptor) Decide(now sim.Time, queued []Job, running []Running, nodes []cluster.NodeView) []Candidate {
	gap := p.PriorityGap
	if gap < 1 {
		gap = 1
	}
	byName := make(map[string]cluster.NodeView, len(nodes))
	for _, v := range nodes {
		byName[v.Name] = v
	}
	taken := make(map[string]bool, len(running))
	var out []Candidate
	for _, j := range queued {
		if p.MaxKills > 0 && len(out) >= p.MaxKills {
			break
		}
		if p.StarvationWait > 0 && now.Sub(j.Enqueued) < p.StarvationWait {
			continue
		}
		if j.Placeable(nodes) {
			// A free slot exists; dispatch will take it without a kill.
			continue
		}
		if j.Unplaceable(nodes) {
			// Killing cannot help a job pinned to dead nodes.
			continue
		}
		best := -1
		for i, r := range running {
			if taken[r.Job] || r.Priority > j.Priority-gap {
				continue
			}
			v, ok := byName[r.Node]
			if !ok || !v.Up || !j.matches(v) {
				continue
			}
			if best < 0 || r.Priority < running[best].Priority ||
				(r.Priority == running[best].Priority && r.Job < running[best].Job) {
				best = i
			}
		}
		if best >= 0 {
			taken[running[best].Job] = true
			out = append(out, Candidate{Job: running[best].Job, Node: running[best].Node})
		}
	}
	return out
}
