// Package sched is the scheduling subsystem of the BioOpera server. It
// grew out of the dispatcher's placement helpers (§3.2: "If the choice of
// assignment is not unique, the node is determined by the scheduling and
// load balancing policy in use") into four cooperating concerns:
//
//   - Queue    priority + per-tenant fair-share ordering with quotas
//   - Policy   node placement (first-fit, least-loaded, fastest, round-robin)
//   - Predictor cost-model calibration from completed-activity durations
//   - Batcher  granularity autotuning from cluster load feedback (Fig. 4)
//   - Preemptor node reclamation for starving high-priority work, riding
//     the engine's checkpoint/requeue machinery
//
// Scheduler composes them behind one facade the core dispatcher drives.
// Everything here is deterministic: no wall-clock reads, no map-order
// dependent decisions — the package is part of biooperalint's
// replay-identical set.
package sched

import (
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
)

// Job is the scheduler's view of an activity awaiting placement.
type Job struct {
	// ID identifies the activity instance.
	ID string
	// Cost is the estimated reference-CPU time (0 = unknown). For the
	// simulated cluster this doubles as the work actually charged, so the
	// Predictor refines estimates for accounting without touching Cost.
	Cost time.Duration
	// Priority orders the activity queue (higher first).
	Priority int
	// OS restricts placement to nodes running the given OS ("" = any).
	// This models the library element's per-activity runtime
	// requirements (§3.2).
	OS string
	// Nodes restricts placement to the named nodes (nil = any); used
	// for dedicated-node setups like §5.4's "the slower ik-sun cluster
	// was responsible for the refinement stages".
	Nodes []string
	// Tenant is the fair-share accounting bucket the job's usage charges
	// to ("" = the default tenant).
	Tenant string
	// Key identifies the job's program for the Predictor's per-program
	// execution history ("" disables estimation).
	Key string
	// Enqueued is the virtual time the job entered the queue; the
	// Preemptor uses it to detect starvation.
	Enqueued sim.Time
}

// matches reports whether a node satisfies the job's static placement
// constraints (OS and node affinity), ignoring liveness and capacity.
func (j Job) matches(v cluster.NodeView) bool {
	if j.OS != "" && v.OS != j.OS {
		return false
	}
	if len(j.Nodes) > 0 {
		found := false
		for _, n := range j.Nodes {
			if n == v.Name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// eligible reports whether a node can accept the job right now.
func (j Job) eligible(v cluster.NodeView) bool {
	if !v.Up || v.FreeSlots() <= 0 {
		return false
	}
	return j.matches(v)
}

// Placeable reports whether some node can accept the job right now.
func (j Job) Placeable(nodes []cluster.NodeView) bool {
	for _, v := range nodes {
		if j.eligible(v) {
			return true
		}
	}
	return false
}

// Unplaceable reports whether the job can never be placed on the given
// cluster view: it names specific nodes and every one of them is down or
// unknown. Such a job must not queue silently forever — the engine surfaces
// it as a task failure. A job without node affinity is never Unplaceable
// (capacity and matching OSes can still appear), and a named node that is
// merely full keeps the job placeable-later.
func (j Job) Unplaceable(nodes []cluster.NodeView) bool {
	if len(j.Nodes) == 0 {
		return false
	}
	for _, want := range j.Nodes {
		for _, v := range nodes {
			if v.Name == want && v.Up {
				return false
			}
		}
	}
	return true
}
