// Package sched provides the placement and load-balancing policies the
// BioOpera dispatcher uses to assign activities to cluster nodes (§3.2:
// "If the choice of assignment is not unique, the node is determined by
// the scheduling and load balancing policy in use").
package sched

import (
	"time"

	"bioopera/internal/cluster"
)

// Job is the dispatcher's view of an activity awaiting placement.
type Job struct {
	// ID identifies the activity instance.
	ID string
	// Cost is the estimated reference-CPU time (0 = unknown).
	Cost time.Duration
	// Priority orders the activity queue (higher first).
	Priority int
	// OS restricts placement to nodes running the given OS ("" = any).
	// This models the library element's per-activity runtime
	// requirements (§3.2).
	OS string
	// Nodes restricts placement to the named nodes (nil = any); used
	// for dedicated-node setups like §5.4's "the slower ik-sun cluster
	// was responsible for the refinement stages".
	Nodes []string
}

// eligible reports whether a node can accept the job right now.
func (j Job) eligible(v cluster.NodeView) bool {
	if !v.Up || v.FreeSlots() <= 0 {
		return false
	}
	if j.OS != "" && v.OS != j.OS {
		return false
	}
	if len(j.Nodes) > 0 {
		found := false
		for _, n := range j.Nodes {
			if n == v.Name {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Policy picks a node for a job. Pick returns ok=false when no eligible
// node has capacity (the job stays queued).
type Policy interface {
	Name() string
	Pick(job Job, nodes []cluster.NodeView) (node string, ok bool)
}

// FirstFit places each job on the first eligible node in configuration
// order. Simple, deterministic, and prone to hot-spotting — the baseline.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Pick implements Policy.
func (FirstFit) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	for _, v := range nodes {
		if job.eligible(v) {
			return v.Name, true
		}
	}
	return "", false
}

// LeastLoaded places each job on the eligible node with the most free
// slots, breaking ties by effective speed then name. This is BioOpera's
// default.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	best := -1
	for i, v := range nodes {
		if !job.eligible(v) {
			continue
		}
		if best < 0 || better(v, nodes[best]) {
			best = i
		}
	}
	if best < 0 {
		return "", false
	}
	return nodes[best].Name, true
}

func better(a, b cluster.NodeView) bool {
	if a.FreeSlots() != b.FreeSlots() {
		return a.FreeSlots() > b.FreeSlots()
	}
	if a.EffectiveSpeed() != b.EffectiveSpeed() {
		return a.EffectiveSpeed() > b.EffectiveSpeed()
	}
	return a.Name < b.Name
}

// Fastest places each job on the eligible node with the highest effective
// speed (speed × available share) — best when activity costs vary widely
// and the cluster is heterogeneous.
type Fastest struct{}

// Name implements Policy.
func (Fastest) Name() string { return "fastest" }

// Pick implements Policy.
func (Fastest) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	best := -1
	for i, v := range nodes {
		if !job.eligible(v) {
			continue
		}
		if best < 0 ||
			v.EffectiveSpeed() > nodes[best].EffectiveSpeed() ||
			(v.EffectiveSpeed() == nodes[best].EffectiveSpeed() && v.Name < nodes[best].Name) {
			best = i
		}
	}
	if best < 0 {
		return "", false
	}
	return nodes[best].Name, true
}

// RoundRobin cycles through nodes, skipping ineligible ones. Stateful.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(job Job, nodes []cluster.NodeView) (string, bool) {
	n := len(nodes)
	if n == 0 {
		return "", false
	}
	for i := 0; i < n; i++ {
		v := nodes[(r.next+i)%n]
		if job.eligible(v) {
			r.next = (r.next + i + 1) % n
			return v.Name, true
		}
	}
	return "", false
}

// Queue is the activity queue: pending jobs ordered by priority (higher
// first) and FIFO within a priority.
type Queue struct {
	items []Job
	seq   []int
	n     int
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int { return len(q.items) }

// Push enqueues a job.
func (q *Queue) Push(j Job) {
	q.n++
	// Insert keeping (priority desc, seq asc) order.
	pos := len(q.items)
	for i, it := range q.items {
		if j.Priority > it.Priority {
			pos = i
			break
		}
	}
	q.items = append(q.items, Job{})
	q.seq = append(q.seq, 0)
	copy(q.items[pos+1:], q.items[pos:])
	copy(q.seq[pos+1:], q.seq[pos:])
	q.items[pos] = j
	q.seq[pos] = q.n
}

// Peek returns the head job without removing it.
func (q *Queue) Peek() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	return q.items[0], true
}

// Pop removes and returns the head job.
func (q *Queue) Pop() (Job, bool) {
	if len(q.items) == 0 {
		return Job{}, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	q.seq = q.seq[1:]
	return j, true
}

// PopWhere removes and returns the first job (in queue order) for which a
// placement exists, trying pick on each. It returns the job, the chosen
// node, and ok.
func (q *Queue) PopWhere(pick func(Job) (string, bool)) (Job, string, bool) {
	for i, j := range q.items {
		if node, ok := pick(j); ok {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.seq = append(q.seq[:i], q.seq[i+1:]...)
			return j, node, true
		}
	}
	return Job{}, "", false
}

// Remove deletes a queued job by ID, reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	for i, j := range q.items {
		if j.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.seq = append(q.seq[:i], q.seq[i+1:]...)
			return true
		}
	}
	return false
}

// Jobs returns the queued jobs in order (copy).
func (q *Queue) Jobs() []Job { return append([]Job(nil), q.items...) }

// MigrationPolicy decides whether a running job should be killed and
// rescheduled elsewhere — the strategy discussed (and deferred) in §5.4:
// "One strategy to solve this problem would be to have BioOpera abort the
// affected TEU and re-schedule it elsewhere... If the non-BioOpera user
// tends to fill all machines, such a strategy will perform worse than if
// BioOpera had simply left the TEU where it was. If however the user tends
// to use only a subset of the processors, the kill and restart strategy
// may help."
type MigrationPolicy struct {
	// LoadThreshold is the external load above which a node's jobs are
	// migration candidates.
	LoadThreshold float64
	// TargetMaxLoad is the maximum external load of an acceptable
	// destination.
	TargetMaxLoad float64
}

// DefaultMigrationPolicy returns the thresholds used by the experiments.
func DefaultMigrationPolicy() MigrationPolicy {
	return MigrationPolicy{LoadThreshold: 0.6, TargetMaxLoad: 0.2}
}

// Candidate is a running job considered for migration.
type Candidate struct {
	Job  string
	Node string
}

// Decide returns the jobs to kill: one per free slot on a lightly loaded
// destination, taken from the most heavily loaded source nodes first.
func (p MigrationPolicy) Decide(running []Candidate, nodes []cluster.NodeView) []Candidate {
	byName := make(map[string]cluster.NodeView, len(nodes))
	freeGood := 0
	for _, v := range nodes {
		byName[v.Name] = v
		if v.Up && v.ExtLoad <= p.TargetMaxLoad {
			freeGood += v.FreeSlots()
		}
	}
	if freeGood == 0 {
		return nil
	}
	var out []Candidate
	for _, c := range running {
		v, ok := byName[c.Node]
		if !ok || !v.Up {
			continue
		}
		if v.ExtLoad >= p.LoadThreshold {
			out = append(out, c)
			if len(out) == freeGood {
				break
			}
		}
	}
	return out
}
