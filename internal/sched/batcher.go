package sched

import (
	"bioopera/internal/cluster"
	"bioopera/internal/obs"
)

// BatchConfig tunes granularity autotuning.
type BatchConfig struct {
	// FactorIdle is the TEUs-per-CPU target on a quiet cluster. Fig. 4's
	// sweep puts the wall-time optimum near 4× the CPU count: large
	// batches amortize DarwinInit, but below ~4× the merge barrier waits
	// on stragglers.
	FactorIdle float64
	// FactorLoaded is the TEUs-per-CPU target under heavy or volatile
	// external load: smaller batches lose less work to preemption and
	// rebalance around slowed nodes. Past ~2× the idle factor the per-batch
	// overhead (Fig. 4's S3 tail) eats the rebalancing gain, so the default
	// doubles rather than explodes the batch count.
	FactorLoaded float64
	// Min and Max clamp the recommendation (Max 0 = uncapped).
	Min, Max int
	// Alpha smooths the load and volatility trackers (default 0.5).
	Alpha float64
	// Metrics, when non-nil, registers the batch-size histogram
	// bioopera_sched_batch_teus, observed on every recommendation.
	Metrics *obs.Registry
}

// DefaultBatchConfig returns the paper-derived tuning.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{FactorIdle: 4, FactorLoaded: 8, Min: 1, Alpha: 0.5}
}

// Batcher recommends how many task execution units to split a workload
// into, from cluster load feedback: batches grow (fewer TEUs) on idle
// nodes and shrink (more TEUs) when external load is high or volatile.
// Feed it NodeView samples via ObserveLoad — from the simulated cluster,
// the local pool, or remote heartbeats — then ask TEUs for the current
// recommendation. Deterministic; not safe for concurrent use.
type Batcher struct {
	cfg    BatchConfig
	avg    float64 // EWMA of mean external load across up nodes
	vol    float64 // EWMA of |load delta| between samples
	seeded bool
	hist   *obs.Histogram
}

// NewBatcher builds a batcher; zero config fields fall back to
// DefaultBatchConfig values.
func NewBatcher(cfg BatchConfig) *Batcher {
	def := DefaultBatchConfig()
	if cfg.FactorIdle <= 0 {
		cfg.FactorIdle = def.FactorIdle
	}
	if cfg.FactorLoaded <= 0 {
		cfg.FactorLoaded = def.FactorLoaded
	}
	if cfg.Min <= 0 {
		cfg.Min = def.Min
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	b := &Batcher{cfg: cfg}
	if cfg.Metrics != nil {
		b.hist = cfg.Metrics.Histogram("bioopera_sched_batch_teus",
			"Batch sizes (task execution units) recommended by the granularity autotuner.",
			obs.SizeBuckets)
	}
	return b
}

// ObserveLoad folds one cluster snapshot into the load trackers: the mean
// external load across up nodes updates the level EWMA, and the absolute
// change since the previous sample updates the volatility EWMA.
func (b *Batcher) ObserveLoad(nodes []cluster.NodeView) {
	var sum float64
	var up int
	for _, v := range nodes {
		if v.Up {
			sum += v.ExtLoad
			up++
		}
	}
	if up == 0 {
		return
	}
	load := sum / float64(up)
	if !b.seeded {
		b.avg = load
		b.seeded = true
		return
	}
	delta := load - b.avg
	if delta < 0 {
		delta = -delta
	}
	b.vol += b.cfg.Alpha * (delta - b.vol)
	b.avg += b.cfg.Alpha * (load - b.avg)
}

// AvgLoad returns the smoothed mean external load.
func (b *Batcher) AvgLoad() float64 { return b.avg }

// Volatility returns the smoothed per-sample load swing.
func (b *Batcher) Volatility() float64 { return b.vol }

// Stress folds load level and volatility into one [0, 1] figure that
// drives the idle→loaded interpolation: volatility counts double because
// a swinging cluster invalidates placement decisions faster than a
// steadily busy one.
func (b *Batcher) Stress() float64 {
	s := b.avg + 2*b.vol
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// TEUs recommends the number of task execution units for the given
// cluster: FactorIdle×CPUs on a quiet cluster, sliding toward
// FactorLoaded×CPUs as stress rises, clamped to [Min, Max].
func (b *Batcher) TEUs(nodes []cluster.NodeView) int {
	cpus := 0
	for _, v := range nodes {
		if v.Up {
			cpus += v.CPUs
		}
	}
	if cpus == 0 {
		cpus = 1
	}
	f := b.cfg.FactorIdle + (b.cfg.FactorLoaded-b.cfg.FactorIdle)*b.Stress()
	teus := int(f*float64(cpus) + 0.5)
	if teus < b.cfg.Min {
		teus = b.cfg.Min
	}
	if b.cfg.Max > 0 && teus > b.cfg.Max {
		teus = b.cfg.Max
	}
	b.hist.Observe(float64(teus))
	return teus
}
