package cluster

import (
	"math"
	"testing"
	"time"

	"bioopera/internal/sim"
)

// testMonitorConfig keeps the adaptation bounds tight so tests converge
// within simulated minutes.
func testMonitorConfig() MonitorConfig {
	return MonitorConfig{
		BaseInterval: 10 * time.Second,
		MinInterval:  5 * time.Second,
		MaxInterval:  80 * time.Second,
		SampleCutoff: 0.05,
		ReportCutoff: 0.10,
		Grow:         2,
		Shrink:       0.5,
	}
}

func TestMonitorIntervalAdapts(t *testing.T) {
	s := sim.New(1)
	stable := NewAdaptiveMonitor(s, testMonitorConfig(), func() float64 { return 0.5 }, nil)
	var load float64
	noisy := NewAdaptiveMonitor(s, testMonitorConfig(), func() float64 { load += 0.2; return load }, nil)
	s.RunUntil(sim.Time(10 * time.Minute))
	stable.Stop()
	noisy.Stop()

	// The stable source drives the interval to MaxInterval, the changing
	// one to MinInterval, so the noisy monitor samples far more often.
	if noisy.Samples < 3*stable.Samples {
		t.Errorf("noisy=%d samples vs stable=%d: interval did not adapt", noisy.Samples, stable.Samples)
	}
	// A constant load is reported exactly once.
	if stable.Reports != 1 {
		t.Errorf("stable monitor sent %d reports, want 1", stable.Reports)
	}
	// A load moving 0.2 per sample beats ReportCutoff every time.
	if noisy.Reports != noisy.Samples {
		t.Errorf("noisy monitor sent %d reports for %d samples, want every sample reported", noisy.Reports, noisy.Samples)
	}
}

func TestMonitorReportCutoffSuppressesJitter(t *testing.T) {
	// The two cutoffs are independent (§3.4): a load oscillating ±0.03
	// around 0.5 beats SampleCutoff — so the interval stays near
	// MinInterval and the sampler stays busy — yet never moves ≥
	// ReportCutoff from the last reported value, so the server hears
	// nothing after the first report.
	s := sim.New(1)
	var flip bool
	source := func() float64 {
		flip = !flip
		if flip {
			return 0.53
		}
		return 0.47
	}
	var reports []float64
	m := NewAdaptiveMonitor(s, testMonitorConfig(), source, func(_ sim.Time, load float64) {
		reports = append(reports, load)
	})
	s.RunUntil(sim.Time(30 * time.Minute))
	m.Stop()

	if m.Reports != 1 || len(reports) != 1 {
		t.Fatalf("got %d reports (%v), want only the initial one", m.Reports, reports)
	}
	if m.Samples < 20 {
		t.Fatalf("only %d samples: the oscillation should hold the interval near MinInterval", m.Samples)
	}
	if f := m.DiscardFraction(); f < 0.9 {
		t.Errorf("discard fraction = %.2f, want ≥ 0.9", f)
	}
}

func TestMonitorStop(t *testing.T) {
	s := sim.New(1)
	cfg := testMonitorConfig()
	cfg.MaxInterval = 10 * time.Second
	m := NewAdaptiveMonitor(s, cfg, func() float64 { return 0 }, nil)
	s.RunUntil(sim.Time(time.Minute))
	if m.Samples == 0 {
		t.Fatal("monitor never sampled")
	}
	n := m.Samples
	m.Stop()
	s.RunUntil(sim.Time(10 * time.Minute))
	if m.Samples != n {
		t.Errorf("samples grew from %d to %d after Stop", n, m.Samples)
	}
}

func TestLoadTraceMeanAbsError(t *testing.T) {
	var tr LoadTrace
	tr.Add(0, 0.5)
	horizon := sim.Time(time.Minute)
	if e := tr.MeanAbsError(func(sim.Time) float64 { return 0.5 }, horizon, time.Second); e != 0 {
		t.Errorf("error against matching truth = %v, want 0", e)
	}
	e := tr.MeanAbsError(func(sim.Time) float64 { return 0.7 }, horizon, time.Second)
	if math.Abs(e-0.2) > 1e-9 {
		t.Errorf("error against offset truth = %v, want 0.2", e)
	}
	if e := tr.MeanAbsError(func(sim.Time) float64 { return 1 }, 0, time.Second); e != 0 {
		t.Errorf("zero horizon error = %v, want 0", e)
	}
	if e := tr.MeanAbsError(func(sim.Time) float64 { return 1 }, horizon, 0); e != 0 {
		t.Errorf("zero step error = %v, want 0", e)
	}
}
