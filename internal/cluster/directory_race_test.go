package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// TestDirectoryExtLoadSurvivesRejoin pins the lost-update fix: the external
// load describes the machine, not the connection, so a refresh Join (worker
// rejoin, re-announce) must not zero the last observed load.
func TestDirectoryExtLoadSurvivesRejoin(t *testing.T) {
	d := NewDirectory()
	d.Join(NodeView{Name: "w1-00", Up: true, CPUs: 2, Speed: 1})
	if !d.SetExtLoad("w1-00", 0.7) {
		t.Fatal("SetExtLoad unknown node")
	}
	d.Join(NodeView{Name: "w1-00", Up: true, CPUs: 4, Speed: 1}) // rejoin
	v, ok := d.Get("w1-00")
	if !ok || v.ExtLoad != 0.7 {
		t.Fatalf("ExtLoad after rejoin = %+v, want 0.7 preserved", v)
	}
	if v.CPUs != 4 || v.Running != 0 {
		t.Fatalf("rejoin did not refresh shape: %+v", v)
	}
	// A genuinely new node starts with no load history.
	d.Join(NodeView{Name: "w2-00", Up: true, CPUs: 1, Speed: 1})
	if v, _ := d.Get("w2-00"); v.ExtLoad != 0 {
		t.Fatalf("fresh node ExtLoad = %v", v.ExtLoad)
	}
}

// TestDirectoryChurnRace hammers every Directory entry point from
// concurrent goroutines — membership churn (Join/Leave/SetUp), load
// reports, slot traffic, and iterating readers — and then checks the
// invariants the scheduler depends on: join order matches the registry
// exactly, running counts stay within [0, CPUs], loads stay clamped, and
// a node's recorded load survives rejoin churn. Run with -race.
func TestDirectoryChurnRace(t *testing.T) {
	d := NewDirectory()
	const nodes = 8
	const rounds = 400
	name := func(i int) string { return fmt.Sprintf("n-%02d", i) }
	for i := 0; i < nodes; i++ {
		d.Join(NodeView{Name: name(i), Up: true, CPUs: 2, Speed: 1})
	}

	var wg sync.WaitGroup
	// Churners: leave and rejoin their node repeatedly.
	for i := 0; i < nodes/2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				d.Leave(name(i))
				d.Join(NodeView{Name: name(i), Up: true, CPUs: 2, Speed: 1})
				d.SetUp(name(i), r%2 == 0)
			}
		}(i)
	}
	// Load reporters: hammer SetExtLoad across all nodes, including ones
	// mid-churn (unknown nodes are a clean false, never a panic).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := 0; i < nodes; i++ {
					d.SetExtLoad(name(i), float64((r+g)%5)/4)
				}
			}
		}(g)
	}
	// Slot traffic on the stable half of the fleet.
	for i := nodes / 2; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := d.Reserve(name(i)); err == nil {
					d.Release(name(i))
				}
			}
		}(i)
	}
	// Readers: iterate and spot-check while everything above runs.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, v := range d.Nodes() {
					if v.Running < 0 || v.Running > v.CPUs {
						t.Errorf("node %s Running=%d CPUs=%d", v.Name, v.Running, v.CPUs)
						return
					}
					if v.ExtLoad < 0 || v.ExtLoad > 1 {
						t.Errorf("node %s ExtLoad=%v out of range", v.Name, v.ExtLoad)
						return
					}
				}
				d.Get(name(r % nodes))
				d.Len()
			}
		}()
	}
	wg.Wait()

	// Post-storm invariants: the order slice and the registry agree
	// exactly (no duplicate or dangling order entries).
	views := d.Nodes()
	if len(views) != d.Len() {
		t.Fatalf("Nodes() returned %d views, Len() = %d", len(views), d.Len())
	}
	seen := make(map[string]bool, len(views))
	for _, v := range views {
		if seen[v.Name] {
			t.Fatalf("duplicate node %s in join order", v.Name)
		}
		seen[v.Name] = true
		got, ok := d.Get(v.Name)
		if !ok {
			t.Fatalf("order entry %s missing from registry", v.Name)
		}
		if got.Running < 0 || got.Running > got.CPUs {
			t.Fatalf("node %s Running=%d CPUs=%d", v.Name, got.Running, got.CPUs)
		}
	}
	// The stable half never left, so every one of those must be present
	// with its last reported load intact (reporters always end in-range).
	for i := nodes / 2; i < nodes; i++ {
		if _, ok := d.Get(name(i)); !ok {
			t.Fatalf("stable node %s lost", name(i))
		}
	}
}
