package cluster

import (
	"errors"
	"testing"
)

func TestDirectoryJoinReserveRelease(t *testing.T) {
	d := NewDirectory()
	d.Join(NodeView{Name: "w1-00", OS: "linux", Up: true, CPUs: 2, Speed: 1})
	d.Join(NodeView{Name: "w2-00", OS: "linux", Up: true, CPUs: 1, Speed: 1})
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Reserve("w1-00"); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve("w1-00"); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve("w1-00"); !errors.Is(err, ErrNoFreeCPU) {
		t.Fatalf("third Reserve = %v, want ErrNoFreeCPU", err)
	}
	if err := d.Reserve("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Reserve(ghost) = %v, want ErrUnknownNode", err)
	}
	views := d.Nodes()
	if len(views) != 2 || views[0].Name != "w1-00" || views[0].Running != 2 {
		t.Fatalf("Nodes = %+v", views)
	}
	d.Release("w1-00")
	if v, _ := d.Get("w1-00"); v.Running != 1 {
		t.Fatalf("Running after Release = %d", v.Running)
	}
}

func TestDirectoryDownAndRejoin(t *testing.T) {
	d := NewDirectory()
	d.Join(NodeView{Name: "w1-00", Up: true, CPUs: 1, Speed: 1})
	if err := d.Reserve("w1-00"); err != nil {
		t.Fatal(err)
	}
	if !d.SetUp("w1-00", false) {
		t.Fatal("SetUp unknown")
	}
	if err := d.Reserve("w1-00"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Reserve(down) = %v, want ErrNodeDown", err)
	}
	// A release straggling in after the node went down must not underflow.
	d.Release("w1-00")
	if v, _ := d.Get("w1-00"); v.Running != 0 {
		t.Fatalf("Running = %d", v.Running)
	}
	// Rejoin refreshes the view in place and keeps its position.
	d.Join(NodeView{Name: "w1-00", Up: true, CPUs: 4, Speed: 2})
	v, ok := d.Get("w1-00")
	if !ok || !v.Up || v.CPUs != 4 || v.Running != 0 {
		t.Fatalf("rejoined view = %+v", v)
	}
	if d.Len() != 1 {
		t.Fatalf("Len after rejoin = %d", d.Len())
	}
	if !d.Leave("w1-00") || d.Leave("w1-00") {
		t.Fatal("Leave bookkeeping broken")
	}
	if d.Len() != 0 {
		t.Fatalf("Len after Leave = %d", d.Len())
	}
}
