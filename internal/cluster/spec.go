// Package cluster models the computing infrastructure BioOpera manages:
// heterogeneous nodes with one or more CPUs, per-node program execution
// clients (PECs) with adaptive load monitoring, competing external load,
// and the failure/maintenance events of a real shared cluster.
//
// The primary implementation runs on the discrete-event simulator
// (internal/sim), so the month-long lifecycles of the paper's §5 replay
// deterministically in milliseconds. The node speeds and counts below
// mirror the paper's three clusters (§5.1).
package cluster

// NodeSpec describes one machine of a cluster (the configuration space
// holds one of these per node).
type NodeSpec struct {
	// Name identifies the node ("linneus03").
	Name string
	// CPUs is the number of processors.
	CPUs int
	// Speed is the per-CPU throughput relative to a reference CPU
	// (1.0 = one ik-linux 650 MHz processor).
	Speed float64
	// OS is informational ("linux", "solaris").
	OS string
}

// Spec describes a whole cluster.
type Spec struct {
	Name  string
	Nodes []NodeSpec
}

// TotalCPUs returns the summed CPU count.
func (s Spec) TotalCPUs() int {
	var n int
	for _, node := range s.Nodes {
		n += node.CPUs
	}
	return n
}

// IkSun returns the ik-sun cluster of §5.1: five single-CPU Sun Ultra 5
// workstations (360 MHz) — the exclusive-mode cluster of the granularity
// experiment (Fig. 4).
func IkSun() Spec {
	s := Spec{Name: "ik-sun"}
	for i := 0; i < 5; i++ {
		s.Nodes = append(s.Nodes, NodeSpec{
			Name: nodeName("iksun", i), CPUs: 1, Speed: 0.55, OS: "solaris",
		})
	}
	return s
}

// IkLinux returns the ik-linux cluster of §5.1: eight two-processor PCs
// (650 MHz). The second run (Fig. 6) started with one CPU per node and
// was upgraded to two mid-run; NewSim can be configured with
// InitialCPUs to model that.
func IkLinux() Spec {
	s := Spec{Name: "ik-linux"}
	for i := 0; i < 8; i++ {
		s.Nodes = append(s.Nodes, NodeSpec{
			Name: nodeName("iklinux", i), CPUs: 2, Speed: 1.0, OS: "linux",
		})
	}
	return s
}

// Linneus returns the linneus cluster of §5.1: sixteen two-processor PCs
// (500 MHz) plus one six-CPU Sun Enterprise (336 MHz) — 38 CPUs total,
// matching the ≈40-processor peak of Fig. 5 (together with two ik-sun
// nodes).
func Linneus() Spec {
	s := Spec{Name: "linneus"}
	for i := 0; i < 16; i++ {
		s.Nodes = append(s.Nodes, NodeSpec{
			Name: nodeName("linneus", i), CPUs: 2, Speed: 0.77, OS: "linux",
		})
	}
	s.Nodes = append(s.Nodes, NodeSpec{Name: "linneus-sun", CPUs: 6, Speed: 0.52, OS: "solaris"})
	return s
}

// SharedRunSpec returns the infrastructure of the first all-vs-all run
// (§5.4): the linneus cluster plus two ik-sun nodes, 40 CPUs at peak.
func SharedRunSpec() Spec {
	s := Linneus()
	s.Name = "linneus+iksun"
	ik := IkSun()
	s.Nodes = append(s.Nodes, ik.Nodes[0], ik.Nodes[1])
	return s
}

// Merge combines clusters into one spec.
func Merge(name string, specs ...Spec) Spec {
	out := Spec{Name: name}
	for _, s := range specs {
		out.Nodes = append(out.Nodes, s.Nodes...)
	}
	return out
}

func nodeName(prefix string, i int) string {
	return prefix + "-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
