package cluster

import (
	"fmt"
	"sync"
)

// Directory is a thread-safe registry of dynamically joining and leaving
// nodes — the membership view behind executors whose capacity is not fixed
// at construction: the local worker pool and the remote worker server. It
// maintains the NodeView slice the scheduler reads and the per-node
// running count the placement policies balance on. Unlike the simulated
// Cluster it carries no failure model of its own; owners mark nodes up and
// down as they learn about the world (worker joins, heartbeat timeouts).
type Directory struct {
	mu    sync.Mutex
	nodes map[string]*NodeView
	order []string // join order, for deterministic Nodes()
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{nodes: make(map[string]*NodeView)}
}

// Join adds a node or refreshes a known one (a rejoining worker keeps its
// position in the view). The node comes back with no running jobs: any
// work it carried before leaving was requeued when it was declared dead.
// The recorded external load survives a refresh — it describes the
// machine, not the connection, so a SetExtLoad racing a rejoin must not
// be lost until the next monitor report.
func (d *Directory) Join(v NodeView) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v.Running = 0
	if prev, known := d.nodes[v.Name]; known {
		v.ExtLoad = prev.ExtLoad
	} else {
		d.order = append(d.order, v.Name)
	}
	d.nodes[v.Name] = &v
}

// Leave removes a node entirely; it reports whether the node was known.
func (d *Directory) Leave(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[name]; !ok {
		return false
	}
	delete(d.nodes, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	return true
}

// SetUp marks a node up or down without forgetting it; a node going down
// sheds its running count (its jobs are being requeued). It reports
// whether the node was known.
func (d *Directory) SetUp(name string, up bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return false
	}
	n.Up = up
	if !up {
		n.Running = 0
	}
	return true
}

// SetExtLoad records a node's observed external (non-BioOpera) load, the
// feedback the batcher's granularity autotuning and the migration policy
// react to. Load is clamped to [0, 1]. It reports whether the node was
// known.
func (d *Directory) SetExtLoad(name string, load float64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return false
	}
	if load < 0 {
		load = 0
	} else if load > 1 {
		load = 1
	}
	n.ExtLoad = load
	return true
}

// Get returns a node's current view.
func (d *Directory) Get(name string) (NodeView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return NodeView{}, false
	}
	return *n, true
}

// Reserve takes one CPU slot on the node, failing like the simulated
// cluster does so dispatch errors route through the same requeue path.
func (d *Directory) Reserve(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !n.Up {
		return fmt.Errorf("%w: %s", ErrNodeDown, name)
	}
	if n.Running >= n.CPUs {
		return fmt.Errorf("%w: %s", ErrNoFreeCPU, name)
	}
	n.Running++
	return nil
}

// Release frees one CPU slot taken by Reserve. Releases after the node
// went down (or left and rejoined) are ignored — SetUp already zeroed the
// count.
func (d *Directory) Release(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.nodes[name]; ok && n.Running > 0 {
		n.Running--
	}
}

// Nodes returns the current views in join order.
func (d *Directory) Nodes() []NodeView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeView, 0, len(d.order))
	for _, name := range d.order {
		out = append(out, *d.nodes[name])
	}
	return out
}

// Len reports how many nodes are registered (up or down).
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.nodes)
}
