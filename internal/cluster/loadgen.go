package cluster

import (
	"time"

	"bioopera/internal/sim"
)

// LoadGenConfig shapes the competing-user load on a shared cluster (§5.4:
// "the cluster was shared with other users, BioOpera jobs were run in nice
// mode, giving priority to the other users, who at some times utilized the
// cluster very heavily").
type LoadGenConfig struct {
	// MeanIdle is the mean time a node stays idle between bursts.
	MeanIdle time.Duration
	// MeanBurst is the mean duration of a competing burst.
	MeanBurst time.Duration
	// LevelLo and LevelHi bound the burst intensity (uniform draw).
	LevelLo, LevelHi float64
	// Nodes restricts generation to these nodes (nil = all).
	Nodes []string
	// Fill, when set, makes every burst hit *all* selected nodes at
	// once (the "user tends to fill all machines" pattern of §5.4);
	// otherwise each node bursts independently (the "subset" pattern).
	Fill bool
}

// DefaultLoadGenConfig models a busy shared cluster.
func DefaultLoadGenConfig() LoadGenConfig {
	return LoadGenConfig{
		MeanIdle:  4 * time.Hour,
		MeanBurst: 2 * time.Hour,
		LevelLo:   0.4,
		LevelHi:   1.0,
	}
}

// LoadGen drives external load on a cluster using the simulator's seeded
// randomness, so runs are reproducible.
type LoadGen struct {
	c       *Cluster
	cfg     LoadGenConfig
	stopped bool
}

// NewLoadGen attaches a generator to the cluster and starts it.
func NewLoadGen(c *Cluster, cfg LoadGenConfig) *LoadGen {
	if cfg.MeanIdle <= 0 {
		cfg.MeanIdle = 4 * time.Hour
	}
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = 2 * time.Hour
	}
	if cfg.LevelHi <= 0 {
		cfg.LevelHi = 1
	}
	if cfg.LevelLo < 0 {
		cfg.LevelLo = 0
	}
	g := &LoadGen{c: c, cfg: cfg}
	nodes := cfg.Nodes
	if nodes == nil {
		for _, v := range c.Nodes() {
			nodes = append(nodes, v.Name)
		}
	}
	if cfg.Fill {
		g.scheduleFill(nodes)
	} else {
		for _, n := range nodes {
			g.scheduleNode(n)
		}
	}
	return g
}

// Stop halts the generator after the current burst cycle.
func (g *LoadGen) Stop() { g.stopped = true }

func (g *LoadGen) expDelay(mean time.Duration) time.Duration {
	d := time.Duration(g.c.S.Rand().ExpFloat64() * float64(mean))
	if d < time.Second {
		d = time.Second
	}
	return d
}

func (g *LoadGen) level() float64 {
	return g.cfg.LevelLo + g.c.S.Rand().Float64()*(g.cfg.LevelHi-g.cfg.LevelLo)
}

// scheduleNode runs the idle→burst→idle cycle for one node.
func (g *LoadGen) scheduleNode(name string) {
	g.c.S.After(g.expDelay(g.cfg.MeanIdle), func(sim.Time) {
		if g.stopped {
			return
		}
		lvl := g.level()
		g.c.SetExternalLoad(name, lvl)
		g.c.S.After(g.expDelay(g.cfg.MeanBurst), func(sim.Time) {
			g.c.SetExternalLoad(name, 0)
			if !g.stopped {
				g.scheduleNode(name)
			}
		})
	})
}

// scheduleFill runs cluster-wide bursts across all nodes simultaneously.
func (g *LoadGen) scheduleFill(nodes []string) {
	g.c.S.After(g.expDelay(g.cfg.MeanIdle), func(sim.Time) {
		if g.stopped {
			return
		}
		lvl := g.level()
		for _, n := range nodes {
			g.c.SetExternalLoad(n, lvl)
		}
		g.c.S.After(g.expDelay(g.cfg.MeanBurst), func(sim.Time) {
			for _, n := range nodes {
				g.c.SetExternalLoad(n, 0)
			}
			if !g.stopped {
				g.scheduleFill(nodes)
			}
		})
	})
}
