package cluster

import (
	"math"
	"time"

	"bioopera/internal/sim"
)

// MonitorConfig tunes the adaptive monitoring technique of §3.4: "the PEC
// compares the last recorded load with the current load at that node. If
// the change falls below some predetermined cut-off level, the interval
// before the next sampling is increased. Otherwise, the interval is
// decreased. Second, the PEC notifies the BioOpera server of changes in
// load only if the amount of change has increased/decreased beyond a
// second predetermined cut-off level."
type MonitorConfig struct {
	// BaseInterval is the initial sampling period.
	BaseInterval time.Duration
	// MinInterval and MaxInterval bound the adaptation.
	MinInterval time.Duration
	MaxInterval time.Duration
	// SampleCutoff is the load delta below which the interval grows.
	SampleCutoff float64
	// ReportCutoff is the minimum delta vs. the last report before the
	// server is notified.
	ReportCutoff float64
	// Grow and Shrink scale the interval on stable/changing load.
	Grow   float64
	Shrink float64
}

// DefaultMonitorConfig returns the configuration used by the experiments.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		BaseInterval: 10 * time.Second,
		MinInterval:  5 * time.Second,
		MaxInterval:  5 * time.Minute,
		SampleCutoff: 0.05,
		ReportCutoff: 0.10,
		Grow:         1.6,
		Shrink:       0.5,
	}
}

func (c *MonitorConfig) fill() {
	if c.BaseInterval <= 0 {
		c.BaseInterval = 10 * time.Second
	}
	if c.MinInterval <= 0 {
		c.MinInterval = time.Second
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 5 * time.Minute
	}
	if c.SampleCutoff <= 0 {
		c.SampleCutoff = 0.05
	}
	if c.ReportCutoff <= 0 {
		c.ReportCutoff = 0.10
	}
	if c.Grow <= 1 {
		c.Grow = 1.6
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		c.Shrink = 0.5
	}
}

// AdaptiveMonitor is the load-monitoring half of a PEC. It samples a load
// source on the simulator clock and forwards significant changes to the
// server.
type AdaptiveMonitor struct {
	cfg      MonitorConfig
	s        *sim.Sim
	source   func() float64
	report   func(at sim.Time, load float64)
	interval time.Duration
	last     float64
	reported float64
	hasData  bool
	stopped  bool

	// Samples counts local measurements; Reports counts server
	// notifications. Their ratio is the §3.4 "90% of samples
	// discarded" claim.
	Samples int
	Reports int
}

// NewAdaptiveMonitor starts a monitor on s. source returns the node's
// current true load; report delivers notifications to the server.
func NewAdaptiveMonitor(s *sim.Sim, cfg MonitorConfig, source func() float64, report func(at sim.Time, load float64)) *AdaptiveMonitor {
	cfg.fill()
	m := &AdaptiveMonitor{cfg: cfg, s: s, source: source, report: report, interval: cfg.BaseInterval}
	m.schedule()
	return m
}

// Stop halts sampling.
func (m *AdaptiveMonitor) Stop() { m.stopped = true }

func (m *AdaptiveMonitor) schedule() {
	m.s.After(m.interval, func(now sim.Time) {
		if m.stopped {
			return
		}
		m.sample(now)
		m.schedule()
	})
}

func (m *AdaptiveMonitor) sample(now sim.Time) {
	load := m.source()
	m.Samples++
	delta := math.Abs(load - m.last)
	if m.hasData && delta < m.cfg.SampleCutoff {
		m.interval = time.Duration(float64(m.interval) * m.cfg.Grow)
		if m.interval > m.cfg.MaxInterval {
			m.interval = m.cfg.MaxInterval
		}
	} else {
		m.interval = time.Duration(float64(m.interval) * m.cfg.Shrink)
		if m.interval < m.cfg.MinInterval {
			m.interval = m.cfg.MinInterval
		}
	}
	if !m.hasData || math.Abs(load-m.reported) >= m.cfg.ReportCutoff {
		m.reported = load
		m.Reports++
		if m.report != nil {
			m.report(now, load)
		}
	}
	m.last = load
	m.hasData = true
}

// DiscardFraction is the fraction of samples never sent to the server.
func (m *AdaptiveMonitor) DiscardFraction() float64 {
	if m.Samples == 0 {
		return 0
	}
	return 1 - float64(m.Reports)/float64(m.Samples)
}

// LoadTrace is the server-side view of a node's load: a right-continuous
// step function of the reported values, used to compare the server's
// picture against the true load curve.
type LoadTrace struct {
	times []sim.Time
	loads []float64
}

// Add appends a report (times must be non-decreasing).
func (t *LoadTrace) Add(at sim.Time, load float64) {
	t.times = append(t.times, at)
	t.loads = append(t.loads, load)
}

// Len returns the number of reports.
func (t *LoadTrace) Len() int { return len(t.times) }

// At returns the server's belief about the load at time x (the last
// report at or before x; 0 before the first report).
func (t *LoadTrace) At(x sim.Time) float64 {
	// Binary search for the last index with times[i] <= x.
	lo, hi := 0, len(t.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.times[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return t.loads[lo-1]
}

// MeanAbsError compares the trace against truth sampled every step over
// [0, horizon] — the paper's "average 3% error per sample".
func (t *LoadTrace) MeanAbsError(truth func(sim.Time) float64, horizon sim.Time, step time.Duration) float64 {
	if step <= 0 || horizon <= 0 {
		return 0
	}
	var sum float64
	var n int
	for x := sim.Time(0); x <= horizon; x = x.Add(step) {
		sum += math.Abs(truth(x) - t.At(x))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
