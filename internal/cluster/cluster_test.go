package cluster

import (
	"errors"
	"math"
	"testing"
	"time"

	"bioopera/internal/sim"
)

// testCluster builds a 2-node × 2-CPU cluster collecting completions and
// events.
func testCluster(t *testing.T) (*sim.Sim, *Cluster, *[]Completion, *[]Event) {
	t.Helper()
	s := sim.New(1)
	var comps []Completion
	var events []Event
	spec := Spec{Name: "test", Nodes: []NodeSpec{
		{Name: "n1", CPUs: 2, Speed: 1.0, OS: "linux"},
		{Name: "n2", CPUs: 2, Speed: 0.5, OS: "solaris"},
	}}
	c := New(s, spec, Options{
		OnCompletion: func(cp Completion) { comps = append(comps, cp) },
		OnEvent:      func(e Event) { events = append(events, e) },
	})
	return s, c, &comps, &events
}

func TestSpecs(t *testing.T) {
	if got := IkSun().TotalCPUs(); got != 5 {
		t.Errorf("ik-sun CPUs = %d, want 5", got)
	}
	if got := IkLinux().TotalCPUs(); got != 16 {
		t.Errorf("ik-linux CPUs = %d, want 16", got)
	}
	if got := Linneus().TotalCPUs(); got != 38 {
		t.Errorf("linneus CPUs = %d, want 38", got)
	}
	if got := SharedRunSpec().TotalCPUs(); got != 40 {
		t.Errorf("shared-run CPUs = %d, want 40", got)
	}
	m := Merge("both", IkSun(), IkLinux())
	if m.TotalCPUs() != 21 || len(m.Nodes) != 13 {
		t.Errorf("merge = %d cpus / %d nodes", m.TotalCPUs(), len(m.Nodes))
	}
	// Node names unique across the shared spec.
	seen := map[string]bool{}
	for _, n := range SharedRunSpec().Nodes {
		if seen[n.Name] {
			t.Errorf("duplicate node name %s", n.Name)
		}
		seen[n.Name] = true
	}
}

func TestJobRunsForCost(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	if err := c.Start("j1", "n1", 10*time.Second, false); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*comps) != 1 {
		t.Fatalf("completions = %d", len(*comps))
	}
	cp := (*comps)[0]
	if cp.Err != nil || cp.Job != "j1" || cp.Node != "n1" {
		t.Fatalf("completion = %+v", cp)
	}
	// Speed 1.0, no load: wall == cost == cpu.
	if cp.End.Sub(cp.Start) != 10*time.Second {
		t.Fatalf("wall = %v", cp.End.Sub(cp.Start))
	}
	if d := cp.CPUTime - 10*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("cpu = %v", cp.CPUTime)
	}
}

func TestSlowNodeTakesLonger(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.Start("fast", "n1", 10*time.Second, false)
	c.Start("slow", "n2", 10*time.Second, false) // speed 0.5
	s.Run()
	var fast, slow Completion
	for _, cp := range *comps {
		if cp.Job == "fast" {
			fast = cp
		} else {
			slow = cp
		}
	}
	if slow.End.Sub(slow.Start) != 2*fast.End.Sub(fast.Start) {
		t.Fatalf("slow wall %v, fast wall %v", slow.End.Sub(slow.Start), fast.End.Sub(fast.Start))
	}
}

func TestCPUSlotLimit(t *testing.T) {
	_, c, _, _ := testCluster(t)
	if err := c.Start("a", "n1", time.Hour, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Start("b", "n1", time.Hour, false); err != nil {
		t.Fatal(err)
	}
	err := c.Start("d", "n1", time.Hour, false)
	if !errors.Is(err, ErrNoFreeCPU) {
		t.Fatalf("third job on 2-cpu node: %v", err)
	}
	if err := c.Start("a", "n2", time.Hour, false); err == nil {
		// duplicate ids on other nodes are allowed at the cluster
		// level? no — only per node; this should succeed.
	}
	if got := c.BusyCPUs(); got != 3 {
		t.Fatalf("BusyCPUs = %d", got)
	}
}

func TestUnknownNode(t *testing.T) {
	_, c, _, _ := testCluster(t)
	if err := c.Start("x", "ghost", time.Second, false); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Node("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestNiceJobSlowsUnderExternalLoad(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.SetExternalLoad("n1", 0.5)
	c.Start("nice", "n1", 10*time.Second, true)
	s.Run()
	cp := (*comps)[0]
	// share = 0.5 → wall = 20s, cpu = 10s.
	if cp.End.Sub(cp.Start) != 20*time.Second {
		t.Fatalf("wall = %v, want 20s", cp.End.Sub(cp.Start))
	}
	if d := cp.CPUTime - 10*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("cpu = %v, want 10s", cp.CPUTime)
	}
}

func TestNonNiceIgnoresLoad(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.SetExternalLoad("n1", 0.9)
	c.Start("rude", "n1", 10*time.Second, false)
	s.Run()
	if wall := (*comps)[0].End.Sub((*comps)[0].Start); wall != 10*time.Second {
		t.Fatalf("non-nice wall = %v", wall)
	}
}

func TestLoadChangeMidJob(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.Start("j", "n1", 10*time.Second, true)
	// After 5s of full speed (5s of work done), load hits 0.5 → the
	// remaining 5s of work takes 10s more. Total wall 15s.
	s.At(sim.Time(5*time.Second), func(sim.Time) { c.SetExternalLoad("n1", 0.5) })
	s.Run()
	cp := (*comps)[0]
	if wall := cp.End.Sub(cp.Start); wall != 15*time.Second {
		t.Fatalf("wall = %v, want 15s", wall)
	}
	// CPU = 5s (full) + 10s×0.5 = 10s.
	if d := cp.CPUTime - 10*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("cpu = %v, want 10s", cp.CPUTime)
	}
}

func TestNiceNeverStarves(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.SetExternalLoad("n1", 1.0) // fully busy with other users
	c.Start("j", "n1", time.Second, true)
	s.Run()
	if len(*comps) != 1 {
		t.Fatal("job starved forever under full load")
	}
}

func TestCrashFailsRunningJobs(t *testing.T) {
	s, c, comps, events := testCluster(t)
	c.Start("a", "n1", time.Hour, false)
	c.Start("b", "n1", time.Hour, false)
	s.At(sim.Time(time.Minute), func(sim.Time) { c.CrashNode("n1") })
	s.Run()
	if len(*comps) != 2 {
		t.Fatalf("completions = %d", len(*comps))
	}
	for _, cp := range *comps {
		if !errors.Is(cp.Err, ErrNodeFailed) {
			t.Fatalf("completion err = %v", cp.Err)
		}
		if cp.End != sim.Time(time.Minute) {
			t.Fatalf("failure at %v", cp.End)
		}
	}
	// Node is down: no new jobs.
	if err := c.Start("c", "n1", time.Second, false); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("start on crashed node: %v", err)
	}
	// Availability reflects it.
	if got := c.AvailableCPUs(); got != 2 {
		t.Fatalf("AvailableCPUs = %d, want 2 (only n2)", got)
	}
	var sawDown bool
	for _, e := range *events {
		if e.Type == EvNodeDown && e.Node == "n1" {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("no node-down event")
	}
}

func TestRestoreNode(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.CrashNode("n1")
	c.RestoreNode("n1")
	if err := c.Start("j", "n1", time.Second, false); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(*comps) != 1 || (*comps)[0].Err != nil {
		t.Fatalf("completions = %+v", comps)
	}
	// Idempotent.
	if err := c.RestoreNode("n1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatal(err)
	}
}

func TestKill(t *testing.T) {
	s, c, comps, _ := testCluster(t)
	c.Start("victim", "n1", time.Hour, false)
	s.At(sim.Time(time.Minute), func(sim.Time) {
		if err := c.Kill("victim", "n1"); err != nil {
			t.Errorf("Kill: %v", err)
		}
	})
	s.Run()
	if len(*comps) != 1 || !errors.Is((*comps)[0].Err, ErrJobKilled) {
		t.Fatalf("completions = %+v", *comps)
	}
	if err := c.Kill("victim", "n1"); err == nil {
		t.Fatal("double kill succeeded")
	}
}

func TestSetCPUs(t *testing.T) {
	_, c, _, _ := testCluster(t)
	if err := c.SetCPUs("n1", 4); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Node("n1")
	if v.CPUs != 4 || v.FreeSlots() != 4 {
		t.Fatalf("view = %+v", v)
	}
	for i := 0; i < 4; i++ {
		if err := c.Start(JobID(rune('a'+i)), "n1", time.Hour, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start("e", "n1", time.Hour, false); !errors.Is(err, ErrNoFreeCPU) {
		t.Fatal("upgrade did not bound slots")
	}
	if err := c.SetCPUs("n1", 0); err == nil {
		t.Fatal("0 cpus accepted")
	}
}

func TestLoadMetric(t *testing.T) {
	_, c, _, _ := testCluster(t)
	if got := c.Load("n1"); got != 0 {
		t.Fatalf("idle load = %v", got)
	}
	c.Start("j", "n1", time.Hour, false)
	if got := c.Load("n1"); got != 0.5 {
		t.Fatalf("1-of-2 load = %v", got)
	}
	c.SetExternalLoad("n1", 0.8)
	if got := c.Load("n1"); got != 1 {
		t.Fatalf("clamped load = %v", got)
	}
	c.CrashNode("n1")
	if got := c.Load("n1"); got != 0 {
		t.Fatalf("down-node load = %v", got)
	}
}

func TestRunningOnAndViews(t *testing.T) {
	_, c, _, _ := testCluster(t)
	c.Start("a", "n1", time.Hour, false)
	ids := c.RunningOn("n1")
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("RunningOn = %v", ids)
	}
	views := c.Nodes()
	if len(views) != 2 || views[0].Name != "n1" || views[1].Name != "n2" {
		t.Fatalf("views = %+v", views)
	}
	if views[0].Running != 1 || views[1].Running != 0 {
		t.Fatalf("running counts = %+v", views)
	}
	if views[1].EffectiveSpeed() != 0.5 {
		t.Fatalf("effective speed = %v", views[1].EffectiveSpeed())
	}
}

func TestAdaptiveMonitorStableLoadDiscards(t *testing.T) {
	s := sim.New(3)
	load := 0.4 // perfectly stable
	var trace LoadTrace
	m := NewAdaptiveMonitor(s, DefaultMonitorConfig(),
		func() float64 { return load },
		func(at sim.Time, l float64) { trace.Add(at, l) })
	s.RunUntil(sim.Time(24 * time.Hour))
	m.Stop()
	if m.Samples < 10 {
		t.Fatalf("samples = %d", m.Samples)
	}
	if m.Reports != 1 {
		t.Fatalf("stable load reported %d times, want 1", m.Reports)
	}
	if m.DiscardFraction() < 0.9 {
		t.Fatalf("discard fraction = %v", m.DiscardFraction())
	}
	// Server view settles at the true value.
	if got := trace.At(sim.Time(12 * time.Hour)); got != 0.4 {
		t.Fatalf("server view = %v", got)
	}
}

func TestAdaptiveMonitorTracksChanges(t *testing.T) {
	s := sim.New(3)
	var load float64
	truth := func(x sim.Time) float64 {
		if x >= sim.Time(time.Hour) && x < sim.Time(2*time.Hour) {
			return 0.9
		}
		return 0.1
	}
	s.At(0, func(sim.Time) { load = 0.1 })
	s.At(sim.Time(time.Hour), func(sim.Time) { load = 0.9 })
	s.At(sim.Time(2*time.Hour), func(sim.Time) { load = 0.1 })
	var trace LoadTrace
	m := NewAdaptiveMonitor(s, DefaultMonitorConfig(),
		func() float64 { return load },
		func(at sim.Time, l float64) { trace.Add(at, l) })
	s.RunUntil(sim.Time(4 * time.Hour))
	m.Stop()
	if trace.Len() < 3 {
		t.Fatalf("reports = %d, want ≥ 3 (both transitions seen)", trace.Len())
	}
	err := trace.MeanAbsError(truth, sim.Time(4*time.Hour), time.Minute)
	// Error must be small despite discarding most samples.
	if err > 0.08 {
		t.Fatalf("mean abs error = %v", err)
	}
	if m.DiscardFraction() < 0.5 {
		t.Fatalf("discard fraction = %v, want mostly discarded", m.DiscardFraction())
	}
}

func TestLoadTraceAt(t *testing.T) {
	var tr LoadTrace
	if tr.At(sim.Time(5)) != 0 {
		t.Fatal("empty trace should read 0")
	}
	tr.Add(sim.Time(10*time.Second), 0.5)
	tr.Add(sim.Time(20*time.Second), 0.8)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{5 * time.Second, 0},
		{10 * time.Second, 0.5},
		{15 * time.Second, 0.5},
		{20 * time.Second, 0.8},
		{99 * time.Second, 0.8},
	}
	for _, c := range cases {
		if got := tr.At(sim.Time(c.at)); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestLoadGenDeterministicAndBounded(t *testing.T) {
	run := func() []Event {
		s := sim.New(77)
		var events []Event
		c := New(s, IkLinux(), Options{
			OnEvent: func(e Event) { events = append(events, e) },
		})
		NewLoadGen(c, LoadGenConfig{
			MeanIdle:  time.Hour,
			MeanBurst: 30 * time.Minute,
			LevelLo:   0.3,
			LevelHi:   0.9,
		})
		s.RunUntil(sim.Time(48 * time.Hour))
		return events
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("load generator produced no events in 48h")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadGenFillPattern(t *testing.T) {
	s := sim.New(5)
	c := New(s, IkLinux(), Options{})
	NewLoadGen(c, LoadGenConfig{
		MeanIdle:  time.Hour,
		MeanBurst: time.Hour,
		LevelLo:   0.5,
		LevelHi:   0.5,
		Fill:      true,
	})
	// Sample during the simulation: whenever any node is loaded, all
	// must be equally loaded.
	violations := 0
	s.Every(10*time.Minute, func(sim.Time) {
		views := c.Nodes()
		first := views[0].ExtLoad
		for _, v := range views {
			if math.Abs(v.ExtLoad-first) > 1e-9 {
				violations++
			}
		}
	})
	s.RunUntil(sim.Time(72 * time.Hour))
	if violations > 0 {
		t.Fatalf("fill pattern violated on %d samples", violations)
	}
}
