package cluster

import (
	"errors"
	"fmt"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// Errors reported to the engine.
var (
	// ErrNodeDown means the target node is unavailable.
	ErrNodeDown = errors.New("cluster: node down")
	// ErrNoFreeCPU means every CPU slot of the node is taken.
	ErrNoFreeCPU = errors.New("cluster: no free cpu")
	// ErrNodeFailed is the failure delivered for jobs lost to a crash.
	ErrNodeFailed = errors.New("cluster: node failed while running job")
	// ErrJobKilled is delivered when the engine kills a job (migration).
	ErrJobKilled = errors.New("cluster: job killed")
	// ErrUnknownNode names a node outside the configuration.
	ErrUnknownNode = errors.New("cluster: unknown node")
)

// JobID identifies a running job (the engine uses activity instance IDs).
type JobID string

// Completion reports the outcome of a job to the engine.
type Completion struct {
	Job     JobID
	Node    string
	Start   sim.Time
	End     sim.Time
	CPUTime time.Duration // CPU actually consumed on the node
	Err     error         // infrastructure failure (nil on success)

	// Outputs and ProgramErr are set by executors that ran the
	// external program on the node itself (the local real-time pool);
	// the simulated cluster leaves them nil and the engine runs the
	// program at completion time instead.
	Outputs    map[string]ocr.Value
	ProgramErr error
}

// EventType classifies infrastructure events for the awareness model.
type EventType uint8

// Infrastructure event types.
const (
	EvNodeDown EventType = iota
	EvNodeUp
	EvCPUChange
	EvLoadChange
	EvJobStart
	EvJobEnd
	EvJobFail
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EvNodeDown:
		return "node-down"
	case EvNodeUp:
		return "node-up"
	case EvCPUChange:
		return "cpu-change"
	case EvLoadChange:
		return "load-change"
	case EvJobStart:
		return "job-start"
	case EvJobEnd:
		return "job-end"
	case EvJobFail:
		return "job-fail"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Event is one infrastructure occurrence.
type Event struct {
	At     sim.Time
	Type   EventType
	Node   string
	Detail string
}

// minNiceRate keeps nice jobs progressing even under full external load,
// mirroring OS scheduling (nice never means starved forever).
const minNiceRate = 0.03

// runningJob tracks one job's progress on a node.
type runningJob struct {
	id        JobID
	node      *node
	remaining float64 // reference-CPU seconds of work left
	rate      float64 // reference-units per wall second = speed × share
	share     float64 // fraction of a CPU the job receives
	updated   sim.Time
	started   sim.Time
	cpuUsed   time.Duration
	nice      bool
	timer     *sim.Timer
}

// node is the runtime state of one machine.
type node struct {
	spec    NodeSpec
	cpus    int // current CPU count (upgrades change it)
	up      bool
	extLoad float64 // fraction of the node consumed by other users [0,1]
	jobs    map[JobID]*runningJob
}

// Cluster is the simulated infrastructure. It must only be used from the
// simulation goroutine (the DES is single-threaded by design).
type Cluster struct {
	S     *sim.Sim
	nodes map[string]*node
	order []string // deterministic iteration order

	onCompletion func(Completion)
	onEvent      func(Event)

	// accounting for utilization traces
	busyIntegral float64 // CPU-slot-seconds of BioOpera work, integrated
	lastAccount  sim.Time
}

// Options configure a simulated cluster.
type Options struct {
	// OnCompletion receives every job completion/failure. Required
	// before Start is called.
	OnCompletion func(Completion)
	// OnEvent receives infrastructure events (may be nil).
	OnEvent func(Event)
	// InitialCPUs overrides the per-node CPU count at startup (used by
	// the Fig. 6 upgrade scenario: start at 1, upgrade to spec).
	InitialCPUs int
}

// New builds a simulated cluster on s.
func New(s *sim.Sim, spec Spec, opts Options) *Cluster {
	c := &Cluster{
		S:            s,
		nodes:        make(map[string]*node, len(spec.Nodes)),
		onCompletion: opts.OnCompletion,
		onEvent:      opts.OnEvent,
	}
	for _, ns := range spec.Nodes {
		cpus := ns.CPUs
		if opts.InitialCPUs > 0 && opts.InitialCPUs < cpus {
			cpus = opts.InitialCPUs
		}
		c.nodes[ns.Name] = &node{spec: ns, cpus: cpus, up: true, jobs: make(map[JobID]*runningJob)}
		c.order = append(c.order, ns.Name)
	}
	return c
}

// SetHandlers installs the completion and event callbacks after
// construction (the engine and cluster reference each other).
func (c *Cluster) SetHandlers(onCompletion func(Completion), onEvent func(Event)) {
	c.onCompletion = onCompletion
	c.onEvent = onEvent
}

func (c *Cluster) emit(t EventType, nodeName, detail string) {
	if c.onEvent != nil {
		c.onEvent(Event{At: c.S.Now(), Type: t, Node: nodeName, Detail: detail})
	}
}

// NodeView is a scheduler-facing snapshot of one node.
type NodeView struct {
	Name    string
	OS      string
	Up      bool
	CPUs    int
	Speed   float64
	Running int     // BioOpera jobs currently on the node
	ExtLoad float64 // external (non-BioOpera) load fraction
}

// FreeSlots returns how many more jobs the node can take.
func (v NodeView) FreeSlots() int {
	if !v.Up {
		return 0
	}
	return v.CPUs - v.Running
}

// EffectiveSpeed estimates the rate a new nice job would get.
func (v NodeView) EffectiveSpeed() float64 {
	share := 1 - v.ExtLoad
	if share < minNiceRate {
		share = minNiceRate
	}
	return v.Speed * share
}

// Nodes returns a deterministic snapshot of every node.
func (c *Cluster) Nodes() []NodeView {
	out := make([]NodeView, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.view(c.nodes[name]))
	}
	return out
}

func (c *Cluster) view(n *node) NodeView {
	return NodeView{
		Name:    n.spec.Name,
		OS:      n.spec.OS,
		Up:      n.up,
		CPUs:    n.cpus,
		Speed:   n.spec.Speed,
		Running: len(n.jobs),
		ExtLoad: n.extLoad,
	}
}

// Node returns the view of one node.
func (c *Cluster) Node(name string) (NodeView, error) {
	n, ok := c.nodes[name]
	if !ok {
		return NodeView{}, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	return c.view(n), nil
}

// AvailableCPUs returns the number of CPU slots on nodes that are up.
func (c *Cluster) AvailableCPUs() int {
	var n int
	for _, name := range c.order {
		if node := c.nodes[name]; node.up {
			n += node.cpus
		}
	}
	return n
}

// BusyCPUs returns the number of CPU slots running BioOpera jobs.
func (c *Cluster) BusyCPUs() int {
	var n int
	for _, name := range c.order {
		n += len(c.nodes[name].jobs)
	}
	return n
}

// EffectiveBusy returns the number of processors *actually computing*
// BioOpera jobs: each running job contributes its current CPU share
// (nice jobs under competing load contribute little). This is the
// "processor utilization" series of the paper's Figs. 5 and 6.
func (c *Cluster) EffectiveBusy() float64 {
	var sum float64
	for _, name := range c.order {
		for _, j := range c.nodes[name].jobs {
			sum += j.shareNow()
		}
	}
	return sum
}

// Start launches a job of the given reference-CPU cost on a node. nice
// jobs yield to external load (the paper ran everything in nice mode on
// the shared cluster).
func (c *Cluster) Start(id JobID, nodeName string, cost time.Duration, nice bool) error {
	n, ok := c.nodes[nodeName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	if !n.up {
		return fmt.Errorf("%w: %s", ErrNodeDown, nodeName)
	}
	if len(n.jobs) >= n.cpus {
		return fmt.Errorf("%w: %s", ErrNoFreeCPU, nodeName)
	}
	if _, dup := n.jobs[id]; dup {
		return fmt.Errorf("cluster: job %s already running on %s", id, nodeName)
	}
	j := &runningJob{
		id:        id,
		node:      n,
		remaining: cost.Seconds(),
		updated:   c.S.Now(),
		started:   c.S.Now(),
		nice:      nice,
	}
	n.jobs[id] = j
	c.reschedule(j)
	c.emit(EvJobStart, nodeName, string(id))
	return nil
}

// share returns the CPU fraction a job receives on its node right now.
func (j *runningJob) shareNow() float64 {
	if !j.nice {
		return 1
	}
	s := 1 - j.node.extLoad
	if s < minNiceRate {
		s = minNiceRate
	}
	return s
}

// settle accrues progress since the last update.
func (c *Cluster) settle(j *runningJob) {
	now := c.S.Now()
	elapsed := now.Sub(j.updated).Seconds()
	if elapsed > 0 && j.rate > 0 {
		done := elapsed * j.rate
		if done > j.remaining {
			done = j.remaining
		}
		j.remaining -= done
		// CPU consumed = wall × share.
		j.cpuUsed += time.Duration(elapsed * j.share * float64(time.Second))
	}
	j.updated = now
}

// reschedule recomputes the job's rate and (re)arms its completion timer.
func (c *Cluster) reschedule(j *runningJob) {
	if j.timer != nil {
		j.timer.Stop()
	}
	j.share = j.shareNow()
	j.rate = j.node.spec.Speed * j.share
	eta := time.Duration(j.remaining / j.rate * float64(time.Second))
	if eta < 0 {
		eta = 0
	}
	j.timer = c.S.AfterCancel(eta, func(sim.Time) { c.finish(j, nil) })
}

// finish settles and completes a job (err non-nil for failures).
func (c *Cluster) finish(j *runningJob, err error) {
	c.settle(j)
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	delete(j.node.jobs, j.id)
	if err == nil {
		c.emit(EvJobEnd, j.node.spec.Name, string(j.id))
	} else {
		c.emit(EvJobFail, j.node.spec.Name, fmt.Sprintf("%s: %v", j.id, err))
	}
	if c.onCompletion != nil {
		c.onCompletion(Completion{
			Job:     j.id,
			Node:    j.node.spec.Name,
			Start:   j.started,
			End:     c.S.Now(),
			CPUTime: j.cpuUsed,
			Err:     err,
		})
	}
}

// Kill aborts a running job (the kill-and-restart migration strategy).
func (c *Cluster) Kill(id JobID, nodeName string) error {
	n, ok := c.nodes[nodeName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	j, ok := n.jobs[id]
	if !ok {
		return fmt.Errorf("cluster: job %s not on %s", id, nodeName)
	}
	c.finish(j, ErrJobKilled)
	return nil
}

// RunningOn lists the jobs currently executing on a node.
func (c *Cluster) RunningOn(nodeName string) []JobID {
	n, ok := c.nodes[nodeName]
	if !ok {
		return nil
	}
	ids := make([]JobID, 0, len(n.jobs))
	for id := range n.jobs {
		ids = append(ids, id)
	}
	return ids
}

// CrashNode takes a node down, failing its jobs. The PEC reports the
// failures to the server (the engine), which reschedules them.
func (c *Cluster) CrashNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !n.up {
		return nil
	}
	n.up = false
	c.emit(EvNodeDown, name, "crash")
	// Fail jobs after marking down (handlers see consistent state).
	for _, j := range snapshotJobs(n) {
		c.finish(j, ErrNodeFailed)
	}
	return nil
}

// RestoreNode brings a node back.
func (c *Cluster) RestoreNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if n.up {
		return nil
	}
	n.up = true
	c.emit(EvNodeUp, name, "restored")
	return nil
}

// SetCPUs changes a node's processor count (hardware upgrades, §5.5: "from
// day 25 a second processor was added to each node, and BioOpera was able
// to take advantage of this"). Reducing below the number of running jobs
// is allowed; running jobs finish, but no new ones start until slots free
// up.
func (c *Cluster) SetCPUs(name string, cpus int) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if cpus < 1 {
		return fmt.Errorf("cluster: node %s cannot have %d cpus", name, cpus)
	}
	n.cpus = cpus
	c.emit(EvCPUChange, name, fmt.Sprintf("cpus=%d", cpus))
	return nil
}

// SetExternalLoad sets the fraction of a node consumed by competing users;
// nice jobs slow down accordingly.
func (c *Cluster) SetExternalLoad(name string, load float64) error {
	n, ok := c.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	if load == n.extLoad {
		return nil
	}
	// Settle all jobs at the old rate before switching.
	for _, j := range snapshotJobs(n) {
		c.settle(j)
	}
	n.extLoad = load
	for _, j := range snapshotJobs(n) {
		c.reschedule(j)
	}
	c.emit(EvLoadChange, name, fmt.Sprintf("ext=%.2f", load))
	return nil
}

// ExternalLoad returns the current competing load of a node.
func (c *Cluster) ExternalLoad(name string) float64 {
	if n, ok := c.nodes[name]; ok {
		return n.extLoad
	}
	return 0
}

// Load returns the total load of a node as its PEC measures it: external
// load plus the share of CPUs running BioOpera jobs, in [0,1].
func (c *Cluster) Load(name string) float64 {
	n, ok := c.nodes[name]
	if !ok || !n.up {
		return 0
	}
	l := n.extLoad + float64(len(n.jobs))/float64(n.cpus)
	if l > 1 {
		l = 1
	}
	return l
}

func snapshotJobs(n *node) []*runningJob {
	jobs := make([]*runningJob, 0, len(n.jobs))
	for _, j := range n.jobs {
		jobs = append(jobs, j)
	}
	// Deterministic order by id.
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].id < jobs[k-1].id; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
	return jobs
}
