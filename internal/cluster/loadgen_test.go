package cluster

import (
	"testing"
	"time"

	"bioopera/internal/sim"
)

// testLoadGenConfig keeps bursts short so a simulated hour sees many
// idle→burst cycles.
func testLoadGenConfig() LoadGenConfig {
	return LoadGenConfig{
		MeanIdle:  2 * time.Minute,
		MeanBurst: 2 * time.Minute,
		LevelLo:   0.4,
		LevelHi:   1.0,
	}
}

// sampleLoads advances the sim in fixed steps, recording the external
// load of each named node at every step.
func sampleLoads(s *sim.Sim, c *Cluster, horizon, step time.Duration, nodes ...string) map[string][]float64 {
	out := make(map[string][]float64, len(nodes))
	for at := step; at <= horizon; at += step {
		s.RunUntil(sim.Time(at))
		for _, n := range nodes {
			out[n] = append(out[n], c.ExternalLoad(n))
		}
	}
	return out
}

func TestLoadGenBurstLevelsWithinBounds(t *testing.T) {
	s, c, _, _ := testCluster(t)
	cfg := testLoadGenConfig()
	cfg.Nodes = []string{"n1"}
	g := NewLoadGen(c, cfg)
	defer g.Stop()

	loads := sampleLoads(s, c, 2*time.Hour, 10*time.Second, "n1", "n2")
	var bursts, idles int
	for _, l := range loads["n1"] {
		switch {
		case l == 0:
			idles++
		case l >= cfg.LevelLo && l <= cfg.LevelHi:
			bursts++
		default:
			t.Fatalf("burst level %v outside [%v, %v]", l, cfg.LevelLo, cfg.LevelHi)
		}
	}
	if bursts == 0 || idles == 0 {
		t.Errorf("saw %d burst and %d idle samples; want both phases", bursts, idles)
	}
	// The generator was restricted to n1; n2 must stay untouched.
	for _, l := range loads["n2"] {
		if l != 0 {
			t.Fatalf("restricted generator loaded n2 to %v", l)
		}
	}
}

func TestLoadGenStop(t *testing.T) {
	s, c, _, _ := testCluster(t)
	g := NewLoadGen(c, testLoadGenConfig())
	s.RunUntil(sim.Time(time.Hour))
	g.Stop()
	// Any burst in flight still clears; nothing new starts after that.
	s.RunUntil(sim.Time(2 * time.Hour))
	for at := 2 * time.Hour; at <= 4*time.Hour; at += time.Minute {
		s.RunUntil(sim.Time(at))
		for _, n := range []string{"n1", "n2"} {
			if l := c.ExternalLoad(n); l != 0 {
				t.Fatalf("external load on %s is %v at %v after Stop", n, l, at)
			}
		}
	}
}
