package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every update method is a no-op on nil receivers and a nil
// registry hands out nil handles, so instrumented code never branches on
// "metrics enabled".
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	if c != nil {
		t.Fatalf("nil registry returned a counter")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("h", "", nil)
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram observed something")
	}
	r.GaugeFunc("f", "", func() float64 { return 1 })
	v := r.CounterVec("v", "", "kind")
	v.With("x").Inc()
	if err := r.WriteProm(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
	var ring *Ring
	ring.Publish([]byte("x"))
	if ring.Last() != 0 {
		t.Fatalf("nil ring last seq = %d", ring.Last())
	}
}

// TestRegistryConcurrent hammers every metric type from many goroutines
// while a scraper renders exposition; run under -race this is the
// registry's data-race test. Final values must be exact: updates are
// atomic, never lossy.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter", "c")
	g := r.Gauge("test_gauge", "g")
	h := r.Histogram("test_hist", "h", []float64{1, 10})
	vec := r.CounterVec("test_vec", "v", "kind")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers resolve their labeled handle up front (the
			// hot-path idiom); half go through With every time.
			pre := vec.With("pre")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 20))
				if w%2 == 0 {
					pre.Inc()
				} else {
					vec.With("late").Inc()
				}
			}
		}(w)
	}
	// Concurrent scrapes must see internally consistent state (no panics,
	// no races); values are free to be mid-flight.
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WriteProm(&sb); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	scr.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("pre").Value() + vec.With("late").Value(); got != workers*perWorker {
		t.Errorf("vec total = %d, want %d", got, workers*perWorker)
	}
}

// TestPromExposition pins the text format: sorted families, HELP/TYPE
// headers, label quoting, cumulative le buckets with +Inf, _sum/_count.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bravo_total", "a counter").Add(3)
	r.Gauge("delta", "a gauge").Set(-2)
	r.GaugeFunc("echo", "a computed gauge", func() float64 { return 1.5 })
	v := r.CounterVec("alpha_total", "labeled", "kind")
	v.With("x\"y").Inc()
	v.With("plain").Add(2)
	h := r.Histogram("hist_seconds", "latencies", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_total labeled
# TYPE alpha_total counter
alpha_total{kind="plain"} 2
alpha_total{kind="x\"y"} 1
# HELP bravo_total a counter
# TYPE bravo_total counter
bravo_total 3
# HELP delta a gauge
# TYPE delta gauge
delta -2
# HELP echo a computed gauge
# TYPE echo gauge
echo 1.5
# HELP hist_seconds latencies
# TYPE hist_seconds histogram
hist_seconds_bucket{le="0.1"} 1
hist_seconds_bucket{le="1"} 2
hist_seconds_bucket{le="+Inf"} 3
hist_seconds_sum 5.55
hist_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestRegistryReuse: registering the same name returns the same handle;
// a kind mismatch is a programming error and panics.
func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "x")
	b := r.Counter("same", "x")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("same", "x")
}
