package obs

import (
	"time"

	"bioopera/internal/sim"
)

// NowFunc returns the timestamp source instrumentation should use: the
// virtual clock when the caller runs under simulation, otherwise the wall
// clock measured from the moment NowFunc was called. Taking a sim.Clock is
// what makes the wall-clock fallback legal under the walltime lint — a
// function that accepts the virtual clock has declared its time source,
// and real time is only ever the nil-Clock fallback.
func NowFunc(c sim.Clock) func() sim.Time {
	if c != nil {
		return c.Now
	}
	start := time.Now()
	return func() sim.Time { return sim.Time(time.Since(start)) }
}
