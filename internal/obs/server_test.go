package obs

import (
	"testing"
)

// TestServerCloseJoinsServe pins the monitor teardown fix: Close must not
// return until the background Serve goroutine has exited, so closing the
// monitor never strands a goroutine into a promoted standby's lifetime.
func TestServerCloseJoinsServe(t *testing.T) {
	s := NewServer(ServerConfig{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Fatal("no bound address after Start")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.done:
		// Serve goroutine is gone, as Close promised.
	default:
		t.Fatal("Close returned while the Serve goroutine was still running")
	}
}
