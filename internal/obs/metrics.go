// Package obs is the observability layer: a stdlib-only metrics registry
// with Prometheus text exposition, a bounded event ring for live tailing,
// and the monitor HTTP server that plays the role of the paper's GUI
// (§3.2/§3.5: users watch running processes, query progress and cluster
// load, and plan maintenance with what-if analysis).
//
// The package sits below every runtime layer: it imports only the standard
// library and internal/sim (for virtual-clock-safe timestamps), so core,
// store, wal and remote can all hold metric handles without cycles. The
// monitor server never imports the engine either — it consumes a Source
// interface that core implements.
//
// Hot-path discipline: Counter/Gauge/Histogram updates are single atomic
// operations on pre-resolved handles — no map lookup, no lock, no
// allocation. Every update method is also a no-op on a nil receiver, so
// instrumented code never branches on "metrics enabled?" itself.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrease). Safe on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add on the bucket, one on the count, one CAS loop on the sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf at the end
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// LatencyBuckets is the default bucket layout for durations in seconds,
// spanning 1µs–10s.
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// SizeBuckets is the default bucket layout for counts (batch sizes, group
// sizes).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Observe records one observation. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// kind discriminates metric families for exposition and re-registration
// checks.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one named metric with one or more label series.
type family struct {
	name  string
	help  string
	kind  kind
	label string // label key; "" for unlabeled families

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
	bounds   []float64
}

// Registry holds metric families and renders them in Prometheus text
// format. Registration takes a lock; updates through the returned handles
// do not.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration. It panics
// on a kind or label mismatch with an earlier registration: that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, k kind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fam[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, label: label}
		switch k {
		case counterKind:
			f.counters = make(map[string]*Counter)
		case gaugeKind:
			f.gauges = make(map[string]*Gauge)
		case gaugeFuncKind:
			f.funcs = make(map[string]func() float64)
		case histogramKind:
			f.hists = make(map[string]*Histogram)
		}
		r.fam[name] = f
	}
	if f.kind != k || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
			name, k, label, f.kind, f.label))
	}
	return f
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, "").counter("")
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, counterKind, label)}
}

// With returns the counter for one label value, creating it on first use.
// Callers on hot paths should resolve handles once, up front.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.counter(value)
}

func (f *family) counter(value string) *Counter {
	f.mu.RLock()
	c := f.counters[value]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.counters[value]; c == nil {
		c = &Counter{}
		f.counters[value] = c
	}
	return c
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, gaugeKind, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	g := f.gauges[""]
	if g == nil {
		g = &Gauge{}
		f.gauges[""] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// zero hot-path cost for values the system already tracks (queue depth,
// slot occupancy, store statistics). Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeFuncWith(name, help, "", "", fn)
}

// GaugeFuncWith registers one labeled series of a scrape-time gauge
// family, e.g. records per store space. label=="" registers the unlabeled
// series.
func (r *Registry) GaugeFuncWith(name, help, label, value string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, gaugeFuncKind, label)
	f.mu.Lock()
	f.funcs[value] = fn
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (nil = LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	f := r.lookup(name, help, histogramKind, "")
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.hists[""]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
		f.bounds = bounds
		f.hists[""] = h
	}
	return h
}

// WriteProm renders every registered family in Prometheus text exposition
// format, families and series in sorted order so output is stable.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fam))
	for name := range r.fam {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fam[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.writeProm(bw)
	}
	return bw.Flush()
}

func (f *family) writeProm(w *bufio.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, value := range sortedKeys(f.counters, f.gauges, f.funcs, f.hists) {
		labels := promLabel(f.label, value)
		switch f.kind {
		case counterKind:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, f.counters[value].Value())
		case gaugeKind:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, f.gauges[value].Value())
		case gaugeFuncKind:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labels, promFloat(f.funcs[value]()))
		case histogramKind:
			f.hists[value].writeProm(w, f.name, f.label, value)
		}
	}
}

// writeProm renders one histogram series with cumulative le buckets.
func (h *Histogram) writeProm(w *bufio.Writer, name, label, value string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(label, value, "le", promFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(label, value, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabel(label, value), promFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, promLabel(label, value), h.Count())
}

// sortedKeys merges the (at most one non-nil) series maps into one sorted
// key list.
func sortedKeys(cs map[string]*Counter, gs map[string]*Gauge, fs map[string]func() float64, hs map[string]*Histogram) []string {
	var keys []string
	for k := range cs {
		keys = append(keys, k)
	}
	for k := range gs {
		keys = append(keys, k)
	}
	for k := range fs {
		keys = append(keys, k)
	}
	for k := range hs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promLabel renders {key="value"}, or "" for the unlabeled series.
// strconv.Quote supplies exactly the escapes the exposition format needs
// inside label values (backslash, quote, newline).
func promLabel(key, value string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "=" + strconv.Quote(value) + "}"
}

// promLabels renders one or two label pairs (the family label, if any,
// plus the histogram's le).
func promLabels(key, value, key2, value2 string) string {
	var b strings.Builder
	b.WriteString("{")
	if key != "" {
		b.WriteString(key + "=" + strconv.Quote(value) + ",")
	}
	b.WriteString(key2 + `="` + value2 + `"}`)
	return b.String()
}

// promFloat formats a float the way Prometheus clients expect.
func promFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
