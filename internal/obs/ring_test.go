package obs

import (
	"fmt"
	"testing"
	"time"
)

func fill(r *Ring, n int) {
	for i := 1; i <= n; i++ {
		r.Publish([]byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
}

// TestRingSince pins the tail semantics: resuming past the retained window
// reports how many events were overwritten.
func TestRingSince(t *testing.T) {
	r := NewRing(3)
	if evs, d := r.Since(0, 0); len(evs) != 0 || d != 0 {
		t.Fatalf("empty ring: %v %d", evs, d)
	}
	fill(r, 5) // retains 3,4,5
	evs, dropped := r.Since(0, 0)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("evs = %+v, want seqs 3..5", evs)
	}
	if string(evs[0].Data) != `{"n":3}` {
		t.Fatalf("payload = %s", evs[0].Data)
	}
	// Resume from inside the window: no drops.
	evs, dropped = r.Since(4, 0)
	if dropped != 0 || len(evs) != 1 || evs[0].Seq != 5 {
		t.Fatalf("resume: %+v dropped=%d", evs, dropped)
	}
	// max bounds the batch.
	evs, _ = r.Since(0, 2)
	if len(evs) != 2 || evs[0].Seq != 3 || evs[1].Seq != 4 {
		t.Fatalf("max: %+v", evs)
	}
	// Caught up.
	if evs, d := r.Since(5, 0); len(evs) != 0 || d != 0 {
		t.Fatalf("caught up: %v %d", evs, d)
	}
	if r.Last() != 5 {
		t.Fatalf("last = %d", r.Last())
	}
}

// TestRingStalledSubscriber is the emit-path guarantee: a subscriber that
// blocks in WaitSince and never drains must not slow Publish. The
// publisher writes far more events than the ring holds and must finish
// promptly regardless of the reader.
func TestRingStalledSubscriber(t *testing.T) {
	r := NewRing(8)
	stalled := make(chan struct{})
	go func() {
		// The stalled reader parks on a future sequence it will only see
		// after the publisher is done.
		r.WaitSince(9999, 0, time.Minute)
		close(stalled)
	}()
	done := make(chan struct{})
	go func() {
		fill(r, 10001) // wraps the ring ~1250 times
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked behind a stalled subscriber")
	}
	// Unblock the reader and confirm it observes the tail with drops.
	fill(r, 1)
	select {
	case <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitSince missed the wake-up broadcast")
	}
	evs, dropped := r.Since(0, 0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if want := uint64(10002 - 8); dropped != want {
		t.Fatalf("dropped = %d, want %d", dropped, want)
	}
}

// TestWaitSince covers both long-poll outcomes: wake on publish, and a
// clean timeout with no events.
func TestWaitSince(t *testing.T) {
	r := NewRing(4)
	go func() {
		time.Sleep(10 * time.Millisecond)
		r.Publish([]byte(`{}`))
	}()
	evs, _ := r.WaitSince(0, 0, 5*time.Second)
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("wake: %+v", evs)
	}
	// Already-available events return without waiting.
	start := time.Now()
	if evs, _ := r.WaitSince(0, 0, time.Minute); len(evs) != 1 {
		t.Fatalf("immediate: %+v", evs)
	} else if time.Since(start) > 5*time.Second {
		t.Fatalf("immediate WaitSince blocked")
	}
	// Timeout path.
	evs, dropped := r.WaitSince(1, 0, 20*time.Millisecond)
	if len(evs) != 0 || dropped != 0 {
		t.Fatalf("timeout: %+v %d", evs, dropped)
	}
}
