package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// RingEvent is one journaled engine event held in the ring, tagged with a
// monotonically increasing sequence number so tailing clients can resume.
type RingEvent struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// Ring is a bounded buffer of recent events for live tailing. Publish
// overwrites the oldest entry when full and never waits for readers, so a
// stalled subscriber can never block the engine's emit path; the reader
// instead learns how many events it missed.
type Ring struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []RingEvent // circular; buf[(seq-1) % len] holds event seq
	n    int         // entries filled, ≤ len(buf)
	last uint64      // newest published sequence number (0 = none)
}

// NewRing returns a ring holding the last size events (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	r := &Ring{buf: make([]RingEvent, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Publish appends one event, taking ownership of data. Safe on a nil
// receiver; never blocks on readers.
func (r *Ring) Publish(data []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.last++
	r.buf[int((r.last-1)%uint64(len(r.buf)))] = RingEvent{Seq: r.last, Data: data}
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Last returns the newest published sequence number (0 = nothing yet).
func (r *Ring) Last() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Since returns up to max events with Seq > after (max ≤ 0 = no limit),
// plus the number of requested events already overwritten.
func (r *Ring) Since(after uint64, max int) (evs []RingEvent, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinceLocked(after, max)
}

func (r *Ring) sinceLocked(after uint64, max int) ([]RingEvent, uint64) {
	if r.n == 0 || r.last <= after {
		return nil, 0
	}
	start := after + 1
	oldest := r.last - uint64(r.n) + 1
	var dropped uint64
	if start < oldest {
		dropped = oldest - start
		start = oldest
	}
	count := int(r.last - start + 1)
	if max > 0 && count > max {
		count = max
	}
	evs := make([]RingEvent, 0, count)
	for seq := start; seq < start+uint64(count); seq++ {
		evs = append(evs, r.buf[int((seq-1)%uint64(len(r.buf)))])
	}
	return evs, dropped
}

// WaitSince is the long-poll form of Since: when no event newer than after
// exists yet, it blocks up to timeout for one to arrive. The deadline is
// real time by nature — it paces an external HTTP client, not the
// simulation — hence the walltime suppression.
func (r *Ring) WaitSince(after uint64, max int, timeout time.Duration) ([]RingEvent, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if evs, d := r.sinceLocked(after, max); len(evs) > 0 {
		return evs, d
	}
	expired := false
	//bioopera:allow walltime long-poll deadline paces an external HTTP client, not the simulation
	t := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		expired = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	defer t.Stop()
	for {
		evs, d := r.sinceLocked(after, max)
		if len(evs) > 0 || expired {
			return evs, d
		}
		r.cond.Wait()
	}
}
