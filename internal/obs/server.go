package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The monitor server is the paper's GUI over HTTP (§3.2: "users interact
// with the system through a graphical user interface [to] monitor their
// processes"; §3.5: administrators query load and plan outages). It serves
// JSON snapshots assembled by a Source — an interface the engine
// implements — so obs never depends on core.

// ActivityInfo is one task occurrence inside an instance.
type ActivityInfo struct {
	Scope    string  `json:"scope"`
	Task     string  `json:"task"`
	Status   string  `json:"status"`
	Node     string  `json:"node,omitempty"`
	Attempts int     `json:"attempts,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"` // CPU time charged so far
}

// NamedValue is one whiteboard or output binding.
type NamedValue struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// InstanceSummary is one row of the /api/instances listing.
type InstanceSummary struct {
	ID         string  `json:"id"`
	Template   string  `json:"template"`
	Status     string  `json:"status"`
	Priority   int     `json:"priority"`
	Progress   float64 `json:"progress"` // fraction of tasks in a terminal state
	Running    int     `json:"running"`
	Queued     int     `json:"queued"`
	Activities int     `json:"activities"`
	Failures   int     `json:"failures"`
	Retries    int     `json:"retries"`
	CPUSeconds float64 `json:"cpuSeconds"`
	StartedSec float64 `json:"startedSec"`
	EndedSec   float64 `json:"endedSec,omitempty"`
	Failure    string  `json:"failure,omitempty"`
}

// ScopeInfo is one scope of an instance: its whiteboard values and the
// status of every activated task.
type ScopeInfo struct {
	ID     string         `json:"id"` // "" is the root scope
	Proc   string         `json:"proc"`
	Done   bool           `json:"done"`
	Values []NamedValue   `json:"values,omitempty"`
	Tasks  []ActivityInfo `json:"tasks,omitempty"`
}

// LineageItem is one data item's provenance edge set.
type LineageItem struct {
	Item      string   `json:"item"`
	Producer  string   `json:"producer,omitempty"`
	Consumers []string `json:"consumers,omitempty"`
}

// InstanceDetail is the /api/instances/{id} response.
type InstanceDetail struct {
	InstanceSummary
	Outputs      []NamedValue   `json:"outputs,omitempty"`
	Scopes       []ScopeInfo    `json:"scopes"`
	RunningTasks []ActivityInfo `json:"runningTasks,omitempty"`
	QueuedTasks  []ActivityInfo `json:"queuedTasks,omitempty"`
	Lineage      []LineageItem  `json:"lineage,omitempty"`
	Programs     []NamedValue   `json:"programs,omitempty"` // task → external binding
}

// NodeInfo is one node of the /api/cluster view.
type NodeInfo struct {
	Name    string  `json:"name"`
	OS      string  `json:"os,omitempty"`
	Up      bool    `json:"up"`
	CPUs    int     `json:"cpus"`
	Speed   float64 `json:"speed,omitempty"`
	Running int     `json:"running"`
	ExtLoad float64 `json:"extLoad,omitempty"`
}

// ClusterInfo is the /api/cluster response: directory state plus the
// engine's dispatcher depth and, when an adaptive monitor runs, the loads
// it last reported.
type ClusterInfo struct {
	Nodes       []NodeInfo         `json:"nodes"`
	TotalCPUs   int                `json:"totalCpus"`
	BusySlots   int                `json:"busySlots"`
	RunningJobs int                `json:"runningJobs"`
	QueueDepth  int                `json:"queueDepth"`
	Loads       map[string]float64 `json:"reportedLoads,omitempty"`
	// Members is the federation membership view when the source runs
	// inside a federated server (see MemberLister); absent otherwise.
	Members []MemberView `json:"members,omitempty"`
}

// MemberView is one federation member as reported on /api/cluster.
type MemberView struct {
	Name        string `json:"name"`
	Addr        string `json:"addr,omitempty"`
	Incarnation uint64 `json:"incarnation"`
	Up          bool   `json:"up"`
	Partitions  []int  `json:"partitions,omitempty"`
}

// MemberLister is the optional Source extension federated servers
// implement; when present, /api/cluster includes the membership view.
type MemberLister interface {
	Members() []MemberView
}

// JobInfo is one activity hit by a hypothetical outage.
type JobInfo struct {
	Job      string `json:"job"`
	Instance string `json:"instance"`
	Scope    string `json:"scope"`
	Task     string `json:"task"`
	Node     string `json:"node,omitempty"`
	State    string `json:"state"` // "running" or "queued-affine"
}

// InstanceImpact summarizes one affected instance of a what-if query.
type InstanceImpact struct {
	ID       string  `json:"id"`
	Progress float64 `json:"progress"`
	Priority int     `json:"priority"`
}

// OutageReport is the /api/whatif response.
type OutageReport struct {
	Nodes         []string         `json:"nodes"`
	RemainingCPUs int              `json:"remainingCpus"`
	Jobs          []JobInfo        `json:"jobs,omitempty"`
	Stranded      []JobInfo        `json:"stranded,omitempty"`
	Instances     []InstanceImpact `json:"instances,omitempty"`
}

// Source supplies the monitor's snapshots. Implementations must be safe
// for concurrent use; core.MonitorSource adapts an Engine.
type Source interface {
	Instances() []InstanceSummary
	Instance(id string) (*InstanceDetail, error)
	Cluster() ClusterInfo
	WhatIf(nodes []string) OutageReport
}

// ServerConfig configures a monitor server. Source is required; Registry
// and Events each enable their endpoint when set.
type ServerConfig struct {
	Source   Source
	Registry *Registry
	Events   *Ring
	// MaxWait caps the /api/events long-poll (default 30s).
	MaxWait time.Duration
}

// Server serves /metrics and the JSON monitor API.
type Server struct {
	cfg  ServerConfig
	mux  *http.ServeMux
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the Serve goroutine has exited
}

// NewServer builds a monitor server; call Start to listen or mount
// Handler yourself.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.metrics)
	s.mux.HandleFunc("/api/instances", s.instances)
	s.mux.HandleFunc("/api/instances/", s.instance)
	s.mux.HandleFunc("/api/cluster", s.cluster)
	s.mux.HandleFunc("/api/whatif", s.whatIf)
	s.mux.HandleFunc("/api/events", s.events)
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	done := make(chan struct{})
	s.done = done
	go func() {
		defer close(done)
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and any in-flight handlers, then joins the
// Serve goroutine so no monitor goroutine outlives the server.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Registry == nil {
		http.Error(w, "metrics registry not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Registry.WriteProm(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) instances(w http.ResponseWriter, _ *http.Request) {
	list := s.cfg.Source.Instances()
	writeJSON(w, map[string]any{"instances": list})
}

func (s *Server) instance(w http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, "/api/instances/")
	if id == "" {
		http.Error(w, `{"error":"missing instance id"}`, http.StatusBadRequest)
		return
	}
	det, err := s.cfg.Source.Instance(id)
	if err != nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, det)
}

func (s *Server) cluster(w http.ResponseWriter, _ *http.Request) {
	ci := s.cfg.Source.Cluster()
	if ml, ok := s.cfg.Source.(MemberLister); ok {
		ci.Members = ml.Members()
	}
	writeJSON(w, ci)
}

func (s *Server) whatIf(w http.ResponseWriter, req *http.Request) {
	nodes := req.URL.Query()["node"]
	if len(nodes) == 0 {
		writeJSONStatus(w, http.StatusBadRequest,
			map[string]string{"error": "whatif needs at least one ?node= parameter"})
		return
	}
	writeJSON(w, s.cfg.Source.WhatIf(nodes))
}

// events long-polls the ring: ?after=<seq> resumes a tail, ?max bounds the
// batch, ?waitMs bounds the poll (0 = return immediately).
func (s *Server) events(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Events == nil {
		http.Error(w, "event ring not enabled", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	max, _ := strconv.Atoi(q.Get("max"))
	wait := s.cfg.MaxWait
	if ms, err := strconv.Atoi(q.Get("waitMs")); err == nil {
		wait = time.Duration(ms) * time.Millisecond
		if wait > s.cfg.MaxWait {
			wait = s.cfg.MaxWait
		}
	}
	var evs []RingEvent
	var dropped uint64
	if wait > 0 {
		evs, dropped = s.cfg.Events.WaitSince(after, max, wait)
	} else {
		evs, dropped = s.cfg.Events.Since(after, max)
	}
	next := after
	if n := len(evs); n > 0 {
		next = evs[n-1].Seq
	}
	writeJSON(w, map[string]any{"events": evs, "next": next, "dropped": dropped})
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
