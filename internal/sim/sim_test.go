package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRunEmpty(t *testing.T) {
	s := New(1)
	if got := s.Run(); got != 0 {
		t.Fatalf("Run on empty agenda = %v, want 0", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Time(time.Second), func(Time) { order = append(order, 3) })
	s.At(10*Time(time.Second), func(Time) { order = append(order, 1) })
	s.At(20*Time(time.Second), func(Time) { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	at := Time(5 * time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func(Time) { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New(1)
	var seen Time
	s.After(time.Minute, func(now Time) {
		seen = now
		s.After(time.Hour, func(now Time) { seen = now })
	})
	end := s.Run()
	want := Time(time.Minute + time.Hour)
	if seen != want || end != want {
		t.Fatalf("seen=%v end=%v, want %v", seen, end, want)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Hour, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(Time(time.Minute), func(Time) {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-time.Second, func(Time) {})
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterCancel(time.Second, func(Time) { fired = true })
	tm.Stop()
	tm.Stop() // idempotent
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tm *Timer
	tm = s.Every(10*time.Second, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			tm.Stop()
		}
	})
	s.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, tk := range ticks {
		want := Time((i + 1) * 10 * int(time.Second))
		if tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	s.Every(0, func(Time) {})
}

func TestStop(t *testing.T) {
	s := New(1)
	ran := 0
	s.After(time.Second, func(Time) { ran++; s.Stop() })
	s.After(2*time.Second, func(Time) { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Duration{time.Second, 3 * time.Second, 10 * time.Second} {
		s.After(d, func(now Time) { fired = append(fired, now) })
	}
	end := s.RunUntil(Time(5 * time.Second))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if end != Time(5*time.Second) {
		t.Fatalf("RunUntil end = %v, want 5s", end)
	}
	// Resuming picks up the rest.
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("after resume fired %d events, want 3", len(fired))
	}
}

func TestStepLimit(t *testing.T) {
	s := New(1)
	s.SetStepLimit(5)
	n := 0
	var loop Handler
	loop = func(Time) {
		n++
		s.After(time.Second, loop)
	}
	s.After(time.Second, loop)
	s.Run()
	if n != 5 {
		t.Fatalf("executed %d events, want 5 (step limit)", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		for i := 0; i < 50; i++ {
			d := Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, func(now Time) { out = append(out, int64(now)) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDays(t *testing.T) {
	tm := Time(36 * time.Hour)
	if got := tm.Days(); got != 1.5 {
		t.Fatalf("Days = %v, want 1.5", got)
	}
}

// Property: for any set of non-negative delays, Run visits events in
// non-decreasing time order and ends at the max delay.
func TestRunOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		s := New(7)
		var visited []Time
		var max Time
		for _, d := range delays {
			at := Time(Duration(d%1_000_000) * time.Millisecond)
			if at > max {
				max = at
			}
			s.At(at, func(now Time) { visited = append(visited, now) })
		}
		end := s.Run()
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return len(delays) == 0 || end == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
