// Package sim provides a deterministic discrete-event simulation kernel.
//
// All BioOpera experiments replay week-long cluster lifecycles on a virtual
// clock. The kernel is a classic event-heap simulator: callers schedule
// events at absolute virtual times, Run pops them in time order and invokes
// their handlers, and handlers may schedule further events. Determinism is
// guaranteed by (a) a total order on events (time, then insertion sequence)
// and (b) seeded random streams obtained from the simulation itself.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation. Virtual time has no relation to the wall clock.
type Time time.Duration

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Days returns the time expressed in fractional days, the unit used by the
// paper's lifecycle figures.
func (t Time) Days() float64 { return time.Duration(t).Hours() / 24 }

// Clock is a read-only source of virtual time. *Sim implements it, as does
// core.ClockFunc; instrumentation that takes a Clock stays replayable under
// simulation and falls back to the wall clock only when handed a nil Clock.
type Clock interface {
	Now() Time
}

// Handler is the callback attached to a scheduled event.
type Handler func(now Time)

// event is one entry in the simulation agenda.
type event struct {
	at      Time
	seq     uint64 // tie-break so equal-time events fire in schedule order
	fn      Handler
	stopped *bool // non-nil when cancellable
	index   int
}

// eventQueue is a binary heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is not usable; use New.
// Sim is not safe for concurrent use: the whole point is that everything
// runs in one deterministic loop.
type Sim struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	steps   uint64
	maxStep uint64
}

// New returns a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have been executed so far.
func (s *Sim) Steps() uint64 { return s.steps }

// SetStepLimit bounds the number of events Run may execute; 0 means
// unlimited. It exists as a runaway-loop backstop for tests.
func (s *Sim) SetStepLimit(n uint64) { s.maxStep = n }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is an error that indicates a model bug, so it panics.
func (s *Sim) At(at Time, fn Handler) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (s *Sim) After(d Duration, fn Handler) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now.Add(d), fn)
}

// Timer is a handle for a cancellable scheduled event.
type Timer struct{ stopped *bool }

// Stop cancels the timer. It is safe to call more than once, and after the
// event has fired (in which case it has no effect).
func (t *Timer) Stop() {
	if t.stopped != nil {
		*t.stopped = true
	}
}

// AfterCancel schedules fn like After and returns a Timer that can cancel it.
func (s *Sim) AfterCancel(d Duration, fn Handler) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	stopped := new(bool)
	s.seq++
	heap.Push(&s.queue, &event{at: s.now.Add(d), seq: s.seq, fn: fn, stopped: stopped})
	return &Timer{stopped: stopped}
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Timer is stopped or the simulation ends.
func (s *Sim) Every(d Duration, fn Handler) *Timer {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	stopped := new(bool)
	var tick Handler
	tick = func(now Time) {
		fn(now)
		if !*stopped && !s.stopped {
			s.seq++
			heap.Push(&s.queue, &event{at: now.Add(d), seq: s.seq, fn: tick, stopped: stopped})
		}
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now.Add(d), seq: s.seq, fn: tick, stopped: stopped})
	return &Timer{stopped: stopped}
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in time order until the agenda is empty, Stop is
// called, or the step limit is hit. It returns the final virtual time.
func (s *Sim) Run() Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.maxStep > 0 && s.steps >= s.maxStep {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped != nil && *ev.stopped {
			continue
		}
		s.now = ev.at
		s.steps++
		ev.fn(ev.at)
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// exactly deadline (even if no event fired there) and returns.
func (s *Sim) RunUntil(deadline Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.maxStep > 0 && s.steps >= s.maxStep {
			break
		}
		if s.queue[0].at > deadline {
			break
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped != nil && *ev.stopped {
			continue
		}
		s.now = ev.at
		s.steps++
		ev.fn(ev.at)
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Pending reports the number of events still on the agenda (including
// cancelled ones not yet reaped).
func (s *Sim) Pending() int { return len(s.queue) }
