package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
	"bioopera/internal/sim"
)

// LifecycleOptions configure the full all-vs-all runs of §5.4 and §5.5.
type LifecycleOptions struct {
	// N is the dataset size. The paper runs SP38's 80,000 entries;
	// the default here is 80000 (tests use less).
	N int
	// MeanLen is the mean sequence length.
	MeanLen int
	// TEUs is the partition count (paper: "a multiple of the number of
	// processors available"; 560 = 14×40 for the shared run).
	TEUs int
	// Seed drives everything.
	Seed int64
	// SampleEvery is the tracker's sampling period.
	SampleEvery time.Duration
}

func (o *LifecycleOptions) fill() {
	if o.N == 0 {
		o.N = 80000
	}
	if o.MeanLen == 0 {
		o.MeanLen = 360
	}
	if o.TEUs == 0 {
		o.TEUs = 560
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 2 * time.Hour
	}
}

// table1CostModel stretches the default model so a full SP38 all-vs-all
// costs ≈ 630 reference-CPU-days, which lands the shared run at the
// paper's ≈ 37-day WALL and the non-shared run at ≈ 50 days.
func table1CostModel() darwin.CostModel {
	m := darwin.DefaultCostModel()
	m.CellTime = 100 * time.Nanosecond
	return m
}

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	Label          string
	MaxCPUs        int // "Max. # of CPUs" — peak processors in use
	CPU            time.Duration
	WALL           time.Duration
	CPUPerActivity time.Duration
	Activities     int
	Failures       int
	Retries        int
}

// LifecycleEvent is one annotated event of the run.
type LifecycleEvent struct {
	Day   float64
	Label string
}

// LifecycleResult is one full run: the Table 1 row plus the Fig. 5/6
// availability/utilization trace.
type LifecycleResult struct {
	Row     Table1Row
	Samples []core.Sample
	Events  []LifecycleEvent
}

// lifecycleRun drives one all-vs-all to completion under an event script.
func lifecycleRun(opts LifecycleOptions, label string, spec cluster.Spec,
	simCfg core.SimConfig, nice bool,
	script func(rt *core.SimRuntime, id *string, events *[]LifecycleEvent)) (*LifecycleResult, error) {

	opts.fill()
	ds := simDataset(opts.N, opts.MeanLen, opts.Seed)
	cfg := &allvsall.Config{Dataset: ds, Simulate: true, Cost: table1CostModel()}
	simCfg.TrackEvery = opts.SampleEvery
	// Background processes (load generators, trackers) run forever; end
	// the simulation when the computation completes.
	var rtp *core.SimRuntime
	simCfg.Options.OnInstanceDone = func(*core.Instance) {
		if rtp != nil {
			rtp.Sim.Stop()
		}
	}
	rt, err := buildRuntime(opts.Seed, spec, cfg, simCfg)
	if err != nil {
		return nil, err
	}
	rtp = rt

	var events []LifecycleEvent
	var id string
	script(rt, &id, &events)

	id, err = startAllVsAll(rt, cfg, opts.TEUs, nice)
	if err != nil {
		return nil, err
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		return nil, fmt.Errorf("lifecycle %s: instance %s (%s)", label, in.Status, in.FailureReason)
	}
	res := &LifecycleResult{
		Row: Table1Row{
			Label:          label,
			MaxCPUs:        rt.Tracker.PeakBusy(),
			CPU:            in.CPU,
			WALL:           in.WALL(rt.Sim.Now()),
			CPUPerActivity: in.CPUPerActivity(),
			Activities:     in.Activities,
			Failures:       in.Failures,
			Retries:        in.Retries,
		},
		Samples: rt.Tracker.Samples(),
		Events:  events,
	}
	return res, nil
}

// day converts days to virtual time.
func day(d float64) sim.Time { return sim.Time(time.Duration(d * 24 * float64(time.Hour))) }

// SharedLifecycle reproduces the first run (§5.4, Fig. 5): the shared
// linneus+ik-sun cluster, nice mode, competing users, and the paper's ten
// numbered events — manual suspensions, heavy competing load, massive
// cluster failures, a disk-space shortage, server maintenance, a BioOpera
// server crash, and two TEUs failing to report.
func SharedLifecycle(opts LifecycleOptions) (*LifecycleResult, error) {
	opts.fill()
	spec := cluster.SharedRunSpec()
	return lifecycleRun(opts, "shared cluster", spec, core.SimConfig{}, true,
		func(rt *core.SimRuntime, id *string, events *[]LifecycleEvent) {
			s := rt.Sim
			c := rt.Cluster
			eng := rt.Engine
			note := func(d float64, label string) {
				*events = append(*events, LifecycleEvent{Day: d, Label: label})
			}
			allNodes := func() []string {
				var names []string
				for _, v := range c.Nodes() {
					names = append(names, v.Name)
				}
				return names
			}

			// Background competing users throughout the run.
			cluster.NewLoadGen(c, cluster.LoadGenConfig{
				MeanIdle:  10 * time.Hour,
				MeanBurst: 5 * time.Hour,
				LevelLo:   0.3,
				LevelHi:   0.9,
			})

			// (1) Another user requests exclusive access: manual
			// graceful suspend, resume a day later.
			s.At(day(2.5), func(sim.Time) {
				note(2.5, "1: other user needs cluster (suspend)")
				eng.Suspend(*id, true)
			})
			s.At(day(3.5), func(sim.Time) { eng.Resume(*id) })

			// (2) Cluster very busy with higher-priority jobs.
			s.At(day(6), func(sim.Time) {
				note(6, "2: cluster busy with other jobs")
				for _, n := range allNodes() {
					c.SetExternalLoad(n, 0.97)
				}
			})
			s.At(day(9), func(sim.Time) {
				for _, n := range allNodes() {
					c.SetExternalLoad(n, 0)
				}
			})

			// (3) Massive cluster failure.
			s.At(day(11), func(sim.Time) {
				note(11, "3: cluster failure")
				for _, n := range allNodes()[:12] {
					c.CrashNode(n)
				}
			})
			s.At(day(11.5), func(sim.Time) {
				for _, n := range allNodes()[:12] {
					c.RestoreNode(n)
				}
			})

			// (4) Some nodes unavailable for two days.
			s.At(day(14), func(sim.Time) {
				note(14, "4: some nodes unavailable")
				for _, n := range allNodes()[:5] {
					c.CrashNode(n)
				}
			})
			s.At(day(16), func(sim.Time) {
				for _, n := range allNodes()[:5] {
					c.RestoreNode(n)
				}
			})

			// (5) Disk-space shortage: manual stop; (6) resume after
			// the storage problem is fixed.
			s.At(day(17.5), func(sim.Time) {
				note(17.5, "5: disk space shortage (stop)")
				eng.Suspend(*id, false)
			})
			s.At(day(19), func(sim.Time) {
				note(19, "6: storage fixed (resume)")
				eng.Resume(*id)
			})

			// (7) Second massive hardware failure.
			s.At(day(21), func(sim.Time) {
				note(21, "7: cluster failure")
				for _, n := range allNodes()[4:] {
					c.CrashNode(n)
				}
			})
			s.At(day(22), func(sim.Time) {
				for _, n := range allNodes()[4:] {
					c.RestoreNode(n)
				}
			})

			// (8) Server maintenance shutdown; restart resumes
			// automatically.
			s.At(day(23), func(sim.Time) {
				note(23, "8: server maintenance")
				eng.PauseAll()
				eng.Crash()
			})
			s.At(day(23.25), func(sim.Time) {
				eng.ResumeAll()
				eng.Recover()
			})

			// (9) BioOpera server crash; automatic recovery.
			s.At(day(27), func(sim.Time) {
				note(27, "9: BioOpera server crash")
				eng.Crash()
				eng.Recover()
			})

			// (10) Two TEUs fail to report their results; the
			// restart re-schedules them.
			s.At(day(30), func(sim.Time) {
				note(30, "10: TEUs failed to report (re-run)")
				killed := 0
				for _, v := range c.Nodes() {
					for _, j := range c.RunningOn(v.Name) {
						if killed >= 2 {
							return
						}
						c.Kill(j, v.Name)
						killed++
					}
				}
			})
		})
}

// NonSharedLifecycle reproduces the second run (§5.5, Fig. 6): the
// dedicated ik-linux cluster, starting with one CPU per node, two planned
// network outages, and the mid-run hardware upgrade that doubles the
// processors ("BioOpera took advantage of the available CPU power
// immediately").
func NonSharedLifecycle(opts LifecycleOptions) (*LifecycleResult, error) {
	opts.fill()
	if opts.TEUs == 560 {
		opts.TEUs = 480 // 30 × the 16 post-upgrade CPUs
	}
	spec := cluster.IkLinux()
	return lifecycleRun(opts, "non-shared cluster", spec,
		core.SimConfig{InitialCPUs: 1}, false,
		func(rt *core.SimRuntime, id *string, events *[]LifecycleEvent) {
			s := rt.Sim
			c := rt.Cluster
			eng := rt.Engine
			note := func(d float64, label string) {
				*events = append(*events, LifecycleEvent{Day: d, Label: label})
			}
			outage := func(d float64, label string) {
				s.At(day(d), func(sim.Time) {
					note(d, label)
					eng.Suspend(*id, true)
					for _, v := range c.Nodes() {
						c.CrashNode(v.Name)
					}
				})
				s.At(day(d+0.5), func(sim.Time) {
					for _, v := range c.Nodes() {
						c.RestoreNode(v.Name)
					}
					eng.Resume(*id)
				})
			}
			// Two planned network outages.
			outage(8, "planned network outage")
			outage(33, "planned network outage")

			// Day 25: a second processor added to each node.
			s.At(day(25), func(sim.Time) {
				note(25, "OS configuration change: 2nd CPU per node")
				for _, v := range c.Nodes() {
					c.SetCPUs(v.Name, 2)
				}
			})
		})
}

// Table1 runs both lifecycles and assembles the paper's Table 1.
type Table1Result struct {
	Shared    *LifecycleResult
	NonShared *LifecycleResult
}

// Table1 reproduces Table 1 (both all-vs-all runs).
func Table1(opts LifecycleOptions) (*Table1Result, error) {
	shared, err := SharedLifecycle(opts)
	if err != nil {
		return nil, err
	}
	nonShared, err := NonSharedLifecycle(opts)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Shared: shared, NonShared: nonShared}, nil
}

// Fprint renders Table 1 in the paper's layout.
func (r *Table1Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Performance of the all-vs-all for the two experiments")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s %20s %20s\n", "", "Shared cluster", "Non-shared cluster")
	hline(w, 60)
	fmt.Fprintf(w, "%-18s %20d %20d\n", "Max. # of CPUs", r.Shared.Row.MaxCPUs, r.NonShared.Row.MaxCPUs)
	fmt.Fprintf(w, "%-18s %20s %20s\n", "CPU(A)", days(r.Shared.Row.CPU), days(r.NonShared.Row.CPU))
	fmt.Fprintf(w, "%-18s %20s %20s\n", "WALL(A)", days(r.Shared.Row.WALL), days(r.NonShared.Row.WALL))
	fmt.Fprintf(w, "%-18s %20s %20s\n", "CPU(A)/|A|", r.Shared.Row.CPUPerActivity.Round(time.Minute).String(), r.NonShared.Row.CPUPerActivity.Round(time.Minute).String())
	hline(w, 60)
	fmt.Fprintf(w, "%-18s %20d %20d\n", "activities |A|", r.Shared.Row.Activities, r.NonShared.Row.Activities)
	fmt.Fprintf(w, "%-18s %20d %20d\n", "failures seen", r.Shared.Row.Failures, r.NonShared.Row.Failures)
}

// FprintLifecycle renders one lifecycle as the ASCII analogue of Fig. 5 /
// Fig. 6: per-day availability and utilization bars with event markers.
func FprintLifecycle(w io.Writer, title string, r *LifecycleResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%6s %5s %5s  %-42s\n", "day", "avail", "util", "(#=availability, *=utilization, 1 char ≈ 1 CPU)")
	hline(w, 72)
	// Aggregate samples per day.
	type agg struct {
		avail, util float64
		n           int
	}
	byDay := map[int]*agg{}
	maxDay := 0
	for _, s := range r.Samples {
		d := int(s.At.Days())
		a, ok := byDay[d]
		if !ok {
			a = &agg{}
			byDay[d] = a
		}
		a.avail += float64(s.Available)
		a.util += s.Effective
		a.n++
		if d > maxDay {
			maxDay = d
		}
	}
	eventsByDay := map[int][]string{}
	for _, e := range r.Events {
		d := int(e.Day)
		eventsByDay[d] = append(eventsByDay[d], e.Label)
	}
	for d := 0; d <= maxDay; d++ {
		a := byDay[d]
		if a == nil || a.n == 0 {
			continue
		}
		avail := a.avail / float64(a.n)
		util := a.util / float64(a.n)
		bar := strings.Repeat("*", int(util+0.5)) + strings.Repeat("#", maxInt(0, int(avail+0.5)-int(util+0.5)))
		marker := ""
		if evs := eventsByDay[d]; len(evs) > 0 {
			marker = "  <- " + strings.Join(evs, "; ")
		}
		fmt.Fprintf(w, "%6d %5.1f %5.1f  %s%s\n", d, avail, util, bar, marker)
	}
	hline(w, 72)
	fmt.Fprintf(w, "%s: WALL %s, CPU %s, peak %d CPUs, %d activities, %d failures survived\n",
		r.Row.Label, days(r.Row.WALL), days(r.Row.CPU), r.Row.MaxCPUs, r.Row.Activities, r.Row.Failures)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
