package experiments

import (
	"strings"
	"testing"
	"time"
)

// Scaled-down options keep the suite fast while preserving every shape the
// full-size experiments demonstrate.

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Fig4Options{
		N:       250,
		MeanLen: 300,
		TEUs:    []int{1, 2, 5, 10, 20, 50, 125, 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// CPU rises monotonically with granularity (per-TEU init overhead).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].CPU <= res.Points[i-1].CPU {
			t.Fatalf("CPU not increasing at %d TEUs: %v then %v",
				res.Points[i].TEUs, res.Points[i-1].CPU, res.Points[i].CPU)
		}
	}
	// WALL is U-shaped: the optimum is strictly inside the sweep.
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	var min Fig4Point
	min = first
	for _, p := range res.Points {
		if p.WALL < min.WALL {
			min = p
		}
	}
	if min.TEUs == first.TEUs || min.TEUs == last.TEUs {
		t.Fatalf("WALL optimum at the boundary (%d TEUs)", min.TEUs)
	}
	// The paper's counter-intuitive point: the optimum exceeds the
	// number of CPUs.
	if res.OptimalTEUs <= res.CPUs {
		t.Fatalf("optimal %d TEUs ≤ %d CPUs; straggler effect missing", res.OptimalTEUs, res.CPUs)
	}
	// Rendering works and mentions the optimum.
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "optimal granularity") {
		t.Fatal("Fprint missing summary")
	}
}

func TestFig4Deterministic(t *testing.T) {
	opts := Fig4Options{N: 60, MeanLen: 80, TEUs: []int{1, 5, 20}}
	a, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// lifecycleTestOptions shrink the dataset so the run lasts a couple of
// simulated days.
func lifecycleTestOptions() LifecycleOptions {
	return LifecycleOptions{N: 12000, MeanLen: 200, TEUs: 80, SampleEvery: time.Hour}
}

func TestSharedLifecycleSurvives(t *testing.T) {
	res, err := SharedLifecycle(lifecycleTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.MaxCPUs <= 0 || res.Row.MaxCPUs > 40 {
		t.Fatalf("peak CPUs = %d", res.Row.MaxCPUs)
	}
	if res.Row.CPU <= res.Row.WALL {
		t.Fatalf("no parallelism: CPU %v vs WALL %v", res.Row.CPU, res.Row.WALL)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no lifecycle samples")
	}
	// Utilization never exceeds availability.
	for _, s := range res.Samples {
		if s.Busy > s.Available && s.Available > 0 {
			t.Fatalf("busy %d > available %d", s.Busy, s.Available)
		}
		if s.Effective > float64(s.Busy)+1e-9 {
			t.Fatalf("effective %v > busy %d", s.Effective, s.Busy)
		}
	}
}

func TestNonSharedLifecycleUpgrade(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-week lifecycle simulation")
	}
	// Big enough to still be running at the day-25 upgrade.
	opts := LifecycleOptions{N: 60000, MeanLen: 320, TEUs: 320, SampleEvery: 2 * time.Hour}
	res, err := NonSharedLifecycle(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.WALL < 25*24*time.Hour {
		t.Fatalf("run too short (%v) to exercise the upgrade", res.Row.WALL)
	}
	// Availability doubles after day 25 and BioOpera uses it: find
	// samples before/after.
	var before, after float64
	var nb, na int
	for _, s := range res.Samples {
		switch {
		case s.At.Days() > 20 && s.At.Days() < 24:
			before += s.Effective
			nb++
		case s.At.Days() > 26 && s.At.Days() < 30:
			after += s.Effective
			na++
		}
	}
	if nb == 0 || na == 0 {
		t.Fatal("missing samples around the upgrade")
	}
	if after/float64(na) < 1.5*before/float64(nb) {
		t.Fatalf("upgrade not exploited: %.1f before vs %.1f after", before/float64(nb), after/float64(na))
	}
	if res.Row.MaxCPUs != 16 {
		t.Fatalf("peak CPUs = %d, want 16 after upgrade", res.Row.MaxCPUs)
	}
}

func TestMonitoringClaim(t *testing.T) {
	res, err := Monitoring(MonitoringOptions{Horizon: 3 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's claim: ≥90% discarded at ≤3% error.
	if res.OverallDiscard < 0.9 {
		t.Fatalf("discard = %v, want ≥ 0.9", res.OverallDiscard)
	}
	if res.OverallErr > 0.03 {
		t.Fatalf("error = %v, want ≤ 0.03", res.OverallErr)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "discarded") {
		t.Fatal("Fprint missing")
	}
}

func TestMonitoringSweepTradeoff(t *testing.T) {
	rows, err := MonitoringSweep(MonitoringOptions{Horizon: 3 * 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("sweep rows = %d", len(rows))
	}
	// Longer back-off → fewer samples (less overhead), more error.
	first, last := rows[0], rows[len(rows)-1]
	if last.Samples >= first.Samples {
		t.Fatalf("samples not decreasing with back-off: %d -> %d", first.Samples, last.Samples)
	}
	if last.MeanAbsErr <= first.MeanAbsErr {
		t.Fatalf("error not increasing with back-off: %v -> %v", first.MeanAbsErr, last.MeanAbsErr)
	}
}

func TestMigrationCrossover(t *testing.T) {
	res, err := Migration(MigrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	subNone := res.Cell("subset", "leave-in-place")
	subMig := res.Cell("subset", "kill-and-restart")
	fillNone := res.Cell("fill", "leave-in-place")
	fillMig := res.Cell("fill", "kill-and-restart")
	// Subset pattern: migration must help substantially.
	if float64(subMig.WALL) > 0.8*float64(subNone.WALL) {
		t.Fatalf("subset: migration %v vs none %v — no benefit", subMig.WALL, subNone.WALL)
	}
	if subMig.Migrated == 0 {
		t.Fatal("subset: nothing migrated")
	}
	// Fill pattern: naive migration must NOT help.
	if float64(fillMig.WALL) < 0.98*float64(fillNone.WALL) {
		t.Fatalf("fill: migration %v vs none %v — unexpectedly helped", fillMig.WALL, fillNone.WALL)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "migration") {
		t.Fatal("Fprint missing")
	}
}

func TestCheckpointGranularity(t *testing.T) {
	res, err := Checkpoint(CheckpointOptions{
		N:          1200,
		MeanLen:    150,
		TEUs:       []int{4, 32, 128},
		CrashEvery: 90 * time.Second,
		Repair:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	coarse := res.Points[0]
	fine := res.Points[len(res.Points)-1]
	if coarse.Failures == 0 {
		t.Fatal("no failures injected at coarse granularity")
	}
	// The §3.3 claim: finer granularity loses less work.
	if fine.WastedCPU >= coarse.WastedCPU {
		t.Fatalf("wasted CPU not decreasing: coarse %v, fine %v", coarse.WastedCPU, fine.WastedCPU)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "wasted") {
		t.Fatal("Fprint missing")
	}
}
