package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
)

// This file evaluates the scheduler's granularity autotuning: instead of
// asking the user for the number of TEUs (the Fig. 4 knob), the Batcher
// watches the cluster's external load and picks the batch count itself —
// large batches of small tasks when competing load is volatile (stragglers
// re-balance), the Fig. 4 sweet spot (~4× CPUs) when the cluster is idle.
// The comparison baseline is the naive fixed choice of one TEU per CPU.

// AdaptiveOptions configure the adaptive-batching comparison.
type AdaptiveOptions struct {
	// N is the dataset size.
	N int
	// MeanLen is the mean sequence length.
	MeanLen int
	// Seed drives dataset generation and the simulation.
	Seed int64
	// Warmup is how long the batcher observes cluster load before the
	// process starts.
	Warmup time.Duration
	// SampleEvery is the batcher's load-sampling cadence.
	SampleEvery time.Duration
}

func (o *AdaptiveOptions) fill() {
	if o.N == 0 {
		o.N = 200
	}
	if o.MeanLen == 0 {
		o.MeanLen = 360
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Hour
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 15 * time.Second
	}
}

// AdaptiveCell is one (profile, mode) measurement.
type AdaptiveCell struct {
	Profile string // "idle" or "volatile"
	Mode    string // "fixed" or "adaptive"
	TEUs    int
	Stress  float64 // batcher's load estimate at decision time (adaptive only)
	WALL    time.Duration
}

// AdaptiveResult is the 2×2 comparison.
type AdaptiveResult struct {
	Options AdaptiveOptions
	CPUs    int
	Cells   []AdaptiveCell
}

// AdaptiveBatching runs the comparison: load profile × granularity mode.
func AdaptiveBatching(opts AdaptiveOptions) (*AdaptiveResult, error) {
	opts.fill()
	res := &AdaptiveResult{Options: opts, CPUs: cluster.IkSun().TotalCPUs()}
	for _, profile := range []string{"idle", "volatile"} {
		for _, mode := range []string{"fixed", "adaptive"} {
			cell, err := runAdaptive(opts, profile, mode == "adaptive")
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func runAdaptive(opts AdaptiveOptions, profile string, adaptive bool) (AdaptiveCell, error) {
	spec := cluster.IkSun()
	ds := simDataset(opts.N, opts.MeanLen, opts.Seed)
	cfg := &allvsall.Config{Dataset: ds, Simulate: true}
	var rtp *core.SimRuntime
	rt, err := buildRuntime(opts.Seed, spec, cfg, core.SimConfig{
		Options: core.Options{OnInstanceDone: func(*core.Instance) {
			if rtp != nil {
				rtp.Sim.Stop()
			}
		}},
	})
	if err != nil {
		return AdaptiveCell{}, err
	}
	rtp = rt

	// Competing load. "idle": nothing. "volatile": a square wave on two of
	// the five nodes — 0 ↔ 0.8 flipping every minute, the bursty outside
	// user of §5.2 — which keeps running for the whole computation. The
	// period is short against the per-CPU batch duration, so big batches
	// pinned to the bursty nodes straggle while small ones rebalance.
	// Activities run nice so the external load actually slows them
	// (shared-cluster mode).
	nice := false
	if profile == "volatile" {
		nice = true
		burst := []string{spec.Nodes[0].Name, spec.Nodes[1].Name}
		var cycle func(on bool) sim.Handler
		cycle = func(on bool) sim.Handler {
			return func(sim.Time) {
				lvl := 0.0
				if on {
					lvl = 0.8
				}
				for _, n := range burst {
					rt.Cluster.SetExternalLoad(n, lvl)
				}
				rt.Sim.After(time.Minute, cycle(!on))
			}
		}
		rt.Sim.At(0, cycle(true))
	}

	// The batcher samples cluster load through the warmup window, then
	// fixes the granularity for the run — the decision the dispatcher
	// would otherwise ask the user to make via the TEUs input.
	batcher := sched.NewBatcher(sched.DefaultBatchConfig())
	rt.Sim.Every(opts.SampleEvery, func(sim.Time) {
		batcher.ObserveLoad(rt.Cluster.Nodes())
	})
	rt.RunUntil(sim.Time(opts.Warmup))

	teus := spec.TotalCPUs() // naive baseline: one TEU per CPU
	stress := 0.0
	if adaptive {
		teus = batcher.TEUs(rt.Cluster.Nodes())
		stress = batcher.Stress()
	}
	id, err := startAllVsAll(rt, cfg, teus, nice)
	if err != nil {
		return AdaptiveCell{}, err
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		return AdaptiveCell{}, fmt.Errorf("adaptive %s: %s (%s)", profile, in.Status, in.FailureReason)
	}
	mode := "fixed"
	if adaptive {
		mode = "adaptive"
	}
	return AdaptiveCell{
		Profile: profile,
		Mode:    mode,
		TEUs:    teus,
		Stress:  stress,
		WALL:    in.WALL(rt.Sim.Now()),
	}, nil
}

// Cell returns the measurement for a profile/mode pair.
func (r *AdaptiveResult) Cell(profile, mode string) *AdaptiveCell {
	for i := range r.Cells {
		if r.Cells[i].Profile == profile && r.Cells[i].Mode == mode {
			return &r.Cells[i]
		}
	}
	return nil
}

// Fprint renders the comparison.
func (r *AdaptiveResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Granularity autotuning — batcher-chosen TEUs vs. one TEU per CPU")
	fmt.Fprintf(w, "%d vs. %d all-vs-all on the %d-CPU ik-sun cluster\n\n", r.Options.N, r.Options.N, r.CPUs)
	fmt.Fprintf(w, "%-10s %-10s %6s %8s %12s\n", "profile", "mode", "TEUs", "stress", "WALL")
	hline(w, 52)
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-10s %6d %8.2f %12s\n", c.Profile, c.Mode, c.TEUs, c.Stress, c.WALL.Round(time.Minute))
	}
	hline(w, 52)
	for _, p := range []string{"idle", "volatile"} {
		ad, fx := r.Cell(p, "adaptive"), r.Cell(p, "fixed")
		fmt.Fprintf(w, "%-10s adaptive changes WALL by %+.0f%%\n", p+":",
			100*(float64(ad.WALL)/float64(fx.WALL)-1))
	}
}
