// Package experiments regenerates every measured artifact of the paper's
// evaluation (§5): the granularity sweep of Fig. 4, the shared- and
// non-shared-cluster all-vs-all lifecycles of Figs. 5/6 and Table 1, the
// adaptive-monitoring claim of §3.4, and two ablations the paper discusses
// (kill-and-restart migration, §5.4; checkpoint granularity, §3.3).
//
// All experiments run on the deterministic discrete-event runtime, so the
// month-long computations of the paper replay in seconds and every run is
// reproducible from its seed.
package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/darwin"
)

// buildRuntime wires a simulation with the all-vs-all programs installed.
func buildRuntime(seed int64, spec cluster.Spec, cfg *allvsall.Config, simCfg core.SimConfig) (*core.SimRuntime, error) {
	lib := core.NewLibrary()
	if err := allvsall.Register(lib, cfg); err != nil {
		return nil, err
	}
	simCfg.Seed = seed
	simCfg.Spec = spec
	simCfg.Library = lib
	rt, err := core.NewSimRuntime(simCfg)
	if err != nil {
		return nil, err
	}
	if err := rt.Engine.RegisterTemplateSource(allvsall.Source); err != nil {
		return nil, err
	}
	return rt, nil
}

// startAllVsAll launches the process and returns the instance ID.
func startAllVsAll(rt *core.SimRuntime, cfg *allvsall.Config, teus int, nice bool) (string, error) {
	return rt.Engine.StartProcess(allvsall.TemplateName, cfg.Inputs(teus), core.StartOptions{Nice: nice})
}

// days formats a duration in the paper's "Xd Yh Zm" style.
func days(d time.Duration) string {
	dd := int(d.Hours()) / 24
	hh := int(d.Hours()) % 24
	mm := int(d.Minutes()) % 60
	return fmt.Sprintf("%dd %dh %dm", dd, hh, mm)
}

// secs formats a duration as integer seconds.
func secs(d time.Duration) string { return fmt.Sprintf("%d", int(d.Seconds()+0.5)) }

// hline draws a separator.
func hline(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}

// simDataset builds the deterministic synthetic stand-in for a Swiss-Prot
// release.
func simDataset(n, meanLen int, seed int64) *darwin.Dataset {
	return darwin.Generate(darwin.GenOptions{N: n, MeanLen: meanLen, Seed: seed})
}
