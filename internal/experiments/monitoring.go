package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
)

// This file reproduces the §3.4 claim: "an adaptive strategy discarding
// 90% of the samples before they are sent to the BioOpera server induces
// an average 3% error per sample when we compare the load curve as seen by
// the server to the actual load curve."

// MonitoringOptions configure the adaptive-monitoring experiment.
type MonitoringOptions struct {
	// Horizon is the simulated observation window per trace.
	Horizon time.Duration
	// Seed drives trace generation.
	Seed int64
	// Config overrides the monitor tuning (zero → default).
	Config cluster.MonitorConfig
}

func (o *MonitoringOptions) fill() {
	if o.Horizon == 0 {
		o.Horizon = 7 * 24 * time.Hour
	}
	if o.Seed == 0 {
		o.Seed = 23
	}
	if o.Config == (cluster.MonitorConfig{}) {
		o.Config = cluster.DefaultMonitorConfig()
	}
}

// MonitoringRow is the result for one load pattern.
type MonitoringRow struct {
	Pattern     string
	Samples     int
	Reports     int
	Discard     float64 // fraction of samples never sent to the server
	MeanAbsErr  float64 // mean |server view − truth| per sample
	Transitions int     // number of load changes in the truth trace
}

// MonitoringResult aggregates all patterns.
type MonitoringResult struct {
	Options MonitoringOptions
	Rows    []MonitoringRow
	// Overall figures across patterns (sample-weighted).
	OverallDiscard float64
	OverallErr     float64
}

// Monitoring runs the adaptive monitor against stable, periodic and bursty
// load traces and measures discard fraction and server-view error.
func Monitoring(opts MonitoringOptions) (*MonitoringResult, error) {
	opts.fill()
	res := &MonitoringResult{Options: opts}
	var totalSamples, totalReports int
	var errSum float64
	var errN int

	patterns := []string{"stable", "diurnal", "bursty", "mixed"}
	for _, name := range patterns {
		row, err := runPattern(name, opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		totalSamples += row.Samples
		totalReports += row.Reports
		errSum += row.MeanAbsErr * float64(row.Samples)
		errN += row.Samples
	}
	if totalSamples > 0 {
		res.OverallDiscard = 1 - float64(totalReports)/float64(totalSamples)
	}
	if errN > 0 {
		res.OverallErr = errSum / float64(errN)
	}
	return res, nil
}

func runPattern(name string, opts MonitoringOptions) (MonitoringRow, error) {
	s := sim.New(opts.Seed)
	var load float64
	truth := &cluster.LoadTrace{}
	set := func(l float64) {
		load = l
		truth.Add(s.Now(), l)
	}
	transitions := 0
	bump := func(l float64) {
		set(l)
		transitions++
	}

	switch name {
	case "stable":
		s.At(0, func(sim.Time) { bump(0.35) })
	case "diurnal":
		// 8 busy hours per day.
		s.At(0, func(sim.Time) { bump(0.1) })
		for d := 0; float64(d) < opts.Horizon.Hours()/24; d++ {
			dd := d
			s.At(day(float64(dd))+sim.Time(9*time.Hour), func(sim.Time) { bump(0.8) })
			s.At(day(float64(dd))+sim.Time(17*time.Hour), func(sim.Time) { bump(0.1) })
		}
	case "bursty":
		s.At(0, func(sim.Time) { bump(0.05) })
		var burst func(sim.Time)
		burst = func(sim.Time) {
			idle := time.Duration(s.Rand().ExpFloat64() * float64(3*time.Hour))
			s.After(idle, func(sim.Time) {
				bump(0.3 + 0.7*s.Rand().Float64())
				dur := time.Duration(s.Rand().ExpFloat64() * float64(90*time.Minute))
				s.After(dur, func(now sim.Time) {
					bump(0.05)
					burst(now)
				})
			})
		}
		burst(0)
	case "mixed":
		// Diurnal baseline plus noise bursts.
		s.At(0, func(sim.Time) { bump(0.2) })
		s.Every(6*time.Hour, func(sim.Time) {
			bump(0.2 + 0.6*s.Rand().Float64())
		})
	default:
		return MonitoringRow{}, fmt.Errorf("monitoring: unknown pattern %q", name)
	}

	var serverView cluster.LoadTrace
	m := cluster.NewAdaptiveMonitor(s, opts.Config,
		func() float64 { return load },
		func(at sim.Time, l float64) { serverView.Add(at, l) })
	s.RunUntil(sim.Time(opts.Horizon))
	m.Stop()

	err := serverView.MeanAbsError(truth.At, sim.Time(opts.Horizon), opts.Config.MinInterval)
	return MonitoringRow{
		Pattern:     name,
		Samples:     m.Samples,
		Reports:     m.Reports,
		Discard:     m.DiscardFraction(),
		MeanAbsErr:  err,
		Transitions: transitions,
	}, nil
}

// MonitoringSweep measures the overhead/accuracy trade-off of §3.4 ("this
// scheme helps to considerably reduce the sampling and network overheads
// while preserving a highly accurate view of the load"): as the monitor is
// allowed to back off further (larger maximum sampling interval), sampling
// overhead falls and the server-view error grows. Run on the bursty
// pattern.
func MonitoringSweep(opts MonitoringOptions) ([]MonitoringRow, error) {
	opts.fill()
	maxIntervals := []time.Duration{
		time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour,
	}
	var rows []MonitoringRow
	for _, mi := range maxIntervals {
		o := opts
		o.Config.MaxInterval = mi
		row, err := runPattern("bursty", o)
		if err != nil {
			return nil, err
		}
		row.Pattern = fmt.Sprintf("backoff≤%s", mi)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fprint renders the monitoring table.
func (r *MonitoringResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "§3.4 — Adaptive monitoring: samples discarded vs. server-view error")
	fmt.Fprintf(w, "horizon %s per pattern\n\n", r.Options.Horizon)
	fmt.Fprintf(w, "%-10s %9s %9s %10s %12s %12s\n", "pattern", "samples", "reports", "discarded", "mean |err|", "transitions")
	hline(w, 68)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %9d %9d %9.1f%% %12.4f %12d\n",
			row.Pattern, row.Samples, row.Reports, 100*row.Discard, row.MeanAbsErr, row.Transitions)
	}
	hline(w, 68)
	fmt.Fprintf(w, "overall: %.1f%% of samples discarded, %.1f%% mean error per sample\n",
		100*r.OverallDiscard, 100*r.OverallErr)
	fmt.Fprintln(w, `paper: "discarding 90% of the samples ... induces an average 3% error per sample"`)
}
