package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
)

// Fig4Options configure the granularity sweep of Fig. 4: a 500 vs. 500
// all-vs-all on the ik-sun cluster in exclusive mode, varying the number
// of task execution units.
type Fig4Options struct {
	// N is the dataset size (paper: 500 entries of SP38).
	N int
	// MeanLen is the mean sequence length (Swiss-Prot ≈ 360).
	MeanLen int
	// TEUs lists the granularities to sweep (paper: 1..500).
	TEUs []int
	// Seed drives dataset generation and the simulation.
	Seed int64
}

func (o *Fig4Options) fill() {
	if o.N == 0 {
		o.N = 500
	}
	if o.MeanLen == 0 {
		o.MeanLen = 360
	}
	if len(o.TEUs) == 0 {
		o.TEUs = []int{1, 2, 5, 10, 15, 20, 30, 50, 100, 150, 200, 250, 300, 350, 400, 500}
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
}

// Fig4Point is one row of the Fig. 4 table: CPU and WALL time for one
// granularity.
type Fig4Point struct {
	TEUs int
	CPU  time.Duration
	WALL time.Duration
}

// Fig4Result is the whole sweep.
type Fig4Result struct {
	Options Fig4Options
	CPUs    int // cluster size (5 for ik-sun)
	Points  []Fig4Point
	// OptimalTEUs is the granularity minimizing WALL time (paper: 20,
	// ≈ 4× the number of CPUs — not 5, because of the straggler/merge-
	// barrier effect).
	OptimalTEUs int
}

// Fig4 runs the granularity sweep.
func Fig4(opts Fig4Options) (*Fig4Result, error) {
	opts.fill()
	spec := cluster.IkSun()
	ds := simDataset(opts.N, opts.MeanLen, opts.Seed)
	res := &Fig4Result{Options: opts, CPUs: spec.TotalCPUs()}
	for _, teus := range opts.TEUs {
		cfg := &allvsall.Config{Dataset: ds, Simulate: true}
		rt, err := buildRuntime(opts.Seed, spec, cfg, core.SimConfig{})
		if err != nil {
			return nil, err
		}
		id, err := startAllVsAll(rt, cfg, teus, false) // exclusive mode
		if err != nil {
			return nil, err
		}
		rt.Run()
		in, _ := rt.Engine.Instance(id)
		if in.Status != core.InstanceDone {
			return nil, fmt.Errorf("fig4: teus=%d: %s (%s)", teus, in.Status, in.FailureReason)
		}
		res.Points = append(res.Points, Fig4Point{
			TEUs: teus,
			CPU:  in.CPU,
			WALL: in.WALL(rt.Sim.Now()),
		})
	}
	best := 0
	for i, p := range res.Points {
		if p.WALL < res.Points[best].WALL {
			best = i
		}
	}
	res.OptimalTEUs = res.Points[best].TEUs
	return res, nil
}

// Segments splits the sweep into the paper's S1/S2/S3 regions around the
// WALL minimum: S1 = falling, S2 = flat valley (within 25% of the
// minimum), S3 = rising tail.
func (r *Fig4Result) Segments() (s1End, s3Start int) {
	minWall := r.Points[0].WALL
	for _, p := range r.Points {
		if p.WALL < minWall {
			minWall = p.WALL
		}
	}
	valley := time.Duration(float64(minWall) * 1.25)
	s1End = r.Points[0].TEUs
	for _, p := range r.Points {
		if p.WALL <= valley {
			s1End = p.TEUs
			break
		}
	}
	s3Start = r.Points[len(r.Points)-1].TEUs
	for i := len(r.Points) - 1; i >= 0; i-- {
		if r.Points[i].WALL <= valley {
			if i+1 < len(r.Points) {
				s3Start = r.Points[i+1].TEUs
			}
			break
		}
	}
	return s1End, s3Start
}

// Fprint renders the table in the layout of the paper's Fig. 4.
func (r *Fig4Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4 — Impact of the granularity level (# of TEUs) on CPU and WALL times\n")
	fmt.Fprintf(w, "%d vs. %d all-vs-all on the %d-CPU ik-sun cluster (exclusive mode)\n\n", r.Options.N, r.Options.N, r.CPUs)
	fmt.Fprintf(w, "%8s %10s %10s\n", "# TEUs", "CPU (s)", "WALL (s)")
	hline(w, 30)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %10s %10s\n", p.TEUs, secs(p.CPU), secs(p.WALL))
	}
	hline(w, 30)
	s1, s3 := r.Segments()
	fmt.Fprintf(w, "optimal granularity: %d TEUs (%.0f× the %d CPUs)\n",
		r.OptimalTEUs, float64(r.OptimalTEUs)/float64(r.CPUs), r.CPUs)
	fmt.Fprintf(w, "segments: S1 ends ≈ %d TEUs, S3 begins ≈ %d TEUs\n", s1, s3)
}
