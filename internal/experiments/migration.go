package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
)

// This file is the ablation the paper discusses but defers (§5.4): the
// kill-and-restart migration strategy. "If the non-BioOpera user tends to
// fill all machines, such a strategy will perform worse than if BioOpera
// had simply left the TEU where it was. If however the user tends to use
// only a subset of the processors, the kill and restart strategy may help
// to improve the WALL time."

// MigrationOptions configure the migration ablation.
type MigrationOptions struct {
	// Tasks is the number of long-running activities.
	Tasks int
	// TaskCost is each activity's reference-CPU cost.
	TaskCost time.Duration
	// Seed drives the simulation.
	Seed int64
}

func (o *MigrationOptions) fill() {
	if o.Tasks == 0 {
		o.Tasks = 12
	}
	if o.TaskCost == 0 {
		o.TaskCost = 30 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 31
	}
}

// MigrationCell is one (pattern, policy) measurement.
type MigrationCell struct {
	Pattern  string // "subset" or "fill"
	Policy   string // "leave-in-place" or "kill-and-restart"
	WALL     time.Duration
	Migrated int // jobs killed by the migration policy
}

// MigrationResult is the 2×2 ablation.
type MigrationResult struct {
	Options MigrationOptions
	Cells   []MigrationCell
}

const migrationSrc = `
PROCESS LongJobs {
  INPUT xs;
  OUTPUT done;
  BLOCK Work PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY W {
      CALL mig.work(x = x);
      OUT r;
      MAP r -> r;
    }
  }
}
`

// Migration runs the 2×2 ablation: competing-load pattern × migration
// policy.
func Migration(opts MigrationOptions) (*MigrationResult, error) {
	opts.fill()
	res := &MigrationResult{Options: opts}
	for _, pattern := range []string{"subset", "fill"} {
		for _, policy := range []string{"leave-in-place", "kill-and-restart"} {
			cell, err := runMigration(opts, pattern, policy)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

func runMigration(opts MigrationOptions, pattern, policy string) (MigrationCell, error) {
	spec := cluster.Spec{Name: "mig"}
	for i := 0; i < 8; i++ {
		spec.Nodes = append(spec.Nodes, cluster.NodeSpec{
			Name: fmt.Sprintf("m%02d", i), CPUs: 1, Speed: 1, OS: "linux",
		})
	}
	lib := core.NewLibrary()
	lib.Register(core.Program{
		Name: "mig.work",
		Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"r": args["x"]}, nil
		},
		Cost: func(map[string]ocr.Value) time.Duration { return opts.TaskCost },
	})
	var rtp *core.SimRuntime
	rt, err := core.NewSimRuntime(core.SimConfig{
		Seed: opts.Seed, Spec: spec, Library: lib,
		Options: core.Options{OnInstanceDone: func(*core.Instance) {
			if rtp != nil {
				rtp.Sim.Stop()
			}
		}},
	})
	if err != nil {
		return MigrationCell{}, err
	}
	rtp = rt
	if err := rt.Engine.RegisterTemplateSource(migrationSrc); err != nil {
		return MigrationCell{}, err
	}

	// Competing load: either a long heavy burst on half the nodes, or
	// periodic cluster-wide bursts.
	switch pattern {
	case "subset":
		for i := 0; i < 4; i++ {
			n := spec.Nodes[i].Name
			rt.Sim.At(sim.Time(5*time.Minute), func(sim.Time) { rt.Cluster.SetExternalLoad(n, 0.95) })
			rt.Sim.At(sim.Time(6*time.Hour), func(sim.Time) { rt.Cluster.SetExternalLoad(n, 0) })
		}
	case "fill":
		var cycle func(on bool) sim.Handler
		cycle = func(on bool) sim.Handler {
			return func(sim.Time) {
				lvl := 0.0
				if on {
					lvl = 0.95
				}
				for _, v := range rt.Cluster.Nodes() {
					rt.Cluster.SetExternalLoad(v.Name, lvl)
				}
				rt.Sim.After(45*time.Minute, cycle(!on))
			}
		}
		rt.Sim.At(sim.Time(5*time.Minute), cycle(true))
	}

	migrated := 0
	if policy == "kill-and-restart" {
		p := sched.MigrationPolicy{LoadThreshold: 0.6, TargetMaxLoad: 0.2}
		if pattern == "fill" {
			// The naive variant the paper warns about: migrate
			// whenever any slot is free, regardless of the
			// destination's load.
			p.TargetMaxLoad = 1.0
		}
		rt.Sim.Every(10*time.Minute, func(sim.Time) {
			migrated += rt.Engine.Migrate(p)
		})
	}

	xs := make([]ocr.Value, opts.Tasks)
	for i := range xs {
		xs[i] = ocr.Int(i)
	}
	id, err := rt.Engine.StartProcess("LongJobs",
		map[string]ocr.Value{"xs": ocr.List(xs...)},
		core.StartOptions{Nice: true})
	if err != nil {
		return MigrationCell{}, err
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		return MigrationCell{}, fmt.Errorf("migration %s/%s: %s (%s)", pattern, policy, in.Status, in.FailureReason)
	}
	return MigrationCell{
		Pattern:  pattern,
		Policy:   policy,
		WALL:     in.WALL(rt.Sim.Now()),
		Migrated: migrated,
	}, nil
}

// Cell returns the measurement for a pattern/policy pair.
func (r *MigrationResult) Cell(pattern, policy string) *MigrationCell {
	for i := range r.Cells {
		if r.Cells[i].Pattern == pattern && r.Cells[i].Policy == policy {
			return &r.Cells[i]
		}
	}
	return nil
}

// Fprint renders the ablation.
func (r *MigrationResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "§5.4 ablation — kill-and-restart migration vs. leaving TEUs in place")
	fmt.Fprintf(w, "%d tasks × %s on 8 single-CPU nodes, nice mode\n\n", r.Options.Tasks, r.Options.TaskCost)
	fmt.Fprintf(w, "%-10s %-18s %12s %10s\n", "pattern", "policy", "WALL", "migrated")
	hline(w, 56)
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %-18s %12s %10d\n", c.Pattern, c.Policy, c.WALL.Round(time.Minute), c.Migrated)
	}
	hline(w, 56)
	sub := r.Cell("subset", "kill-and-restart").WALL
	subNone := r.Cell("subset", "leave-in-place").WALL
	fill := r.Cell("fill", "kill-and-restart").WALL
	fillNone := r.Cell("fill", "leave-in-place").WALL
	fmt.Fprintf(w, "subset pattern: migration changes WALL by %+.0f%%\n", 100*(float64(sub)/float64(subNone)-1))
	fmt.Fprintf(w, "fill pattern:   migration changes WALL by %+.0f%%\n", 100*(float64(fill)/float64(fillNone)-1))
	fmt.Fprintln(w, `paper: migration helps when competitors use a subset of nodes, hurts when they fill all machines`)
}
