package experiments

import (
	"fmt"
	"io"
	"time"

	"bioopera/internal/allvsall"
	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/sim"
)

// This file is the §3.3 ablation: "since checkpointing is done for
// complete activities, smaller activities result in less work lost when
// failures occur." We inject periodic node crashes into an all-vs-all run
// and measure the CPU time wasted re-running lost activities, as a
// function of the TEU granularity.

// CheckpointOptions configure the ablation.
type CheckpointOptions struct {
	// N is the dataset size.
	N int
	// MeanLen is the mean sequence length.
	MeanLen int
	// TEUs lists the granularities to compare.
	TEUs []int
	// CrashEvery is the mean time between injected node crashes.
	CrashEvery time.Duration
	// Repair is how long a crashed node stays down.
	Repair time.Duration
	// Seed drives everything.
	Seed int64
}

func (o *CheckpointOptions) fill() {
	if o.N == 0 {
		o.N = 4000
	}
	if o.MeanLen == 0 {
		o.MeanLen = 200
	}
	if len(o.TEUs) == 0 {
		o.TEUs = []int{4, 16, 64, 256}
	}
	if o.CrashEvery == 0 {
		o.CrashEvery = 8 * time.Minute
	}
	if o.Repair == 0 {
		o.Repair = 10 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 41
	}
}

// CheckpointPoint is the outcome at one granularity.
type CheckpointPoint struct {
	TEUs      int
	BaseCPU   time.Duration // CPU with no failures
	FaultCPU  time.Duration // CPU with injected crashes
	WastedCPU time.Duration // FaultCPU − BaseCPU: work lost and re-done
	WALL      time.Duration
	Failures  int
}

// CheckpointResult is the sweep.
type CheckpointResult struct {
	Options CheckpointOptions
	Points  []CheckpointPoint
}

// Checkpoint runs the granularity-vs-lost-work ablation.
func Checkpoint(opts CheckpointOptions) (*CheckpointResult, error) {
	opts.fill()
	res := &CheckpointResult{Options: opts}
	ds := simDataset(opts.N, opts.MeanLen, opts.Seed)
	for _, teus := range opts.TEUs {
		base, err := checkpointRun(opts, ds.Name, teus, false)
		if err != nil {
			return nil, err
		}
		fault, err := checkpointRun(opts, ds.Name, teus, true)
		if err != nil {
			return nil, err
		}
		wasted := fault.CPU - base.CPU
		if wasted < 0 {
			wasted = 0
		}
		res.Points = append(res.Points, CheckpointPoint{
			TEUs:      teus,
			BaseCPU:   base.CPU,
			FaultCPU:  fault.CPU,
			WastedCPU: wasted,
			WALL:      fault.WALL,
			Failures:  fault.Failures,
		})
	}
	return res, nil
}

type checkpointOutcome struct {
	CPU      time.Duration
	WALL     time.Duration
	Failures int
}

func checkpointRun(opts CheckpointOptions, _ string, teus int, injectFaults bool) (*checkpointOutcome, error) {
	ds := simDataset(opts.N, opts.MeanLen, opts.Seed)
	cfg := &allvsall.Config{Dataset: ds, Simulate: true}
	spec := cluster.IkLinux()
	var rtp *core.SimRuntime
	simCfg := core.SimConfig{Options: core.Options{OnInstanceDone: func(*core.Instance) {
		if rtp != nil {
			rtp.Sim.Stop()
		}
	}}}
	rt, err := buildRuntime(opts.Seed, spec, cfg, simCfg)
	if err != nil {
		return nil, err
	}
	rtp = rt

	if injectFaults {
		names := make([]string, 0, len(spec.Nodes))
		for _, n := range spec.Nodes {
			names = append(names, n.Name)
		}
		var crashLoop func(sim.Time)
		crashLoop = func(sim.Time) {
			gap := time.Duration(rt.Sim.Rand().ExpFloat64() * float64(opts.CrashEvery))
			if gap < time.Minute {
				gap = time.Minute
			}
			rt.Sim.After(gap, func(sim.Time) {
				victim := names[rt.Sim.Rand().Intn(len(names))]
				rt.Cluster.CrashNode(victim)
				rt.Sim.After(opts.Repair, func(now sim.Time) {
					rt.Cluster.RestoreNode(victim)
					crashLoop(now)
				})
			})
		}
		crashLoop(0)
	}

	id, err := startAllVsAll(rt, cfg, teus, false)
	if err != nil {
		return nil, err
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		return nil, fmt.Errorf("checkpoint teus=%d: %s (%s)", teus, in.Status, in.FailureReason)
	}
	return &checkpointOutcome{
		CPU:      in.CPU,
		WALL:     in.WALL(rt.Sim.Now()),
		Failures: in.Failures,
	}, nil
}

// Fprint renders the sweep.
func (r *CheckpointResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "§3.3 ablation — checkpoint granularity vs. work lost to failures")
	fmt.Fprintf(w, "%d-entry all-vs-all on ik-linux, node crash every ≈%s (repair %s)\n\n",
		r.Options.N, r.Options.CrashEvery, r.Options.Repair)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %9s\n", "# TEUs", "base CPU", "fault CPU", "wasted CPU", "WALL", "failures")
	hline(w, 72)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8d %12s %12s %12s %12s %9d\n",
			p.TEUs, p.BaseCPU.Round(time.Second), p.FaultCPU.Round(time.Second),
			p.WastedCPU.Round(time.Second), p.WALL.Round(time.Second), p.Failures)
	}
	hline(w, 72)
	fmt.Fprintln(w, `paper: "smaller activities result in less work lost when failures occur"`)
}
