package tower

import (
	"fmt"
	"strings"

	"bioopera/internal/darwin"
)

// This file holds the alignment-based middle floors of the tower:
// pairwise PAM-distance estimation and the center-star progressive
// multiple sequence alignment ("once a gap, always a gap").

// Gap is the gap character used in alignments.
const Gap = '-'

// maxDistance caps the PAM distance assigned to unalignable pairs.
const maxDistance = 300

// DistanceMatrix estimates pairwise evolutionary distances (PAM) between
// proteins using the refinement search of internal/darwin. Pairs whose
// best score stays below threshold get the maximum distance.
func DistanceMatrix(proteins []string, threshold float64) ([][]float64, error) {
	seqs, err := parseAll(proteins)
	if err != nil {
		return nil, err
	}
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			res := darwin.RefinePAM(seqs[i], seqs[j], 5, maxDistance)
			dist := res.PAM
			if res.Score < threshold {
				dist = maxDistance
			}
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return d, nil
}

func parseAll(proteins []string) ([]*darwin.Sequence, error) {
	seqs := make([]*darwin.Sequence, len(proteins))
	for i, p := range proteins {
		s, err := darwin.ParseSequence(i, fmt.Sprintf("p%d", i), p)
		if err != nil {
			return nil, err
		}
		seqs[i] = s
	}
	return seqs, nil
}

// globalAlign is Needleman–Wunsch with affine-ish linear gaps over a
// darwin score matrix, returning the two gapped strings.
func globalAlign(a, b *darwin.Sequence, sm *darwin.ScoreMatrix) (string, string) {
	n, m := a.Len(), b.Len()
	gap := sm.GapExtend * 4 // linear gap cost for the global pass
	H := make([][]float64, n+1)
	for i := range H {
		H[i] = make([]float64, m+1)
	}
	for i := 1; i <= n; i++ {
		H[i][0] = float64(i) * gap
	}
	for j := 1; j <= m; j++ {
		H[0][j] = float64(j) * gap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := H[i-1][j-1] + sm.S[a.Residues[i-1]][b.Residues[j-1]]
			if v := H[i-1][j] + gap; v > best {
				best = v
			}
			if v := H[i][j-1] + gap; v > best {
				best = v
			}
			H[i][j] = best
		}
	}
	// Traceback.
	var ra, rb []byte
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && H[i][j] == H[i-1][j-1]+sm.S[a.Residues[i-1]][b.Residues[j-1]]:
			ra = append(ra, darwin.Alphabet[a.Residues[i-1]])
			rb = append(rb, darwin.Alphabet[b.Residues[j-1]])
			i--
			j--
		case i > 0 && H[i][j] == H[i-1][j]+gap:
			ra = append(ra, darwin.Alphabet[a.Residues[i-1]])
			rb = append(rb, Gap)
			i--
		default:
			ra = append(ra, Gap)
			rb = append(rb, darwin.Alphabet[b.Residues[j-1]])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return string(ra), string(rb)
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// MultipleAlign builds a center-star multiple sequence alignment: the
// sequence with the smallest total distance to the others is the center;
// every other sequence is globally aligned to it and the pairwise
// alignments are merged under "once a gap, always a gap". Rows come back
// in input order, all the same length.
func MultipleAlign(proteins []string, dist [][]float64) ([]string, error) {
	n := len(proteins)
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []string{proteins[0]}, nil
	}
	if len(dist) != n {
		return nil, fmt.Errorf("tower: distance matrix is %d×?, want %d", len(dist), n)
	}
	seqs, err := parseAll(proteins)
	if err != nil {
		return nil, err
	}
	// Pick the center.
	center := 0
	best := totalDist(dist, 0)
	for i := 1; i < n; i++ {
		if t := totalDist(dist, i); t < best {
			best = t
			center = i
		}
	}
	sm := darwin.ScoreAt(120)

	// msaCenter holds the center row with gaps accumulated so far;
	// rows[i] holds sequence i aligned against that evolving center.
	msaCenter := proteins[center]
	rows := make([]string, n)
	rows[center] = msaCenter
	for i := 0; i < n; i++ {
		if i == center {
			continue
		}
		ac, ai := globalAlign(seqs[center], seqs[i], sm)
		// Merge (ac, ai) with the current msaCenter: both ac and
		// msaCenter are gapped versions of the same center sequence.
		newCenter, adjOld, adjNew := mergeCenters(msaCenter, ac)
		// Re-pad all existing rows with adjOld, and the new row
		// with adjNew.
		for k := range rows {
			if rows[k] != "" && k != i {
				rows[k] = applyGaps(rows[k], adjOld)
			}
		}
		rows[i] = applyGaps(ai, adjNew)
		msaCenter = newCenter
	}
	// Final sanity: equal lengths.
	for i, r := range rows {
		if len(r) != len(msaCenter) {
			return nil, fmt.Errorf("tower: MSA row %d has length %d, want %d", i, len(r), len(msaCenter))
		}
	}
	return rows, nil
}

func totalDist(dist [][]float64, i int) float64 {
	var t float64
	for j := range dist[i] {
		t += dist[i][j]
	}
	return t
}

// mergeCenters merges two gapped spellings of the same ungapped center
// sequence into a common one, returning gap-insertion scripts for rows
// aligned to each spelling. A script lists, for each output column,
// which input column it came from (-1 = new gap).
func mergeCenters(a, b string) (merged string, scriptA, scriptB []int) {
	var sb strings.Builder
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i < len(a) && j < len(b) && a[i] != '-' && b[j] != '-':
			// Both consume a residue (same residue by construction).
			sb.WriteByte(a[i])
			scriptA = append(scriptA, i)
			scriptB = append(scriptB, j)
			i++
			j++
		case i < len(a) && a[i] == '-':
			sb.WriteByte('-')
			scriptA = append(scriptA, i)
			scriptB = append(scriptB, -1)
			i++
		default: // j < len(b) && b[j] == '-'
			sb.WriteByte('-')
			scriptA = append(scriptA, -1)
			scriptB = append(scriptB, j)
			j++
		}
	}
	return sb.String(), scriptA, scriptB
}

// applyGaps re-spaces a row according to a merge script.
func applyGaps(row string, script []int) string {
	out := make([]byte, len(script))
	for col, src := range script {
		if src < 0 || src >= len(row) {
			out[col] = Gap
		} else {
			out[col] = row[src]
		}
	}
	return string(out)
}
