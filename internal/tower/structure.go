package tower

import "fmt"

// This file is the top floor of the tower: secondary-structure prediction
// with the classic Chou–Fasman method (helix/sheet nucleation by
// propensity windows, extension, and conflict resolution by summed
// propensity).

// Secondary-structure classes.
const (
	Helix = 'H'
	Sheet = 'E'
	Coil  = 'C'
)

// chouFasman propensities (P(a), P(b)) per amino acid — the published
// 1978 parameter set (×100).
var cfHelix = map[byte]float64{
	'A': 142, 'C': 70, 'D': 101, 'E': 151, 'F': 113,
	'G': 57, 'H': 100, 'I': 108, 'K': 116, 'L': 121,
	'M': 145, 'N': 67, 'P': 57, 'Q': 111, 'R': 98,
	'S': 77, 'T': 83, 'V': 106, 'W': 108, 'Y': 69,
}

var cfSheet = map[byte]float64{
	'A': 83, 'C': 119, 'D': 54, 'E': 37, 'F': 138,
	'G': 75, 'H': 87, 'I': 160, 'K': 74, 'L': 130,
	'M': 105, 'N': 89, 'P': 55, 'Q': 110, 'R': 93,
	'S': 75, 'T': 119, 'V': 170, 'W': 137, 'Y': 147,
}

// PredictSecondary runs Chou–Fasman over a protein sequence and returns a
// string of H/E/C per residue.
func PredictSecondary(protein string) (string, error) {
	n := len(protein)
	if n == 0 {
		return "", nil
	}
	for i := 0; i < n; i++ {
		if _, ok := cfHelix[protein[i]]; !ok {
			return "", fmt.Errorf("tower: unknown residue %q at %d", protein[i], i)
		}
	}
	helix := make([]bool, n)
	sheet := make([]bool, n)

	// Helix nucleation: window of 6 with ≥ 4 strong formers (P ≥ 100),
	// then extension while the 4-residue window average stays ≥ 100.
	markRegions(protein, helix, cfHelix, 6, 4, 100)
	// Sheet nucleation: window of 5 with ≥ 3 strong formers (P ≥ 100).
	markRegions(protein, sheet, cfSheet, 5, 3, 100)

	out := make([]byte, n)
	for i := 0; i < n; i++ {
		switch {
		case helix[i] && sheet[i]:
			// Overlap: higher summed propensity over the
			// overlapping run wins; approximate per-residue.
			if cfHelix[protein[i]] >= cfSheet[protein[i]] {
				out[i] = Helix
			} else {
				out[i] = Sheet
			}
		case helix[i]:
			out[i] = Helix
		case sheet[i]:
			out[i] = Sheet
		default:
			out[i] = Coil
		}
	}
	return string(out), nil
}

// markRegions nucleates and extends regions per Chou–Fasman.
func markRegions(p string, mark []bool, prop map[byte]float64, window, needed int, cut float64) {
	n := len(p)
	for i := 0; i+window <= n; i++ {
		strong := 0
		for k := i; k < i+window; k++ {
			if prop[p[k]] >= cut {
				strong++
			}
		}
		if strong < needed {
			continue
		}
		// Nucleate the window, then extend both ways while the
		// tetrapeptide average stays above the cut.
		lo, hi := i, i+window // [lo, hi)
		for lo > 0 && avgProp(p, prop, lo-1, min(lo+3, n)) >= cut {
			lo--
		}
		for hi < n && avgProp(p, prop, max(hi-3, 0), hi+1) >= cut {
			hi++
		}
		for k := lo; k < hi; k++ {
			mark[k] = true
		}
	}
}

func avgProp(p string, prop map[byte]float64, lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p) {
		hi = len(p)
	}
	if hi <= lo {
		return 0
	}
	var s float64
	for k := lo; k < hi; k++ {
		s += prop[p[k]]
	}
	return s / float64(hi-lo)
}
