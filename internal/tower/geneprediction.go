package tower

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

// This file implements the gene-prediction package the paper names as
// future work (§6: "we have begun a gene prediction package. As each new
// genome is made available, the process will apply several existing and
// new gene finding algorithms to the raw DNA dataset"). Two finders run in
// parallel branches of a BioOpera process and a consensus step merges
// them:
//
//   - the strict finder: forward-strand ORFs of at least min codons
//     (FindORFs);
//   - the lenient finder: both strands, a lower length threshold, each
//     candidate scored by codon-usage bias (real genes share the genome's
//     codon bias; random open frames do not);
//   - consensus: candidates found by both finders, plus lenient-only
//     candidates whose bias score clears a threshold.

// ReverseComplement returns the reverse complement of a DNA string.
func ReverseComplement(dna string) string {
	comp := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	out := make([]byte, len(dna))
	for i := 0; i < len(dna); i++ {
		c, ok := comp[dna[len(dna)-1-i]]
		if !ok {
			c = 'N'
		}
		out[i] = c
	}
	return string(out)
}

// ScoredORF is a gene candidate with its codon-bias score.
type ScoredORF struct {
	ORF
	// Strand is +1 for the forward strand, -1 for the reverse.
	Strand int
	// Bias is the mean per-codon log2 odds of the candidate's codon
	// usage against the uniform synonymous baseline; higher = more
	// gene-like.
	Bias float64
}

// FindORFsBothStrands scans both strands for ORFs.
func FindORFsBothStrands(dna string, minCodons int) []ScoredORF {
	var out []ScoredORF
	for _, o := range FindORFs(dna, minCodons) {
		out = append(out, ScoredORF{ORF: o, Strand: +1})
	}
	rc := ReverseComplement(strings.ToUpper(dna))
	for _, o := range FindORFs(rc, minCodons) {
		out = append(out, ScoredORF{ORF: o, Strand: -1})
	}
	return out
}

// synonymousCounts maps each amino acid to its codon count (for the
// uniform baseline).
var synonymousCounts = func() map[byte]int {
	m := map[byte]int{}
	for _, aa := range codonTable {
		m[aa]++
	}
	return m
}()

// ScoreCodonBias ranks candidates by self-trained codon bias: codon usage
// frequencies are estimated from the whole candidate set (dominated by
// real genes when the genome has them), and each candidate scores the mean
// log2 odds of its codons against the uniform-synonymous baseline.
func ScoreCodonBias(candidates []ScoredORF) []ScoredORF {
	// Estimate codon usage over all candidates.
	usage := map[string]float64{}
	var total float64
	for _, c := range candidates {
		for i := 3; i+2 < len(c.DNA)-3; i += 3 { // skip start and stop
			usage[c.DNA[i:i+3]]++
			total++
		}
	}
	if total == 0 {
		return candidates
	}
	out := make([]ScoredORF, len(candidates))
	for k, c := range candidates {
		var score float64
		var n int
		for i := 3; i+2 < len(c.DNA)-3; i += 3 {
			codon := c.DNA[i : i+3]
			aa := codonTable[codon]
			syn := synonymousCounts[aa]
			if syn == 0 {
				continue
			}
			observed := (usage[codon] + 0.5) / (total + 0.5*64)
			// Baseline: this amino acid's frequency split evenly
			// among its synonymous codons.
			var aaFreq float64
			for cod, a := range codonTable {
				if a == aa {
					aaFreq += (usage[cod] + 0.5) / (total + 0.5*64)
				}
			}
			baseline := aaFreq / float64(syn)
			if baseline > 0 && observed > 0 {
				score += math.Log2(observed / baseline)
				n++
			}
		}
		c.Bias = 0
		if n > 0 {
			c.Bias = score / float64(n)
		}
		out[k] = c
	}
	return out
}

// Consensus merges the two finders' candidate sets: every strict hit is a
// gene; lenient-only hits count when their bias clears biasCut. Results
// are sorted by genome position and de-duplicated by (start, end, strand).
func Consensus(strict []ORF, lenient []ScoredORF, biasCut float64) []ScoredORF {
	type key struct {
		start, end, strand int
	}
	seen := map[key]bool{}
	strictSet := map[key]bool{}
	for _, o := range strict {
		strictSet[key{o.Start, o.End, +1}] = true
	}
	var out []ScoredORF
	add := func(c ScoredORF) {
		k := key{c.Start, c.End, c.Strand}
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	for _, c := range lenient {
		k := key{c.Start, c.End, c.Strand}
		if strictSet[k] || c.Bias >= biasCut {
			add(c)
		}
	}
	// Strict hits the lenient scan somehow missed (shouldn't happen
	// with a lower lenient threshold, but be safe).
	for _, o := range strict {
		add(ScoredORF{ORF: o, Strand: +1})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Strand > out[j].Strand
	})
	return out
}

// GenePredictionTemplate is the parent template name.
const GenePredictionTemplate = "GenePrediction"

// GenePredictionSource is the OCR definition: two finders in parallel
// branches, bias scoring on the lenient branch, and a consensus merge.
const GenePredictionSource = `
PROCESS GenePrediction "Apply several gene-finding algorithms and merge (paper §6)" {
  INPUT dna, min_codons, bias_cut;
  OUTPUT genes, proteins;

  ACTIVITY StrictFinder {
    DOC "Forward-strand ORF scan at full length threshold";
    CALL genes.strict(dna = dna, min = min_codons);
    OUT candidates;
    MAP candidates -> strict_hits;
    RETRY 1;
  }

  ACTIVITY LenientFinder {
    DOC "Both strands, lower threshold";
    CALL genes.lenient(dna = dna, min = min_codons);
    OUT candidates;
    MAP candidates -> lenient_hits;
    RETRY 1;
  }

  ACTIVITY BiasScore {
    DOC "Codon-usage bias scoring of the lenient candidates";
    CALL genes.bias(candidates = lenient_hits);
    OUT scored;
    MAP scored -> scored_hits;
  }

  ACTIVITY Merge {
    DOC "Consensus of the finders";
    CALL genes.consensus(strict = strict_hits, scored = scored_hits, cut = bias_cut);
    OUT genes, proteins;
    MAP genes -> genes, proteins -> proteins;
  }

  LenientFinder -> BiasScore;
  StrictFinder -> Merge;
  BiasScore -> Merge;
}
`

// orf value encoding: [start, end, strand, bias, dna].
func orfValue(c ScoredORF) ocr.Value {
	return ocr.List(ocr.Int(c.Start), ocr.Int(c.End), ocr.Int(c.Strand), ocr.Num(c.Bias), ocr.Str(c.DNA))
}

func orfFromValue(v ocr.Value) (ScoredORF, error) {
	if v.Kind() != ocr.KindList || v.Len() != 5 {
		return ScoredORF{}, fmt.Errorf("tower: bad ORF record %v", v)
	}
	return ScoredORF{
		ORF: ORF{
			Start: v.At(0).AsInt(),
			End:   v.At(1).AsInt(),
			DNA:   v.At(4).AsStr(),
		},
		Strand: v.At(2).AsInt(),
		Bias:   v.At(3).AsNum(),
	}, nil
}

func orfsValue(cs []ScoredORF) ocr.Value {
	vs := make([]ocr.Value, len(cs))
	for i, c := range cs {
		vs[i] = orfValue(c)
	}
	return ocr.List(vs...)
}

func orfsFromValue(v ocr.Value) ([]ScoredORF, error) {
	if v.Kind() != ocr.KindList {
		return nil, fmt.Errorf("tower: ORF set is %s", v.Kind())
	}
	out := make([]ScoredORF, v.Len())
	for i := range out {
		c, err := orfFromValue(v.At(i))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// RegisterGenePrediction installs the genes.* programs.
func RegisterGenePrediction(lib *core.Library) error {
	programs := []core.Program{
		{
			Name: "genes.strict",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				min := args["min"].AsInt()
				if min <= 0 {
					min = 40
				}
				var out []ScoredORF
				for _, o := range FindORFs(args["dna"].AsStr(), min) {
					out = append(out, ScoredORF{ORF: o, Strand: +1})
				}
				return map[string]ocr.Value{"candidates": orfsValue(out)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(len(args["dna"].AsStr()), 40*time.Microsecond)
			},
		},
		{
			Name: "genes.lenient",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				min := args["min"].AsInt()
				if min <= 0 {
					min = 40
				}
				lenientMin := min / 2
				if lenientMin < 10 {
					lenientMin = 10
				}
				return map[string]ocr.Value{
					"candidates": orfsValue(FindORFsBothStrands(args["dna"].AsStr(), lenientMin)),
				}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(2*len(args["dna"].AsStr()), 40*time.Microsecond)
			},
		},
		{
			Name: "genes.bias",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				cs, err := orfsFromValue(args["candidates"])
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"scored": orfsValue(ScoreCodonBias(cs))}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(args["candidates"].Len(), 5*time.Millisecond)
			},
		},
		{
			Name: "genes.consensus",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				strictHits, err := orfsFromValue(args["strict"])
				if err != nil {
					return nil, err
				}
				scored, err := orfsFromValue(args["scored"])
				if err != nil {
					return nil, err
				}
				var strictORFs []ORF
				for _, c := range strictHits {
					strictORFs = append(strictORFs, c.ORF)
				}
				cut := args["cut"].AsNum()
				genes := Consensus(strictORFs, scored, cut)
				proteins := make([]ocr.Value, len(genes))
				for i, g := range genes {
					proteins[i] = ocr.Str(translateORF(g.DNA))
				}
				return map[string]ocr.Value{
					"genes":    orfsValue(genes),
					"proteins": ocr.List(proteins...),
				}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(args["scored"].Len(), time.Millisecond)
			},
		},
	}
	for _, p := range programs {
		if err := lib.Register(p); err != nil {
			return err
		}
	}
	return nil
}

// GenePredictionInputs builds the process inputs.
func GenePredictionInputs(dna string, minCodons int, biasCut float64) map[string]ocr.Value {
	return map[string]ocr.Value{
		"dna":        ocr.Str(dna),
		"min_codons": ocr.Int(minCodons),
		"bias_cut":   ocr.Num(biasCut),
	}
}

// DecodeORFs decodes a genes output value.
func DecodeORFs(v ocr.Value) ([]ScoredORF, error) { return orfsFromValue(v) }
