package tower

import (
	"fmt"
	"sort"
	"strings"
)

// This file holds the phylogenetic floors: neighbour-joining tree
// construction (Saitou & Nei 1987) and ancestral sequence reconstruction
// by Fitch parsimony over an MSA.

// TreeNode is one node of a phylogenetic tree.
type TreeNode struct {
	// Leaf index into the input set, or -1 for internal nodes.
	Leaf int
	// Name labels leaves.
	Name string
	// Length is the branch length to the parent.
	Length float64
	// Children are the subtrees (empty for leaves).
	Children []*TreeNode
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the leaf indices under the node, in-order.
func (n *TreeNode) Leaves() []int {
	if n.IsLeaf() {
		return []int{n.Leaf}
	}
	var out []int
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Newick renders the tree in Newick format.
func (n *TreeNode) Newick() string {
	var sb strings.Builder
	n.newick(&sb)
	sb.WriteByte(';')
	return sb.String()
}

func (n *TreeNode) newick(sb *strings.Builder) {
	if n.IsLeaf() {
		sb.WriteString(n.Name)
	} else {
		sb.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				sb.WriteByte(',')
			}
			c.newick(sb)
		}
		sb.WriteByte(')')
	}
	if n.Length > 0 {
		fmt.Fprintf(sb, ":%.2f", n.Length)
	}
}

// NeighborJoining builds an (unrooted, here arbitrarily rooted at the last
// join) binary tree from a symmetric distance matrix. Leaf i gets
// names[i] (or "L<i>" when names is nil).
func NeighborJoining(dist [][]float64, names []string) (*TreeNode, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("tower: empty distance matrix")
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("tower: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
	}
	name := func(i int) string {
		if names != nil && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("L%d", i)
	}
	if n == 1 {
		return &TreeNode{Leaf: 0, Name: name(0)}, nil
	}

	// Active nodes and a working copy of the matrix.
	nodes := make([]*TreeNode, n)
	for i := range nodes {
		nodes[i] = &TreeNode{Leaf: i, Name: name(i)}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	for len(active) > 2 {
		m := len(active)
		// Row sums over active entries.
		r := make(map[int]float64, m)
		for _, i := range active {
			for _, j := range active {
				r[i] += d[i][j]
			}
		}
		// Minimize the Q criterion.
		bi, bj := -1, -1
		bestQ := 0.0
		first := true
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				i, j := active[x], active[y]
				q := float64(m-2)*d[i][j] - r[i] - r[j]
				if first || q < bestQ {
					bestQ, bi, bj, first = q, i, j, false
				}
			}
		}
		// Branch lengths to the new node.
		li := d[bi][bj]/2 + (r[bi]-r[bj])/(2*float64(m-2))
		lj := d[bi][bj] - li
		if li < 0 {
			li = 0
		}
		if lj < 0 {
			lj = 0
		}
		nodes[bi].Length = li
		nodes[bj].Length = lj
		parent := &TreeNode{Leaf: -1, Children: []*TreeNode{nodes[bi], nodes[bj]}}

		// New distances: d(u,k) = (d(i,k)+d(j,k)-d(i,j))/2, reusing
		// slot bi for the new node.
		for _, k := range active {
			if k == bi || k == bj {
				continue
			}
			nd := (d[bi][k] + d[bj][k] - d[bi][bj]) / 2
			if nd < 0 {
				nd = 0
			}
			d[bi][k] = nd
			d[k][bi] = nd
		}
		nodes[bi] = parent
		// Remove bj from the active set.
		out := active[:0]
		for _, k := range active {
			if k != bj {
				out = append(out, k)
			}
		}
		active = out
	}
	// Join the last two.
	i, j := active[0], active[1]
	nodes[i].Length = d[i][j] / 2
	nodes[j].Length = d[i][j] / 2
	return &TreeNode{Leaf: -1, Children: []*TreeNode{nodes[i], nodes[j]}}, nil
}

// FitchAncestral reconstructs the root-most ancestral sequence of an MSA
// under Fitch parsimony on the given tree. Rows of msa correspond to leaf
// indices. Gap columns resolve to gaps only if parsimony demands it; the
// returned string has gaps stripped.
func FitchAncestral(tree *TreeNode, msa []string) (string, error) {
	if len(msa) == 0 {
		return "", fmt.Errorf("tower: empty MSA")
	}
	width := len(msa[0])
	for i, r := range msa {
		if len(r) != width {
			return "", fmt.Errorf("tower: MSA row %d has length %d, want %d", i, len(r), width)
		}
	}
	var sb strings.Builder
	for col := 0; col < width; col++ {
		set, err := fitchUp(tree, msa, col)
		if err != nil {
			return "", err
		}
		// Deterministic choice: smallest character, preferring
		// residues over gaps.
		chars := make([]byte, 0, len(set))
		for c := range set {
			chars = append(chars, c)
		}
		sort.Slice(chars, func(a, b int) bool { return chars[a] < chars[b] })
		pick := chars[0]
		if pick == Gap && len(chars) > 1 {
			pick = chars[1]
		}
		if pick != Gap {
			sb.WriteByte(pick)
		}
	}
	return sb.String(), nil
}

// fitchUp computes the Fitch state set of a node for one column.
func fitchUp(n *TreeNode, msa []string, col int) (map[byte]bool, error) {
	if n.IsLeaf() {
		if n.Leaf < 0 || n.Leaf >= len(msa) {
			return nil, fmt.Errorf("tower: tree leaf %d outside MSA of %d rows", n.Leaf, len(msa))
		}
		return map[byte]bool{msa[n.Leaf][col]: true}, nil
	}
	sets := make([]map[byte]bool, len(n.Children))
	for i, c := range n.Children {
		s, err := fitchUp(c, msa, col)
		if err != nil {
			return nil, err
		}
		sets[i] = s
	}
	// Intersection if non-empty, else union.
	inter := map[byte]bool{}
	for c := range sets[0] {
		all := true
		for _, s := range sets[1:] {
			if !s[c] {
				all = false
				break
			}
		}
		if all {
			inter[c] = true
		}
	}
	if len(inter) > 0 {
		return inter, nil
	}
	union := map[byte]bool{}
	for _, s := range sets {
		for c := range s {
			union[c] = true
		}
	}
	return union, nil
}
