package tower

import (
	"strings"
	"testing"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement("ATGC"); got != "GCAT" {
		t.Fatalf("rc = %q", got)
	}
	if got := ReverseComplement(""); got != "" {
		t.Fatalf("rc empty = %q", got)
	}
	// Involution.
	dna, _ := GenerateGenome(GenomeOptions{Genes: 2, Seed: 1})
	if ReverseComplement(ReverseComplement(dna)) != strings.ToUpper(dna) {
		t.Fatal("rc not an involution")
	}
}

func TestFindORFsBothStrands(t *testing.T) {
	// Plant a gene on the reverse strand: generate a genome and flip it.
	fwd, planted := GenerateGenome(GenomeOptions{Genes: 2, MeanCodons: 60, Seed: 5})
	rev := ReverseComplement(fwd)
	// Genes can be as short as MeanCodons/2; scan below that.
	cands := FindORFsBothStrands(rev, 25)
	var strands [2]int
	var translations []string
	for _, c := range cands {
		if c.Strand > 0 {
			strands[0]++
		} else {
			strands[1]++
		}
		translations = append(translations, translateORF(c.DNA))
	}
	if strands[1] == 0 {
		t.Fatal("no reverse-strand ORFs found")
	}
	// An upstream in-frame ATG may extend an ORF, so match by suffix.
	for i, p := range planted {
		found := false
		for _, tr := range translations {
			if strings.HasSuffix(tr, p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("planted gene %d not found on the reverse strand", i)
		}
	}
}

func TestCodonBiasSeparatesGenesFromNoise(t *testing.T) {
	// Real genes share codon usage; spurious short ORFs in random
	// intergenic DNA don't. After self-trained scoring, planted genes
	// must rank above the median spurious candidate.
	dna, planted := GenerateGenome(GenomeOptions{Genes: 6, MeanCodons: 100, Intergenic: 400, Seed: 9, Related: true})
	cands := ScoreCodonBias(FindORFsBothStrands(dna, 15))
	// An upstream in-frame ATG can extend a planted gene's ORF, so a
	// candidate "is" a planted gene when its translation ends with the
	// planted protein.
	isPlanted := func(prot string) bool {
		for _, p := range planted {
			if strings.HasSuffix(prot, p) {
				return true
			}
		}
		return false
	}
	var geneScores, noiseScores []float64
	for _, c := range cands {
		if isPlanted(translateORF(c.DNA)) {
			geneScores = append(geneScores, c.Bias)
		} else {
			noiseScores = append(noiseScores, c.Bias)
		}
	}
	if len(geneScores) < len(planted) {
		t.Fatalf("only %d/%d planted genes among candidates", len(geneScores), len(planted))
	}
	if len(noiseScores) == 0 {
		t.Skip("no spurious ORFs with this seed")
	}
	meanGene := mean(geneScores)
	meanNoise := mean(noiseScores)
	if meanGene <= meanNoise {
		t.Fatalf("bias does not separate: genes %.3f vs noise %.3f", meanGene, meanNoise)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestConsensusDedupAndOrder(t *testing.T) {
	strict := []ORF{{Start: 10, End: 100, DNA: "ATGTAA"}}
	lenient := []ScoredORF{
		{ORF: ORF{Start: 10, End: 100, DNA: "ATGTAA"}, Strand: +1, Bias: -1}, // dup of strict
		{ORF: ORF{Start: 200, End: 300, DNA: "ATGTAA"}, Strand: -1, Bias: 2}, // passes cut
		{ORF: ORF{Start: 5, End: 50, DNA: "ATGTAA"}, Strand: +1, Bias: -2},   // fails cut
	}
	out := Consensus(strict, lenient, 0.5)
	if len(out) != 2 {
		t.Fatalf("consensus = %d candidates, want 2", len(out))
	}
	if out[0].Start != 10 || out[1].Start != 200 {
		t.Fatalf("consensus order = %+v", out)
	}
}

func TestGenePredictionProcessEndToEnd(t *testing.T) {
	dna, planted := GenerateGenome(GenomeOptions{Genes: 5, MeanCodons: 80, Seed: 13, Related: true})

	lib := core.NewLibrary()
	if err := RegisterGenePrediction(lib); err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(GenePredictionSource); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess(GenePredictionTemplate,
		GenePredictionInputs(dna, 40, 0.05), core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	genes, err := DecodeORFs(in.Outputs["genes"])
	if err != nil {
		t.Fatal(err)
	}
	proteins, err := StrList(in.Outputs["proteins"])
	if err != nil {
		t.Fatal(err)
	}
	if len(genes) != len(proteins) {
		t.Fatalf("genes %d vs proteins %d", len(genes), len(proteins))
	}
	// Recall: every planted gene predicted.
	predicted := map[string]bool{}
	for _, p := range proteins {
		predicted[p] = true
	}
	for i, p := range planted {
		if !predicted[p] {
			t.Fatalf("planted gene %d missed by the consensus", i)
		}
	}
	// The two finders ran as parallel roots (no connector between them).
	proc, _ := ocr.ParseProcess(GenePredictionSource)
	roots := proc.Roots()
	if len(roots) != 2 {
		t.Fatalf("finder roots = %d, want 2", len(roots))
	}
}

func TestGenePredictionTemplateValid(t *testing.T) {
	p, err := ocr.ParseProcess(GenePredictionSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p2, err := ocr.ParseProcess(ocr.Format(p))
	if err != nil || ocr.Format(p2) != ocr.Format(p) {
		t.Fatalf("round trip: %v", err)
	}
}
