package tower

import (
	"strings"
	"testing"

	"bioopera/internal/cluster"
	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

func TestCodonTableComplete(t *testing.T) {
	if len(codonTable) != 64 {
		t.Fatalf("codon table has %d entries", len(codonTable))
	}
	stops := 0
	for _, aa := range codonTable {
		if aa == '*' {
			stops++
		}
	}
	if stops != 3 {
		t.Fatalf("%d stop codons, want 3", stops)
	}
}

func TestTranslate(t *testing.T) {
	p, err := Translate("ATGGCTTGTGATTAA") // M A C D stop
	if err != nil {
		t.Fatal(err)
	}
	if p != "MACD" {
		t.Fatalf("protein = %q", p)
	}
	if _, err := Translate("ATGXYZ"); err == nil {
		t.Fatal("invalid base accepted")
	}
	if _, err := Translate("ATG"); err == nil {
		t.Fatal("too-short gene accepted")
	}
}

func TestGenerateAndFindORFs(t *testing.T) {
	dna, planted := GenerateGenome(GenomeOptions{Genes: 5, MeanCodons: 80, Seed: 3, Related: true})
	if len(planted) != 5 {
		t.Fatalf("planted %d proteins", len(planted))
	}
	orfs := FindORFs(dna, 40)
	if len(orfs) < 5 {
		t.Fatalf("found %d ORFs, want ≥ 5", len(orfs))
	}
	// Every planted protein must be recovered by translating some ORF.
	found := map[string]bool{}
	for _, o := range orfs {
		found[translateORF(o.DNA)] = true
	}
	for i, p := range planted {
		if !found[p] {
			t.Fatalf("planted protein %d not recovered", i)
		}
	}
	// ORF invariants.
	for _, o := range orfs {
		if !strings.HasPrefix(o.DNA, "ATG") {
			t.Fatalf("ORF does not start with ATG: %q", o.DNA[:9])
		}
		if (o.End-o.Start)%3 != 0 {
			t.Fatalf("ORF length not a codon multiple")
		}
		if o.Start%3 != o.Frame {
			t.Fatalf("ORF frame mismatch: start %d frame %d", o.Start, o.Frame)
		}
	}
}

func TestFindORFsEmpty(t *testing.T) {
	if got := FindORFs("", 10); got != nil {
		t.Fatalf("ORFs in empty DNA: %v", got)
	}
	if got := FindORFs("TTTTTTTTT", 1); got != nil {
		t.Fatalf("ORFs without ATG: %v", got)
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	_, proteins := GenerateGenome(GenomeOptions{Genes: 4, MeanCodons: 60, Seed: 5, Related: true})
	d, err := DistanceMatrix(proteins, 60)
	if err != nil {
		t.Fatal(err)
	}
	n := len(proteins)
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %v", i, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 || d[i][j] > maxDistance {
				t.Fatalf("d[%d][%d] = %v out of range", i, j, d[i][j])
			}
		}
	}
	// Related genes must be measurably closer than the cap.
	if d[0][1] >= maxDistance {
		t.Fatalf("related pair at max distance: %v", d[0][1])
	}
}

func TestGlobalAlignAndMSA(t *testing.T) {
	proteins := []string{
		"MKVLITGGAGFIG",
		"MKVLITGAGFIG",  // one deletion
		"MKVLITGGAGWIG", // one substitution
	}
	d, err := DistanceMatrix(proteins, 10)
	if err != nil {
		t.Fatal(err)
	}
	msa, err := MultipleAlign(proteins, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(msa) != 3 {
		t.Fatalf("msa rows = %d", len(msa))
	}
	width := len(msa[0])
	for i, r := range msa {
		if len(r) != width {
			t.Fatalf("row %d width %d != %d", i, len(r), width)
		}
		// Removing gaps recovers the original.
		if strings.ReplaceAll(r, "-", "") != proteins[i] {
			t.Fatalf("row %d = %q does not respell %q", i, r, proteins[i])
		}
	}
	// Highly similar sequences: most columns gap-free.
	if CountGapFree(msa) < width-3 {
		t.Fatalf("only %d/%d gap-free columns", CountGapFree(msa), width)
	}
	if GapFraction(msa) > 0.2 {
		t.Fatalf("gap fraction %v", GapFraction(msa))
	}
}

func TestMSAEdgeCases(t *testing.T) {
	if msa, err := MultipleAlign(nil, nil); err != nil || msa != nil {
		t.Fatalf("empty MSA = %v, %v", msa, err)
	}
	msa, err := MultipleAlign([]string{"MKV"}, [][]float64{{0}})
	if err != nil || len(msa) != 1 || msa[0] != "MKV" {
		t.Fatalf("single MSA = %v, %v", msa, err)
	}
	if _, err := MultipleAlign([]string{"MK", "MV"}, [][]float64{{0}}); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestNeighborJoining(t *testing.T) {
	// Additive tree: ((A,B),(C,D)) with known distances.
	d := [][]float64{
		{0, 4, 10, 10},
		{4, 0, 10, 10},
		{10, 10, 0, 4},
		{10, 10, 4, 0},
	}
	tree, err := NeighborJoining(d, []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("tree has %d leaves", len(leaves))
	}
	nwk := tree.Newick()
	// A and B must be siblings (and C,D): check the Newick groups them.
	if !strings.Contains(nwk, "A") || !strings.Contains(nwk, "D") {
		t.Fatalf("newick = %s", nwk)
	}
	// Structural check on the unrooted split {A,B} | {C,D}: some
	// internal node must have exactly {A,B} or exactly {C,D} under it,
	// and no node may pair a member of each side.
	var goodSplit, badSplit bool
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		ls := n.Leaves()
		if len(ls) == 2 {
			set := map[int]bool{ls[0]: true, ls[1]: true}
			switch {
			case set[0] && set[1], set[2] && set[3]:
				goodSplit = true
			default:
				badSplit = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	if !goodSplit || badSplit {
		t.Fatalf("NJ failed to recover the {A,B}|{C,D} split: %s", nwk)
	}
}

func TestNeighborJoiningEdge(t *testing.T) {
	if _, err := NeighborJoining(nil, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	one, err := NeighborJoining([][]float64{{0}}, []string{"X"})
	if err != nil || !one.IsLeaf() || one.Name != "X" {
		t.Fatalf("1-leaf tree = %+v, %v", one, err)
	}
	two, err := NeighborJoining([][]float64{{0, 6}, {6, 0}}, nil)
	if err != nil || len(two.Leaves()) != 2 {
		t.Fatalf("2-leaf tree = %+v, %v", two, err)
	}
	if _, err := NeighborJoining([][]float64{{0, 1}}, nil); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestFitchAncestral(t *testing.T) {
	msa := []string{"MKVA", "MKVA", "MRVA", "MRVG"}
	d := [][]float64{
		{0, 1, 5, 6},
		{1, 0, 5, 6},
		{5, 5, 0, 2},
		{6, 6, 2, 0},
	}
	tree, err := NeighborJoining(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	anc, err := FitchAncestral(tree, msa)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 4 {
		t.Fatalf("ancestor = %q", anc)
	}
	if anc[0] != 'M' || anc[2] != 'V' {
		t.Fatalf("ancestor = %q, conserved columns lost", anc)
	}
	// Gap handling: a gap column resolves to a residue when possible.
	msaGap := []string{"M-A", "MKA", "MKA", "M-A"}
	anc2, err := FitchAncestral(tree, msaGap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(anc2, "M") || !strings.HasSuffix(anc2, "A") {
		t.Fatalf("gapped ancestor = %q", anc2)
	}
	if _, err := FitchAncestral(tree, []string{"AB", "A"}); err == nil {
		t.Fatal("ragged MSA accepted")
	}
}

func TestPredictSecondary(t *testing.T) {
	// Poly-alanine/glutamate: strong helix formers.
	ss, err := PredictSecondary("AEAEAEAEAEAEAEAE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ss, "H") {
		t.Fatalf("helix peptide predicted %q", ss)
	}
	// Poly-valine/isoleucine: strong sheet formers.
	ss2, err := PredictSecondary("VIVIVIVIVIVIVIVI")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ss2, "E") {
		t.Fatalf("sheet peptide predicted %q", ss2)
	}
	// Glycine/proline: breakers → coil.
	ss3, err := PredictSecondary("GPGPGPGPGPGP")
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(ss3, "HE") {
		t.Fatalf("breaker peptide predicted %q", ss3)
	}
	if out, err := PredictSecondary(""); err != nil || out != "" {
		t.Fatalf("empty = %q, %v", out, err)
	}
	if _, err := PredictSecondary("AX"); err == nil {
		t.Fatal("unknown residue accepted")
	}
	// Output length always matches input.
	ss4, _ := PredictSecondary("MKVLITGGAGFIGSAEAEAE")
	if len(ss4) != 20 {
		t.Fatalf("prediction length %d", len(ss4))
	}
}

func TestTemplatesParseAndValidate(t *testing.T) {
	ps, err := ocr.ParseFile(Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 8 {
		t.Fatalf("templates = %d, want 8", len(ps))
	}
	byName := map[string]*ocr.Process{}
	for _, p := range ps {
		byName[p.Name] = p
	}
	resolve := func(name string) (*ocr.Process, bool) {
		p, ok := byName[name]
		return p, ok
	}
	for _, p := range ps {
		if err := p.ValidateWithTemplates(resolve); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestTowerEndToEnd(t *testing.T) {
	// The whole tower through the engine, with every floor a
	// subprocess.
	dna, planted := GenerateGenome(GenomeOptions{Genes: 4, MeanCodons: 60, Seed: 7, Related: true})

	lib := core.NewLibrary()
	if err := Register(lib); err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewSimRuntime(core.SimConfig{Seed: 1, Spec: cluster.IkLinux(), Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(Source); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess(TemplateName, Inputs(dna, 30, 60), core.StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != core.InstanceDone {
		t.Fatalf("tower instance: %s (%s)", in.Status, in.FailureReason)
	}

	proteins, err := StrList(in.Outputs["proteins"])
	if err != nil {
		t.Fatal(err)
	}
	if len(proteins) < len(planted) {
		t.Fatalf("proteins = %d, want ≥ %d", len(proteins), len(planted))
	}
	msa, err := StrList(in.Outputs["alignment"])
	if err != nil {
		t.Fatal(err)
	}
	if len(msa) != len(proteins) {
		t.Fatalf("alignment rows = %d", len(msa))
	}
	tree := in.Outputs["tree"].AsStr()
	if !strings.HasSuffix(tree, ";") || !strings.Contains(tree, "(") {
		t.Fatalf("tree = %q", tree)
	}
	anc := in.Outputs["ancestor"].AsStr()
	if len(anc) == 0 {
		t.Fatal("no ancestral sequence")
	}
	preds, err := StrList(in.Outputs["predictions"])
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(proteins) {
		t.Fatalf("predictions = %d", len(preds))
	}
	for i, ss := range preds {
		if len(ss) != len(proteins[i]) {
			t.Fatalf("prediction %d length %d != protein %d", i, len(ss), len(proteins[i]))
		}
	}
}
