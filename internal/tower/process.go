package tower

import (
	"fmt"
	"strings"
	"time"

	"bioopera/internal/core"
	"bioopera/internal/ocr"
)

// This file exposes the tower as BioOpera processes: one subprocess
// template per floor (the paper: "the tower of information is built as a
// process where every step is a subprocess") plus the parent process that
// chains them.

// TemplateName is the parent process name.
const TemplateName = "TowerOfInformation"

// Source contains every tower template in OCR.
const Source = `
PROCESS GeneFinding "Locate genes (ORFs) in raw DNA" {
  INPUT dna, min_codons;
  OUTPUT genes;
  ACTIVITY Find {
    CALL tower.find_genes(dna = dna, min = min_codons);
    OUT genes;
    MAP genes -> genes;
    RETRY 1;
  }
}

PROCESS Translation "Translate gene DNA into protein sequences" {
  INPUT genes;
  OUTPUT proteins;
  BLOCK PerGene PARALLEL OVER genes AS gene {
    MAP results -> proteins;
    OUTPUT protein;
    ACTIVITY T {
      CALL tower.translate_one(gene = gene);
      OUT protein;
      MAP protein -> protein;
      RETRY 1;
    }
  }
}

PROCESS PairwiseAlignments "Estimate pairwise PAM distances" {
  INPUT proteins, threshold;
  OUTPUT distances;
  ACTIVITY Distances {
    CALL tower.distances(proteins = proteins, threshold = threshold);
    OUT distances;
    MAP distances -> distances;
    RETRY 2;
  }
}

PROCESS MultipleAlignment "Center-star progressive MSA" {
  INPUT proteins, distances;
  OUTPUT alignment;
  ACTIVITY MSA {
    CALL tower.msa(proteins = proteins, distances = distances);
    OUT alignment;
    MAP alignment -> alignment;
    RETRY 1;
  }
}

PROCESS PhylogeneticTree "Neighbour-joining tree" {
  INPUT distances;
  OUTPUT tree;
  ACTIVITY NJ {
    CALL tower.njtree(distances = distances);
    OUT tree;
    MAP tree -> tree;
    RETRY 1;
  }
}

PROCESS AncestralSequences "Fitch-parsimony ancestral reconstruction" {
  INPUT alignment, distances;
  OUTPUT ancestor;
  ACTIVITY Fitch {
    CALL tower.ancestral(alignment = alignment, distances = distances);
    OUT ancestor;
    MAP ancestor -> ancestor;
    RETRY 1;
  }
}

PROCESS StructurePrediction "Chou-Fasman secondary structure" {
  INPUT proteins;
  OUTPUT predictions;
  BLOCK PerProtein PARALLEL OVER proteins AS protein {
    MAP results -> predictions;
    OUTPUT ss;
    ACTIVITY CF {
      CALL tower.predict_one(protein = protein);
      OUT ss;
      MAP ss -> ss;
      RETRY 1;
    }
  }
}

PROCESS TowerOfInformation "Raw DNA to structure predictions (paper Fig. 1)" {
  INPUT dna, min_codons, threshold;
  OUTPUT proteins, alignment, tree, ancestor, predictions;

  SUBPROCESS FindGenes USES "GeneFinding" {
    IN dna = dna, min_codons = min_codons;
    OUT genes;
    MAP genes -> genes;
  }
  SUBPROCESS Translate USES "Translation" {
    IN genes = genes;
    OUT proteins;
    MAP proteins -> proteins;
  }
  SUBPROCESS Pairwise USES "PairwiseAlignments" {
    IN proteins = proteins, threshold = threshold;
    OUT distances;
    MAP distances -> distances;
  }
  SUBPROCESS MSA USES "MultipleAlignment" {
    IN proteins = proteins, distances = distances;
    OUT alignment;
    MAP alignment -> alignment;
  }
  SUBPROCESS Phylo USES "PhylogeneticTree" {
    IN distances = distances;
    OUT tree;
    MAP tree -> tree;
  }
  SUBPROCESS Ancestral USES "AncestralSequences" {
    IN alignment = alignment, distances = distances;
    OUT ancestor;
    MAP ancestor -> ancestor;
  }
  SUBPROCESS Structure USES "StructurePrediction" {
    IN proteins = proteins;
    OUT predictions;
    MAP predictions -> predictions;
  }

  FindGenes -> Translate;
  Translate -> Pairwise;
  Translate -> Structure;
  Pairwise -> MSA;
  Pairwise -> Phylo;
  MSA -> Ancestral;
  Phylo -> Ancestral;
}
`

// Register installs the tower.* programs.
func Register(lib *core.Library) error {
	programs := []core.Program{
		{
			Name: "tower.find_genes",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				dna := args["dna"].AsStr()
				if dna == "" {
					return nil, fmt.Errorf("no DNA input")
				}
				minCodons := args["min"].AsInt()
				if minCodons <= 0 {
					minCodons = 40
				}
				orfs := FindORFs(dna, minCodons)
				genes := make([]ocr.Value, len(orfs))
				for i, o := range orfs {
					genes[i] = ocr.Str(o.DNA)
				}
				return map[string]ocr.Value{"genes": ocr.List(genes...)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(len(args["dna"].AsStr()), 50*time.Microsecond)
			},
		},
		{
			Name: "tower.translate_one",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				p, err := Translate(args["gene"].AsStr())
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"protein": ocr.Str(p)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(len(args["gene"].AsStr()), 10*time.Microsecond)
			},
		},
		{
			Name: "tower.distances",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				proteins, err := strList(args["proteins"])
				if err != nil {
					return nil, err
				}
				threshold := args["threshold"].AsNum()
				if threshold == 0 {
					threshold = 60
				}
				d, err := DistanceMatrix(proteins, threshold)
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"distances": matrixValue(d)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				n := args["proteins"].Len()
				return scaledCost(n*n, 20*time.Millisecond)
			},
		},
		{
			Name: "tower.msa",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				proteins, err := strList(args["proteins"])
				if err != nil {
					return nil, err
				}
				d, err := matrixFromValue(args["distances"])
				if err != nil {
					return nil, err
				}
				rows, err := MultipleAlign(proteins, d)
				if err != nil {
					return nil, err
				}
				vs := make([]ocr.Value, len(rows))
				for i, r := range rows {
					vs[i] = ocr.Str(r)
				}
				return map[string]ocr.Value{"alignment": ocr.List(vs...)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(args["proteins"].Len(), 100*time.Millisecond)
			},
		},
		{
			Name: "tower.njtree",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				d, err := matrixFromValue(args["distances"])
				if err != nil {
					return nil, err
				}
				tree, err := NeighborJoining(d, nil)
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"tree": ocr.Str(tree.Newick())}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				n := args["distances"].Len()
				return scaledCost(n*n*n, time.Millisecond)
			},
		},
		{
			Name: "tower.ancestral",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				msa, err := strList(args["alignment"])
				if err != nil {
					return nil, err
				}
				d, err := matrixFromValue(args["distances"])
				if err != nil {
					return nil, err
				}
				tree, err := NeighborJoining(d, nil)
				if err != nil {
					return nil, err
				}
				anc, err := FitchAncestral(tree, msa)
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"ancestor": ocr.Str(anc)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(args["alignment"].Len(), 50*time.Millisecond)
			},
		},
		{
			Name: "tower.predict_one",
			Run: func(_ core.ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
				ss, err := PredictSecondary(args["protein"].AsStr())
				if err != nil {
					return nil, err
				}
				return map[string]ocr.Value{"ss": ocr.Str(ss)}, nil
			},
			Cost: func(args map[string]ocr.Value) time.Duration {
				return scaledCost(len(args["protein"].AsStr()), 100*time.Microsecond)
			},
		},
	}
	for _, p := range programs {
		if err := lib.Register(p); err != nil {
			return err
		}
	}
	return nil
}

// Inputs builds process inputs for a genome.
func Inputs(dna string, minCodons int, threshold float64) map[string]ocr.Value {
	return map[string]ocr.Value{
		"dna":        ocr.Str(dna),
		"min_codons": ocr.Int(minCodons),
		"threshold":  ocr.Num(threshold),
	}
}

func scaledCost(n int, per time.Duration) time.Duration {
	d := time.Duration(n) * per
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

func strList(v ocr.Value) ([]string, error) {
	if v.Kind() != ocr.KindList {
		return nil, fmt.Errorf("tower: expected list, got %s", v.Kind())
	}
	out := make([]string, v.Len())
	for i := range out {
		e := v.At(i)
		if e.Kind() != ocr.KindString {
			return nil, fmt.Errorf("tower: list element %d is %s, want string", i, e.Kind())
		}
		out[i] = e.AsStr()
	}
	return out, nil
}

func matrixValue(d [][]float64) ocr.Value {
	rows := make([]ocr.Value, len(d))
	for i, r := range d {
		cells := make([]ocr.Value, len(r))
		for j, x := range r {
			cells[j] = ocr.Num(x)
		}
		rows[i] = ocr.List(cells...)
	}
	return ocr.List(rows...)
}

func matrixFromValue(v ocr.Value) ([][]float64, error) {
	if v.Kind() != ocr.KindList {
		return nil, fmt.Errorf("tower: distance matrix is %s, want list", v.Kind())
	}
	d := make([][]float64, v.Len())
	for i := range d {
		row := v.At(i)
		if row.Kind() != ocr.KindList {
			return nil, fmt.Errorf("tower: matrix row %d is %s", i, row.Kind())
		}
		d[i] = make([]float64, row.Len())
		for j := range d[i] {
			d[i][j] = row.At(j).AsNum()
		}
	}
	return d, nil
}

// StrList decodes a list-of-strings output value (exported for examples).
func StrList(v ocr.Value) ([]string, error) { return strList(v) }

// CountGapFree reports how many alignment columns are gap-free — a quality
// metric used by tests and examples.
func CountGapFree(msa []string) int {
	if len(msa) == 0 {
		return 0
	}
	n := 0
	for col := 0; col < len(msa[0]); col++ {
		free := true
		for _, row := range msa {
			if col >= len(row) || row[col] == Gap {
				free = false
				break
			}
		}
		if free {
			n++
		}
	}
	return n
}

// GapFraction reports the fraction of gap characters in an MSA.
func GapFraction(msa []string) float64 {
	var gaps, total int
	for _, r := range msa {
		total += len(r)
		gaps += strings.Count(r, string(rune(Gap)))
	}
	if total == 0 {
		return 0
	}
	return float64(gaps) / float64(total)
}
