// Package tower implements the "tower of information" of the paper's
// Fig. 1 — the multi-step computational-biology pipeline that motivates
// BioOpera: raw DNA → genes → proteins → pairwise alignments → distances →
// multiple sequence alignment → phylogenetic tree → ancestral sequences →
// secondary-structure prediction.
//
// Every step is implemented from scratch (ORF scanning, codon translation,
// PAM-distance estimation via internal/darwin, center-star progressive
// MSA, neighbour joining, Fitch parsimony, Chou–Fasman prediction) and
// exposed both as plain functions and as BioOpera subprocess templates, so
// the whole tower runs as one hierarchical process.
package tower

import (
	"fmt"
	"math/rand"
	"strings"
)

// DNA alphabet.
const dnaBases = "ACGT"

// codonTable maps codons to one-letter amino acids; "*" marks stop.
var codonTable = map[string]byte{
	"TTT": 'F', "TTC": 'F', "TTA": 'L', "TTG": 'L',
	"CTT": 'L', "CTC": 'L', "CTA": 'L', "CTG": 'L',
	"ATT": 'I', "ATC": 'I', "ATA": 'I', "ATG": 'M',
	"GTT": 'V', "GTC": 'V', "GTA": 'V', "GTG": 'V',
	"TCT": 'S', "TCC": 'S', "TCA": 'S', "TCG": 'S',
	"CCT": 'P', "CCC": 'P', "CCA": 'P', "CCG": 'P',
	"ACT": 'T', "ACC": 'T', "ACA": 'T', "ACG": 'T',
	"GCT": 'A', "GCC": 'A', "GCA": 'A', "GCG": 'A',
	"TAT": 'Y', "TAC": 'Y', "TAA": '*', "TAG": '*',
	"CAT": 'H', "CAC": 'H', "CAA": 'Q', "CAG": 'Q',
	"AAT": 'N', "AAC": 'N', "AAA": 'K', "AAG": 'K',
	"GAT": 'D', "GAC": 'D', "GAA": 'E', "GAG": 'E',
	"TGT": 'C', "TGC": 'C', "TGA": '*', "TGG": 'W',
	"CGT": 'R', "CGC": 'R', "CGA": 'R', "CGG": 'R',
	"AGT": 'S', "AGC": 'S', "AGA": 'R', "AGG": 'R',
	"GGT": 'G', "GGC": 'G', "GGA": 'G', "GGG": 'G',
}

// GenomeOptions configure synthetic genome generation.
type GenomeOptions struct {
	// Genes is the number of planted genes.
	Genes int
	// MeanCodons is the mean gene length in codons. Default 120.
	MeanCodons int
	// Intergenic is the mean intergenic spacer length. Default 200.
	Intergenic int
	// Related makes later genes mutated copies of the first one, so
	// the downstream tree is meaningful. Default true behaviour uses
	// the flag directly.
	Related bool
	// Seed drives generation.
	Seed int64
}

// GenerateGenome produces a synthetic DNA sequence with planted ORFs and
// returns it along with the planted protein sequences (ground truth for
// tests).
func GenerateGenome(opts GenomeOptions) (dna string, proteins []string) {
	if opts.MeanCodons <= 0 {
		opts.MeanCodons = 120
	}
	if opts.Intergenic <= 0 {
		opts.Intergenic = 200
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var sb strings.Builder
	var base []byte // codons of the first gene, for related copies
	for g := 0; g < opts.Genes; g++ {
		sb.WriteString(randIntergenic(rng, opts.Intergenic))
		var codons []byte
		if opts.Related && g > 0 && base != nil {
			codons = mutateCodons(rng, base)
		} else {
			n := opts.MeanCodons/2 + rng.Intn(opts.MeanCodons)
			codons = randCodons(rng, n)
			if base == nil {
				base = append([]byte(nil), codons...)
			}
		}
		gene := "ATG" + string(codons) + stopCodon(rng)
		proteins = append(proteins, translateORF(gene))
		sb.WriteString(gene)
	}
	sb.WriteString(randIntergenic(rng, opts.Intergenic))
	return sb.String(), proteins
}

// randIntergenic emits spacer DNA free of long same-frame ORFs by
// sprinkling stop codons.
func randIntergenic(rng *rand.Rand, mean int) string {
	n := mean/2 + rng.Intn(mean+1)
	var sb strings.Builder
	for i := 0; i < n; i += 3 {
		if rng.Intn(4) == 0 {
			sb.WriteString("TAA")
		} else {
			for k := 0; k < 3; k++ {
				sb.WriteByte(dnaBases[rng.Intn(4)])
			}
		}
	}
	return sb.String()
}

// preferredCodon picks one canonical codon per amino acid (the
// alphabetically first), giving synthetic genes the codon-usage bias real
// genes have — the signal the §6 gene-prediction bias scorer exploits.
var preferredCodon = func() map[byte]string {
	m := map[byte]string{}
	for codon, aa := range codonTable {
		if aa == '*' {
			continue
		}
		if cur, ok := m[aa]; !ok || codon < cur {
			m[aa] = codon
		}
	}
	return m
}()

// geneBias is the probability a gene codon is the amino acid's preferred
// codon (intergenic DNA has no such bias).
const geneBias = 0.7

// randCodons emits n random non-stop codons with gene-like codon bias.
func randCodons(rng *rand.Rand, n int) []byte {
	var out []byte
	for len(out) < 3*n {
		var c [3]byte
		for k := range c {
			c[k] = dnaBases[rng.Intn(4)]
		}
		s := string(c[:])
		aa := codonTable[s]
		if aa == '*' {
			continue
		}
		if rng.Float64() < geneBias {
			s = preferredCodon[aa]
		}
		out = append(out, s...)
	}
	return out
}

// mutateCodons applies random synonymous-ish point mutations to a codon
// string, avoiding the creation of stop codons.
func mutateCodons(rng *rand.Rand, codons []byte) []byte {
	out := append([]byte(nil), codons...)
	for i := 0; i+2 < len(out); i += 3 {
		if rng.Float64() > 0.3 {
			continue
		}
		pos := i + rng.Intn(3)
		old := out[pos]
		out[pos] = dnaBases[rng.Intn(4)]
		if codonTable[string(out[i:i+3])] == '*' {
			out[pos] = old
		}
	}
	return out
}

func stopCodon(rng *rand.Rand) string {
	return []string{"TAA", "TAG", "TGA"}[rng.Intn(3)]
}

// ORF is one open reading frame found in a genome.
type ORF struct {
	Start int // index of the ATG
	End   int // index just past the stop codon
	Frame int // 0..2
	DNA   string
}

// FindORFs scans the forward strand in all three frames for
// ATG-to-stop open reading frames of at least minCodons codons
// (including the start, excluding the stop).
func FindORFs(dna string, minCodons int) []ORF {
	dna = strings.ToUpper(dna)
	var orfs []ORF
	for frame := 0; frame < 3; frame++ {
		i := frame
		for i+2 < len(dna) {
			if dna[i:i+3] != "ATG" {
				i += 3
				continue
			}
			// Scan for an in-frame stop.
			j := i + 3
			for ; j+2 < len(dna); j += 3 {
				if codonTable[dna[j:j+3]] == '*' {
					break
				}
			}
			if j+2 < len(dna) { // found a stop
				codons := (j - i) / 3
				if codons >= minCodons {
					orfs = append(orfs, ORF{
						Start: i, End: j + 3, Frame: frame,
						DNA: dna[i : j+3],
					})
				}
				i = j + 3
			} else {
				break // ran off the end without a stop
			}
		}
	}
	return orfs
}

// translateORF translates an ATG..stop ORF, dropping the stop.
func translateORF(orf string) string {
	var sb strings.Builder
	for i := 0; i+2 < len(orf); i += 3 {
		aa := codonTable[orf[i:i+3]]
		if aa == '*' {
			break
		}
		sb.WriteByte(aa)
	}
	return sb.String()
}

// Translate converts a gene DNA sequence (ATG..stop) to its protein.
// It errors on non-ACGT characters or length not a multiple of 3 before
// the stop.
func Translate(gene string) (string, error) {
	gene = strings.ToUpper(gene)
	for i := 0; i < len(gene); i++ {
		if !strings.ContainsRune(dnaBases, rune(gene[i])) {
			return "", fmt.Errorf("tower: invalid base %q at %d", gene[i], i)
		}
	}
	if len(gene) < 6 {
		return "", fmt.Errorf("tower: gene too short (%d bases)", len(gene))
	}
	return translateORF(gene), nil
}
