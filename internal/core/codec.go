package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"bioopera/internal/codec"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// Binary encoders/decoders for the persist-record DTO families (DESIGN.md
// §12). The checkpoint flusher encodes through these; recovery decodes both
// formats forever — the decode* helpers sniff the codec magic byte and fall
// back to encoding/json for records written by earlier engine generations.
// Interned proc/ records are raw process text and stay format-free.

// Record kinds of the core persist families. The store's WAL records use a
// disjoint range (see internal/store) so a misfiled record fails loudly.
const (
	recMeta   byte = 1 // inst/<id>
	recCreate byte = 2 // scopec/<id>/<scope>
	recDyn    byte = 3 // scoped/<id>/<scope>
	recTask   byte = 4 // task/<id>/<scope>/<task>
)

func encodeMeta(e *codec.Encoder, dto *instanceDTO) int {
	e.Begin(recMeta)
	e.String(dto.ID)
	e.String(dto.Template)
	e.Uvarint(uint64(dto.Status))
	e.Int(int64(dto.Priority))
	e.Bool(dto.Nice)
	e.String(dto.Tenant)
	e.Int(int64(dto.Started))
	e.Int(int64(dto.Ended))
	e.Int(int64(dto.Activities))
	e.Int(int64(dto.CPU))
	e.Int(int64(dto.Failures))
	e.Int(int64(dto.Retries))
	e.ValueMap(dto.Outputs)
	e.String(dto.FailureReason)
	return e.End()
}

func decodeMetaBinary(data []byte) (instanceDTO, error) {
	d, kind, err := codec.NewDecoder(data)
	if err != nil {
		return instanceDTO{}, err
	}
	if kind != recMeta {
		return instanceDTO{}, fmt.Errorf("%w: kind %d is not an instance record", codec.ErrCorrupt, kind)
	}
	dto := instanceDTO{
		ID:       d.String(),
		Template: d.String(),
		Status:   InstanceStatus(d.Uvarint()),
		Priority: int(d.Int()),
		Nice:     d.Bool(),
		Tenant:   d.String(),
		Started:  sim.Time(d.Int()),
		Ended:    sim.Time(d.Int()),
	}
	dto.Activities = int(d.Int())
	dto.CPU = time.Duration(d.Int())
	dto.Failures = int(d.Int())
	dto.Retries = int(d.Int())
	dto.Outputs = d.ValueMap()
	dto.FailureReason = d.String()
	return dto, d.Finish()
}

func encodeCreate(e *codec.Encoder, dto *scopeCreateDTO) int {
	e.Begin(recCreate)
	e.String(dto.ID)
	e.String(dto.Parent)
	e.Bool(dto.IsRoot)
	e.String(dto.ParentTask)
	e.Int(int64(dto.ElemIndex))
	e.String(dto.ProcRef)
	e.String(dto.ProcText)
	return e.End()
}

func decodeCreateBinary(data []byte) (scopeCreateDTO, error) {
	d, kind, err := codec.NewDecoder(data)
	if err != nil {
		return scopeCreateDTO{}, err
	}
	if kind != recCreate {
		return scopeCreateDTO{}, fmt.Errorf("%w: kind %d is not a scope-create record", codec.ErrCorrupt, kind)
	}
	dto := scopeCreateDTO{
		ID:         d.String(),
		Parent:     d.String(),
		IsRoot:     d.Bool(),
		ParentTask: d.String(),
		ElemIndex:  int(d.Int()),
		ProcRef:    d.String(),
		ProcText:   d.String(),
	}
	return dto, d.Finish()
}

func encodeDyn(e *codec.Encoder, dto *scopeDynDTO) int {
	e.Begin(recDyn)
	e.ValueMap(dto.Entries)
	e.StringSlice(dto.Drop)
	e.Bool(dto.Full)
	e.Bool(dto.Done)
	return e.End()
}

func decodeDynBinary(data []byte) (scopeDynDTO, error) {
	d, kind, err := codec.NewDecoder(data)
	if err != nil {
		return scopeDynDTO{}, err
	}
	if kind != recDyn {
		return scopeDynDTO{}, fmt.Errorf("%w: kind %d is not a scope-dynamic record", codec.ErrCorrupt, kind)
	}
	dto := scopeDynDTO{
		Entries: d.ValueMap(),
		Drop:    d.StringSlice(),
		Full:    d.Bool(),
		Done:    d.Bool(),
	}
	return dto, d.Finish()
}

func encodeTask(e *codec.Encoder, dto *taskDTO) int {
	e.Begin(recTask)
	e.String(dto.Name)
	e.Uvarint(uint64(dto.Status))
	e.Int(int64(dto.Attempts))
	e.ValueMap(dto.Inputs)
	e.ValueMap(dto.Outputs)
	e.String(dto.Node)
	e.String(dto.Job)
	e.String(dto.AltOf)
	e.Int(int64(dto.ReadyAt))
	e.Int(int64(dto.StartedAt))
	e.Int(int64(dto.EndedAt))
	e.Int(int64(dto.CPUTime))
	e.Int(int64(dto.ChildWaiting))
	e.ValueSlice(dto.Results)
	e.ValueSlice(dto.OverElems)
	return e.End()
}

func decodeTaskBinary(data []byte) (taskDTO, error) {
	d, kind, err := codec.NewDecoder(data)
	if err != nil {
		return taskDTO{}, err
	}
	if kind != recTask {
		return taskDTO{}, fmt.Errorf("%w: kind %d is not a task record", codec.ErrCorrupt, kind)
	}
	dto := taskDTO{
		Name:     d.String(),
		Status:   TaskStatus(d.Uvarint()),
		Attempts: int(d.Int()),
		Inputs:   d.ValueMap(),
		Outputs:  d.ValueMap(),
		Node:     d.String(),
		Job:      d.String(),
		AltOf:    d.String(),
	}
	dto.ReadyAt = sim.Time(d.Int())
	dto.StartedAt = sim.Time(d.Int())
	dto.EndedAt = sim.Time(d.Int())
	dto.CPUTime = time.Duration(d.Int())
	dto.ChildWaiting = int(d.Int())
	dto.Results = d.ValueSlice()
	dto.OverElems = d.ValueSlice()
	return dto, d.Finish()
}

// The dual-format decoders: binary records carry the codec magic, legacy
// JSON records start with '{'. wasJSON lets recovery mark JSON-sourced
// records for conversion — the first post-recovery checkpoint rewrites
// them binary, the same convert-in-place rule PR 5 used for whole-scope
// records.

func decodeMetaRecord(data []byte) (dto instanceDTO, wasJSON bool, err error) {
	if codec.Sniff(data) {
		dto, err = decodeMetaBinary(data)
		return dto, false, err
	}
	err = json.Unmarshal(data, &dto)
	return dto, err == nil, err
}

func decodeCreateRecord(data []byte) (dto scopeCreateDTO, wasJSON bool, err error) {
	if codec.Sniff(data) {
		dto, err = decodeCreateBinary(data)
		return dto, false, err
	}
	err = json.Unmarshal(data, &dto)
	return dto, err == nil, err
}

func decodeDynRecord(data []byte) (dto scopeDynDTO, wasJSON bool, err error) {
	if codec.Sniff(data) {
		dto, err = decodeDynBinary(data)
		return dto, false, err
	}
	err = json.Unmarshal(data, &dto)
	return dto, err == nil, err
}

func decodeTaskRecord(data []byte) (dto taskDTO, wasJSON bool, err error) {
	if codec.Sniff(data) {
		dto, err = decodeTaskBinary(data)
		return dto, false, err
	}
	err = json.Unmarshal(data, &dto)
	return dto, err == nil, err
}

// DecodeInstanceMeta decodes an inst/<id> record of either format into its
// exported shape — the operator-facing view used by the history CLI and
// the records inspector.
func DecodeInstanceMeta(data []byte) (InstanceMeta, error) {
	dto, _, err := decodeMetaRecord(data)
	if err != nil {
		return InstanceMeta{}, err
	}
	return InstanceMeta{
		ID: dto.ID, Template: dto.Template, Status: dto.Status,
		Priority: dto.Priority, Nice: dto.Nice, Tenant: dto.Tenant,
		Started: dto.Started, Ended: dto.Ended,
		Activities: dto.Activities, CPU: dto.CPU,
		Failures: dto.Failures, Retries: dto.Retries,
		Outputs: dto.Outputs, FailureReason: dto.FailureReason,
	}, nil
}

// InstanceMeta is the exported form of an instance metadata record.
type InstanceMeta struct {
	ID            string               `json:"id"`
	Template      string               `json:"template"`
	Status        InstanceStatus       `json:"status"`
	Priority      int                  `json:"priority,omitempty"`
	Nice          bool                 `json:"nice,omitempty"`
	Tenant        string               `json:"tenant,omitempty"`
	Started       sim.Time             `json:"started"`
	Ended         sim.Time             `json:"ended,omitempty"`
	Activities    int                  `json:"activities,omitempty"`
	CPU           time.Duration        `json:"cpu,omitempty"`
	Failures      int                  `json:"failures,omitempty"`
	Retries       int                  `json:"retries,omitempty"`
	Outputs       map[string]ocr.Value `json:"outputs,omitempty"`
	FailureReason string               `json:"failureReason,omitempty"`
}

// FormatRecord renders one instance/history-space store record for a human:
// binary and legacy JSON records both come back as canonical indented JSON,
// interned process texts as the raw text. format names what was on disk
// ("binary", "json", or "text").
func FormatRecord(key string, value []byte) (format, rendered string, err error) {
	render := func(v any) (string, error) {
		out, err := json.MarshalIndent(v, "", "  ")
		return string(out), err
	}
	format = "json"
	if codec.Sniff(value) {
		format = "binary"
	}
	switch {
	case strings.HasPrefix(key, "inst/"):
		dto, _, err := decodeMetaRecord(value)
		if err != nil {
			return format, "", err
		}
		rendered, err = render(dto)
		return format, rendered, err
	case strings.HasPrefix(key, "scopec/"):
		dto, _, err := decodeCreateRecord(value)
		if err != nil {
			return format, "", err
		}
		rendered, err = render(dto)
		return format, rendered, err
	case strings.HasPrefix(key, "scoped/"):
		dto, _, err := decodeDynRecord(value)
		if err != nil {
			return format, "", err
		}
		rendered, err = render(dto)
		return format, rendered, err
	case strings.HasPrefix(key, "task/"):
		dto, _, err := decodeTaskRecord(value)
		if err != nil {
			return format, "", err
		}
		rendered, err = render(dto)
		return format, rendered, err
	case strings.HasPrefix(key, "scope/"):
		var dto scopeDTO
		if err := json.Unmarshal(value, &dto); err != nil {
			return format, "", err
		}
		rendered, err = render(dto)
		return format, rendered, err
	case strings.HasPrefix(key, "proc/"):
		return "text", string(value), nil
	}
	return format, "", fmt.Errorf("core: unknown record family for key %q", key)
}

// encodeCkpt encodes every DTO of a checkpoint into the checkpoint's
// pooled encoder and assembles the store ops. Spans are taken only after
// all records are encoded — appending can relocate the encoder's buffer.
// Binary encoding is total (unlike JSON, which rejects NaN numbers), so
// there is no per-record failure path: a whiteboard value that would have
// poisoned a JSON checkpoint now round-trips.
func encodeCkpt(in *Instance, ck *ckpt, space store.Space) (ops []store.Op, bytes int) {
	e := &ck.enc
	e.Reset()
	encodeMeta(e, &ck.meta)
	for i := range ck.creates {
		encodeCreate(e, &ck.creates[i].dto)
	}
	for i := range ck.dyns {
		encodeDyn(e, &ck.dyns[i].dto)
	}
	for i := range ck.tasks {
		encodeTask(e, &ck.tasks[i].dto)
	}
	ops = ck.ops[:0]
	next := 0
	span := func() []byte {
		s := e.Span(next)
		next++
		return s
	}
	ops = append(ops, store.Op{Space: space, Key: metaKey(in.ID), Value: span()})
	bytes = len(e.Buf)
	for _, ps := range ck.procs {
		ops = append(ops, store.Op{Space: space, Key: procKey(in.ID, ps.hash), Value: []byte(ps.text)})
		bytes += len(ps.text)
	}
	for i := range ck.creates {
		ops = append(ops, store.Op{Space: space, Key: scopeCreateKey(in.ID, ck.creates[i].dto.ID), Value: span()})
	}
	for i := range ck.dyns {
		ops = append(ops, store.Op{Space: space, Key: scopeDynKey(in.ID, ck.dyns[i].sc.ID), Value: span()})
	}
	for i := range ck.tasks {
		ops = append(ops, store.Op{Space: space, Key: taskKey(in.ID, ck.tasks[i].sc.ID, ck.tasks[i].dto.Name), Value: span()})
	}
	return ops, bytes
}

// sortedJSONTasks returns the JSON-sourced task names of a recovered scope
// in deterministic order, for conversion marking.
func sortedJSONTasks(r *scopeRec) []string {
	if len(r.jsonTasks) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.jsonTasks))
	for name := range r.jsonTasks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
