package core

import (
	"fmt"
	"sort"

	"bioopera/internal/ocr"
)

// This file implements spheres of atomicity (§3.1: OCR "supports advanced
// programming constructs such as exception handling, event handling, and
// spheres of atomicity ... allowing the process designer to define
// sophisticated failure handlers as part of the process (such as undo
// actions, alternative executions, ...)").
//
// A block marked ATOMIC executes all-or-nothing: when any task inside it
// fails permanently, the engine kills the sphere's in-flight activities,
// runs the UNDO programs of its completed activities in reverse completion
// order, discards the sphere's scopes, and then applies the block's own
// failure handling — RETRY re-runs the whole sphere from scratch;
// ON FAILURE IGNORE / ALTERNATIVE / ABORT behave as for any task. Spheres
// nest: a sphere whose retries are exhausted fails into its own enclosing
// sphere, if any.

// enclosingSphere walks up from the scope containing a failing task and
// returns the nearest enclosing atomic block (its scope, task and state),
// or nils when the failure is not inside any sphere.
func enclosingSphere(sc *scope) (*scope, *ocr.Task, *taskState) {
	for cur := sc; cur.Parent != nil; cur = cur.Parent {
		pt := cur.Parent.Proc.Task(cur.ParentTask)
		if pt != nil && pt.Kind == ocr.KindBlock && pt.Atomic {
			return cur.Parent, pt, cur.Parent.Tasks[cur.ParentTask]
		}
	}
	return nil, nil, nil
}

// failTask handles a task's permanent failure under FailAbort semantics:
// abort the nearest enclosing sphere of atomicity, or fail the whole
// instance when there is none.
func (e *Engine) failTask(in *Instance, sc *scope, t *ocr.Task, ts *taskState, cause error) {
	ts.Status = TaskFailed
	ts.EndedAt = e.now()
	e.touchTask(in, sc, ts)
	e.emit(Event{Kind: EvTaskFailed, Instance: in.ID, Scope: sc.ID, Task: t.Name, Detail: cause.Error()})
	if sphereSc, sphereTask, sphereTs := enclosingSphere(sc); sphereSc != nil {
		e.abortSphere(in, sphereSc, sphereTask, sphereTs,
			fmt.Errorf("task %s/%s failed: %v", sc.ID, t.Name, cause))
		return
	}
	e.failInstance(in, fmt.Sprintf("task %s failed: %v", t.Name, cause))
}

// abortSphere tears down an atomic block after an inner failure and
// applies the block's failure handling.
func (e *Engine) abortSphere(in *Instance, sc *scope, t *ocr.Task, ts *taskState, cause error) {
	e.emit(Event{Kind: EvSphereAborted, Instance: in.ID, Scope: sc.ID, Task: t.Name, Detail: cause.Error()})

	// 1. Gather the sphere's scope subtree, deterministically ordered.
	var subtree []*scope
	var gather func(s *scope)
	gather = func(s *scope) {
		subtree = append(subtree, s)
		ids := make([]string, 0, len(s.children))
		for id := range s.children {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			gather(s.children[id])
		}
	}
	rootIDs := make([]string, 0, len(sc.children))
	for id, child := range sc.children {
		if child.ParentTask == t.Name {
			rootIDs = append(rootIDs, id)
		}
	}
	sort.Strings(rootIDs)
	for _, id := range rootIDs {
		gather(sc.children[id])
	}
	for _, s := range subtree {
		s.defunct = true
	}

	// 2. Drop queued work and kill running work belonging to the sphere.
	// The shard we hold covers only this instance, so the dispatcher maps
	// are scanned under dmu and filtered to our instance; kills are
	// deferred to endTurn (executors may deliver the kill completion
	// synchronously, which would re-enter this shard).
	e.dmu.Lock()
	var queuedIDs []string
	for id, ref := range e.queued {
		if ref.inst == in && ref.sc.defunct {
			queuedIDs = append(queuedIDs, id)
		}
	}
	sort.Strings(queuedIDs)
	for _, id := range queuedIDs {
		e.sched.Remove(id)
		delete(e.queued, id)
	}
	var runningIDs []string
	for id, ref := range e.running {
		if ref.inst == in && ref.sc.defunct {
			runningIDs = append(runningIDs, id)
		}
	}
	sort.Strings(runningIDs)
	for _, id := range runningIDs {
		in.pendingKills = append(in.pendingKills, pendingKill{job: id, node: e.running[id].node})
	}
	e.dmu.Unlock()

	// 3. Undo completed activities in reverse completion order.
	type undoItem struct {
		sc *scope
		t  *ocr.Task
		ts *taskState
	}
	var undos []undoItem
	for _, s := range subtree {
		for _, bt := range s.Proc.Tasks {
			bts := s.Tasks[bt.Name]
			if bt.Kind == ocr.KindActivity && bt.Undo != "" && bts.Status == TaskEnded {
				undos = append(undos, undoItem{s, bt, bts})
			}
		}
	}
	sort.Slice(undos, func(i, j int) bool {
		if undos[i].ts.EndedAt != undos[j].ts.EndedAt {
			return undos[i].ts.EndedAt > undos[j].ts.EndedAt // reverse order
		}
		if undos[i].sc.ID != undos[j].sc.ID {
			return undos[i].sc.ID > undos[j].sc.ID
		}
		return undos[i].t.Name > undos[j].t.Name
	})
	for _, u := range undos {
		e.runUndo(in, u.sc, u.t, u.ts)
	}

	// 4. Discard the sphere's scopes. The store deletes ride the next
	// checkpoint batch — the same atomic write that persists the block
	// reset below — so a crash can never observe the block reset with the
	// old child records still present (which recovery would resurrect).
	// Interned process texts are left in place: the text is shared (a
	// sphere retry re-creates scopes with the same hash) and archive
	// collects unreferenced ones.
	for _, s := range subtree {
		delete(in.scopes, s.ID)
		delete(in.dirty, s.ID)
		in.pendingDeletes = append(in.pendingDeletes,
			scopeCreateKey(in.ID, s.ID),
			scopeDynKey(in.ID, s.ID),
			legacyScopeKey(in.ID, s.ID))
		for _, bt := range s.Proc.Tasks {
			in.pendingDeletes = append(in.pendingDeletes, taskKey(in.ID, s.ID, bt.Name))
		}
		if s.Parent != nil {
			delete(s.Parent.children, s.ID)
		}
	}

	// 5. Reset the block task and apply its failure handling (RETRY
	// re-runs the sphere from scratch; otherwise IGNORE / ALTERNATIVE /
	// ABORT).
	ts.Outputs = nil
	ts.Results = nil
	ts.OverElems = nil
	ts.ChildWaiting = 0
	ts.Status = TaskRunning
	e.touchTask(in, sc, ts)
	e.persist(in)
	e.handleProgramFailure(in, sc, t, ts, cause)
}

// runUndo invokes an activity's compensation program with the activity's
// inputs and outputs merged. Undo failures are recorded but do not stop
// the sphere abort (compensations must be best-effort).
func (e *Engine) runUndo(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	prog, ok := e.opts.Library.Lookup(t.Undo)
	if !ok {
		e.emit(Event{Kind: EvUndoFailed, Instance: in.ID, Scope: sc.ID, Task: t.Name,
			Detail: fmt.Sprintf("undo program %q not registered", t.Undo)})
		return
	}
	args := make(map[string]ocr.Value, len(ts.Inputs)+len(ts.Outputs))
	for k, v := range ts.Inputs {
		args[k] = v
	}
	for k, v := range ts.Outputs {
		args[k] = v
	}
	_, err := prog.Run(ProgramCtx{
		Instance: in.ID,
		Task:     t.Name,
		Attempt:  ts.Attempts,
		Node:     ts.Node,
	}, args)
	if err != nil {
		e.emit(Event{Kind: EvUndoFailed, Instance: in.ID, Scope: sc.ID, Task: t.Name, Detail: err.Error()})
		return
	}
	e.emit(Event{Kind: EvUndoRun, Instance: in.ID, Scope: sc.ID, Task: t.Name, Detail: t.Undo})
}
