package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// LocalRuntime drives the same engine in real time: activities execute on
// a pool of worker goroutines ("local nodes", one CPU slot each) and their
// external bindings really run. The runnable examples use it; the
// experiments use the deterministic SimRuntime instead.
//
// All engine access is serialized by an internal mutex; use Do for
// arbitrary engine calls and the convenience wrappers for the common ones.
type LocalRuntime struct {
	Store store.Store

	mu     sync.Mutex
	cond   *sync.Cond
	engine *Engine
	exec   *localExec
	start  time.Time
	closed bool
}

// LocalConfig configures a LocalRuntime.
type LocalConfig struct {
	// Workers is the number of single-slot local nodes (default:
	// GOMAXPROCS).
	Workers int
	// Store defaults to an in-memory store.
	Store store.Store
	// Library is required.
	Library *Library
	// Policy defaults to LeastLoaded.
	Policy sched.Policy
	// OnEvent observes engine events (called with the runtime lock
	// held; must not call back into the runtime).
	OnEvent func(Event)
}

// NewLocalRuntime builds the pool and engine.
func NewLocalRuntime(cfg LocalConfig) (*LocalRuntime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("core: LocalConfig needs a Library")
	}
	rt := &LocalRuntime{Store: cfg.Store, start: time.Now()}
	rt.cond = sync.NewCond(&rt.mu)
	rt.exec = newLocalExec(rt, cfg.Workers)
	eng, err := New(Options{
		Store:    cfg.Store,
		Library:  cfg.Library,
		Executor: rt.exec,
		Clock:    ClockFunc(func() sim.Time { return sim.Time(time.Since(rt.start)) }),
		Policy:   cfg.Policy,
		OnEvent:  cfg.OnEvent,
		OnInstanceDone: func(*Instance) {
			rt.cond.Broadcast()
		},
	})
	if err != nil {
		return nil, err
	}
	rt.engine = eng
	return rt, nil
}

// Do runs f with exclusive access to the engine.
func (rt *LocalRuntime) Do(f func(e *Engine)) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f(rt.engine)
}

// RegisterTemplateSource parses and registers OCR templates.
func (rt *LocalRuntime) RegisterTemplateSource(src string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.engine.RegisterTemplateSource(src)
}

// StartProcess launches an instance.
func (rt *LocalRuntime) StartProcess(template string, inputs map[string]ocr.Value, opts StartOptions) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.engine.StartProcess(template, inputs, opts)
}

// InstanceStatus returns the current status and outputs of an instance.
func (rt *LocalRuntime) InstanceStatus(id string) (InstanceStatus, map[string]ocr.Value, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	in, ok := rt.engine.Instance(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	return in.Status, in.Outputs, nil
}

// Wait blocks until the instance reaches Done or Failed, or the timeout
// elapses. It returns the instance.
func (rt *LocalRuntime) Wait(id string, timeout time.Duration) (*Instance, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		rt.mu.Lock()
		rt.cond.Broadcast()
		rt.mu.Unlock()
	})
	defer timer.Stop()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	for {
		in, ok := rt.engine.Instance(id)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
		}
		if in.Status == InstanceDone || in.Status == InstanceFailed {
			return in, nil
		}
		if time.Now().After(deadline) {
			return in, fmt.Errorf("core: instance %s still %s after %v", id, in.Status, timeout)
		}
		rt.cond.Wait()
	}
}

// Close stops accepting work. Running workers drain.
func (rt *LocalRuntime) Close() {
	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
}

// localExec is the worker pool behind LocalRuntime. One slot per "node".
// Dispatches carry a sequence token so a stale worker (whose job was
// killed and possibly re-dispatched) can never free the wrong slot or
// deliver a stale result.
type localExec struct {
	rt    *LocalRuntime
	names []string
	seq   uint64
	busy  map[string]uint64        // node → dispatch seq
	live  map[cluster.JobID]uint64 // job → dispatch seq whose result is wanted
}

func newLocalExec(rt *LocalRuntime, workers int) *localExec {
	ex := &localExec{
		rt:   rt,
		busy: make(map[string]uint64, workers),
		live: make(map[cluster.JobID]uint64),
	}
	for i := 0; i < workers; i++ {
		ex.names = append(ex.names, fmt.Sprintf("local-%02d", i))
	}
	return ex
}

// Nodes implements Executor. Caller holds the runtime lock (the engine
// only calls it from inside locked sections).
func (ex *localExec) Nodes() []cluster.NodeView {
	out := make([]cluster.NodeView, 0, len(ex.names))
	for _, n := range ex.names {
		running := 0
		if _, ok := ex.busy[n]; ok {
			running = 1
		}
		out = append(out, cluster.NodeView{
			Name: n, OS: runtime.GOOS, Up: true, CPUs: 1,
			Speed: 1, Running: running,
		})
	}
	return out
}

// Start implements Executor; the engine always uses StartWithRun on this
// executor, but Start is kept for interface completeness.
func (ex *localExec) Start(id cluster.JobID, node string, cost time.Duration, nice bool) error {
	return ex.StartWithRun(id, node, cost, nice, func() (map[string]ocr.Value, error) {
		return nil, nil
	})
}

// StartWithRun implements ProgramRunner: the thunk executes on a fresh
// goroutine; the completion is delivered back under the runtime lock.
func (ex *localExec) StartWithRun(id cluster.JobID, node string, _ time.Duration, _ bool,
	run func() (map[string]ocr.Value, error)) error {
	if ex.rt.closed {
		return fmt.Errorf("core: local runtime closed")
	}
	if _, taken := ex.busy[node]; taken {
		return cluster.ErrNoFreeCPU
	}
	ex.seq++
	mySeq := ex.seq
	ex.busy[node] = mySeq
	ex.live[id] = mySeq
	started := time.Since(ex.rt.start)
	go func() {
		t0 := time.Now()
		outputs, err := run()
		cpu := time.Since(t0)

		ex.rt.mu.Lock()
		defer ex.rt.mu.Unlock()
		if ex.busy[node] == mySeq {
			delete(ex.busy, node)
		}
		if ex.live[id] != mySeq {
			return // killed (or superseded); result discarded
		}
		delete(ex.live, id)
		c := cluster.Completion{
			Job:     id,
			Node:    node,
			Start:   sim.Time(started),
			End:     sim.Time(time.Since(ex.rt.start)),
			CPUTime: cpu,
			Outputs: outputs,
		}
		if err != nil {
			c.ProgramErr = err
			c.Outputs = nil
		}
		if c.Outputs == nil && c.ProgramErr == nil {
			c.Outputs = map[string]ocr.Value{}
		}
		ex.rt.engine.HandleCompletion(c)
		ex.rt.cond.Broadcast()
	}()
	return nil
}

// Kill implements Executor: the goroutine cannot be interrupted, but its
// result is discarded and the engine immediately sees the job as killed.
func (ex *localExec) Kill(id cluster.JobID, node string) error {
	if _, ok := ex.live[id]; !ok {
		return fmt.Errorf("core: job %s not running", id)
	}
	delete(ex.live, id)
	// Deliver the kill asynchronously so callers inside engine
	// navigation see consistent state, mirroring the simulated cluster.
	go func() {
		ex.rt.mu.Lock()
		defer ex.rt.mu.Unlock()
		ex.rt.engine.HandleCompletion(cluster.Completion{
			Job:  id,
			Node: node,
			End:  sim.Time(time.Since(ex.rt.start)),
			Err:  cluster.ErrJobKilled,
		})
		ex.rt.cond.Broadcast()
	}()
	return nil
}
