package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// LocalRuntime drives the same engine in real time: activities execute on
// a pool of worker goroutines ("local nodes", one CPU slot each) and their
// external bindings really run. The runnable examples use it; the
// experiments use the deterministic SimRuntime instead.
//
// The engine is internally synchronized, so the runtime adds no lock of
// its own: workers deliver completions to HandleCompletion directly and
// independent instances truly execute in parallel. Do simply hands out the
// engine; the wrappers exist for convenience and API stability.
type LocalRuntime struct {
	Store store.Store

	engine *Engine
	exec   *localExec
	start  time.Time

	// waitMu/cond/gen implement Wait: every interesting transition bumps
	// gen and broadcasts, and waiters sleep until gen moves. A counter —
	// instead of re-checking state under a big lock — keeps the wait
	// path off the engine's locks entirely.
	waitMu sync.Mutex
	cond   *sync.Cond
	gen    uint64
}

// LocalConfig configures a LocalRuntime.
type LocalConfig struct {
	// Workers is the number of single-slot local nodes (default:
	// GOMAXPROCS).
	Workers int
	// Store defaults to an in-memory store.
	Store store.Store
	// Library is required.
	Library *Library
	// Policy defaults to LeastLoaded.
	Policy sched.Policy
	// OnEvent observes engine events (called under the instance's shard
	// lock; must not call back into the engine).
	OnEvent func(Event)
	// OnError observes persistence failures (see Options.OnError).
	OnError func(error)
	// Shards sets the engine's instance-lock shard count (default
	// DefaultShards; 1 serializes all instances).
	Shards int
}

// NewLocalRuntime builds the pool and engine.
func NewLocalRuntime(cfg LocalConfig) (*LocalRuntime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("core: LocalConfig needs a Library")
	}
	rt := &LocalRuntime{Store: cfg.Store, start: time.Now()}
	rt.cond = sync.NewCond(&rt.waitMu)
	rt.exec = newLocalExec(rt, cfg.Workers)
	eng, err := New(Options{
		Store:    cfg.Store,
		Library:  cfg.Library,
		Executor: rt.exec,
		Clock:    ClockFunc(func() sim.Time { return sim.Time(time.Since(rt.start)) }),
		Policy:   cfg.Policy,
		OnEvent:  cfg.OnEvent,
		OnError:  cfg.OnError,
		Shards:   cfg.Shards,
		OnInstanceDone: func(*Instance) {
			rt.bump()
		},
	})
	if err != nil {
		return nil, err
	}
	rt.engine = eng
	return rt, nil
}

// bump wakes every Wait caller to re-check its instance.
func (rt *LocalRuntime) bump() {
	rt.waitMu.Lock()
	rt.gen++
	rt.waitMu.Unlock()
	rt.cond.Broadcast()
}

// Do runs f against the engine. The engine is internally synchronized, so
// f runs directly; concurrent Do calls are fine.
func (rt *LocalRuntime) Do(f func(e *Engine)) {
	f(rt.engine)
}

// RegisterTemplateSource parses and registers OCR templates.
func (rt *LocalRuntime) RegisterTemplateSource(src string) error {
	return rt.engine.RegisterTemplateSource(src)
}

// StartProcess launches an instance.
func (rt *LocalRuntime) StartProcess(template string, inputs map[string]ocr.Value, opts StartOptions) (string, error) {
	return rt.engine.StartProcess(template, inputs, opts)
}

// InstanceStatus returns the current status and outputs of an instance.
func (rt *LocalRuntime) InstanceStatus(id string) (InstanceStatus, map[string]ocr.Value, error) {
	return rt.engine.InstanceState(id)
}

// Wait blocks until the instance reaches Done or Failed, or the timeout
// elapses. It returns the instance.
func (rt *LocalRuntime) Wait(id string, timeout time.Duration) (*Instance, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, rt.bump)
	defer timer.Stop()
	for {
		in, ok := rt.engine.Instance(id)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
		}
		rt.waitMu.Lock()
		g := rt.gen
		rt.waitMu.Unlock()
		// Check after capturing gen: a transition after this check bumps
		// gen, so the sleep below cannot miss it.
		if st := in.statusNow(); st == InstanceDone || st == InstanceFailed {
			return in, nil
		}
		if time.Now().After(deadline) {
			return in, fmt.Errorf("core: instance %s still %s after %v", id, in.statusNow(), timeout)
		}
		rt.waitMu.Lock()
		for rt.gen == g {
			rt.cond.Wait()
		}
		rt.waitMu.Unlock()
	}
}

// Close stops accepting work. Running workers drain.
func (rt *LocalRuntime) Close() {
	ex := rt.exec
	ex.mu.Lock()
	ex.closed = true
	ex.mu.Unlock()
}

// localExec is the worker pool behind LocalRuntime. One slot per "node".
// Dispatches carry a sequence token so a stale worker (whose job was
// killed and possibly re-dispatched) can never free the wrong slot or
// deliver a stale result. ex.mu guards the pool's own state only; it is a
// leaf lock — never held across engine calls.
type localExec struct {
	rt    *LocalRuntime
	names []string

	mu     sync.Mutex
	closed bool
	seq    uint64
	busy   map[string]uint64        // node → dispatch seq
	live   map[cluster.JobID]uint64 // job → dispatch seq whose result is wanted
}

func newLocalExec(rt *LocalRuntime, workers int) *localExec {
	ex := &localExec{
		rt:   rt,
		busy: make(map[string]uint64, workers),
		live: make(map[cluster.JobID]uint64),
	}
	for i := 0; i < workers; i++ {
		ex.names = append(ex.names, fmt.Sprintf("local-%02d", i))
	}
	return ex
}

// Nodes implements Executor.
func (ex *localExec) Nodes() []cluster.NodeView {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := make([]cluster.NodeView, 0, len(ex.names))
	for _, n := range ex.names {
		running := 0
		if _, ok := ex.busy[n]; ok {
			running = 1
		}
		out = append(out, cluster.NodeView{
			Name: n, OS: runtime.GOOS, Up: true, CPUs: 1,
			Speed: 1, Running: running,
		})
	}
	return out
}

// Start implements Executor; the engine always uses StartWithRun on this
// executor, but Start is kept for interface completeness.
func (ex *localExec) Start(id cluster.JobID, node string, cost time.Duration, nice bool) error {
	return ex.StartWithRun(id, node, cost, nice, func() (map[string]ocr.Value, error) {
		return nil, nil
	})
}

// StartWithRun implements ProgramRunner: the thunk executes on a fresh
// goroutine and the completion is delivered straight to HandleCompletion,
// which serializes it on the instance's shard.
func (ex *localExec) StartWithRun(id cluster.JobID, node string, _ time.Duration, _ bool,
	run func() (map[string]ocr.Value, error)) error {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return fmt.Errorf("core: local runtime closed")
	}
	if _, taken := ex.busy[node]; taken {
		ex.mu.Unlock()
		return cluster.ErrNoFreeCPU
	}
	ex.seq++
	mySeq := ex.seq
	ex.busy[node] = mySeq
	ex.live[id] = mySeq
	ex.mu.Unlock()
	started := time.Since(ex.rt.start)
	go func() {
		t0 := time.Now()
		outputs, err := run()
		cpu := time.Since(t0)

		ex.mu.Lock()
		if ex.busy[node] == mySeq {
			delete(ex.busy, node)
		}
		if ex.live[id] != mySeq {
			ex.mu.Unlock()
			return // killed (or superseded); result discarded
		}
		delete(ex.live, id)
		ex.mu.Unlock()
		c := cluster.Completion{
			Job:     id,
			Node:    node,
			Start:   sim.Time(started),
			End:     sim.Time(time.Since(ex.rt.start)),
			CPUTime: cpu,
			Outputs: outputs,
		}
		if err != nil {
			c.ProgramErr = err
			c.Outputs = nil
		}
		if c.Outputs == nil && c.ProgramErr == nil {
			c.Outputs = map[string]ocr.Value{}
		}
		ex.rt.engine.HandleCompletion(c)
		ex.rt.bump()
	}()
	return nil
}

// Kill implements Executor: the goroutine cannot be interrupted, but its
// result is discarded and the engine immediately sees the job as killed.
func (ex *localExec) Kill(id cluster.JobID, node string) error {
	ex.mu.Lock()
	if _, ok := ex.live[id]; !ok {
		ex.mu.Unlock()
		return fmt.Errorf("core: job %s not running", id)
	}
	delete(ex.live, id)
	ex.mu.Unlock()
	// Deliver the kill asynchronously, mirroring the simulated cluster;
	// the engine defers kills past navigation, so the completion may
	// even be handled before this goroutine runs — both orders are safe.
	go func() {
		ex.rt.engine.HandleCompletion(cluster.Completion{
			Job:  id,
			Node: node,
			End:  sim.Time(time.Since(ex.rt.start)),
			Err:  cluster.ErrJobKilled,
		})
		ex.rt.bump()
	}()
	return nil
}
