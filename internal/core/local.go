// The local pool is the real-time executor: wall-clock reads here feed
// completion records and load accounting for runs that really execute,
// never the deterministic trace (the sim runtime replaces this executor
// entirely).
//bioopera:allow walltime file-wide: the local pool executes in real time by design

package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// LocalRuntime drives the same engine in real time: activities execute on
// a pool of worker goroutines ("local nodes", one CPU slot each) and their
// external bindings really run. The runnable examples use it; the
// experiments use the deterministic SimRuntime instead.
//
// The engine is internally synchronized, so the runtime adds no lock of
// its own: workers deliver completions to HandleCompletion directly and
// independent instances truly execute in parallel. The embedded
// RuntimeBase supplies Do/Wait and the snapshot cadence shared with the
// remote runtime.
type LocalRuntime struct {
	RuntimeBase

	Store store.Store

	exec  *localExec
	start time.Time
}

// LocalConfig configures a LocalRuntime.
type LocalConfig struct {
	// Workers is the number of single-slot local nodes (default:
	// GOMAXPROCS).
	Workers int
	// Store defaults to an in-memory store.
	Store store.Store
	// Library is required.
	Library *Library
	// Policy defaults to LeastLoaded.
	Policy sched.Policy
	// OnEvent observes engine events (called under the instance's shard
	// lock; must not call back into the engine).
	OnEvent func(Event)
	// OnError observes persistence failures (see Options.OnError).
	OnError func(error)
	// Shards sets the engine's instance-lock shard count (default
	// DefaultShards; 1 serializes all instances).
	Shards int
	// SnapshotEvery periodically snapshots the store (when the store
	// supports it), garbage-collecting the write-ahead log under it, so
	// a long-lived run does not replay an unbounded log on restart.
	// 0 disables.
	SnapshotEvery time.Duration
	// Metrics enables engine instrumentation plus the pool's
	// slot-occupancy gauges (see Options.Metrics).
	Metrics *obs.Registry
	// EventRing receives emitted events for live tailing (see
	// Options.EventRing).
	EventRing *obs.Ring
	// Owns partitions instance ownership for federated members sharing a
	// store (see Options.Owns).
	Owns func(id string) bool
	// LazyRecovery defers rebuilding suspended instances to first touch
	// (see Options.LazyRecovery).
	LazyRecovery bool
}

// NewLocalRuntime builds the pool and engine.
func NewLocalRuntime(cfg LocalConfig) (*LocalRuntime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Store == nil {
		cfg.Store = store.NewMem()
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("core: LocalConfig needs a Library")
	}
	rt := &LocalRuntime{Store: cfg.Store, start: time.Now()}
	rt.exec = newLocalExec(rt, cfg.Workers)
	eng, err := New(Options{
		Store:        cfg.Store,
		Library:      cfg.Library,
		Executor:     rt.exec,
		Clock:        ClockFunc(func() sim.Time { return sim.Time(time.Since(rt.start)) }),
		Policy:       cfg.Policy,
		OnEvent:      cfg.OnEvent,
		OnError:      cfg.OnError,
		Shards:       cfg.Shards,
		Metrics:      cfg.Metrics,
		EventRing:    cfg.EventRing,
		Owns:         cfg.Owns,
		LazyRecovery: cfg.LazyRecovery,
		OnInstanceDone: func(*Instance) {
			rt.Bump()
		},
	})
	if err != nil {
		return nil, err
	}
	rt.Bind(eng)
	if cfg.Metrics != nil {
		workers := cfg.Workers
		cfg.Metrics.GaugeFunc("bioopera_local_slots_total",
			"Worker slots in the local pool.",
			func() float64 { return float64(workers) })
		cfg.Metrics.GaugeFunc("bioopera_local_slots_busy",
			"Worker slots currently executing an activity.",
			func() float64 { return float64(rt.exec.busySlots()) })
	}
	rt.StartSnapshots(cfg.Store, cfg.SnapshotEvery)
	return rt, nil
}

// Close stops accepting work, halts the snapshot loop, and waits for
// in-flight checkpoint flushes to commit, so the caller may close the
// store immediately after. Running workers drain.
func (rt *LocalRuntime) Close() {
	rt.StopSnapshots()
	ex := rt.exec
	ex.mu.Lock()
	ex.closed = true
	ex.mu.Unlock()
	rt.Engine().QuiesceCheckpoints()
}

// localExec is the worker pool behind LocalRuntime. One slot per "node",
// tracked in a cluster.Directory like the remote server's. Dispatches
// carry a sequence token so a stale worker (whose job was killed and
// possibly re-dispatched) can never free the wrong slot or deliver a stale
// result. ex.mu guards the pool's own state only; it is a leaf lock —
// never held across engine calls.
type localExec struct {
	rt  *LocalRuntime
	dir *cluster.Directory

	mu     sync.Mutex
	closed bool
	seq    uint64
	busy   map[string]uint64        // node → dispatch seq
	live   map[cluster.JobID]uint64 // job → dispatch seq whose result is wanted
}

func newLocalExec(rt *LocalRuntime, workers int) *localExec {
	ex := &localExec{
		rt:   rt,
		dir:  cluster.NewDirectory(),
		busy: make(map[string]uint64, workers),
		live: make(map[cluster.JobID]uint64),
	}
	for i := 0; i < workers; i++ {
		ex.dir.Join(cluster.NodeView{
			Name: fmt.Sprintf("local-%02d", i), OS: runtime.GOOS,
			Up: true, CPUs: 1, Speed: 1,
		})
	}
	return ex
}

// Nodes implements Executor.
func (ex *localExec) Nodes() []cluster.NodeView { return ex.dir.Nodes() }

// SetExternalLoad reports the machine's observed external (non-BioOpera)
// load, 0..1, applied to every slot in the pool. The scheduler's batcher
// and migration policy react to it; callers typically sample the OS load
// average on a timer.
func (rt *LocalRuntime) SetExternalLoad(load float64) {
	for _, v := range rt.exec.dir.Nodes() {
		rt.exec.dir.SetExtLoad(v.Name, load)
	}
}

// busySlots reports occupied worker slots (the slot-occupancy gauge).
func (ex *localExec) busySlots() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return len(ex.busy)
}

// Launch implements Executor: the launch's Run thunk executes on a fresh
// goroutine and the completion is delivered straight to HandleCompletion,
// which serializes it on the instance's shard.
func (ex *localExec) Launch(l Launch) error {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return fmt.Errorf("core: local runtime closed")
	}
	if _, taken := ex.busy[l.Node]; taken {
		ex.mu.Unlock()
		return cluster.ErrNoFreeCPU
	}
	if err := ex.dir.Reserve(l.Node); err != nil {
		ex.mu.Unlock()
		return err
	}
	ex.seq++
	mySeq := ex.seq
	ex.busy[l.Node] = mySeq
	ex.live[l.Job] = mySeq
	ex.mu.Unlock()
	started := time.Since(ex.rt.start)
	//bioopera:allow goroleak the worker runs an uninterruptible user program; Kill discards its result rather than joining it, and the engine's shutdown semantics accept in-flight programs finishing into a closed runtime
	go func() {
		t0 := time.Now()
		outputs, err := l.Run()
		cpu := time.Since(t0)

		ex.mu.Lock()
		if ex.busy[l.Node] == mySeq {
			delete(ex.busy, l.Node)
			ex.dir.Release(l.Node)
		}
		if ex.live[l.Job] != mySeq {
			ex.mu.Unlock()
			// Killed (or superseded): the result is discarded, but the
			// slot just freed may unblock the queue.
			ex.rt.Engine().Pump()
			ex.rt.Bump()
			return
		}
		delete(ex.live, l.Job)
		ex.mu.Unlock()
		c := cluster.Completion{
			Job:     l.Job,
			Node:    l.Node,
			Start:   sim.Time(started),
			End:     sim.Time(time.Since(ex.rt.start)),
			CPUTime: cpu,
			Outputs: outputs,
		}
		if err != nil {
			c.ProgramErr = err
			c.Outputs = nil
		}
		if c.Outputs == nil && c.ProgramErr == nil {
			c.Outputs = map[string]ocr.Value{}
		}
		ex.rt.Engine().HandleCompletion(c)
		ex.rt.Bump()
	}()
	return nil
}

// Kill implements Executor: the goroutine cannot be interrupted, but its
// result is discarded and the engine immediately sees the job as killed.
func (ex *localExec) Kill(id cluster.JobID, node string) error {
	ex.mu.Lock()
	if _, ok := ex.live[id]; !ok {
		ex.mu.Unlock()
		return fmt.Errorf("core: job %s not running", id)
	}
	delete(ex.live, id)
	ex.mu.Unlock()
	// Deliver the kill asynchronously, mirroring the simulated cluster;
	// the engine defers kills past navigation, so the completion may
	// even be handled before this goroutine runs — both orders are safe.
	//bioopera:allow goroleak one-shot completion delivery: the goroutine runs a single HandleCompletion and exits; there is nothing to park it on
	go func() {
		ex.rt.Engine().HandleCompletion(cluster.Completion{
			Job:  id,
			Node: node,
			End:  sim.Time(time.Since(ex.rt.start)),
			Err:  cluster.ErrJobKilled,
		})
		ex.rt.Bump()
	}()
	return nil
}
