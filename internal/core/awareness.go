package core

import (
	"sort"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
)

// This file is the awareness model (§3.4/§3.5): BioOpera stores enough
// information about the computing environment to track availability and
// utilization over time (the data behind Figs. 5 and 6) and to answer
// what-if questions about planned outages ("a system administrator could
// ask the system which processes will be affected if a node or set of
// nodes is taken off-line").

// Sample is one point of the lifecycle trace.
type Sample struct {
	At        sim.Time
	Available int     // CPU slots on nodes that are up
	Busy      int     // CPU slots occupied by BioOpera jobs
	Effective float64 // processors actually computing BioOpera work
}

// Annotation labels a moment of the trace (the numbered events of Fig. 5).
type Annotation struct {
	At    sim.Time
	Label string
}

// Tracker samples cluster availability and utilization on the simulation
// clock.
type Tracker struct {
	c           *cluster.Cluster
	samples     []Sample
	annotations []Annotation
	timer       *sim.Timer
}

// NewTracker starts sampling every interval.
func NewTracker(s *sim.Sim, c *cluster.Cluster, every time.Duration) *Tracker {
	t := &Tracker{c: c}
	t.record(s.Now())
	t.timer = s.Every(every, func(now sim.Time) { t.record(now) })
	return t
}

func (t *Tracker) record(now sim.Time) {
	t.samples = append(t.samples, Sample{
		At:        now,
		Available: t.c.AvailableCPUs(),
		Busy:      t.c.BusyCPUs(),
		Effective: t.c.EffectiveBusy(),
	})
}

// Stop halts sampling.
func (t *Tracker) Stop() {
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Annotate records a labelled event at the current simulation time.
func (t *Tracker) Annotate(now sim.Time, label string) {
	t.annotations = append(t.annotations, Annotation{At: now, Label: label})
}

// Samples returns the collected trace.
func (t *Tracker) Samples() []Sample { return append([]Sample(nil), t.samples...) }

// Annotations returns the labelled events.
func (t *Tracker) Annotations() []Annotation {
	return append([]Annotation(nil), t.annotations...)
}

// MeanUtilization returns mean busy/available over samples where the
// cluster had capacity.
func (t *Tracker) MeanUtilization() float64 {
	var sum float64
	var n int
	for _, s := range t.samples {
		if s.Available > 0 {
			sum += float64(s.Busy) / float64(s.Available)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakBusy returns the maximum observed busy CPU count — the paper's
// "using up to N processors".
func (t *Tracker) PeakBusy() int {
	var m int
	for _, s := range t.samples {
		if s.Busy > m {
			m = s.Busy
		}
	}
	return m
}

// JobImpact identifies one activity hit by a hypothetical outage.
type JobImpact struct {
	Job      string
	Instance string
	Scope    string
	Task     string
	Node     string
	Progress string // "running" or "queued-affine"
}

// OutageImpact is the answer to "what happens if these nodes go away?".
type OutageImpact struct {
	// Nodes is the hypothetical outage set.
	Nodes []string
	// Jobs lists activities that would be lost or stuck.
	Jobs []JobImpact
	// Instances lists the distinct affected process instances.
	Instances []string
	// RemainingCPUs is the cluster capacity left during the outage.
	RemainingCPUs int
	// Stranded reports jobs whose placement constraints cannot be met
	// by the remaining nodes — the computation would stall on them.
	Stranded []JobImpact
	// Progress maps each affected instance to how far along it is
	// (§3.5: administrators see "how far in their execution these
	// processes are, their priority").
	Progress map[string]float64
	// Priority maps each affected instance to its priority.
	Priority map[string]int
}

// WhatIf reports the impact of taking the given nodes offline: which
// running activities would be killed and rescheduled, which queued
// activities could no longer be placed anywhere, and how much capacity
// remains (§3.5).
func (e *Engine) WhatIf(nodes []string) OutageImpact {
	down := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		down[n] = true
	}
	impact := OutageImpact{Nodes: append([]string(nil), nodes...)}
	affected := make(map[string]bool)

	// Snapshot the dispatcher maps under dmu; everything read afterwards
	// (process graphs, task/scope names, program bindings) is immutable
	// once the task is created.
	type snap struct {
		id   string
		ref  *queuedRef
		node string
	}
	e.dmu.Lock()
	running := make([]snap, 0, len(e.running))
	for id, ref := range e.running {
		running = append(running, snap{id: id, ref: ref, node: ref.node})
	}
	queued := make([]snap, 0, len(e.queued))
	for id, ref := range e.queued {
		queued = append(queued, snap{id: id, ref: ref})
	}
	e.dmu.Unlock()
	sort.Slice(running, func(i, j int) bool { return running[i].id < running[j].id })
	sort.Slice(queued, func(i, j int) bool { return queued[i].id < queued[j].id })

	// Running jobs on the outage set get killed and rescheduled.
	for _, s := range running {
		if down[s.node] {
			impact.Jobs = append(impact.Jobs, JobImpact{
				Job: s.id, Instance: s.ref.inst.ID, Scope: s.ref.sc.ID,
				Task: s.ref.ts.Name, Node: s.node, Progress: "running",
			})
			affected[s.ref.inst.ID] = true
		}
	}

	// Remaining capacity and stranding analysis.
	var remaining []cluster.NodeView
	for _, v := range e.opts.Executor.Nodes() {
		if down[v.Name] {
			continue
		}
		if v.Up {
			impact.RemainingCPUs += v.CPUs
		}
		// Pretend the node is otherwise empty for feasibility checks.
		v.Running = 0
		remaining = append(remaining, v)
	}

	check := func(s snap, progress string) {
		ref := s.ref
		t := ref.sc.Proc.Task(ref.ts.Name)
		prog, ok := e.opts.Library.Lookup(t.Program)
		if !ok {
			return
		}
		feasible := false
		for _, v := range remaining {
			if !v.Up {
				continue
			}
			if prog.OS != "" && v.OS != prog.OS {
				continue
			}
			if len(prog.Nodes) > 0 {
				found := false
				for _, n := range prog.Nodes {
					if n == v.Name {
						found = true
						break
					}
				}
				if !found {
					continue
				}
			}
			feasible = true
			break
		}
		if !feasible {
			impact.Stranded = append(impact.Stranded, JobImpact{
				Job: s.id, Instance: ref.inst.ID, Scope: ref.sc.ID,
				Task: ref.ts.Name, Node: s.node, Progress: progress,
			})
			affected[ref.inst.ID] = true
		}
	}
	for _, s := range running {
		check(s, "running")
	}
	for _, s := range queued {
		check(s, "queued-affine")
	}

	for id := range affected {
		impact.Instances = append(impact.Instances, id)
	}
	sort.Strings(impact.Instances)
	impact.Progress = make(map[string]float64, len(affected))
	impact.Priority = make(map[string]int, len(affected))
	for _, id := range impact.Instances {
		if in, ok := e.lookup(id); ok {
			mu := e.shardFor(id)
			mu.Lock()
			impact.Progress[id] = in.Progress()
			mu.Unlock()
			impact.Priority[id] = in.Priority
		}
	}
	return impact
}
