package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bioopera/internal/codec"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// The codec micro-benchmarks measure the PR 10 tentpole directly: binary
// encode/decode of one activity completion's checkpoint records (the
// instance meta + the touched task) against the encoding/json path they
// replaced. The gate is the in-run speedup RATIO — machine-independent,
// like the scheduler's latency-ratio gate — plus the hard 0-alloc budget.

func benchMetaDTO() instanceDTO {
	return instanceDTO{
		ID: "p0042", Template: "AllVsAll", Status: InstanceRunning,
		Priority: 1, Tenant: "lab-a",
		Started: sim.Time(90 * time.Second), Activities: 412,
		CPU: 18 * time.Minute, Failures: 2, Retries: 2,
		Outputs: map[string]ocr.Value{
			"master_file": ocr.List(ocr.Num(1.5), ocr.Num(2.5), ocr.Num(3.5)),
			"summary":     ocr.Str("412 alignments"),
		},
	}
}

func benchTaskDTO() taskDTO {
	return taskDTO{
		Name: "Align[17]", Status: TaskEnded, Attempts: 1,
		Inputs: map[string]ocr.Value{
			"a": ocr.Str("seq-000017"), "b": ocr.Str("seq-000031"),
			"pam": ocr.Num(120),
		},
		Outputs: map[string]ocr.Value{
			"score": ocr.Num(1234.5), "pam": ocr.Num(87.25),
		},
		Node: "ik-sun-03", Job: "j001742",
		ReadyAt: sim.Time(91 * time.Second), StartedAt: sim.Time(92 * time.Second),
		EndedAt: sim.Time(97 * time.Second), CPUTime: 5 * time.Second,
		Results: []ocr.Value{ocr.List(ocr.Str("seq-000017"), ocr.Str("seq-000031"), ocr.Num(1234.5))},
	}
}

// codecSpeedupVsJSON times dedicated loops of the binary and JSON encoders
// over the same DTOs and returns json-ns / binary-ns. Dedicated loops (not
// b.N) keep the ratio stable under -benchtime=1x smoke runs.
func codecSpeedupVsJSON(b *testing.B, reps int) float64 {
	meta, task := benchMetaDTO(), benchTaskDTO()
	e := codec.Get()
	defer codec.Put(e)
	encode := func() {
		e.Reset()
		encodeMeta(e, &meta)
		encodeTask(e, &task)
	}
	encode() // warm
	start := time.Now()
	for i := 0; i < reps; i++ {
		encode()
	}
	binNs := float64(time.Since(start).Nanoseconds()) / float64(reps)
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := json.Marshal(&meta); err != nil {
			b.Fatal(err)
		}
		if _, err := json.Marshal(&task); err != nil {
			b.Fatal(err)
		}
	}
	jsonNs := float64(time.Since(start).Nanoseconds()) / float64(reps)
	return jsonNs / binNs
}

// gateCodecEncode fails the benchmark when BENCH_GATE is set and either
// the steady-state encode allocates at all, or the measured speedup over
// encoding/json drops more than 10% under the committed BENCH_10.json
// baseline (never below the 2x acceptance floor).
func gateCodecEncode(b *testing.B, speedup, allocs float64) {
	if os.Getenv("BENCH_GATE") == "" {
		return
	}
	if allocs != 0 {
		b.Fatalf("steady-state encode = %v allocs/op; the 0-alloc budget regressed", allocs)
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_10.json"))
	if err != nil {
		b.Fatalf("BENCH_GATE set but baseline unreadable: %v", err)
	}
	var doc struct {
		Codec struct {
			EncodeSpeedupVsJSON float64 `json:"encode_speedup_vs_json"`
		} `json:"codec"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		b.Fatalf("BENCH_10.json: %v", err)
	}
	if doc.Codec.EncodeSpeedupVsJSON <= 0 {
		b.Fatal("BENCH_10.json has no encode_speedup_vs_json baseline")
	}
	floor := doc.Codec.EncodeSpeedupVsJSON / 1.10
	if floor < 2.0 {
		floor = 2.0
	}
	if speedup < floor {
		b.Fatalf("codec encode speedup %.2fx below gate %.2fx (baseline %.2fx, acceptance floor 2x)",
			speedup, floor, doc.Codec.EncodeSpeedupVsJSON)
	}
}

// BenchmarkCodecEncode measures binary encoding of one activity's
// checkpoint records (meta + task) on a warm pooled encoder.
func BenchmarkCodecEncode(b *testing.B) {
	meta, task := benchMetaDTO(), benchTaskDTO()
	e := codec.Get()
	defer codec.Put(e)
	encode := func() {
		e.Reset()
		encodeMeta(e, &meta)
		encodeTask(e, &task)
	}
	encode()
	b.SetBytes(int64(len(e.Buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode()
	}
	b.StopTimer()
	speedup := codecSpeedupVsJSON(b, 20000)
	allocs := testing.AllocsPerRun(200, encode)
	b.ReportMetric(speedup, "x-vs-json")
	b.ReportMetric(allocs, "allocs/op")
	gateCodecEncode(b, speedup, allocs)
}

// BenchmarkCodecDecode measures binary decoding of the same records, with
// the equivalent json.Unmarshal ratio as a reference metric (decode runs
// on recovery and standby replay — off the steady-state hot path, so it
// reports but does not gate).
func BenchmarkCodecDecode(b *testing.B) {
	meta, task := benchMetaDTO(), benchTaskDTO()
	e := codec.Get()
	defer codec.Put(e)
	encodeMeta(e, &meta)
	encodeTask(e, &task)
	metaBin := append([]byte(nil), e.Span(0)...)
	taskBin := append([]byte(nil), e.Span(1)...)
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		b.Fatal(err)
	}
	taskJSON, err := json.Marshal(&task)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(metaBin) + len(taskBin)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeMetaBinary(metaBin); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeTaskBinary(taskBin); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	const reps = 20000
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := decodeMetaBinary(metaBin); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeTaskBinary(taskBin); err != nil {
			b.Fatal(err)
		}
	}
	binNs := float64(time.Since(start).Nanoseconds()) / float64(reps)
	start = time.Now()
	for i := 0; i < reps; i++ {
		var m instanceDTO
		var ts taskDTO
		if err := json.Unmarshal(metaJSON, &m); err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(taskJSON, &ts); err != nil {
			b.Fatal(err)
		}
	}
	jsonNs := float64(time.Since(start).Nanoseconds()) / float64(reps)
	b.ReportMetric(jsonNs/binNs, "x-vs-json")
}
