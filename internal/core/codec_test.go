package core

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"bioopera/internal/codec"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// fuzzValue builds one whiteboard value from fuzz primitives. NaN is
// replaced (it round-trips through the codec but compares unequal to
// itself, which would make DeepEqual report false corruption).
func fuzzValue(sel uint8, num float64, s string) ocr.Value {
	if math.IsNaN(num) {
		num = 0
	}
	switch sel % 5 {
	case 0:
		return ocr.Null
	case 1:
		return ocr.Bool(num > 0)
	case 2:
		return ocr.Num(num)
	case 3:
		return ocr.Str(s)
	default:
		return ocr.List(ocr.Num(num), ocr.Str(s), ocr.Null, ocr.List(ocr.Bool(num < 0)))
	}
}

// fuzzValueMap builds a small map; count 0 yields nil, matching the
// codec's empty-decodes-nil rule (and JSON omitempty).
func fuzzValueMap(n uint8, key string, sel uint8, num float64, s string) map[string]ocr.Value {
	count := int(n % 4)
	if count == 0 {
		return nil
	}
	m := make(map[string]ocr.Value, count)
	for i := 0; i < count; i++ {
		m[key+string(rune('a'+i))] = fuzzValue(sel+uint8(i), num+float64(i), s)
	}
	return m
}

// FuzzCodecRoundTrip drives every DTO family through binary encode →
// decode and requires the result to be structurally identical to the
// input. The DTOs are built from fuzz primitives so the corpus explores
// string-interning collisions, extreme ints, and empty-vs-populated
// containers.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("p0001", "Par", "tenant-a", "", uint8(2), -3, true, int64(12345), int64(-1), "out", "val", 2.5, uint8(2), uint8(7))
	f.Add("", "", "", "node fell over", uint8(200), math.MaxInt32, false, int64(math.MinInt64), int64(math.MaxInt64), "k", "k", math.Inf(1), uint8(3), uint8(0))
	f.Add("x", "x", "x", "x", uint8(0), 0, false, int64(0), int64(0), "x", "x", -0.0, uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, id, tmpl, tenant, reason string, status uint8, prio int, nice bool, t1, t2 int64, key, s string, num float64, n, sel uint8) {
		meta := instanceDTO{
			ID: id, Template: tmpl, Status: InstanceStatus(status),
			Priority: prio, Nice: nice, Tenant: tenant,
			Started: sim.Time(t1), Ended: sim.Time(t2),
			Activities: int(n), CPU: time.Duration(t1 ^ t2),
			Failures: prio, Retries: int(status),
			Outputs:       fuzzValueMap(n, key, sel, num, s),
			FailureReason: reason,
		}
		create := scopeCreateDTO{
			ID: id, Parent: tmpl, IsRoot: nice, ParentTask: key,
			ElemIndex: prio, ProcRef: tenant, ProcText: s,
		}
		dyn := scopeDynDTO{
			Entries: fuzzValueMap(n+1, key, sel+1, num, s),
			Full:    nice, Done: !nice,
		}
		if n%3 == 1 {
			dyn.Drop = []string{key, s, key}
		}
		task := taskDTO{
			Name: id, Status: TaskStatus(status), Attempts: prio,
			Inputs:  fuzzValueMap(n, key, sel, num, s),
			Outputs: fuzzValueMap(n+2, s, sel+3, num, key),
			Node:    tenant, Job: tmpl, AltOf: reason,
			ReadyAt: sim.Time(t1), StartedAt: sim.Time(t2), EndedAt: sim.Time(t1 + t2),
			CPUTime: time.Duration(t2), ChildWaiting: int(n),
		}
		if sel%2 == 0 {
			task.Results = []ocr.Value{fuzzValue(sel, num, s), fuzzValue(sel+1, -num, key)}
		}
		if sel%3 == 0 {
			task.OverElems = []ocr.Value{fuzzValue(sel+2, num, s)}
		}

		e := codec.Get()
		defer codec.Put(e)
		encodeMeta(e, &meta)
		encodeCreate(e, &create)
		encodeDyn(e, &dyn)
		encodeTask(e, &task)

		gotMeta, err := decodeMetaBinary(e.Span(0))
		if err != nil {
			t.Fatalf("meta: %v", err)
		}
		if !reflect.DeepEqual(gotMeta, meta) {
			t.Fatalf("meta round trip:\n got %+v\nwant %+v", gotMeta, meta)
		}
		gotCreate, err := decodeCreateBinary(e.Span(1))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if !reflect.DeepEqual(gotCreate, create) {
			t.Fatalf("create round trip:\n got %+v\nwant %+v", gotCreate, create)
		}
		gotDyn, err := decodeDynBinary(e.Span(2))
		if err != nil {
			t.Fatalf("dyn: %v", err)
		}
		if !reflect.DeepEqual(gotDyn, dyn) {
			t.Fatalf("dyn round trip:\n got %+v\nwant %+v", gotDyn, dyn)
		}
		gotTask, err := decodeTaskBinary(e.Span(3))
		if err != nil {
			t.Fatalf("task: %v", err)
		}
		if !reflect.DeepEqual(gotTask, task) {
			t.Fatalf("task round trip:\n got %+v\nwant %+v", gotTask, task)
		}
	})
}

// TestCodecEncodeAllocs is the tentpole's headline number: steady-state
// binary encoding of persist records allocates nothing. The pooled
// encoder's buffer, mark slice, intern table and key scratch all survive
// Reset, so a warm flusher costs zero allocations per record.
func TestCodecEncodeAllocs(t *testing.T) {
	meta := instanceDTO{
		ID: "p0001", Template: "Par", Status: InstanceSuspended,
		Started: 100, Activities: 7, CPU: 3 * time.Second,
		Outputs: map[string]ocr.Value{"doubled": ocr.List(ocr.Num(2), ocr.Num(4))},
	}
	task := taskDTO{
		Name: "Add", Status: TaskEnded, Attempts: 1,
		Inputs:  map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(2)},
		Outputs: map[string]ocr.Value{"sum": ocr.Num(3)},
		Node:    "ik0", Job: "j0001", ReadyAt: 10, StartedAt: 20, EndedAt: 30,
	}
	e := codec.Get()
	defer codec.Put(e)
	run := func() {
		e.Reset()
		encodeMeta(e, &meta)
		encodeTask(e, &task)
	}
	run() // warm the buffer, intern table, and key scratch
	if allocs := testing.AllocsPerRun(500, run); allocs != 0 {
		t.Errorf("steady-state record encode = %v allocs, want 0", allocs)
	}
}

// TestRecoverJSONDeltaStoreByteEquivalent is the mixed-format dependability
// property: a store written by the previous (JSON) engine generation must
// recover into exactly the state the binary engine recovers from its own
// store — and the first recovery converts every delta record to binary in
// place, so the JSON decode path is paid once per record, ever.
func TestRecoverJSONDeltaStoreByteEquivalent(t *testing.T) {
	stA := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: stA})
	register(t, rtA, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4), ocr.Num(5))
	id := start(t, rtA, "Par", map[string]ocr.Value{"xs": xs})
	quiesceSuspended(t, rtA, id, sim.Time(1500*time.Millisecond))

	// Rewrite the binary store as the JSON engine would have written it:
	// decode each binary delta record and json.Marshal the identical DTO
	// (same structs, same tags — byte-for-byte the old generation's
	// records). proc/ texts are format-free and copy verbatim.
	stB := store.NewMem()
	kvs, err := stA.List(store.Instance)
	if err != nil {
		t.Fatal(err)
	}
	converted := 0
	for _, kv := range kvs {
		v := kv.Value
		if codec.Sniff(v) {
			converted++
			var dto any
			switch {
			case strings.HasPrefix(kv.Key, "inst/"):
				dto, err = decodeMetaBinary(v)
			case strings.HasPrefix(kv.Key, "scopec/"):
				dto, err = decodeCreateBinary(v)
			case strings.HasPrefix(kv.Key, "scoped/"):
				dto, err = decodeDynBinary(v)
			case strings.HasPrefix(kv.Key, "task/"):
				dto, err = decodeTaskBinary(v)
			default:
				t.Fatalf("unexpected binary record %q", kv.Key)
			}
			if err != nil {
				t.Fatalf("decode %s: %v", kv.Key, err)
			}
			if v, err = json.Marshal(dto); err != nil {
				t.Fatal(err)
			}
		}
		if err := stB.Put(store.Instance, kv.Key, v); err != nil {
			t.Fatal(err)
		}
	}
	if converted == 0 {
		t.Fatal("binary engine wrote no binary records; test is vacuous")
	}

	rtA.Engine.Crash()
	if n, err := rtA.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover binary store = %d, %v", n, err)
	}
	rtB := newRuntime(t, SimConfig{Store: stB})
	register(t, rtB, parallelSrc)
	if n, err := rtB.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover JSON store = %d, %v", n, err)
	}

	inA, _ := rtA.Engine.Instance(id)
	inB, ok := rtB.Engine.Instance(id)
	if !ok {
		t.Fatal("JSON-store instance not recovered")
	}
	if dumpA, dumpB := dumpInstance(t, inA), dumpInstance(t, inB); dumpA != dumpB {
		t.Fatalf("JSON-store recovery diverged from binary-store recovery:\n--- binary ---\n%s\n--- json ---\n%s", dumpA, dumpB)
	}

	// Convert-in-place: after one recovery, every delta record in the
	// JSON store is binary again (proc/ stays raw text).
	kvs, err = stB.List(store.Instance)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if strings.HasPrefix(kv.Key, "proc/") {
			if codec.Sniff(kv.Value) {
				t.Fatalf("proc record %s is not raw text", kv.Key)
			}
			continue
		}
		if !codec.Sniff(kv.Value) {
			t.Errorf("record %s still JSON after recovery: %s", kv.Key, kv.Value)
		}
	}

	// Both finish with the same answer.
	for _, rt := range []*SimRuntime{rtA, rtB} {
		if err := rt.Engine.Resume(id); err != nil {
			t.Fatal(err)
		}
		rt.Run()
		in := finished(t, rt, id)
		for i := 0; i < 5; i++ {
			if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*(i+1)) {
				t.Fatalf("doubled[%d] = %v", i, got)
			}
		}
	}
}
