package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// sphereLibrary provides programs with controllable failures and
// undo-effect tracking.
type sphereLibrary struct {
	*Library
	// log records side effects: "do:X", "undo:X".
	log []string
	// failuresLeft makes "sphere.flaky" fail this many times.
	failuresLeft int
}

func newSphereLibrary(t *testing.T, failures int) *sphereLibrary {
	t.Helper()
	sl := &sphereLibrary{Library: NewLibrary(), failuresLeft: failures}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sl.RegisterFunc("sphere.work", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		tag := args["tag"].AsStr()
		sl.log = append(sl.log, "do:"+tag)
		return map[string]ocr.Value{"out": ocr.Str("done-" + tag)}, nil
	}))
	must(sl.RegisterFunc("sphere.undo", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		sl.log = append(sl.log, "undo:"+args["tag"].AsStr())
		return nil, nil
	}))
	must(sl.RegisterFunc("sphere.flaky", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		if sl.failuresLeft > 0 {
			sl.failuresLeft--
			return nil, errors.New("transient sphere failure")
		}
		sl.log = append(sl.log, "do:flaky")
		return map[string]ocr.Value{"out": ocr.Str("flaky-ok")}, nil
	}))
	must(sl.RegisterFunc("sphere.fail", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		return nil, errors.New("permanent failure")
	}))
	return sl
}

// sphereSrc: a two-step atomic sphere where the second step fails; the
// first step has an UNDO. The sphere retries twice.
const sphereSrc = `
PROCESS Sphere {
  OUTPUT result;
  BLOCK Tx ATOMIC {
    MAP done -> result;
    RETRY 2;
    OUTPUT done;
    ACTIVITY Step1 {
      CALL sphere.work(tag = "step1");
      OUT out;
      MAP out -> a;
      UNDO sphere.undo;
    }
    ACTIVITY Step2 {
      CALL sphere.flaky(tag = a);
      OUT out;
      MAP out -> done;
      UNDO sphere.undo;
    }
    Step1 -> Step2;
  }
}
`

func TestSphereParsesAndRoundTrips(t *testing.T) {
	p, err := ocr.ParseProcess(sphereSrc)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Task("Tx")
	if !tx.Atomic {
		t.Fatal("ATOMIC lost")
	}
	if got := tx.Body.Task("Step1").Undo; got != "sphere.undo" {
		t.Fatalf("Undo = %q", got)
	}
	text := ocr.Format(p)
	if !strings.Contains(text, "BLOCK Tx ATOMIC") || !strings.Contains(text, "UNDO sphere.undo;") {
		t.Fatalf("format lost sphere syntax:\n%s", text)
	}
	p2, err := ocr.ParseProcess(text)
	if err != nil {
		t.Fatal(err)
	}
	if ocr.Format(p2) != text {
		t.Fatal("round trip unstable")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// runSphere builds a runtime around the given library and runs template
// tpl from src.
func runSphere(t *testing.T, lib *Library, src, tpl string) (*SimRuntime, *Instance) {
	t.Helper()
	rt, err := NewSimRuntime(SimConfig{Seed: 1, Spec: testSpec(), Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(src); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess(tpl, nil, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	return rt, in
}

func TestSphereRetrySucceedsAfterUndo(t *testing.T) {
	// Step2 fails twice; the sphere has RETRY 2 so the third full run
	// succeeds. Each abort must undo Step1's completed work.
	sl := newSphereLibrary(t, 2)
	_, in := runSphere(t, sl.Library, sphereSrc, "Sphere")
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	if got := in.Outputs["result"].AsStr(); got != "flaky-ok" {
		t.Fatalf("result = %q", got)
	}
	want := []string{
		"do:step1", "undo:step1", // attempt 1: step2 fails, step1 undone
		"do:step1", "undo:step1", // attempt 2
		"do:step1", "do:flaky", // attempt 3 succeeds
	}
	if len(sl.log) != len(want) {
		t.Fatalf("effect log = %v, want %v", sl.log, want)
	}
	for i := range want {
		if sl.log[i] != want[i] {
			t.Fatalf("effect log = %v, want %v", sl.log, want)
		}
	}
}

func TestSphereExhaustedAborts(t *testing.T) {
	// Step2 always fails; RETRY 2 → 3 attempts → instance fails, with
	// three undos of Step1.
	sl := newSphereLibrary(t, 99)
	_, in := runSphere(t, sl.Library, sphereSrc, "Sphere")
	if in.Status != InstanceFailed {
		t.Fatalf("instance %s", in.Status)
	}
	undos := 0
	for _, e := range sl.log {
		if e == "undo:step1" {
			undos++
		}
	}
	if undos != 3 {
		t.Fatalf("undo count = %d, want 3 (one per attempt)", undos)
	}
}

func TestSphereIgnoreContinues(t *testing.T) {
	src := `
PROCESS SphereIgnore {
  OUTPUT result, after;
  BLOCK Tx ATOMIC {
    MAP done -> result;
    ON FAILURE IGNORE;
    OUTPUT done;
    ACTIVITY Step1 {
      CALL sphere.work(tag = "s1");
      OUT out;
      MAP out -> a;
      UNDO sphere.undo;
    }
    ACTIVITY Step2 {
      CALL sphere.fail();
      OUT out;
      MAP out -> done;
    }
    Step1 -> Step2;
  }
  ACTIVITY After {
    CALL sphere.work(tag = "after");
    OUT out;
    MAP out -> after;
  }
  Tx -> After;
}
`
	sl := newSphereLibrary(t, 0)
	_, in := runSphere(t, sl.Library, src, "SphereIgnore")
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	// The sphere's result is null (ignored), downstream still ran.
	if !in.Outputs["result"].IsNull() {
		t.Fatalf("result = %v, want null", in.Outputs["result"])
	}
	if in.Outputs["after"].AsStr() != "done-after" {
		t.Fatalf("after = %v", in.Outputs["after"])
	}
	// Step1's work was compensated before continuing.
	joined := strings.Join(sl.log, ",")
	if !strings.Contains(joined, "undo:s1") {
		t.Fatalf("no undo before IGNORE: %v", sl.log)
	}
}

func TestParallelSphereAllOrNothing(t *testing.T) {
	// One element fails permanently → every element's completed work is
	// undone, then the sphere re-runs; the second attempt succeeds.
	src := `
PROCESS ParSphere {
  OUTPUT result;
  DATA xs = [0, 1, 2, 3];
  BLOCK Fan ATOMIC PARALLEL OVER xs AS x {
    MAP results -> result;
    RETRY 1;
    OUTPUT r;
    ACTIVITY W {
      CALL psphere.work(x = x);
      OUT out;
      MAP out -> r;
      UNDO psphere.undo;
    }
  }
}
`
	lib := NewLibrary()
	var log []string
	attempt2 := false
	lib.RegisterFunc("psphere.work", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		x := args["x"].AsInt()
		if x == 3 && !attempt2 {
			attempt2 = true
			return nil, errors.New("element 3 fails on the first sphere attempt")
		}
		log = append(log, fmt.Sprintf("do:%d", x))
		return map[string]ocr.Value{"out": args["x"]}, nil
	})
	lib.RegisterFunc("psphere.undo", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		log = append(log, fmt.Sprintf("undo:%d", args["x"].AsInt()))
		return nil, nil
	})
	_, in := runSphere(t, lib, src, "ParSphere")
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	if in.Outputs["result"].Len() != 4 {
		t.Fatalf("result = %v", in.Outputs["result"])
	}
	// First attempt: elements 0,1,2 completed then were undone.
	dos, undos, redos := 0, 0, 0
	seenUndo := false
	for _, e := range log {
		switch {
		case strings.HasPrefix(e, "undo:"):
			undos++
			seenUndo = true
		case seenUndo:
			redos++
		default:
			dos++
		}
	}
	if undos != 3 || dos != 3 || redos != 4 {
		t.Fatalf("log = %v (dos=%d undos=%d redos=%d)", log, dos, undos, redos)
	}
}

func TestNestedSpheresEscalate(t *testing.T) {
	// The inner sphere exhausts its retries; its failure aborts the
	// OUTER sphere, whose retry then re-runs both.
	src := `
PROCESS Nested {
  OUTPUT result;
  BLOCK Outer ATOMIC {
    MAP done -> result;
    RETRY 1;
    OUTPUT done;
    ACTIVITY Pre {
      CALL sphere.work(tag = "pre");
      OUT out;
      MAP out -> pre;
      UNDO sphere.undo;
    }
    BLOCK Inner ATOMIC {
      MAP inner_done -> done;
      OUTPUT inner_done;
      ACTIVITY Mid {
        CALL sphere.flaky(tag = pre);
        OUT out;
        MAP out -> inner_done;
      }
    }
    Pre -> Inner;
  }
}
`
	// flaky fails once: the inner sphere (no retries) aborts → escalates
	// to Outer → Outer's retry re-runs Pre (after undoing it) and Inner.
	sl := newSphereLibrary(t, 1)
	_, in := runSphere(t, sl.Library, src, "Nested")
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	if got := in.Outputs["result"].AsStr(); got != "flaky-ok" {
		t.Fatalf("result = %q", got)
	}
	want := []string{"do:pre", "undo:pre", "do:pre", "do:flaky"}
	if strings.Join(sl.log, ",") != strings.Join(want, ",") {
		t.Fatalf("effect log = %v, want %v", sl.log, want)
	}
}

func TestSphereKillsInFlightSiblings(t *testing.T) {
	// A long-running sibling is killed when the sphere aborts; its
	// (later) completion is discarded, not double-counted.
	src := `
PROCESS Siblings {
  OUTPUT result;
  BLOCK Tx ATOMIC {
    MAP done -> result;
    RETRY 1;
    OUTPUT done;
    ACTIVITY Slow {
      CALL sib.slow();
      OUT out;
      MAP out -> slow_out;
      COST 3600;
    }
    ACTIVITY Fast {
      CALL sib.failfirst();
      OUT out;
      MAP out -> done;
      COST 1;
    }
  }
}
`
	lib := NewLibrary()
	slowRuns := 0
	failed := false
	lib.RegisterFunc("sib.slow", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		slowRuns++
		return map[string]ocr.Value{"out": ocr.Str("slow")}, nil
	})
	lib.RegisterFunc("sib.failfirst", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		if !failed {
			failed = true
			return nil, errors.New("first attempt fails")
		}
		return map[string]ocr.Value{"out": ocr.Str("ok")}, nil
	})
	rt, in := runSphere(t, lib, src, "Siblings")
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	if got := in.Outputs["result"].AsStr(); got != "ok" {
		t.Fatalf("result = %q", got)
	}
	// Slow ran once per sphere attempt (the first was killed mid-run;
	// its program only runs at completion on the sim cluster, so only
	// the successful attempt's run counts).
	if slowRuns != 1 {
		t.Fatalf("slow executed %d times, want 1", slowRuns)
	}
	// No leaked jobs.
	if rt.Engine.RunningJobs() != 0 || rt.Engine.QueueLen() != 0 {
		t.Fatalf("leaked work: running=%d queued=%d", rt.Engine.RunningJobs(), rt.Engine.QueueLen())
	}
}

func TestSphereSurvivesNodeCrash(t *testing.T) {
	// Infrastructure failures inside a sphere do NOT abort it — they
	// requeue as usual; the sphere only aborts on program failures.
	sl := newSphereLibrary(t, 0)
	rt, err := NewSimRuntime(SimConfig{Seed: 1, Spec: testSpec(), Library: sl.Library})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.RegisterTemplateSource(sphereSrc); err != nil {
		t.Fatal(err)
	}
	id, err := rt.Engine.StartProcess("Sphere", nil, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Sim.At(sim.Time(500*time.Millisecond), func(sim.Time) {
		rt.Cluster.CrashNode("n1")
		rt.Cluster.CrashNode("n2")
	})
	rt.Sim.At(sim.Time(10*time.Second), func(sim.Time) {
		rt.Cluster.RestoreNode("n1")
		rt.Cluster.RestoreNode("n2")
	})
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	for _, e := range sl.log {
		if strings.HasPrefix(e, "undo:") {
			t.Fatalf("node crash triggered an undo: %v", sl.log)
		}
	}
}

func TestSphereUndoUnregisteredIsTolerated(t *testing.T) {
	src := `
PROCESS BadUndo {
  OUTPUT result;
  BLOCK Tx ATOMIC {
    MAP done -> result;
    RETRY 1;
    OUTPUT done;
    ACTIVITY S {
      CALL sphere.flaky(tag = "x");
      OUT out;
      MAP out -> done;
      UNDO no.such.undo;
    }
  }
}
`
	sl := newSphereLibrary(t, 1)
	_, in := runSphere(t, sl.Library, src, "BadUndo")
	// Missing undo programs are logged, not fatal.
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
}
