package core

import (
	"fmt"
	"sort"

	"bioopera/internal/ocr"
)

// This file implements event handling (§3.1): activities declared with
// AWAIT "name" complete when an external signal arrives instead of calling
// a program. The paper uses this for user interaction with running
// computations — checking intermediate results, approving continuations
// ("the monitor allows users to actively influence the computation").
//
// Signals are buffered: a signal sent before any task awaits it is
// delivered to the next awaiting task, so producers and consumers need not
// race.
//
// The waiting/signal indexes live behind dmu; the waiters of a key all
// belong to the key's instance, so their task state is protected by that
// instance's shard, which Signal holds for the duration of delivery.

// eventKey identifies a (instance, event) wait point.
func eventKey(instanceID, event string) string { return instanceID + "|" + event }

// awaitEvent parks an activated AWAIT activity until its signal arrives.
// Caller holds the instance's shard.
func (e *Engine) awaitEvent(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	key := eventKey(in.ID, t.Await)
	// A buffered signal satisfies the wait immediately.
	e.dmu.Lock()
	var payload map[string]ocr.Value
	buffered := false
	if queue := e.signals[key]; len(queue) > 0 {
		payload = queue[0]
		buffered = true
		e.signals[key] = queue[1:]
		if len(e.signals[key]) == 0 {
			delete(e.signals, key)
		}
	}
	e.dmu.Unlock()
	if buffered {
		ts.Status = TaskRunning
		e.touchTask(in, sc, ts)
		e.finishEventTask(in, sc, t, ts, payload)
		return
	}
	ts.Status = TaskRunning
	e.touchTask(in, sc, ts)
	e.dmu.Lock()
	e.waiting[key] = append(e.waiting[key], &queuedRef{inst: in, sc: sc, ts: ts})
	e.dmu.Unlock()
	e.emit(Event{Kind: EvTaskAwaiting, Instance: in.ID, Scope: sc.ID, Task: t.Name, Detail: t.Await})
	e.persist(in)
}

// finishEventTask completes an AWAIT task with the signal payload as its
// outputs.
func (e *Engine) finishEventTask(in *Instance, sc *scope, t *ocr.Task, ts *taskState, payload map[string]ocr.Value) {
	outputs := make(map[string]ocr.Value, len(payload))
	for k, v := range payload {
		outputs[k] = v
	}
	in.Activities++
	e.finishTask(in, sc, t, ts, outputs)
}

// Signal delivers an external event to an instance. The first task
// awaiting the event (in activation order) completes with the payload as
// its outputs; if none is waiting, the signal is buffered for the next
// AWAIT on that event. Signalling a finished instance is an error.
func (e *Engine) Signal(instanceID, event string, payload map[string]ocr.Value) error {
	if err := e.checkOwned(instanceID); err != nil {
		return err
	}
	in, ok := e.lookup(instanceID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	mu := e.shardFor(instanceID)
	mu.Lock()
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		mu.Unlock()
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, instanceID, in.Status)
	}
	e.beginTurn(in)
	// Hydrating re-arms the stub's AWAIT waits, so this signal can be
	// delivered (or buffered) against the instance's real wait set.
	if err := e.hydrateLocked(in); err != nil {
		e.endTurn(in, mu, false)
		return err
	}
	e.emit(Event{Kind: EvSignal, Instance: instanceID, Detail: event})
	key := eventKey(instanceID, event)
	e.dmu.Lock()
	waiters := e.waiting[key]
	// Skip waiters whose scopes were torn down by a sphere abort (safe
	// to read under the shard we hold: all waiters belong to in).
	for len(waiters) > 0 && waiters[0].sc.defunct {
		waiters = waiters[1:]
	}
	if len(waiters) == 0 {
		delete(e.waiting, key)
		e.signals[key] = append(e.signals[key], payload)
		e.dmu.Unlock()
		in.turnLive = false // buffered: this turn ends without endTurn
		mu.Unlock()
		return nil
	}
	ref := waiters[0]
	if len(waiters) > 1 {
		e.waiting[key] = waiters[1:]
	} else {
		delete(e.waiting, key)
	}
	e.dmu.Unlock()
	t := ref.sc.Proc.Task(ref.ts.Name)
	e.finishEventTask(in, ref.sc, t, ref.ts, payload)
	e.endTurn(in, mu, true)
	return nil
}

// Awaiting lists the event names an instance is currently blocked on,
// sorted.
func (e *Engine) Awaiting(instanceID string) []string {
	mu := e.shardFor(instanceID)
	mu.Lock()
	defer mu.Unlock()
	e.dmu.Lock()
	defer e.dmu.Unlock()
	var out []string
	prefix := instanceID + "|"
	for key, refs := range e.waiting {
		if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		live := false
		for _, r := range refs {
			if !r.sc.defunct {
				live = true
				break
			}
		}
		if live {
			out = append(out, key[len(prefix):])
		}
	}
	sort.Strings(out)
	return out
}

// dropWaiting removes an instance's waiters and buffered signals (on
// abort/failure).
func (e *Engine) dropWaiting(in *Instance) {
	e.dmu.Lock()
	defer e.dmu.Unlock()
	prefix := in.ID + "|"
	for key := range e.waiting {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			delete(e.waiting, key)
		}
	}
	for key := range e.signals {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			delete(e.signals, key)
		}
	}
}
