package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// Engine errors.
var (
	ErrUnknownTemplate = errors.New("core: unknown template")
	ErrUnknownInstance = errors.New("core: unknown instance")
	ErrBadState        = errors.New("core: operation invalid in current state")
)

// Executor abstracts the cluster the dispatcher talks to. The simulated
// cluster (internal/cluster) and the local real-time pool both implement
// it.
type Executor interface {
	// Nodes returns the current placement view.
	Nodes() []cluster.NodeView
	// Start launches a job; completions arrive via the engine's
	// HandleCompletion.
	Start(id cluster.JobID, node string, cost time.Duration, nice bool) error
	// Kill aborts a running job; a completion with an error follows.
	Kill(id cluster.JobID, node string) error
}

// Clock supplies virtual (or pseudo-real) time for accounting.
type Clock interface{ Now() sim.Time }

// ClockFunc adapts a function to Clock.
type ClockFunc func() sim.Time

// Now implements Clock.
func (f ClockFunc) Now() sim.Time { return f() }

// EventKind classifies engine events.
type EventKind string

// Engine event kinds.
const (
	EvInstanceStarted   EventKind = "instance-started"
	EvInstanceDone      EventKind = "instance-done"
	EvInstanceFailed    EventKind = "instance-failed"
	EvInstanceSuspended EventKind = "instance-suspended"
	EvInstanceResumed   EventKind = "instance-resumed"
	EvTaskReady         EventKind = "task-ready"
	EvTaskDispatched    EventKind = "task-dispatched"
	EvTaskEnded         EventKind = "task-ended"
	EvTaskFailed        EventKind = "task-failed"
	EvTaskRetried       EventKind = "task-retried"
	EvTaskDead          EventKind = "task-dead"
	EvServerRecovered   EventKind = "server-recovered"
	EvSphereAborted     EventKind = "sphere-aborted"
	EvUndoRun           EventKind = "undo-run"
	EvUndoFailed        EventKind = "undo-failed"
	EvTaskAwaiting      EventKind = "task-awaiting"
	EvSignal            EventKind = "signal"
)

// Event is one engine-level occurrence, persisted to the history journal.
type Event struct {
	At       sim.Time  `json:"at"`
	Kind     EventKind `json:"kind"`
	Instance string    `json:"instance,omitempty"`
	Scope    string    `json:"scope,omitempty"`
	Task     string    `json:"task,omitempty"`
	Node     string    `json:"node,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Options configure an Engine.
type Options struct {
	// Store persists templates, instances, configuration and history.
	// Required.
	Store store.Store
	// Library resolves external bindings. Required.
	Library *Library
	// Executor runs activities. Required.
	Executor Executor
	// Clock supplies time. Required.
	Clock Clock
	// Policy places activities; defaults to LeastLoaded.
	Policy sched.Policy
	// OnInstanceDone fires when an instance reaches Done or Failed.
	OnInstanceDone func(*Instance)
	// OnEvent observes every engine event (may be nil).
	OnEvent func(Event)
}

// queuedRef connects a queued sched.Job back to its task.
type queuedRef struct {
	inst *Instance
	sc   *scope
	ts   *taskState
}

// Engine is the BioOpera server: navigator + dispatcher + recovery.
// It is not internally synchronized; drivers must serialize calls.
type Engine struct {
	opts      Options
	policy    sched.Policy
	templates map[string]*ocr.Process
	instances map[string]*Instance
	order     []string // instance creation order, for determinism
	queue     sched.Queue
	queued    map[string]*queuedRef             // job ID → queued task
	running   map[string]*queuedRef             // job ID → running task
	waiting   map[string][]*queuedRef           // instance|event → AWAIT tasks
	signals   map[string][]map[string]ocr.Value // buffered signals
	nextID    int
	paused    bool // global suspend (server-level)
}

// New builds an engine and loads templates already in the store.
func New(opts Options) (*Engine, error) {
	if opts.Store == nil || opts.Library == nil || opts.Executor == nil || opts.Clock == nil {
		return nil, fmt.Errorf("core: Store, Library, Executor and Clock are required")
	}
	if opts.Policy == nil {
		opts.Policy = sched.LeastLoaded{}
	}
	e := &Engine{
		opts:      opts,
		policy:    opts.Policy,
		templates: make(map[string]*ocr.Process),
		instances: make(map[string]*Instance),
		queued:    make(map[string]*queuedRef),
		running:   make(map[string]*queuedRef),
		waiting:   make(map[string][]*queuedRef),
		signals:   make(map[string][]map[string]ocr.Value),
	}
	kvs, err := opts.Store.List(store.Template)
	if err != nil {
		return nil, err
	}
	for _, kv := range kvs {
		p, err := ocr.ParseProcess(string(kv.Value))
		if err != nil {
			return nil, fmt.Errorf("core: template %q in store is invalid: %w", kv.Key, err)
		}
		e.templates[kv.Key] = p
	}
	return e, nil
}

func (e *Engine) now() sim.Time { return e.opts.Clock.Now() }

func (e *Engine) emit(ev Event) {
	ev.At = e.now()
	if data, err := json.Marshal(ev); err == nil {
		e.opts.Store.AppendEvent(data)
	}
	if e.opts.OnEvent != nil {
		e.opts.OnEvent(ev)
	}
}

// RegisterTemplate validates a process and stores it in the template
// space under its name. Existing templates are replaced; running
// instances keep the definition they started with (late binding picks up
// the new version for subprocesses instantiated afterwards).
func (e *Engine) RegisterTemplate(p *ocr.Process) error {
	if err := p.ValidateWithTemplates(e.resolveTemplate); err != nil {
		return err
	}
	if err := e.opts.Store.Put(store.Template, p.Name, []byte(ocr.Format(p))); err != nil {
		return err
	}
	e.templates[p.Name] = p.Clone()
	return nil
}

// RegisterTemplateSource parses OCR text and registers every process in
// it.
func (e *Engine) RegisterTemplateSource(src string) error {
	ps, err := ocr.ParseFile(src)
	if err != nil {
		return err
	}
	for _, p := range ps {
		if err := e.RegisterTemplate(p); err != nil {
			return err
		}
	}
	return nil
}

// Template returns a copy of a registered template.
func (e *Engine) Template(name string) (*ocr.Process, bool) {
	p, ok := e.templates[name]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Templates lists registered template names, sorted.
func (e *Engine) Templates() []string {
	out := make([]string, 0, len(e.templates))
	for n := range e.templates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) resolveTemplate(name string) (*ocr.Process, bool) {
	p, ok := e.templates[name]
	return p, ok
}

// StartOptions tune a new instance.
type StartOptions struct {
	// Priority orders this instance's activities in the queue.
	Priority int
	// Nice makes activities yield to competing cluster load (the
	// paper's shared-cluster mode).
	Nice bool
}

// StartProcess instantiates a template and begins navigation. It returns
// the new instance ID.
func (e *Engine) StartProcess(template string, inputs map[string]ocr.Value, opts StartOptions) (string, error) {
	tpl, ok := e.templates[template]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownTemplate, template)
	}
	e.nextID++
	in := &Instance{
		ID:       fmt.Sprintf("p%04d", e.nextID),
		Template: template,
		Status:   InstanceRunning,
		Priority: opts.Priority,
		Nice:     opts.Nice,
		Started:  e.now(),
	}
	proc := tpl.Clone()
	root := &scope{
		ID:         "",
		Proc:       proc,
		ElemIndex:  -1,
		Whiteboard: make(map[string]ocr.Value),
		Tasks:      make(map[string]*taskState),
		children:   make(map[string]*scope),
	}
	for _, name := range proc.Inputs {
		if v, ok := inputs[name]; ok {
			root.Whiteboard[name] = v
		}
	}
	in.root = root
	in.scopes = map[string]*scope{"": root}
	e.instances[in.ID] = in
	e.order = append(e.order, in.ID)

	if err := e.initScope(in, root); err != nil {
		delete(e.instances, in.ID)
		e.order = e.order[:len(e.order)-1]
		return "", err
	}
	e.emit(Event{Kind: EvInstanceStarted, Instance: in.ID, Detail: template})
	e.persist(in)
	e.activateRoots(in, root)
	e.maybeCompleteScope(in, root)
	e.Pump()
	return in.ID, nil
}

// initScope evaluates DATA initializers into the scope whiteboard.
func (e *Engine) initScope(in *Instance, sc *scope) error {
	env := scopeEnv{sc}
	for _, d := range sc.Proc.Data {
		if d.Init == nil {
			continue
		}
		v, err := d.Init.Eval(env)
		if err != nil {
			return fmt.Errorf("core: initializing DATA %s: %w", d.Name, err)
		}
		sc.Whiteboard[d.Name] = v
	}
	for _, t := range sc.Proc.Tasks {
		sc.Tasks[t.Name] = &taskState{
			Name:   t.Name,
			ConnIn: make([]connState, len(sc.Proc.Incoming(t.Name))),
		}
	}
	e.touch(sc)
	return nil
}

// Instance returns a running or finished instance.
func (e *Engine) Instance(id string) (*Instance, bool) {
	in, ok := e.instances[id]
	return in, ok
}

// Instances returns every instance in creation order.
func (e *Engine) Instances() []*Instance {
	out := make([]*Instance, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.instances[id])
	}
	return out
}

// QueueLen reports how many activities await dispatch.
func (e *Engine) QueueLen() int { return e.queue.Len() }

// RunningJobs reports how many activities are executing on the cluster.
func (e *Engine) RunningJobs() int { return len(e.running) }

// Suspend stops dispatching new activities of an instance. When graceful,
// running jobs finish normally (the paper's event 1: "letting ongoing jobs
// finish but not starting new ones"); otherwise they are killed and
// requeued.
func (e *Engine) Suspend(id string, graceful bool) error {
	in, ok := e.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if in.Status != InstanceRunning {
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	in.Status = InstanceSuspended
	e.emit(Event{Kind: EvInstanceSuspended, Instance: id, Detail: fmt.Sprintf("graceful=%v", graceful)})
	if !graceful {
		e.killRunning(in)
	}
	e.persist(in)
	return nil
}

// Resume restarts dispatching for a suspended instance.
func (e *Engine) Resume(id string) error {
	in, ok := e.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if in.Status != InstanceSuspended {
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	in.Status = InstanceRunning
	e.emit(Event{Kind: EvInstanceResumed, Instance: id})
	e.persist(in)
	e.Pump()
	return nil
}

// Abort fails an instance on user request.
func (e *Engine) Abort(id string, reason string) error {
	in, ok := e.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	e.failInstance(in, "aborted: "+reason)
	return nil
}

// SetParameter changes a whiteboard value of a running or suspended
// instance (§3.4: "the user can ... change input parameters during each
// step of the computation").
func (e *Engine) SetParameter(id, name string, v ocr.Value) error {
	in, ok := e.instances[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	in.root.Whiteboard[name] = v
	e.touch(in.root)
	e.persist(in)
	return nil
}

// PauseAll stops dispatching across all instances (server-level suspend,
// used during planned outages).
func (e *Engine) PauseAll() { e.paused = true }

// ResumeAll re-enables dispatching.
func (e *Engine) ResumeAll() {
	e.paused = false
	e.Pump()
}

// killRunning kills every running job of an instance; the completions
// with ErrJobKilled requeue the tasks.
func (e *Engine) killRunning(in *Instance) {
	ids := make([]string, 0, len(e.running))
	for id, ref := range e.running {
		if ref.inst == in {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		ref := e.running[id]
		e.opts.Executor.Kill(cluster.JobID(id), ref.ts.Node)
	}
}

// dropQueued removes all queued activities of an instance.
func (e *Engine) dropQueued(in *Instance) {
	ids := make([]string, 0, len(e.queued))
	for id, ref := range e.queued {
		if ref.inst == in {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.queue.Remove(id)
		delete(e.queued, id)
	}
}

// failInstance aborts everything the instance still has in flight.
func (e *Engine) failInstance(in *Instance, reason string) {
	if in.Status == InstanceFailed || in.Status == InstanceDone {
		return
	}
	in.Status = InstanceFailed
	in.FailureReason = reason
	in.Ended = e.now()
	e.dropQueued(in)
	e.dropWaiting(in)
	e.killRunning(in)
	e.emit(Event{Kind: EvInstanceFailed, Instance: in.ID, Detail: reason})
	e.persist(in)
	e.archive(in)
	if e.opts.OnInstanceDone != nil {
		e.opts.OnInstanceDone(in)
	}
}
